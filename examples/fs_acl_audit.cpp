// Filesystem ACL audit: load the Unix-filesystem surrogate (the paper's
// second real-data workload), build its DOL, and answer audit questions —
// how much can each principal read, where, and how compact is the encoding.
//
//   ./fs_acl_audit [target_nodes]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/unixfs_surrogate.h"

int main(int argc, char** argv) {
  using namespace secxml;
  UnixFsOptions opts;
  opts.target_nodes = 120000;
  if (argc > 1) opts.target_nodes = static_cast<uint32_t>(std::atoi(argv[1]));

  UnixFsWorkload w;
  if (!GenerateUnixFs(opts, &w).ok()) return 1;
  std::printf("filesystem: %zu files/dirs, %zu users, %zu groups\n",
              w.doc.NumNodes(), w.num_users, w.num_groups);

  DolLabeling labeling = DolLabeling::BuildFromRuns(*w.read_map);
  DolLabeling::Stats stats = labeling.ComputeStats();
  std::printf("read-mode DOL: %zu transitions (1 per %.0f nodes), %zu "
              "codebook entries, %zu bytes total\n\n",
              stats.num_transitions,
              static_cast<double>(w.doc.NumNodes()) /
                  static_cast<double>(stats.num_transitions),
              stats.codebook_entries, stats.total_bytes);

  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  if (!SecureStore::Build(w.doc, labeling, &file, {}, &store).ok()) return 1;

  // Audit 1: readable fraction per principal (sampled).
  std::printf("readable fraction of the tree (sampled):\n");
  for (SubjectId s : {SubjectId{0}, SubjectId{1},
                      static_cast<SubjectId>(w.num_users),      // group 0
                      static_cast<SubjectId>(w.num_users + 1)}) {
    size_t visible = 0, total = 0;
    for (NodeId x = 0; x < w.doc.NumNodes(); x += 37) {
      ++total;
      auto r = store->Accessible(s, x);
      if (r.ok() && *r) ++visible;
    }
    std::printf("  %s %-4u: %4.1f%%\n",
                s < w.num_users ? "user " : "group", s,
                100.0 * static_cast<double>(visible) /
                    static_cast<double>(total));
  }

  // Audit 2: which project trees can user 0 reach? Run a secure twig query.
  QueryEvaluator eval(store.get());
  EvalOptions secure;
  secure.semantics = AccessSemantics::kBinding;
  secure.subject = 0;
  auto projects = eval.EvaluateXPath("/fs/proj/projdir", secure);
  auto files = eval.EvaluateXPath("//projdir//file", secure);
  if (!projects.ok() || !files.ok()) return 1;
  auto all = eval.EvaluateXPath("/fs/proj/projdir", EvalOptions{});
  std::printf("\nuser 0 reaches %zu of %zu project directories and %zu "
              "project files\n", projects->answers.size(),
              all.ok() ? all->answers.size() : 0, files->answers.size());

  // Audit 3: quantify exposure — files readable by *everyone* are exactly
  // the nodes whose codebook entry is all-ones.
  size_t world_runs = 0;
  for (size_t r = 0; r < w.read_map->num_runs(); ++r) {
    if (w.read_map->run_acl(r).Count() == w.num_subjects()) ++world_runs;
  }
  std::printf("world-readable ownership regions: %zu of %zu\n", world_runs,
              w.read_map->num_runs());

  // Audit 4: offboarding — revoke user 1 everywhere, then verify.
  std::printf("\noffboarding user 1 (single range update over the whole "
              "tree)...\n");
  if (!store->SetRangeAccess(0, store->num_nodes(), 1, false).ok()) return 1;
  size_t still = 0;
  for (NodeId x = 0; x < w.doc.NumNodes(); x += 101) {
    auto r = store->Accessible(1, x);
    if (r.ok() && *r) ++still;
  }
  std::printf("user 1 readable nodes after revocation (sampled): %zu\n",
              still);
  return 0;
}
