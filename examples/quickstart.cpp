// Quickstart: build a secured XML store from a document and per-subject
// access rules, then run twig queries under the three access-control
// semantics.
//
//   ./quickstart
//
// Walks through the full pipeline: parse XML -> derive per-subject
// accessibility with Most-Specific-Override rules -> build the logical DOL
// (transition list + codebook) -> embed it into NoK block storage -> query.

#include <cstdio>
#include <memory>

#include "core/dol_labeling.h"
#include "core/policy.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace {

constexpr const char* kXml = R"(
<hospital>
  <ward name="cardiology">
    <patient><name>Ana</name><record><diagnosis>x</diagnosis><billing>100</billing></record></patient>
    <patient><name>Ben</name><record><diagnosis>y</diagnosis><billing>250</billing></record></patient>
  </ward>
  <ward name="oncology">
    <patient><name>Cho</name><record><diagnosis>z</diagnosis><billing>400</billing></record></patient>
  </ward>
  <pharmacy>
    <drug><name>aspirin</name><stock>12</stock></drug>
  </pharmacy>
</hospital>
)";

}  // namespace

int main() {
  using namespace secxml;

  // 1. Parse the document.
  Document doc;
  Status st = ParseXml(kXml, &doc);
  if (!st.ok()) {
    std::fprintf(stderr, "parse: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("document has %zu element nodes\n", doc.NumNodes());

  // 2. Access rules for two subjects, propagated with
  //    Most-Specific-Override down the tree:
  //    - subject 0 (cardiology doctor): the whole document, except other
  //      wards and billing data;
  //    - subject 1 (billing clerk): nothing, except record subtrees.
  TagId ward = doc.tags().Lookup("ward");
  TagId billing = doc.tags().Lookup("billing");
  TagId record = doc.tags().Lookup("record");
  std::vector<AclSeed> doctor = {{0, true}};
  std::vector<AclSeed> clerk;
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    if (doc.Tag(n) == ward && doc.Value(doc.FirstChild(n)) != "cardiology") {
      // Attribute children are materialized as @name nodes; check them.
    }
    if (doc.Tag(n) == billing) doctor.push_back({n, false});
    if (doc.Tag(n) == record) clerk.push_back({n, true});
  }
  // Hide the oncology ward from the doctor: find it via its @name child.
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    if (doc.TagName(n) == "@name" && doc.Value(n) == "oncology") {
      doctor.push_back({doc.Parent(n), false});
    }
  }

  IntervalAccessMap map(static_cast<NodeId>(doc.NumNodes()), 2);
  map.SetSubjectIntervals(0, PropagateMostSpecificOverride(doc, doctor));
  map.SetSubjectIntervals(1, PropagateMostSpecificOverride(doc, clerk));

  // 3. Build the logical DOL and the physical secured store.
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  std::printf("DOL: %zu transition nodes, %zu codebook entries\n",
              labeling.num_transitions(), labeling.codebook().size());

  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  st = SecureStore::Build(doc, labeling, &file, {}, &store);
  if (!st.ok()) {
    std::fprintf(stderr, "build: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Query under each semantics.
  QueryEvaluator eval(store.get());
  const char* query = "//record/diagnosis";
  struct {
    const char* name;
    AccessSemantics semantics;
    SubjectId subject;
  } runs[] = {
      {"no access control       ", AccessSemantics::kNone, 0},
      {"doctor, binding semantics", AccessSemantics::kBinding, 0},
      {"doctor, view semantics   ", AccessSemantics::kView, 0},
      {"clerk,  binding semantics", AccessSemantics::kBinding, 1},
      {"clerk,  view semantics   ", AccessSemantics::kView, 1},
  };
  std::printf("\nquery: %s\n", query);
  for (const auto& run : runs) {
    EvalOptions opts;
    opts.semantics = run.semantics;
    opts.subject = run.subject;
    auto result = eval.EvaluateXPath(query, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "eval: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %s -> %zu answers:", run.name, result->answers.size());
    for (NodeId n : result->answers) {
      std::printf(" %s", std::string(doc.Value(n)).c_str());
    }
    std::printf("\n");
  }

  // The clerk's record subtrees are accessible, but their ancestors (the
  // patients and wards) are not: binding semantics (Cho et al.) answers
  // from inside those subtrees, while view semantics (Gabillon-Bruno)
  // prunes everything below an inaccessible node — compare the clerk lines.

  // 5. Updates: grant the clerk access to the pharmacy subtree.
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    if (doc.TagName(n) == "pharmacy") {
      st = store->SetSubtreeAccess(n, 1, true);
      if (!st.ok()) return 1;
    }
  }
  EvalOptions clerk_opts;
  clerk_opts.semantics = AccessSemantics::kBinding;
  clerk_opts.subject = 1;
  auto stock = eval.EvaluateXPath("//drug/stock", clerk_opts);
  std::printf("\nafter granting pharmacy to the clerk, //drug/stock -> %zu "
              "answer(s)\n", stock.ok() ? stock->answers.size() : 0);
  return 0;
}
