// secxml_tool: command-line secure XML querying.
//
//   ./secxml_tool <document.xml> <rules.txt> <query> <subject> [semantics]
//   ./secxml_tool            (no arguments: runs a built-in demo)
//
// The rules file defines an instance-level policy with XPath-targeted
// grants propagated by Most-Specific-Override:
//
//   subjects <count>
//   allow <subject-id> <xpath>
//   deny  <subject-id> <xpath>
//
// Rules apply in file order (later rules override earlier ones on the same
// node); untargeted nodes are inaccessible. `semantics` is "binding"
// (default), "view", or "none".

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/dol_labeling.h"
#include "core/policy.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace {

using namespace secxml;

constexpr const char* kDemoXml =
    "<library><public><book><title>Odyssey</title></book></public>"
    "<restricted><book><title>Secrets</title></book>"
    "<book><title>More Secrets</title></book></restricted></library>";

constexpr const char* kDemoRules =
    "subjects 2\n"
    "allow 0 //library\n"
    "deny 0 //restricted\n"
    "allow 1 //library\n";

struct Rule {
  SubjectId subject;
  bool allow;
  std::string xpath;
};

Status ParseRules(const std::string& text, size_t* num_subjects,
                  std::vector<Rule>* rules) {
  std::istringstream in(text);
  std::string keyword;
  *num_subjects = 0;
  while (in >> keyword) {
    if (keyword == "subjects") {
      in >> *num_subjects;
    } else if (keyword == "allow" || keyword == "deny") {
      Rule r;
      in >> r.subject >> r.xpath;
      r.allow = keyword == "allow";
      if (r.xpath.empty()) {
        return Status::InvalidArgument("rule missing xpath");
      }
      rules->push_back(std::move(r));
    } else if (!keyword.empty() && keyword[0] == '#') {
      std::string comment;
      std::getline(in, comment);
    } else {
      return Status::InvalidArgument("unknown rules keyword: " + keyword);
    }
  }
  if (*num_subjects == 0) {
    return Status::InvalidArgument("rules must declare 'subjects <count>'");
  }
  return Status::OK();
}

Status RunTool(const std::string& xml, const std::string& rules_text,
               const std::string& query, SubjectId subject,
               AccessSemantics semantics) {
  Document doc;
  SECXML_RETURN_NOT_OK(ParseXml(xml, &doc));
  size_t num_subjects = 0;
  std::vector<Rule> rules;
  SECXML_RETURN_NOT_OK(ParseRules(rules_text, &num_subjects, &rules));
  if (subject >= num_subjects) {
    return Status::InvalidArgument("subject id out of range");
  }

  // Resolve each rule's XPath to seed nodes, then propagate per subject.
  // Rule resolution runs without access control (the administrator sees
  // everything).
  MemPagedFile rule_file;
  std::unique_ptr<SecureStore> rule_store;
  DenseAccessMap everything(static_cast<NodeId>(doc.NumNodes()), 1, true);
  DolLabeling open_labeling = DolLabeling::Build(everything);
  SECXML_RETURN_NOT_OK(
      SecureStore::Build(doc, open_labeling, &rule_file, {}, &rule_store));
  QueryEvaluator rule_eval(rule_store.get());

  std::vector<std::vector<AclSeed>> seeds(num_subjects);
  for (const Rule& r : rules) {
    SECXML_ASSIGN_OR_RETURN(EvalResult matched,
                            rule_eval.EvaluateXPath(r.xpath, {}));
    for (NodeId n : matched.answers) {
      seeds[r.subject].push_back({n, r.allow});
    }
  }
  IntervalAccessMap map(static_cast<NodeId>(doc.NumNodes()), num_subjects);
  for (SubjectId s = 0; s < num_subjects; ++s) {
    map.SetSubjectIntervals(s, PropagateMostSpecificOverride(doc, seeds[s]));
  }

  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  SECXML_RETURN_NOT_OK(SecureStore::Build(doc, labeling, &file, {}, &store));
  std::fprintf(stderr,
               "# %zu nodes, %zu subjects, %zu DOL transitions, %zu codebook "
               "entries\n",
               doc.NumNodes(), num_subjects, labeling.num_transitions(),
               labeling.codebook().size());

  QueryEvaluator eval(store.get());
  EvalOptions opts;
  opts.semantics = semantics;
  opts.subject = subject;
  SECXML_ASSIGN_OR_RETURN(EvalResult result, eval.EvaluateXPath(query, opts));
  std::printf("%zu answer(s)\n", result.answers.size());
  for (NodeId n : result.answers) {
    std::printf("%s\n", WriteXml(doc, n).c_str());
  }
  return Status::OK();
}

std::string ReadFileOrDie(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::printf("running built-in demo (see --help in the source header)\n");
    std::printf("\n[subject 0 under binding semantics: //book/title]\n");
    Status st = RunTool(kDemoXml, kDemoRules, "//book/title", 0,
                        AccessSemantics::kBinding);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\n[subject 1 under binding semantics: //book/title]\n");
    st = RunTool(kDemoXml, kDemoRules, "//book/title", 1,
                 AccessSemantics::kBinding);
    return st.ok() ? 0 : 1;
  }
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: %s <document.xml> <rules.txt> <query> <subject> "
                 "[binding|view|none]\n",
                 argv[0]);
    return 2;
  }
  AccessSemantics semantics = AccessSemantics::kBinding;
  if (argc > 5) {
    std::string s = argv[5];
    if (s == "view") {
      semantics = AccessSemantics::kView;
    } else if (s == "none") {
      semantics = AccessSemantics::kNone;
    } else if (s != "binding") {
      std::fprintf(stderr, "unknown semantics '%s'\n", s.c_str());
      return 2;
    }
  }
  Status st = RunTool(ReadFileOrDie(argv[1]), ReadFileOrDie(argv[2]), argv[3],
                      static_cast<SubjectId>(std::atoi(argv[4])), semantics);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
