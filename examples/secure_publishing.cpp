// Selective dissemination: publish per-subscriber views of one XML document
// (the use case of paper Section 6's dissemination discussion — DOL works on
// arbitrarily fine-grained, instance-level sensitive data).
//
//   ./secure_publishing [target_nodes]
//
// Builds an XMark-like auction document, gives three subscriber classes
// different rights, and serializes each subscriber's view with
// whole-subtree pruning (Gabillon-Bruno view semantics) — exactly what a
// streaming disseminator would emit.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/dol_labeling.h"
#include "core/policy.h"
#include "core/secure_store.h"
#include "storage/paged_file.h"
#include "xml/xmark_generator.h"
#include "xml/xml_writer.h"

int main(int argc, char** argv) {
  using namespace secxml;
  uint32_t nodes = 4000;
  if (argc > 1) nodes = static_cast<uint32_t>(std::atoi(argv[1]));

  XMarkOptions xopts;
  xopts.target_nodes = nodes;
  Document doc;
  if (!GenerateXMark(xopts, &doc).ok()) return 1;
  NodeId n = static_cast<NodeId>(doc.NumNodes());

  // Three subscriber classes:
  //  0 public mirror: regions and categories only — people and auctions are
  //    private;
  //  1 analyst: everything except people's personal data (addresses,
  //    profiles);
  //  2 auditor: everything.
  std::vector<AclSeed> public_rules = {{0, true}};
  std::vector<AclSeed> analyst_rules = {{0, true}};
  for (NodeId x = 0; x < n; ++x) {
    const std::string& tag = doc.TagName(x);
    if (tag == "people" || tag == "open_auctions" || tag == "closed_auctions") {
      public_rules.push_back({x, false});
    }
    if (tag == "address" || tag == "profile" || tag == "phone") {
      analyst_rules.push_back({x, false});
    }
  }
  IntervalAccessMap map(n, 3);
  map.SetSubjectIntervals(0, PropagateMostSpecificOverride(doc, public_rules));
  map.SetSubjectIntervals(1, PropagateMostSpecificOverride(doc, analyst_rules));
  map.SetSubjectIntervals(2, {{0, n}});

  DolLabeling labeling = DolLabeling::BuildFromEvents(n, map.InitialAcl(),
                                                      map.CollectEvents());
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  if (!SecureStore::Build(doc, labeling, &file, {}, &store).ok()) return 1;

  std::printf("document: %u nodes; DOL: %zu transitions, %zu codebook "
              "entries (%zu bytes)\n\n", n, labeling.num_transitions(),
              labeling.codebook().size(), labeling.codebook().ByteSize());

  const char* names[] = {"public mirror", "analyst", "auditor"};
  for (SubjectId s = 0; s < 3; ++s) {
    // The view to publish: prune every subtree rooted at an inaccessible
    // node. HiddenSubtreeIntervals computes the pruned regions in one
    // document-order pass over the store.
    auto hidden = store->HiddenSubtreeIntervals(s);
    if (!hidden.ok()) return 1;
    size_t hidden_nodes = 0;
    for (const NodeInterval& iv : *hidden) hidden_nodes += iv.end - iv.begin;

    // Serialize the subscriber's view (WriteXmlFiltered prunes subtrees).
    // The writer does not visit nodes strictly in document order (it scans
    // a node's children for attributes first), so use a stateless binary
    // search over the hidden intervals.
    const std::vector<NodeInterval>& list = *hidden;
    auto visible = [&list](NodeId x) {
      size_t lo = 0, hi = list.size();
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (list[mid].end <= x) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return !(lo < list.size() && list[lo].begin <= x);
    };
    std::string view = WriteXmlFiltered(doc, visible);
    std::printf("%-14s sees %6u of %u nodes (%zu pruned); view is %zu "
                "bytes of XML across %zu hidden region(s)\n", names[s],
                n - static_cast<uint32_t>(hidden_nodes), n, hidden_nodes,
                view.size(), hidden->size());
  }

  // A new subscriber class can be added without touching any page: clone
  // the analyst's rights in the codebook only.
  auto intern_or = store->AddSubjectLike(1);
  if (!intern_or.ok()) {
    std::fprintf(stderr, "AddSubjectLike: %s\n",
                 intern_or.status().ToString().c_str());
    return 1;
  }
  SubjectId intern = *intern_or;
  auto check = store->Accessible(intern, 0);
  std::printf("\nadded subject %u cloned from the analyst (codebook-only); "
              "root accessible: %s\n", intern,
              check.ok() && *check ? "yes" : "no");
  return 0;
}
