// Department portal: multi-mode access control on the LiveLink-style
// corporate content tree. Shows the per-mode maps (see/read/modify/...),
// onboarding a user by cloning a colleague's rights, and a manager
// revoking a project subtree.
//
//   ./department_portal [target_nodes]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "storage/paged_file.h"
#include "workload/livelink_surrogate.h"

int main(int argc, char** argv) {
  using namespace secxml;
  LiveLinkOptions opts;
  opts.target_nodes = 30000;
  opts.num_departments = 6;
  opts.teams_per_department = 4;
  opts.num_users = 600;
  if (argc > 1) opts.target_nodes = static_cast<uint32_t>(std::atoi(argv[1]));

  LiveLinkWorkload w;
  if (!GenerateLiveLink(opts, &w).ok()) return 1;
  std::printf("portal: %zu nodes, %zu users + %zu groups, %zu action modes\n",
              w.doc.NumNodes(), w.num_users, w.num_groups, w.modes.size());

  // One DOL (and one secured store) per action mode, as the paper
  // prescribes: modes are handled exactly like additional subjects, so a
  // deployment may also fold them into one wider codebook.
  const char* mode_names[] = {"see",      "read",    "modify", "edit-attrs",
                              "checkout", "create",  "delete", "reserve",
                              "admin",    "audit"};
  std::vector<std::unique_ptr<MemPagedFile>> files;
  std::vector<std::unique_ptr<SecureStore>> stores;
  std::printf("\n%-12s %14s %18s\n", "mode", "transitions", "codebook entries");
  for (size_t m = 0; m < w.modes.size(); ++m) {
    DolLabeling labeling = DolLabeling::BuildFromEvents(
        w.modes[m].num_nodes(), w.modes[m].InitialAcl(),
        w.modes[m].CollectEvents());
    files.push_back(std::make_unique<MemPagedFile>());
    stores.emplace_back();
    if (!SecureStore::Build(w.doc, labeling, files.back().get(), {},
                            &stores.back())
             .ok()) {
      return 1;
    }
    std::printf("%-12s %14zu %18zu\n", mode_names[m],
                labeling.num_transitions(), labeling.codebook().size());
  }

  // A user's capability row: what may user 7 do to node X?
  SubjectId user = 7;
  NodeId some_doc = kInvalidNode;
  for (NodeId x = 0; x < w.doc.NumNodes(); ++x) {
    if (w.doc.TagName(x) == "document" && w.modes[0].Accessible(user, x)) {
      some_doc = x;
      break;
    }
  }
  if (some_doc != kInvalidNode) {
    std::printf("\nuser %u on node %u:", user, some_doc);
    for (size_t m = 0; m < stores.size(); ++m) {
      auto r = stores[m]->Accessible(user, some_doc);
      if (r.ok() && *r) std::printf(" %s", mode_names[m]);
    }
    std::printf("\n");
  }

  // Onboarding: the new hire gets the same rights as user 7, in every mode,
  // without touching a single page.
  std::printf("\nonboarding a new hire with user %u's rights:\n", user);
  SubjectId hire = 0;
  for (size_t m = 0; m < stores.size(); ++m) {
    auto hire_or = stores[m]->AddSubjectLike(user);
    if (!hire_or.ok()) {
      std::fprintf(stderr, "AddSubjectLike: %s\n",
                   hire_or.status().ToString().c_str());
      return 1;
    }
    hire = *hire_or;
  }
  std::printf("  new subject id %u added to all %zu modes (codebook-only, "
              "zero page writes)\n", hire, stores.size());

  // Revocation: management pulls the whole first department from the new
  // hire's "see" rights.
  NodeId dept = kInvalidNode;
  for (NodeId x = 0; x < w.doc.NumNodes(); ++x) {
    if (w.doc.TagName(x) == "department") {
      dept = x;
      break;
    }
  }
  if (dept != kInvalidNode) {
    uint64_t writes_before = stores[0]->io_stats().page_writes;
    if (!stores[0]->SetSubtreeAccess(dept, hire, false).ok()) return 1;
    (void)stores[0]->nok()->buffer_pool()->FlushAll();
    std::printf("\nrevoked department subtree (%u nodes) from subject %u: "
                "%llu page writes (ceil(N/B) locality)\n",
                w.doc.SubtreeSize(dept), hire,
                static_cast<unsigned long long>(
                    stores[0]->io_stats().page_writes - writes_before));
    auto r = stores[0]->Accessible(hire, dept + 1);
    std::printf("subject %u can still see inside that department: %s\n", hire,
                r.ok() && *r ? "yes" : "no");
  }
  return 0;
}
