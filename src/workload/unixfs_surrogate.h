#ifndef SECXML_WORKLOAD_UNIXFS_SURROGATE_H_
#define SECXML_WORKLOAD_UNIXFS_SURROGATE_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "core/accessibility_map.h"
#include "xml/document.h"

namespace secxml {

/// Surrogate for the multi-user University of Waterloo Unix filesystem
/// dataset of paper Section 5: 182 users, 65 groups (247 subjects), and
/// 1.3 million files/directories with standard Unix ownership and
/// permission semantics. The defaults reproduce the published subject
/// counts; the node count is a scale parameter (benchmarks raise it).
struct UnixFsOptions {
  uint32_t target_nodes = 200000;
  uint32_t num_users = 182;
  uint32_t num_groups = 65;
  uint64_t seed = 11;
};

/// The generated workload. Subject ids: users first [0, num_users), then
/// groups [num_users, num_users + num_groups).
struct UnixFsWorkload {
  Document doc;
  /// Read-mode accessibility. A user reads a node if the other-read bit is
  /// set, or they own it with owner-read, or they belong to its group with
  /// group-read; a group subject reads what its membership confers.
  /// Ownership is assigned at subtree granularity (home directories,
  /// project trees, system areas) with per-file perturbations, so the map
  /// is a run-length structure with strong locality.
  std::unique_ptr<RunAccessMap> read_map;
  size_t num_users = 0;
  size_t num_groups = 0;
  size_t num_subjects() const { return num_users + num_groups; }
};

Status GenerateUnixFs(const UnixFsOptions& options, UnixFsWorkload* out);

}  // namespace secxml

#endif  // SECXML_WORKLOAD_UNIXFS_SURROGATE_H_
