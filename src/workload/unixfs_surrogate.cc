#include "workload/unixfs_surrogate.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace secxml {

namespace {

/// Read-relevant permission bits.
struct Perm {
  bool owner_r = true;
  bool group_r = false;
  bool other_r = false;
};

constexpr Perm kPublic{true, true, true};     // 0755 / 0644
constexpr Perm kGroupOnly{true, true, false}; // 0750 / 0640
constexpr Perm kPrivate{true, false, false};  // 0700 / 0600

/// Ownership context of a filesystem region.
struct Ctx {
  uint32_t owner = 0;  // user id
  uint32_t group = 0;  // group id
  Perm perm = kPublic;

  uint64_t Key() const {
    return (static_cast<uint64_t>(owner) << 32) |
           (static_cast<uint64_t>(group) << 8) |
           (perm.owner_r ? 4u : 0u) | (perm.group_r ? 2u : 0u) |
           (perm.other_r ? 1u : 0u);
  }
};

class Generator {
 public:
  Generator(const UnixFsOptions& options, UnixFsWorkload* out)
      : options_(options), rng_(options.seed), out_(out) {}

  Status Run() {
    if (options_.num_users == 0 || options_.num_groups == 0) {
      return Status::InvalidArgument("need at least one user and group");
    }
    AssignMemberships();
    SECXML_RETURN_NOT_OK(BuildTree());
    BuildMap();
    return Status::OK();
  }

 private:
  uint32_t U() const { return options_.num_users; }
  uint32_t G() const { return options_.num_groups; }
  static constexpr uint32_t kRoot = 0xffffffu;  // the superuser, not a subject

  void AssignMemberships() {
    members_.assign(G(), BitVector(options_.num_users));
    primary_group_.resize(U());
    for (uint32_t u = 0; u < U(); ++u) {
      uint32_t g = rng_.Uniform(G());
      primary_group_[u] = g;
      members_[g].Set(u, true);
      // Secondary memberships for some users.
      int extras = rng_.Bernoulli(0.25) ? 1 + static_cast<int>(rng_.Uniform(3))
                                        : 0;
      for (int i = 0; i < extras; ++i) {
        members_[rng_.Uniform(G())].Set(u, true);
      }
    }
  }

  /// Marks the start of a region with context `ctx` at the next node id.
  void PushCtx(const Ctx& ctx) {
    ctx_stack_.push_back(ctx);
    AddBoundary(ctx);
  }

  void PopCtx() {
    ctx_stack_.pop_back();
    AddBoundary(ctx_stack_.back());
  }

  void AddBoundary(const Ctx& ctx) {
    NodeId here = static_cast<NodeId>(b_.NumNodes());
    if (!boundaries_.empty() && boundaries_.back().first == here) {
      boundaries_.back().second = ctx;
    } else {
      boundaries_.emplace_back(here, ctx);
    }
  }

  Status File(const char* tag, const Ctx& ctx, double private_prob) {
    if (rng_.Bernoulli(private_prob)) {
      Ctx priv = ctx;
      priv.perm = kPrivate;
      PushCtx(priv);
      b_.BeginElement(tag);
      SECXML_RETURN_NOT_OK(b_.EndElement());
      PopCtx();
      return Status::OK();
    }
    b_.BeginElement(tag);
    return b_.EndElement();
  }

  /// Directory subtree of ~`budget` nodes in context `ctx`.
  Status DirTree(int budget, int depth, const Ctx& ctx, double private_prob) {
    while (budget > 0) {
      if (depth < 12 && budget > 6 && rng_.Bernoulli(0.35)) {
        b_.BeginElement("dir");
        int take = 3 + static_cast<int>(rng_.Uniform(
                           static_cast<uint64_t>(budget / 2 + 1)));
        take = std::min(take, budget);
        SECXML_RETURN_NOT_OK(DirTree(take - 1, depth + 1, ctx, private_prob));
        SECXML_RETURN_NOT_OK(b_.EndElement());
        budget -= take;
      } else {
        SECXML_RETURN_NOT_OK(File("file", ctx, private_prob));
        --budget;
      }
    }
    return Status::OK();
  }

  Status Section(const char* tag, int budget, const Ctx& ctx,
                 double private_prob) {
    PushCtx(ctx);
    b_.BeginElement(tag);
    SECXML_RETURN_NOT_OK(DirTree(budget, 2, ctx, private_prob));
    SECXML_RETURN_NOT_OK(b_.EndElement());
    PopCtx();
    return Status::OK();
  }

  Status BuildTree() {
    const uint32_t target = std::max(options_.target_nodes, 1000u);
    Ctx system{kRoot, 0, kPublic};
    // The root context covers everything not in an explicit section.
    boundaries_.emplace_back(0, system);
    ctx_stack_.push_back(system);
    b_.BeginElement("fs");

    // System areas (~25%): root-owned, world-readable, a few protected.
    SECXML_RETURN_NOT_OK(
        Section("etc", static_cast<int>(target * 0.02), system, 0.10));
    SECXML_RETURN_NOT_OK(
        Section("usr", static_cast<int>(target * 0.18), system, 0.0));
    Ctx var{kRoot, 0, kGroupOnly};
    SECXML_RETURN_NOT_OK(
        Section("var", static_cast<int>(target * 0.05), var, 0.15));

    // Home directories (~55%): one subtree per user, Zipf-ish sizes.
    {
      b_.BeginElement("home");
      int home_budget = static_cast<int>(target * 0.55);
      int per_user = std::max(3, home_budget / static_cast<int>(U()));
      for (uint32_t u = 0; u < U(); ++u) {
        Ctx ctx{u, primary_group_[u],
                rng_.Bernoulli(0.35) ? kPrivate
                                     : (rng_.Bernoulli(0.5) ? kGroupOnly
                                                            : kPublic)};
        int size = 1 + static_cast<int>(rng_.Uniform(
                           static_cast<uint64_t>(per_user * 2 - 1)));
        PushCtx(ctx);
        b_.BeginElement("userdir");
        SECXML_RETURN_NOT_OK(DirTree(size, 2, ctx, 0.10));
        SECXML_RETURN_NOT_OK(b_.EndElement());
        PopCtx();
      }
      SECXML_RETURN_NOT_OK(b_.EndElement());
    }

    // Project areas (~20%): group-owned collaborative trees.
    {
      b_.BeginElement("proj");
      int proj_budget = static_cast<int>(target * 0.20);
      while (proj_budget > 10) {
        uint32_t g = rng_.Uniform(G());
        uint32_t lead = rng_.Uniform(U());
        Ctx ctx{lead, g, rng_.Bernoulli(0.8) ? kGroupOnly : kPublic};
        int size = 10 + static_cast<int>(rng_.Uniform(
                            static_cast<uint64_t>(proj_budget / 2 + 1)));
        size = std::min(size, proj_budget);
        PushCtx(ctx);
        b_.BeginElement("projdir");
        SECXML_RETURN_NOT_OK(DirTree(size - 1, 2, ctx, 0.05));
        SECXML_RETURN_NOT_OK(b_.EndElement());
        PopCtx();
        proj_budget -= size;
      }
      SECXML_RETURN_NOT_OK(b_.EndElement());
    }

    SECXML_RETURN_NOT_OK(b_.EndElement());  // fs
    return b_.Finish(&out_->doc);
  }

  /// Distinct ownership context -> subject ACL.
  BitVector AclFor(const Ctx& ctx) {
    size_t s = U() + G();
    BitVector acl(s);
    if (ctx.perm.other_r) {
      // Everyone, including every group subject.
      for (size_t i = 0; i < s; ++i) acl.Set(i, true);
      return acl;
    }
    if (ctx.perm.group_r) {
      const BitVector& m = members_[ctx.group];
      for (uint32_t u = 0; u < U(); ++u) {
        if (m.Get(u)) acl.Set(u, true);
      }
      acl.Set(U() + ctx.group, true);
    }
    if (ctx.perm.owner_r && ctx.owner != kRoot) acl.Set(ctx.owner, true);
    return acl;
  }

  void BuildMap() {
    out_->num_users = U();
    out_->num_groups = G();
    out_->read_map = std::make_unique<RunAccessMap>(
        static_cast<NodeId>(out_->doc.NumNodes()), U() + G());
    std::unordered_map<uint64_t, BitVector> cache;
    const BitVector* prev = nullptr;
    for (const auto& [start, ctx] : boundaries_) {
      if (start >= out_->doc.NumNodes()) break;
      auto it = cache.find(ctx.Key());
      if (it == cache.end()) {
        it = cache.emplace(ctx.Key(), AclFor(ctx)).first;
      }
      if (prev != nullptr && *prev == it->second) continue;
      out_->read_map->AppendRun(start, it->second);
      prev = &it->second;
    }
  }

  const UnixFsOptions& options_;
  Rng rng_;
  UnixFsWorkload* out_;
  DocumentBuilder b_;
  std::vector<BitVector> members_;
  std::vector<uint32_t> primary_group_;
  std::vector<Ctx> ctx_stack_;
  std::vector<std::pair<NodeId, Ctx>> boundaries_;
};

}  // namespace

Status GenerateUnixFs(const UnixFsOptions& options, UnixFsWorkload* out) {
  Generator gen(options, out);
  return gen.Run();
}

}  // namespace secxml
