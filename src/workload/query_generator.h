#ifndef SECXML_WORKLOAD_QUERY_GENERATOR_H_
#define SECXML_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>

#include "query/pattern_tree.h"
#include "xml/document.h"

namespace secxml {

/// The paper's benchmark queries (Table 1). Q3 is the corrected form (see
/// DESIGN.md); index 0-2 are the NoK pattern queries, 3-5 the
/// ancestor-descendant join queries.
extern const char* const kTable1Queries[6];

/// Options for random twig generation.
struct QueryGenOptions {
  uint64_t seed = 1;
  /// Upper bound on pattern nodes.
  int max_nodes = 6;
  /// Probability that an edge uses the descendant axis.
  double descendant_prob = 0.25;
  /// Probability that a leaf pattern node gets a value-equality test taken
  /// from the data (so it stays satisfiable).
  double value_prob = 0.15;
  /// Probability that a node test becomes the '*' wildcard.
  double wildcard_prob = 0.1;
};

/// Generates a random twig pattern grown along real paths of `doc`, so the
/// query usually has matches: a random data node seeds the pattern root
/// (descendant axis), and branches follow actual children/descendants.
/// The returning node is chosen uniformly among the pattern nodes. Used by
/// the evaluator stress tests and available to downstream benchmarks.
PatternTree GenerateTwigQuery(const Document& doc,
                              const QueryGenOptions& options);

}  // namespace secxml

#endif  // SECXML_WORKLOAD_QUERY_GENERATOR_H_
