#include "workload/synthetic_acl.h"

#include <utility>

#include "common/rng.h"
#include "core/policy.h"

namespace secxml {

std::vector<NodeInterval> GenerateSyntheticAcl(
    const Document& doc, const SyntheticAclOptions& options) {
  Rng rng(options.seed);
  NodeId n = static_cast<NodeId>(doc.NumNodes());

  // Pick seeds and their labels, in document order (deterministic in the
  // PRNG seed). The root is always a seed (Section 5).
  std::vector<std::pair<NodeId, bool>> labels;
  std::vector<char> is_seed(n, 0);
  labels.emplace_back(0, options.force_root_accessible ||
                             rng.Bernoulli(options.accessibility_ratio));
  is_seed[0] = 1;
  for (NodeId x = 1; x < n; ++x) {
    if (rng.Bernoulli(options.propagation_ratio)) {
      labels.emplace_back(x, rng.Bernoulli(options.accessibility_ratio));
      is_seed[x] = 1;
    }
  }

  // Horizontal locality: seeds' direct siblings copy the label, provided
  // the siblings are not seeds themselves. Copies go first so that true
  // seeds override any copy landing on the same node.
  std::vector<AclSeed> seeds;
  seeds.reserve(labels.size() * 3);
  if (options.horizontal_locality) {
    for (const auto& [node, accessible] : labels) {
      NodeId p = doc.Parent(node);
      if (p == kInvalidNode) continue;
      for (NodeId sib = doc.FirstChild(p); sib != kInvalidNode;
           sib = doc.NextSibling(sib)) {
        if (sib != node && !is_seed[sib]) {
          seeds.push_back({sib, accessible});
        }
      }
    }
  }
  for (const auto& [node, accessible] : labels) {
    seeds.push_back({node, accessible});
  }
  return PropagateMostSpecificOverride(doc, std::move(seeds));
}

IntervalAccessMap GenerateSyntheticAclMap(const Document& doc,
                                          size_t num_subjects,
                                          const SyntheticAclOptions& options) {
  IntervalAccessMap map(static_cast<NodeId>(doc.NumNodes()), num_subjects);
  for (SubjectId s = 0; s < num_subjects; ++s) {
    SyntheticAclOptions per_subject = options;
    per_subject.seed = options.seed * 1000003 + s;
    map.SetSubjectIntervals(s, GenerateSyntheticAcl(doc, per_subject));
  }
  return map;
}

}  // namespace secxml
