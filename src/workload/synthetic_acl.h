#ifndef SECXML_WORKLOAD_SYNTHETIC_ACL_H_
#define SECXML_WORKLOAD_SYNTHETIC_ACL_H_

#include <cstdint>
#include <vector>

#include "core/accessibility_map.h"
#include "xml/document.h"

namespace secxml {

/// Parameters of the paper's synthetic access-control generator (Section 5):
/// randomly chosen seed nodes are labeled accessible/non-accessible, seeds'
/// direct siblings copy the label (horizontal locality), and labels
/// propagate to descendants under Most-Specific-Override (vertical
/// locality). The document root is always a seed so every node is labeled.
struct SyntheticAclOptions {
  /// Fraction of document nodes chosen as seeds ("propagation ratio").
  double propagation_ratio = 0.03;

  /// Fraction of seeds labeled accessible ("accessibility ratio").
  double accessibility_ratio = 0.5;

  /// Copy each seed's label to its direct siblings (unless they are seeds
  /// themselves), simulating horizontal structural locality.
  bool horizontal_locality = true;

  /// Force the root seed to be labeled accessible. Useful for benchmarks of
  /// the Gabillon-Bruno view semantics, where an inaccessible root makes
  /// the entire instance degenerate (everything hidden).
  bool force_root_accessible = false;

  uint64_t seed = 1;
};

/// Generates one subject's accessible intervals.
std::vector<NodeInterval> GenerateSyntheticAcl(const Document& doc,
                                               const SyntheticAclOptions& options);

/// Generates `num_subjects` independent subjects (each drawn with a distinct
/// PRNG stream derived from options.seed).
IntervalAccessMap GenerateSyntheticAclMap(const Document& doc,
                                          size_t num_subjects,
                                          const SyntheticAclOptions& options);

}  // namespace secxml

#endif  // SECXML_WORKLOAD_SYNTHETIC_ACL_H_
