#ifndef SECXML_WORKLOAD_LIVELINK_SURROGATE_H_
#define SECXML_WORKLOAD_LIVELINK_SURROGATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/accessibility_map.h"
#include "xml/document.h"

namespace secxml {

/// Surrogate for the production OpenText LiveLink dataset of paper
/// Section 5: a corporate content-management tree (departments > teams >
/// nested project folders > documents, average depth ~7.9, max depth <= 19)
/// with group-structured subjects whose rights are granted at subtree
/// granularity and therefore strongly correlated. The real dataset has 8639
/// subjects (users and groups) and ten action modes; those are the defaults.
struct LiveLinkOptions {
  uint32_t target_nodes = 100000;
  uint32_t num_departments = 24;
  uint32_t teams_per_department = 6;
  /// Users; groups are derived (one per department, one per team, plus
  /// company-wide groups), so total subjects = users + groups.
  uint32_t num_users = 8469;
  uint32_t num_modes = 10;
  uint64_t seed = 7;
};

/// The generated workload: the document plus one accessibility map per
/// action mode over the combined subject set (users first, then groups).
struct LiveLinkWorkload {
  Document doc;
  /// modes[m] is the accessibility map for action mode m. Subject ids are
  /// shared across modes.
  std::vector<IntervalAccessMap> modes;
  size_t num_users = 0;
  size_t num_groups = 0;
  size_t num_subjects() const { return num_users + num_groups; }
};

/// Generates the surrogate. Rights model:
///  - every subject may read the company-wide "public" area (mode 0);
///  - a department group's rights cover its department subtree;
///  - a team group's rights cover its team subtree plus the department's
///    shared area;
///  - a user's rights are the union of their groups' rights (paper
///    Section 4 footnote 4) plus their personal folder;
///  - higher action modes (write, delete, ...) are increasingly restrictive
///    subsets (write only within the own team, delete only personal, ...),
///    giving the correlated multi-mode structure of Figure 4(b).
Status GenerateLiveLink(const LiveLinkOptions& options, LiveLinkWorkload* out);

}  // namespace secxml

#endif  // SECXML_WORKLOAD_LIVELINK_SURROGATE_H_
