#include "workload/query_generator.h"

#include "common/rng.h"

namespace secxml {

const char* const kTable1Queries[6] = {
    "/site/regions/africa/item[location][name][quantity]",    // Q1
    "/site/categories/category[name]/description/text/bold",  // Q2
    "/site/categories/category[description/text/bold]/name",  // Q3 (adjusted)
    "//parlist//parlist",                                     // Q4
    "//listitem//keyword",                                    // Q5
    "//item//emph",                                           // Q6
};

namespace {

class Generator {
 public:
  Generator(const Document& doc, const QueryGenOptions& options)
      : doc_(doc), options_(options), rng_(options.seed) {}

  PatternTree Run() {
    PatternTree out;
    NodeId seed = static_cast<NodeId>(rng_.Uniform(doc_.NumNodes()));
    int root = AddNode(&out, -1, /*descendant=*/true, seed);
    Grow(&out, root, seed, options_.max_nodes - 1);
    out.returning_node =
        static_cast<int>(rng_.Uniform(out.nodes.size()));
    return out;
  }

 private:
  int AddNode(PatternTree* out, int parent, bool descendant, NodeId data) {
    PatternNode pn;
    pn.tag = rng_.Bernoulli(options_.wildcard_prob) ? "*"
                                                    : doc_.TagName(data);
    pn.descendant_axis = descendant;
    pn.parent = parent;
    // Value test only when the data node has a value (keeps satisfiability).
    if (doc_.HasValue(data) && rng_.Bernoulli(options_.value_prob)) {
      pn.has_value = true;
      pn.value = std::string(doc_.Value(data));
    }
    int id = static_cast<int>(out->nodes.size());
    out->nodes.push_back(std::move(pn));
    if (parent >= 0) out->nodes[parent].children.push_back(id);
    return id;
  }

  /// Attaches up to `budget` pattern nodes below pattern node `p`, following
  /// real children/descendants of the data node `d`.
  void Grow(PatternTree* out, int p, NodeId d, int budget) {
    while (budget > 0 && doc_.SubtreeSize(d) > 1 && rng_.Bernoulli(0.75)) {
      bool descendant = rng_.Bernoulli(options_.descendant_prob);
      NodeId target;
      if (descendant) {
        // A uniform proper descendant.
        target = d + 1 + static_cast<NodeId>(
                             rng_.Uniform(doc_.SubtreeSize(d) - 1));
      } else {
        // A uniform child.
        std::vector<NodeId> children;
        for (NodeId c = doc_.FirstChild(d); c != kInvalidNode;
             c = doc_.NextSibling(c)) {
          children.push_back(c);
        }
        target = children[rng_.Uniform(children.size())];
      }
      int child = AddNode(out, p, descendant, target);
      --budget;
      // Sometimes deepen under the new branch, sometimes add siblings.
      if (budget > 0 && rng_.Bernoulli(0.5)) {
        int deep = 1 + static_cast<int>(rng_.Uniform(
                           static_cast<uint64_t>(budget)));
        Grow(out, child, target, deep);
        budget -= deep;
      }
    }
  }

  const Document& doc_;
  const QueryGenOptions& options_;
  Rng rng_;
};

}  // namespace

PatternTree GenerateTwigQuery(const Document& doc,
                              const QueryGenOptions& options) {
  Generator gen(doc, options);
  return gen.Run();
}

}  // namespace secxml
