#include "workload/livelink_surrogate.h"

#include <algorithm>
#include <iterator>
#include <string>

#include "common/rng.h"

namespace secxml {

namespace {

/// A contiguous document region (preorder interval) rights are granted on.
struct Region {
  NodeId begin = 0;
  NodeId end = 0;
  NodeInterval AsInterval() const { return {begin, end}; }
};

/// Access class of a project folder.
enum class ProjectKind {
  kTeamOpen,   // the owning team (and its department group)
  kDeptOpen,   // the whole department
  kRestricted  // managers plus a sampled set of users
};

struct Project {
  Region region;
  uint32_t dept = 0;
  uint32_t team = 0;
  ProjectKind kind = ProjectKind::kTeamOpen;
  std::vector<uint32_t> extra_users;  // additional grantees (restricted/cross)
};

/// Which region classes a mode grants. The ten LiveLink action modes (see,
/// read, modify, edit-attributes, checkout, create, delete, reserve,
/// administer, audit) are modeled as increasingly restrictive profiles.
struct ModeProfile {
  bool public_area;
  bool dept_shared;
  bool team_projects;
  bool dept_open_projects;
  bool personal;
  bool managers_whole_tree;
  /// Fraction of users holding this mode at all (rights like delete are not
  /// universal).
  double user_coverage;
};

constexpr ModeProfile kModeProfiles[] = {
    // see
    {true, true, true, true, true, true, 1.0},
    // read
    {true, true, true, true, true, true, 0.97},
    // modify
    {false, true, true, false, true, true, 0.80},
    // edit attributes
    {false, true, true, false, true, true, 0.70},
    // checkout
    {false, false, true, false, true, true, 0.60},
    // create
    {false, true, true, false, true, true, 0.55},
    // delete
    {false, false, false, false, true, true, 0.40},
    // reserve
    {false, true, true, false, false, true, 0.35},
    // administer
    {false, false, false, false, false, true, 0.05},
    // audit
    {false, false, false, true, false, true, 0.15},
};

class Generator {
 public:
  Generator(const LiveLinkOptions& options, LiveLinkWorkload* out)
      : options_(options), rng_(options.seed), out_(out) {}

  Status Run() {
    if (options_.num_departments == 0 || options_.teams_per_department == 0 ||
        options_.num_users == 0) {
      return Status::InvalidArgument("counts must be positive");
    }
    if (options_.num_modes == 0 ||
        options_.num_modes > std::size(kModeProfiles)) {
      return Status::InvalidArgument("num_modes must be in [1, 10]");
    }
    SECXML_RETURN_NOT_OK(BuildTree());
    AssignMemberships();
    BuildMaps();
    return Status::OK();
  }

 private:
  uint32_t NumTeams() const {
    return options_.num_departments * options_.teams_per_department;
  }

  // Subject layout: users [0, U), then groups: all-staff, managers,
  // department groups, team groups.
  uint32_t U() const { return options_.num_users; }
  SubjectId AllStaff() const { return U(); }
  SubjectId Managers() const { return U() + 1; }
  SubjectId DeptGroup(uint32_t d) const { return U() + 2 + d; }
  SubjectId TeamGroup(uint32_t d, uint32_t t) const {
    return U() + 2 + options_.num_departments +
           d * options_.teams_per_department + t;
  }
  size_t NumGroups() const { return 2 + options_.num_departments + NumTeams(); }
  size_t NumSubjects() const { return U() + NumGroups(); }

  Status Leaf(const char* tag) {
    b_.BeginElement(tag);
    return b_.EndElement();
  }

  /// Emits `count` small document leaves.
  Status Documents(int count) {
    for (int i = 0; i < count; ++i) {
      b_.BeginElement("document");
      SECXML_RETURN_NOT_OK(Leaf("version"));
      if (rng_.Bernoulli(0.4)) SECXML_RETURN_NOT_OK(Leaf("attachment"));
      SECXML_RETURN_NOT_OK(b_.EndElement());
    }
    return Status::OK();
  }

  /// Nested folder tree; returns through the builder.
  Status Folders(int budget, int depth) {
    while (budget > 3) {
      b_.BeginElement("folder");
      int take = 2 + static_cast<int>(rng_.Uniform(
                         static_cast<uint64_t>(budget > 8 ? budget / 2 : 4)));
      take = std::min(take, budget - 1);
      // Depth cap 19 overall: root(0) dept(1) team(2) project(3) + folders.
      if (depth < 15 && take > 6 && rng_.Bernoulli(0.45)) {
        SECXML_RETURN_NOT_OK(Folders(take - 1, depth + 1));
      } else {
        SECXML_RETURN_NOT_OK(Documents((take - 1) / 3 + 1));
      }
      SECXML_RETURN_NOT_OK(b_.EndElement());
      budget -= take;
    }
    return Documents(budget / 3);
  }

  Status BuildTree() {
    const uint32_t target = std::max(options_.target_nodes, 200u);
    b_.BeginElement("livelink");

    // Company-wide public area: ~4% of nodes.
    public_region_.begin = b_.BeginElement("public");
    SECXML_RETURN_NOT_OK(Folders(static_cast<int>(target * 0.04), 2));
    SECXML_RETURN_NOT_OK(b_.EndElement());
    public_region_.end = static_cast<NodeId>(b_.NumNodes());

    const uint32_t per_dept =
        (target - (public_region_.end - public_region_.begin)) /
        options_.num_departments;
    dept_regions_.resize(options_.num_departments);
    dept_shared_.resize(options_.num_departments);
    team_misc_.resize(NumTeams());

    uint32_t personal_budget = static_cast<uint32_t>(U() * 0.08) + 1;
    uint32_t personal_made = 0;

    archive_months_.resize(options_.num_departments);
    for (uint32_t d = 0; d < options_.num_departments; ++d) {
      dept_regions_[d].begin = b_.BeginElement("department");
      // Department shared area: ~9% of the department.
      dept_shared_[d].begin = b_.BeginElement("shared");
      SECXML_RETURN_NOT_OK(Folders(static_cast<int>(per_dept * 0.09), 3));
      SECXML_RETURN_NOT_OK(b_.EndElement());
      dept_shared_[d].end = static_cast<NodeId>(b_.NumNodes());

      // Department archive: a time-ordered run of month folders. Users are
      // granted the *most recent* months — a document-order run of sibling
      // subtrees, the kind of grant where DOL's document-order encoding
      // shines against per-subtree CAM labels (Figure 4(b)).
      b_.BeginElement("archive");
      int month_budget =
          std::max(12, static_cast<int>(per_dept * 0.03) / kArchiveMonths);
      for (int mth = 0; mth < kArchiveMonths; ++mth) {
        Region r;
        r.begin = b_.BeginElement("month");
        SECXML_RETURN_NOT_OK(Folders(month_budget - 1, 4));
        SECXML_RETURN_NOT_OK(b_.EndElement());
        r.end = static_cast<NodeId>(b_.NumNodes());
        archive_months_[d].push_back(r);
      }
      SECXML_RETURN_NOT_OK(b_.EndElement());  // archive

      uint32_t per_team =
          static_cast<uint32_t>(per_dept * 0.85) / options_.teams_per_department;
      for (uint32_t t = 0; t < options_.teams_per_department; ++t) {
        uint32_t team_index = d * options_.teams_per_department + t;
        Region& misc = team_misc_[team_index];
        misc.begin = b_.BeginElement("team");
        SECXML_RETURN_NOT_OK(Documents(2));
        // Personal folders for a fraction of this team's members.
        if (personal_made < personal_budget) {
          b_.BeginElement("members");
          uint32_t here = std::min<uint32_t>(
              3, personal_budget - personal_made);
          for (uint32_t k = 0; k < here; ++k) {
            uint32_t user = rng_.Uniform(U());
            Region r;
            r.begin = b_.BeginElement("personal");
            SECXML_RETURN_NOT_OK(Documents(1));
            SECXML_RETURN_NOT_OK(b_.EndElement());
            r.end = static_cast<NodeId>(b_.NumNodes());
            personal_.emplace_back(user, r);
            ++personal_made;
          }
          SECXML_RETURN_NOT_OK(b_.EndElement());
        }
        misc.end = static_cast<NodeId>(b_.NumNodes());

        // Project folders.
        int team_budget = static_cast<int>(per_team) -
                          static_cast<int>(misc.end - misc.begin);
        while (team_budget > 10) {
          Project p;
          p.dept = d;
          p.team = t;
          double kind_draw = rng_.NextDouble();
          p.kind = kind_draw < 0.55   ? ProjectKind::kTeamOpen
                   : kind_draw < 0.80 ? ProjectKind::kDeptOpen
                                      : ProjectKind::kRestricted;
          int take = 10 + static_cast<int>(rng_.Uniform(
                              static_cast<uint64_t>(team_budget / 2 + 1)));
          take = std::min(take, team_budget);
          p.region.begin = b_.BeginElement("project");
          SECXML_RETURN_NOT_OK(Folders(take - 1, 4));
          SECXML_RETURN_NOT_OK(b_.EndElement());
          p.region.end = static_cast<NodeId>(b_.NumNodes());
          if (p.kind == ProjectKind::kRestricted) {
            int grantees = 2 + static_cast<int>(rng_.Uniform(5));
            for (int g = 0; g < grantees; ++g) {
              p.extra_users.push_back(rng_.Uniform(U()));
            }
          } else if (rng_.Bernoulli(0.25)) {
            // Cross-team collaborators.
            int guests = 1 + static_cast<int>(rng_.Uniform(4));
            for (int g = 0; g < guests; ++g) {
              p.extra_users.push_back(rng_.Uniform(U()));
            }
          }
          projects_.push_back(std::move(p));
          team_budget -= take;
        }
        SECXML_RETURN_NOT_OK(b_.EndElement());  // team
      }
      SECXML_RETURN_NOT_OK(b_.EndElement());  // department
      dept_regions_[d].end = static_cast<NodeId>(b_.NumNodes());
    }
    SECXML_RETURN_NOT_OK(b_.EndElement());  // livelink
    return b_.Finish(&out_->doc);
  }

  void AssignMemberships() {
    user_team_.resize(U());
    for (uint32_t u = 0; u < U(); ++u) {
      user_team_[u] = rng_.Uniform(NumTeams());
    }
    user_is_manager_.assign(U(), false);
    for (uint32_t u = 0; u < U(); ++u) {
      user_is_manager_[u] = rng_.Bernoulli(0.02);
    }
    // Per-mode user coverage (deterministic across modes per user via
    // a uniform draw).
    user_level_.resize(U());
    for (uint32_t u = 0; u < U(); ++u) user_level_[u] = rng_.NextDouble();
    // How many recent archive months each user may read.
    user_archive_months_.resize(U());
    for (uint32_t u = 0; u < U(); ++u) {
      user_archive_months_[u] =
          2 + static_cast<uint32_t>(rng_.Uniform(kArchiveMonths - 2));
    }
  }

  void BuildMaps() {
    out_->num_users = U();
    out_->num_groups = NumGroups();
    NodeId n = static_cast<NodeId>(out_->doc.NumNodes());
    NodeInterval whole{0, n};

    // Index projects by team / dept for fast assembly.
    std::vector<std::vector<const Project*>> by_team(NumTeams());
    std::vector<std::vector<const Project*>> dept_open(options_.num_departments);
    std::vector<std::vector<const Project*>> by_extra_user(U());
    for (const Project& p : projects_) {
      uint32_t team_index = p.dept * options_.teams_per_department + p.team;
      if (p.kind != ProjectKind::kRestricted) by_team[team_index].push_back(&p);
      if (p.kind == ProjectKind::kDeptOpen) dept_open[p.dept].push_back(&p);
      for (uint32_t u : p.extra_users) by_extra_user[u].push_back(&p);
    }
    std::vector<std::vector<const Region*>> personal_of(U());
    for (const auto& [u, r] : personal_) personal_of[u].push_back(&r);

    for (uint32_t m = 0; m < options_.num_modes; ++m) {
      const ModeProfile& prof = kModeProfiles[m];
      IntervalAccessMap map(n, NumSubjects());

      auto set_subject = [&map](SubjectId s,
                                std::vector<NodeInterval> intervals) {
        std::vector<const std::vector<NodeInterval>*> one = {&intervals};
        map.SetSubjectIntervals(s, UnionIntervals(one));
      };

      // Group rows.
      {
        std::vector<NodeInterval> staff;
        if (prof.public_area) staff.push_back(public_region_.AsInterval());
        set_subject(AllStaff(), std::move(staff));
        set_subject(Managers(),
                    prof.managers_whole_tree
                        ? std::vector<NodeInterval>{whole}
                        : std::vector<NodeInterval>{});
      }
      for (uint32_t d = 0; d < options_.num_departments; ++d) {
        std::vector<NodeInterval> ivs;
        if (prof.public_area) ivs.push_back(public_region_.AsInterval());
        if (prof.dept_shared) ivs.push_back(dept_shared_[d].AsInterval());
        if (prof.dept_open_projects) {
          for (const Project* p : dept_open[d]) {
            ivs.push_back(p->region.AsInterval());
          }
        }
        if (prof.team_projects && (m == 0 || m == 1)) {
          // In the broad read modes the department umbrella spans all its
          // teams' open projects and misc areas.
          for (uint32_t t = 0; t < options_.teams_per_department; ++t) {
            uint32_t team_index = d * options_.teams_per_department + t;
            ivs.push_back(team_misc_[team_index].AsInterval());
            for (const Project* p : by_team[team_index]) {
              ivs.push_back(p->region.AsInterval());
            }
          }
        }
        set_subject(DeptGroup(d), std::move(ivs));
      }
      for (uint32_t d = 0; d < options_.num_departments; ++d) {
        for (uint32_t t = 0; t < options_.teams_per_department; ++t) {
          uint32_t team_index = d * options_.teams_per_department + t;
          std::vector<NodeInterval> ivs;
          if (prof.public_area) ivs.push_back(public_region_.AsInterval());
          if (prof.dept_shared) ivs.push_back(dept_shared_[d].AsInterval());
          if (prof.team_projects) {
            ivs.push_back(team_misc_[team_index].AsInterval());
            for (const Project* p : by_team[team_index]) {
              if (p->kind == ProjectKind::kTeamOpen ||
                  p->kind == ProjectKind::kDeptOpen) {
                ivs.push_back(p->region.AsInterval());
              }
            }
          }
          set_subject(TeamGroup(d, t), std::move(ivs));
        }
      }

      // User rows: union of their groups plus personal/extra grants.
      for (uint32_t u = 0; u < U(); ++u) {
        if (user_level_[u] >= prof.user_coverage && !user_is_manager_[u]) {
          map.SetSubjectIntervals(u, {});
          continue;
        }
        if (user_is_manager_[u] && prof.managers_whole_tree) {
          map.SetSubjectIntervals(u, {whole});
          continue;
        }
        uint32_t team_index = user_team_[u];
        uint32_t d = team_index / options_.teams_per_department;
        std::vector<NodeInterval> own;
        if (prof.dept_shared) {
          // The user's recent-months archive slice: one contiguous run of
          // sibling month subtrees.
          const std::vector<Region>& months = archive_months_[d];
          uint32_t k = std::min<uint32_t>(user_archive_months_[u],
                                          static_cast<uint32_t>(months.size()));
          if (k > 0) {
            own.push_back({months[months.size() - k].begin,
                           months.back().end});
          }
        }
        if (prof.personal) {
          for (const Region* r : personal_of[u]) own.push_back(r->AsInterval());
        }
        if (prof.team_projects || prof.dept_open_projects) {
          for (const Project* p : by_extra_user[u]) {
            // Guests and restricted-project grantees see the leading part
            // of the project (its main folders), not necessarily the whole
            // subtree — real LiveLink rights are fragmented like this,
            // which is what keeps single-user DOL and CAM sizes close
            // (Figure 4(b)).
            NodeId len = p->region.end - p->region.begin;
            NodeId cut = p->region.begin + len - len / 3;
            own.push_back({p->region.begin, cut});
          }
        }
        std::vector<const std::vector<NodeInterval>*> lists = {
            &map.SubjectIntervals(AllStaff()),
            &map.SubjectIntervals(DeptGroup(d)),
            &map.SubjectIntervals(
                TeamGroup(d, team_index % options_.teams_per_department)),
            &own};
        map.SetSubjectIntervals(u, UnionIntervals(lists));
      }
      out_->modes.push_back(std::move(map));
    }
  }

  const LiveLinkOptions& options_;
  Rng rng_;
  LiveLinkWorkload* out_;
  DocumentBuilder b_;

  static constexpr int kArchiveMonths = 10;

  Region public_region_;
  std::vector<std::vector<Region>> archive_months_;  // [dept][month]
  std::vector<uint32_t> user_archive_months_;
  std::vector<Region> dept_regions_;
  std::vector<Region> dept_shared_;
  std::vector<Region> team_misc_;
  std::vector<Project> projects_;
  std::vector<std::pair<uint32_t, Region>> personal_;
  std::vector<uint32_t> user_team_;
  std::vector<bool> user_is_manager_;
  std::vector<double> user_level_;
};

}  // namespace

Status GenerateLiveLink(const LiveLinkOptions& options,
                        LiveLinkWorkload* out) {
  out->modes.clear();
  Generator gen(options, out);
  return gen.Run();
}

}  // namespace secxml
