#include "serve/shard_coordinator.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>
#include <unordered_map>

#include "common/timer.h"
#include "query/batch_matcher.h"
#include "query/matcher.h"

namespace secxml {

namespace {

/// Batch accounting, identical convention to BatchEvaluator's: shared work
/// lands on the evaluation that performed it, keeping the rollup-sum
/// identity over classes exact.
ExecStats BatchCounters(size_t subjects, size_t classes) {
  ExecStats s;
  s.subjects_batched = subjects;
  s.classes_evaluated = classes;
  s.class_dedup_hits = subjects - classes;
  return s;
}

}  // namespace

EvalOptions ShardCoordinator::MakeEvalOptions(SubjectId subject) const {
  EvalOptions o;
  o.semantics = options_.semantics;
  o.subject = subject;
  o.page_skip = options_.page_skip;
  o.use_view = options_.use_view;
  o.ordered_siblings = options_.ordered_siblings;
  o.batch_chunk_classes = options_.batch_chunk_classes;
  return o;
}

void ShardCoordinator::RunOnShards(const std::function<void(size_t)>& fn) {
  const size_t n = store_->num_shards();
  const size_t workers = std::clamp<size_t>(scatter_width(), 1, n);
  if (workers == 1) {
    for (size_t s = 0; s < n; ++s) fn(s);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      size_t s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= n) break;
      fn(s);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t t = 0; t < workers; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
}

ShardCoordinator::ShardScan ShardCoordinator::ScanShard(
    size_t s, const PreparedQuery& pq, SubjectId subject) {
  ShardScan out;
  Timer timer;
  SecureStore* store = store_->shard_store(s);
  const ShardRange& range = store_->shard_map().range(s);
  const size_t nf = pq.query.fragments.size();
  out.matches.resize(nf);

  // The worker's own pin; the coordinator's fence guarantees it lands on
  // the same epoch as every other shard's.
  SecureStore::SnapshotPin pin(store);
  out.scan.epoch_pins = 1;
  if (!range.empty()) {
    NokMatcher::Options mo;
    mo.secure = options_.semantics != AccessSemantics::kNone;
    mo.subject = subject;
    mo.page_skip = options_.page_skip;
    mo.use_view = options_.use_view;
    mo.ordered_siblings = options_.ordered_siblings;
    mo.candidate_begin = range.first_node;
    mo.candidate_end = range.end_node;
    NokMatcher matcher(store, mo);
    for (size_t f = 0; f < nf; ++f) {
      Status st = matcher.MatchFragment(pq.query.fragments[f],
                                        pq.designated[f], &out.matches[f]);
      if (!st.ok()) {
        out.status = st;
        out.micros = timer.ElapsedMicros();
        return out;
      }
    }
    out.scan += matcher.exec_stats();
  }
  out.micros = timer.ElapsedMicros();
  return out;
}

Status ShardCoordinator::GatherMatches(
    const std::vector<ShardScan>& scans,
    std::vector<std::vector<FragmentMatch>>* matches, ExecStats* merge,
    size_t* fragment_matches) {
  merge->shards_scattered += scans.size();
  const size_t nf = matches->size();
  for (size_t f = 0; f < nf; ++f) {
    std::vector<FragmentMatch>& out = (*matches)[f];
    bool first = true;
    NodeId last_root = 0;
    for (const ShardScan& scan : scans) {
      for (const FragmentMatch& m : scan.matches[f]) {
        // Shard ranges ascend in document order, so concatenation is the
        // merge; each comparison proves it.
        ++merge->merge_comparisons;
        if (!first && m.root < last_root) {
          return Status::Corruption(
              "per-shard match streams out of document order");
        }
        last_root = m.root;
        first = false;
        out.push_back(m);
      }
    }
    *fragment_matches += out.size();
  }
  return Status::OK();
}

Result<EvalResult> ShardCoordinator::EvaluatePinned(const PreparedQuery& pq,
                                                    SubjectId subject) {
  const size_t nf = pq.query.fragments.size();
  const size_t n = store_->num_shards();

  std::vector<ShardScan> scans(n);
  RunOnShards([&](size_t s) { scans[s] = ScanShard(s, pq, subject); });
  for (const ShardScan& scan : scans) {
    SECXML_RETURN_NOT_OK(scan.status);
  }

  EvalResult result;
  std::vector<std::vector<FragmentMatch>> matches(nf);
  ExecStats merge_stats;
  SECXML_RETURN_NOT_OK(GatherMatches(scans, &matches, &merge_stats,
                                     &result.fragment_matches));

  for (const ShardScan& scan : scans) {
    result.operators.push_back({"scan", scan.scan});
  }
  result.operators.push_back({"merge", merge_stats});

  // Visibility filtering runs ONCE on the merged streams (the verdict is
  // per match root, so filtering after the merge equals filtering each
  // stream), with the hidden intervals computed on — and cached by — a
  // single replica rather than every shard.
  if (options_.semantics == AccessSemantics::kView) {
    ExecStats vis_stats;
    SECXML_ASSIGN_OR_RETURN(
        std::vector<NodeInterval> hidden,
        store_->shard_store(0)->HiddenSubtreeIntervals(subject, &vis_stats));
    FilterMatchesVisible(hidden, &matches, &vis_stats);
    result.operators.push_back({"visibility", vis_stats});
  }

  ExecStats join_stats;
  JoinMatches(pq, matches, &result.answers, &join_stats);
  result.operators.push_back({"join", join_stats});
  result.exec = RollUp(result.operators);
  return result;
}

Result<EvalResult> ShardCoordinator::EvaluateCachedPinned(
    const ShardedStore::Pin& pin, const PatternTree& pattern,
    SubjectId subject) {
  cache::ResultCache* rcache = options_.caches.ResultsEnabled();
  QueryPlanCache* pcache = options_.caches.plans;
  std::string normalized;
  if (rcache != nullptr || pcache != nullptr) {
    normalized = NormalizePattern(pattern);
  }
  SECXML_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> plan,
                          ResolvePlan(pattern, normalized, pcache));
  if (rcache == nullptr) return EvaluatePinned(*plan, subject);

  // The probe runs at the coordinator against shard 0 (the conventional
  // witness: replicas share one codebook state and publish epochs in
  // lockstep). A hit skips the entire scatter.
  SecureStore* store0 = store_->shard_store(0);
  ColumnFingerprint fp;  // {0,0} when the answer is subject-independent
  if (options_.semantics != AccessSemantics::kNone) {
    fp = store0->SubjectColumnFingerprint(subject);
  }
  cache::ResultKey key = MakeResultKey(normalized, fp, options_.semantics,
                                       options_.ordered_siblings);
  cache::ResultCache::Probe probe = rcache->GetOrWait(key, pin.epoch());
  if (probe.outcome == cache::ResultCache::ProbeOutcome::kHit) {
    return MakeCachedResult(probe.payload, probe.waits);
  }
  FlightGuard flight(rcache, key);
  Result<EvalResult> r = EvaluatePinned(*plan, subject);
  if (!r.ok()) return r;  // the guard abandons the flight

  cache::ResultCache::Entry entry;
  entry.payload = MakeCachePayload(*r);
  entry.epoch = pin.epoch();
  QueryFootprint(store0, *plan, options_.semantics, &entry.begin, &entry.end,
                 &entry.acl_independent);
  const bool admitted = flight.Publish(std::move(entry));

  ExecStats cache_stats;
  cache_stats.result_cache_misses = 1;
  cache_stats.single_flight_waits = probe.waits;
  if (!admitted) cache_stats.result_cache_invalidations = 1;
  r->operators.push_back({"cache", cache_stats});
  r->exec = RollUp(r->operators);
  return r;
}

Result<EvalResult> ShardCoordinator::Evaluate(const PatternTree& pattern,
                                              SubjectId subject) {
  ShardedStore::Pin pin(store_);
  return EvaluateCachedPinned(pin, pattern, subject);
}

BatchResult ShardCoordinator::Run(const std::vector<QueryJob>& jobs) {
  BatchResult batch;
  batch.outcomes.resize(jobs.size());
  if (jobs.empty()) return batch;

  ShardedStore::Pin pin(store_);
  IoStatsSnapshot before = store_->io_snapshot();
  const size_t n = store_->num_shards();

  cache::ResultCache* rcache = options_.caches.ResultsEnabled();
  QueryPlanCache* pcache = options_.caches.plans;
  SecureStore* store0 = store_->shard_store(0);

  // Plans are resolved once per job up front (through the plan cache when
  // attached); a job that fails to prepare fails alone and its scatter
  // never runs.
  std::vector<std::shared_ptr<const PreparedQuery>> plans(jobs.size());
  std::vector<std::string> normalized(jobs.size());
  std::vector<char> prepared(jobs.size(), 0);
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (rcache != nullptr || pcache != nullptr) {
      normalized[j] = NormalizePattern(jobs[j].pattern);
    }
    Result<std::shared_ptr<const PreparedQuery>> plan =
        ResolvePlan(jobs[j].pattern, normalized[j], pcache);
    if (plan.ok()) {
      plans[j] = std::move(*plan);
      prepared[j] = 1;
    } else {
      batch.outcomes[j].status = plan.status();
    }
  }

  // Coordinator-level cache probes before ANY scatter: a served job's shard
  // tasks never run at all. Non-blocking — a job whose key is in flight on
  // another coordinator scatters normally rather than waiting with work
  // queued behind it.
  std::vector<char> served(jobs.size(), 0);
  std::vector<cache::ResultKey> keys(jobs.size());
  std::deque<FlightGuard> flights;
  std::vector<FlightGuard*> flight_of(jobs.size(), nullptr);
  if (rcache != nullptr) {
    for (size_t j = 0; j < jobs.size(); ++j) {
      if (!prepared[j]) continue;
      Timer probe_timer;
      ColumnFingerprint fp;
      if (options_.semantics != AccessSemantics::kNone) {
        fp = store0->SubjectColumnFingerprint(jobs[j].subject);
      }
      keys[j] = MakeResultKey(normalized[j], fp, options_.semantics,
                              options_.ordered_siblings);
      cache::ResultCache::Probe probe = rcache->Get(keys[j], pin.epoch());
      if (probe.outcome == cache::ResultCache::ProbeOutcome::kHit) {
        batch.outcomes[j].result = MakeCachedResult(probe.payload, 0);
        batch.outcomes[j].latency_micros = probe_timer.ElapsedMicros();
        served[j] = 1;
      } else if (probe.outcome ==
                 cache::ResultCache::ProbeOutcome::kMissLead) {
        flights.emplace_back(rcache, keys[j]);
        flight_of[j] = &flights.back();
      }
    }
  }

  // Every (job, shard) scan is one pool task, handed out through an atomic
  // cursor exactly like QueryDriver's worker pool, so long and short scans
  // balance across workers and one job's shards overlap.
  std::vector<std::vector<ShardScan>> scans(jobs.size());
  for (auto& per_job : scans) per_job.resize(n);
  const size_t tasks = jobs.size() * n;
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks) break;
      const size_t j = t / n;
      const size_t s = t % n;
      if (!prepared[j] || served[j]) continue;
      scans[j][s] = ScanShard(s, *plans[j], jobs[j].subject);
    }
  };
  const size_t workers = std::clamp<size_t>(scatter_width(), 1, tasks);
  Timer wall;
  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t t = 0; t < workers; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  // Gather + join per job on the coordinator thread. One shard's failure
  // (e.g. an injected kIOError) fails only the jobs whose scatter touched
  // it; everything else completes and aggregates normally.
  for (size_t j = 0; j < jobs.size(); ++j) {
    QueryOutcome& out = batch.outcomes[j];
    if (!prepared[j] || served[j]) continue;
    int64_t scatter_micros = 0;
    Status failed = Status::OK();
    for (const ShardScan& scan : scans[j]) {
      scatter_micros = std::max(scatter_micros, scan.micros);
      if (failed.ok() && !scan.status.ok()) failed = scan.status;
    }
    Timer finalize;
    if (!failed.ok()) {
      out.status = failed;
      out.latency_micros = scatter_micros;
      continue;
    }
    EvalResult result;
    const size_t nf = plans[j]->query.fragments.size();
    std::vector<std::vector<FragmentMatch>> matches(nf);
    ExecStats merge_stats;
    Status gathered = GatherMatches(scans[j], &matches, &merge_stats,
                                    &result.fragment_matches);
    if (!gathered.ok()) {
      out.status = gathered;
      out.latency_micros = scatter_micros + finalize.ElapsedMicros();
      continue;
    }
    for (const ShardScan& scan : scans[j]) {
      result.operators.push_back({"scan", scan.scan});
    }
    result.operators.push_back({"merge", merge_stats});
    if (options_.semantics == AccessSemantics::kView) {
      ExecStats vis_stats;
      Result<std::vector<NodeInterval>> hidden =
          store_->shard_store(0)->HiddenSubtreeIntervals(jobs[j].subject,
                                                         &vis_stats);
      if (!hidden.ok()) {
        out.status = hidden.status();
        out.latency_micros = scatter_micros + finalize.ElapsedMicros();
        continue;
      }
      FilterMatchesVisible(*hidden, &matches, &vis_stats);
      result.operators.push_back({"visibility", vis_stats});
    }
    ExecStats join_stats;
    JoinMatches(*plans[j], matches, &result.answers, &join_stats);
    result.operators.push_back({"join", join_stats});
    result.exec = RollUp(result.operators);
    if (rcache != nullptr) {
      cache::ResultCache::Entry entry;
      entry.payload = MakeCachePayload(result);
      entry.epoch = pin.epoch();
      QueryFootprint(store0, *plans[j], options_.semantics, &entry.begin,
                     &entry.end, &entry.acl_independent);
      const bool admitted = flight_of[j] != nullptr
                                ? flight_of[j]->Publish(std::move(entry))
                                : rcache->Publish(keys[j], std::move(entry));
      ExecStats cache_stats;
      cache_stats.result_cache_misses = 1;
      if (!admitted) cache_stats.result_cache_invalidations = 1;
      result.operators.push_back({"cache", cache_stats});
      result.exec = RollUp(result.operators);
    }
    out.result = std::move(result);
    // Latency is the job's critical path: its slowest shard scan plus the
    // coordinator's merge+join (scans of one job run concurrently).
    out.latency_micros = scatter_micros + finalize.ElapsedMicros();
  }

  batch.stats.wall_micros = wall.ElapsedMicros();
  batch.stats.io = store_->io_snapshot() - before;
  AggregateBatchStats(&batch);
  return batch;
}

Result<SubjectBatchResult> ShardCoordinator::EvaluateForSubjects(
    const PatternTree& pattern, std::span<const SubjectId> subjects) {
  if (subjects.empty()) {
    return Status::InvalidArgument("batch evaluation needs subjects");
  }
  ShardedStore::Pin pin(store_);
  SubjectBatchResult batch;
  const EvalOptions options = MakeEvalOptions(0);

  // Without access control every subject sees the whole document: one
  // class, answered by the (sharded) per-subject path — the same collapse
  // BatchEvaluator performs.
  if (options_.semantics == AccessSemantics::kNone) {
    SECXML_ASSIGN_OR_RETURN(EvalResult r,
                            EvaluateCachedPinned(pin, pattern, 0));
    r.operators.push_back({"batch", BatchCounters(subjects.size(), 1)});
    r.exec = RollUp(r.operators);
    ClassEvalResult cls;
    cls.subjects.assign(subjects.begin(), subjects.end());
    cls.result = std::move(r);
    batch.classes.push_back(std::move(cls));
    batch.class_of.assign(subjects.size(), 0);
    batch.exec = batch.classes[0].result.exec;
    return batch;
  }

  // Class routing runs ONCE at the coordinator: every replica holds the
  // same codebook state, so shard 0 groups for the whole fleet.
  std::vector<SubjectId> subject_list(subjects.begin(), subjects.end());
  std::vector<SubjectClass> groups =
      store_->shard_store(0)->GroupSubjects(subject_list);
  std::unordered_map<SubjectId, size_t> class_index;
  for (size_t k = 0; k < groups.size(); ++k) {
    for (SubjectId s : groups[k].members) class_index.emplace(s, k);
  }
  batch.class_of.reserve(subjects.size());
  for (SubjectId s : subjects) batch.class_of.push_back(class_index.at(s));

  cache::ResultCache* rcache = options_.caches.ResultsEnabled();
  QueryPlanCache* pcache = options_.caches.plans;
  std::string normalized;
  if (rcache != nullptr || pcache != nullptr) {
    normalized = NormalizePattern(pattern);
  }
  SECXML_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> plan,
                          ResolvePlan(pattern, normalized, pcache));
  const PreparedQuery& pq = *plan;
  const size_t nf = pq.query.fragments.size();
  batch.classes.resize(groups.size());

  // Per-class probes at the coordinator, exactly BatchEvaluator's protocol:
  // non-blocking (an in-flight class scatters live), served classes never
  // reach any shard.
  std::vector<cache::ResultKey> keys(groups.size());
  std::deque<FlightGuard> flights;
  std::vector<FlightGuard*> flight_of(groups.size(), nullptr);
  std::vector<size_t> miss;
  miss.reserve(groups.size());
  for (size_t k = 0; k < groups.size(); ++k) {
    if (rcache == nullptr) {
      miss.push_back(k);
      continue;
    }
    keys[k] = MakeResultKey(normalized, groups[k].fingerprint,
                            options_.semantics, options_.ordered_siblings);
    cache::ResultCache::Probe probe = rcache->Get(keys[k], pin.epoch());
    if (probe.outcome == cache::ResultCache::ProbeOutcome::kHit) {
      ClassEvalResult& cls = batch.classes[k];
      cls.subjects = groups[k].members;
      cls.result = MakeCachedResult(probe.payload, 0);
      // The batch's one coordinator pin is attributed once (below).
      cls.result.operators.back().stats.epoch_pins = 0;
      cls.result.exec = RollUp(cls.result.operators);
      continue;
    }
    if (probe.outcome == cache::ResultCache::ProbeOutcome::kMissLead) {
      flights.emplace_back(rcache, keys[k]);
      flight_of[k] = &flights.back();
    }
    miss.push_back(k);
  }

  // One footprint covers every class published below (it depends only on
  // the plan and semantics).
  uint64_t fp_begin = 0, fp_end = 0;
  bool acl_independent = false;
  if (rcache != nullptr && !miss.empty()) {
    QueryFootprint(store_->shard_store(0), pq, options_.semantics, &fp_begin,
                   &fp_end, &acl_independent);
  }

  const size_t chunk_cap =
      options.batch_chunk_classes == 0
          ? kMaxBatchClasses
          : std::min(options.batch_chunk_classes, kMaxBatchClasses);
  for (size_t chunk_begin = 0; chunk_begin < miss.size();
       chunk_begin += chunk_cap) {
    const size_t chunk_end = std::min(miss.size(), chunk_begin + chunk_cap);
    const size_t width = chunk_end - chunk_begin;
    std::vector<SubjectId> reps;
    reps.reserve(width);
    size_t chunk_subjects = 0;
    for (size_t j = chunk_begin; j < chunk_end; ++j) {
      reps.push_back(groups[miss[j]].representative());
      chunk_subjects += groups[miss[j]].members.size();
    }

    // Scatter the chunk's one structural scan: each shard's multi-subject
    // cursor walks only its owned candidate window.
    struct BatchShardScan {
      Status status = Status::OK();
      std::vector<std::vector<BatchFragmentMatch>> matches;
      ExecStats scan;
    };
    const size_t n = store_->num_shards();
    std::vector<BatchShardScan> scans(n);
    RunOnShards([&](size_t s) {
      BatchShardScan& out = scans[s];
      out.matches.resize(nf);
      SecureStore* store = store_->shard_store(s);
      const ShardRange& range = store_->shard_map().range(s);
      SecureStore::SnapshotPin shard_pin(store);
      out.scan.epoch_pins = 1;
      if (range.empty()) return;
      MultiSubjectMatcher::Options mo;
      mo.page_skip = options_.page_skip;
      mo.ordered_siblings = options_.ordered_siblings;
      mo.candidate_begin = range.first_node;
      mo.candidate_end = range.end_node;
      MultiSubjectMatcher matcher(store, reps, mo);
      for (size_t f = 0; f < nf; ++f) {
        Status st = matcher.MatchFragment(pq.query.fragments[f],
                                          pq.designated[f], &out.matches[f]);
        if (!st.ok()) {
          out.status = st;
          return;
        }
      }
      out.scan += matcher.exec_stats();
    });
    for (const BatchShardScan& scan : scans) {
      SECXML_RETURN_NOT_OK(scan.status);
    }

    // Document-order merge of the per-shard batch streams (concatenation,
    // verified root by root — same contract as GatherMatches).
    std::vector<std::vector<BatchFragmentMatch>> bmatches(nf);
    ExecStats merge_stats;
    merge_stats.shards_scattered = n;
    for (size_t f = 0; f < nf; ++f) {
      bool first = true;
      NodeId last_root = 0;
      for (const BatchShardScan& scan : scans) {
        for (const BatchFragmentMatch& m : scan.matches[f]) {
          ++merge_stats.merge_comparisons;
          if (!first && m.root < last_root) {
            return Status::Corruption(
                "per-shard batch match streams out of document order");
          }
          last_root = m.root;
          first = false;
          bmatches[f].push_back(m);
        }
      }
    }

    // Per-class finalize at the coordinator, mirroring BatchEvaluator: the
    // chunk's shared scatter (per-shard scans + the merge) is attributed to
    // its first class, every class runs the shared FinalizeClassEval.
    for (size_t j = chunk_begin; j < chunk_end; ++j) {
      const size_t k = miss[j];
      ClassEvalResult& cls = batch.classes[k];
      cls.subjects = groups[k].members;
      EvalResult& r = cls.result;

      std::vector<std::vector<FragmentMatch>> matches(nf);
      for (size_t f = 0; f < nf; ++f) {
        matches[f] = ProjectClassMatches(bmatches[f], j - chunk_begin);
        r.fragment_matches += matches[f].size();
      }

      if (j == chunk_begin) {
        for (const BatchShardScan& scan : scans) {
          r.operators.push_back({"scan", scan.scan});
        }
        r.operators.push_back({"merge", merge_stats});
      } else {
        r.operators.push_back({"scan", ExecStats()});
      }

      SECXML_RETURN_NOT_OK(FinalizeClassEval(store_->shard_store(0), pq,
                                             options,
                                             groups[k].representative(),
                                             &matches, &r));
      if (j == chunk_begin) {
        ExecStats bc = BatchCounters(chunk_subjects, width);
        // The batch's single coordinator pin, attributed to the very first
        // chunk (the per-shard worker pins live in the scan operators).
        if (chunk_begin == 0) bc.epoch_pins = 1;
        r.operators.push_back({"batch", bc});
      }

      if (rcache != nullptr) {
        r.exec = RollUp(r.operators);
        cache::ResultCache::Entry entry;
        entry.payload = MakeCachePayload(r);
        entry.epoch = pin.epoch();
        entry.begin = fp_begin;
        entry.end = fp_end;
        entry.acl_independent = acl_independent;
        const bool admitted = flight_of[k] != nullptr
                                  ? flight_of[k]->Publish(std::move(entry))
                                  : rcache->Publish(keys[k], std::move(entry));
        ExecStats cache_stats;
        cache_stats.result_cache_misses = 1;
        if (!admitted) cache_stats.result_cache_invalidations = 1;
        r.operators.push_back({"cache", cache_stats});
      }
      r.exec = RollUp(r.operators);
    }
  }

  // All classes served from cache: the batch's one coordinator pin still
  // needs a home for the rollup identity — the first class's cache op.
  if (miss.empty() && !batch.classes.empty()) {
    EvalResult& r0 = batch.classes[0].result;
    r0.operators.back().stats.epoch_pins = 1;
    r0.exec = RollUp(r0.operators);
  }

  for (const ClassEvalResult& cls : batch.classes) {
    batch.exec += cls.result.exec;
  }
  return batch;
}

}  // namespace secxml
