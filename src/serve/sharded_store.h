#ifndef SECXML_SERVE_SHARDED_STORE_H_
#define SECXML_SERVE_SHARDED_STORE_H_

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/secure_store.h"
#include "serve/store_shard.h"
#include "storage/shard_map.h"

namespace secxml {

/// Hands out the backing files for shard `shard` (called once per shard at
/// Build/Open). The provider keeps the files alive for the store's
/// lifetime; ShardFileSet below is the canonical owner for tests/benches.
using ShardFileProvider = std::function<Result<ShardFiles>(size_t shard)>;

struct ShardedStoreOptions {
  size_t num_shards = 4;
  /// Per-shard NokStore settings (each shard gets its own buffer pool of
  /// nok.buffer_pool_pages pages, its own readahead, etc.).
  NokStoreOptions nok;
  /// Attach one WAL per shard. Required for Open() (crash recovery) and
  /// for replication-through-the-log; without WALs every update is applied
  /// to each replica directly (deterministic, so replicas still agree) and
  /// the store is memory-only.
  bool attach_wal = true;
};

/// Owns one MemPagedFile pair per shard, optionally wrapped in a
/// LatencyPagedFile that charges device read latency per physical page read
/// (the shard-sweep bench overlaps these delays across shards). The set
/// must outlive the ShardedStore built on it. File naming on disk
/// deployments is the provider's business; the convention is
/// "<base>.shard<k>.dat" / "<base>.shard<k>.wal".
class ShardFileSet {
 public:
  explicit ShardFileSet(size_t num_shards,
                        std::chrono::microseconds read_latency =
                            std::chrono::microseconds(0));

  /// A provider serving this set's files. Valid while the set lives.
  ShardFileProvider provider();

  /// The raw (undecorated) data file of shard `shard`, for tests that wrap
  /// or corrupt it.
  MemPagedFile* data(size_t shard) { return data_[shard].get(); }
  MemPagedFile* wal(size_t shard) { return wal_[shard].get(); }

 private:
  std::vector<std::unique_ptr<MemPagedFile>> data_;
  std::vector<std::unique_ptr<MemPagedFile>> wal_;
  std::vector<std::unique_ptr<LatencyPagedFile>> delayed_;
};

/// N full SecureStore replicas under one update fence, presenting the
/// single-store update/durability surface while the ShardCoordinator
/// (shard_coordinator.h) partitions query work across them (DESIGN.md §13).
///
/// Update protocol — one global LSN order across N logs:
///  1. every mutator takes the write side of the fence (no query scatter in
///     flight, no pin straddles the publish);
///  2. the owning shard — ShardMap::ShardOfNode of the update's target for
///     page-touching updates, shard 0 for codebook-wide/structural-global
///     ones — has its WAL aligned to the global next LSN and executes the
///     mutator normally (WAL-first, fail-closed);
///  3. the freshly appended record is read back and re-executed on every
///     peer via SecureStore::ApplyReplicated, so each replica publishes an
///     identical snapshot at the same LSN. A peer that fails to apply
///     poisons the store (every later call fails Corruption) rather than
///     serving divergent replicas.
/// Readers (queries) take the fence shared, so the epoch publish is atomic
/// across all shards: a query observes either no shard or every shard past
/// an update.
///
/// Durability — two-phase checkpoint: Checkpoint() Persist()s EVERY shard
/// before truncating ANY log, because a record lives only in its owner's
/// log but all N replicas need it until their own checkpoints cover it.
/// Open() restores each shard's checkpoint without replaying, merges all
/// shard logs into one LSN-ordered stream, and applies each record to every
/// shard whose applied LSN it exceeds — all shards land on one LSN (the
/// recovery consistency witness) no matter where the crash fell.
class ShardedStore {
 public:
  /// Builds `num_shards` identical replicas of the document (each sealed
  /// with its own initial checkpoint when WALs are attached).
  static Status Build(const Document& doc, const DolLabeling& labeling,
                      const ShardedStoreOptions& options,
                      const ShardFileProvider& files,
                      std::unique_ptr<ShardedStore>* out);

  struct RecoveryStats {
    uint64_t records_in_logs = 0;  ///< surviving records across all logs
    uint64_t records_applied = 0;  ///< (record, shard) applications replayed
    uint64_t recovered_lsn = 0;    ///< the common LSN all shards landed on
  };

  /// Crash-recovering open; requires attach_wal. See the class comment for
  /// the cross-shard replay order.
  static Status Open(const ShardedStoreOptions& options,
                     const ShardFileProvider& files,
                     std::unique_ptr<ShardedStore>* out,
                     RecoveryStats* recovery = nullptr);

  /// Cross-shard read fence + per-shard snapshot pins for the calling
  /// thread. While alive, no update can commit on any shard, so scatter
  /// workers pinning individual shards from their own threads all adopt the
  /// same logical snapshot. One Pin per query or batch (the coordinator
  /// takes it).
  class Pin {
   public:
    explicit Pin(ShardedStore* store);
    ~Pin();
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    /// The pinned epoch on shard `shard`. The fence makes it equal across
    /// shards; shard 0 is the conventional witness (cache probes validate
    /// against it).
    EpochManager::Epoch epoch(size_t shard = 0) const {
      return pins_[shard]->epoch();
    }

   private:
    std::shared_lock<std::shared_mutex> fence_;
    std::vector<std::unique_ptr<SecureStore::SnapshotPin>> pins_;
  };

  size_t num_shards() const { return shards_.size(); }
  StoreShard* shard(size_t s) { return shards_[s].get(); }
  SecureStore* shard_store(size_t s) { return shards_[s]->store(); }
  const ShardMap& shard_map() const { return map_; }

  /// The LSN every replica has applied (equal across shards by the update
  /// protocol; asserted after every mutator).
  uint64_t applied_lsn() const { return shards_[0]->store()->applied_lsn(); }

  NodeId num_nodes() const { return shards_[0]->store()->num_nodes(); }

  // --- Updates (single-store surface, replicated across shards) ---------

  Status SetNodeAccess(NodeId node, SubjectId subject, bool accessible) {
    return SetRangeAccess(node, node + 1, subject, accessible);
  }
  Status SetSubtreeAccess(NodeId root, SubjectId subject, bool accessible);
  Status SetRangeAccess(NodeId begin, NodeId end, SubjectId subject,
                        bool accessible);
  Status DeleteSubtree(NodeId root);
  Result<NodeId> InsertSubtree(NodeId parent, NodeId after,
                               const Document& fragment,
                               const DolLabeling& fragment_labeling);
  Result<SubjectId> AddSubject(bool default_access);
  Result<SubjectId> AddSubjectLike(SubjectId like);
  Status RemoveSubject(SubjectId subject);
  Status CompactCodebook();
  Status Vacuum(const SecureStore::VacuumOptions& options,
                SecureStore::VacuumStats* stats = nullptr);

  /// Persists every shard's snapshot (phase one of Checkpoint, exposed so
  /// tests can pin the two-phase crash windows).
  Status Persist();
  /// Two-phase checkpoint: Persist() all shards, then truncate all logs.
  Status Checkpoint();

  /// Drops every shard's visibility caches (cold-start measurement).
  void DropVisibilityCaches();

  /// Sum of every shard's buffer-pool traffic.
  IoStatsSnapshot io_snapshot() const;

 private:
  explicit ShardedStore(const ShardedStoreOptions& options)
      : options_(options) {}

  /// Runs one mutator under the write fence: executes `fn` on the owner
  /// (which logs it), replicates the logged record to every peer (or, with
  /// no logs attached, re-runs `fn` on every peer), then recomputes the
  /// shard map. `fn` must be deterministic.
  Status Replicate(size_t owner,
                   const std::function<Status(SecureStore*)>& fn);

  /// Marks the store permanently failed (replica divergence) and returns
  /// a Corruption status chaining `cause`'s message.
  Status Poison(const Status& cause);

  /// Recomputes map_ and each shard's owned() range from shard 0's page
  /// directory (all replicas are identical). Caller holds the write fence
  /// (or is still single-threaded in Build/Open).
  void RefreshShardMapLocked();

  ShardedStoreOptions options_;
  std::vector<std::unique_ptr<StoreShard>> shards_;
  ShardMap map_;

  /// The cross-shard update fence: mutators exclusive, query pins shared.
  mutable std::shared_mutex fence_;
  /// Next global LSN (meaningful only with WALs attached).
  uint64_t next_lsn_ = 1;
  bool poisoned_ = false;
};

}  // namespace secxml

#endif  // SECXML_SERVE_SHARDED_STORE_H_
