#ifndef SECXML_SERVE_STORE_SHARD_H_
#define SECXML_SERVE_STORE_SHARD_H_

#include <cstddef>
#include <memory>

#include "core/secure_store.h"
#include "storage/paged_file.h"
#include "storage/shard_map.h"

namespace secxml {

/// The backing files of one shard. Non-owning, matching SecureStore's file
/// convention: the provider that hands these out (tests, benches, or a
/// ShardFileSet) keeps them alive for the shard's lifetime. `wal` is null
/// when the sharded store runs without logs.
struct ShardFiles {
  PagedFile* data = nullptr;
  PagedFile* wal = nullptr;
};

/// One shard of a ShardedStore (DESIGN.md §13): a full SecureStore replica
/// of the document plus the contiguous document-order slice of the page
/// space this shard OWNS for evaluation. Replication keeps every replica's
/// logical state identical — what is partitioned is *work*, not data: the
/// coordinator scatters only the fragment-match candidates in a shard's
/// owned node range to it, and because the walk below a candidate may cross
/// the range boundary, the replica's full structure is exactly what makes
/// boundary-spanning matches come out whole from a single shard.
///
/// Each shard owns its own NokStore, BufferPool, page directory, WAL, and
/// codebook copy (whose lazily materialized per-code mask tables stay small:
/// a shard only materializes codes its owned range touches). Only src/serve
/// may traverse StoreShards (enforced by scripts/check_no_direct_fetch.sh);
/// everything else goes through ShardedStore / ShardCoordinator.
class StoreShard {
 public:
  StoreShard(size_t index, ShardFiles files,
             std::unique_ptr<SecureStore> store)
      : index_(index), files_(files), store_(std::move(store)) {}

  StoreShard(const StoreShard&) = delete;
  StoreShard& operator=(const StoreShard&) = delete;

  size_t index() const { return index_; }
  SecureStore* store() { return store_.get(); }
  const SecureStore* store() const { return store_.get(); }

  /// The page/node slice this shard owns for candidate evaluation,
  /// refreshed by the coordinator after every structural update.
  const ShardRange& owned() const { return owned_; }

 private:
  friend class ShardedStore;

  size_t index_;
  ShardFiles files_;
  std::unique_ptr<SecureStore> store_;
  ShardRange owned_;
};

}  // namespace secxml

#endif  // SECXML_SERVE_STORE_SHARD_H_
