#include "serve/sharded_store.h"

#include <algorithm>
#include <utility>

namespace secxml {

// --- ShardFileSet --------------------------------------------------------

ShardFileSet::ShardFileSet(size_t num_shards,
                           std::chrono::microseconds read_latency) {
  data_.reserve(num_shards);
  wal_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    data_.push_back(std::make_unique<MemPagedFile>());
    wal_.push_back(std::make_unique<MemPagedFile>());
    if (read_latency.count() > 0) {
      delayed_.push_back(std::make_unique<LatencyPagedFile>(data_.back().get(),
                                                            read_latency));
    }
  }
}

ShardFileProvider ShardFileSet::provider() {
  return [this](size_t shard) -> Result<ShardFiles> {
    if (shard >= data_.size()) {
      return Status::InvalidArgument("shard index past the file set");
    }
    ShardFiles f;
    f.data = delayed_.empty() ? static_cast<PagedFile*>(data_[shard].get())
                              : delayed_[shard].get();
    f.wal = wal_[shard].get();
    return f;
  };
}

// --- ShardedStore lifecycle ----------------------------------------------

Status ShardedStore::Build(const Document& doc, const DolLabeling& labeling,
                           const ShardedStoreOptions& options,
                           const ShardFileProvider& files,
                           std::unique_ptr<ShardedStore>* out) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("a sharded store needs at least one shard");
  }
  std::unique_ptr<ShardedStore> store(new ShardedStore(options));
  for (size_t s = 0; s < options.num_shards; ++s) {
    SECXML_ASSIGN_OR_RETURN(ShardFiles f, files(s));
    std::unique_ptr<SecureStore> replica;
    if (options.attach_wal) {
      if (f.wal == nullptr) {
        return Status::InvalidArgument("attach_wal needs a wal file per shard");
      }
      SECXML_RETURN_NOT_OK(SecureStore::BuildWithWal(
          doc, labeling, f.data, f.wal, options.nok, &replica));
    } else {
      SECXML_RETURN_NOT_OK(
          SecureStore::Build(doc, labeling, f.data, options.nok, &replica));
    }
    store->shards_.push_back(
        std::make_unique<StoreShard>(s, f, std::move(replica)));
  }
  if (options.attach_wal) {
    for (const auto& sh : store->shards_) {
      store->next_lsn_ =
          std::max(store->next_lsn_, sh->store()->wal()->next_lsn());
    }
  }
  store->RefreshShardMapLocked();
  *out = std::move(store);
  return Status::OK();
}

Status ShardedStore::Open(const ShardedStoreOptions& options,
                          const ShardFileProvider& files,
                          std::unique_ptr<ShardedStore>* out,
                          RecoveryStats* recovery) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("a sharded store needs at least one shard");
  }
  if (!options.attach_wal) {
    return Status::InvalidArgument(
        "sharded recovery needs WALs (attach_wal)");
  }
  std::unique_ptr<ShardedStore> store(new ShardedStore(options));
  for (size_t s = 0; s < options.num_shards; ++s) {
    SECXML_ASSIGN_OR_RETURN(ShardFiles f, files(s));
    std::unique_ptr<SecureStore> replica;
    // Checkpoint only — replay must wait until every log is in hand, so the
    // merged stream re-executes in global LSN order (a record in shard A's
    // log may depend on an earlier-LSN record in shard B's log).
    SECXML_RETURN_NOT_OK(SecureStore::OpenWithWal(f.data, f.wal, options.nok,
                                                  &replica, nullptr,
                                                  /*replay_log=*/false));
    store->shards_.push_back(
        std::make_unique<StoreShard>(s, f, std::move(replica)));
  }

  // Merge every log's surviving records into one LSN-ordered history. Each
  // record was appended to exactly one owner's log, so LSNs are unique.
  std::vector<WriteAheadLog::Record> records;
  for (const auto& sh : store->shards_) {
    SECXML_RETURN_NOT_OK(
        sh->store()->wal()->Replay(0, [&](const WriteAheadLog::Record& rec) {
          records.push_back(rec);
          return Status::OK();
        }));
  }
  std::sort(records.begin(), records.end(),
            [](const WriteAheadLog::Record& a, const WriteAheadLog::Record& b) {
              return a.lsn < b.lsn;
            });
  RecoveryStats rs;
  rs.records_in_logs = records.size();
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0 && records[i].lsn == records[i - 1].lsn) {
      return Status::Corruption("duplicate LSN across shard WALs");
    }
    // Every shard whose durable state predates the record re-executes it;
    // shards whose checkpoint already covers it skip — this is what makes a
    // crash anywhere inside the two-phase checkpoint recoverable.
    for (const auto& sh : store->shards_) {
      if (records[i].lsn <= sh->store()->applied_lsn()) continue;
      SECXML_RETURN_NOT_OK(sh->store()->ApplyReplicated(records[i]));
      ++rs.records_applied;
    }
  }

  uint64_t common_lsn = store->shards_[0]->store()->applied_lsn();
  for (const auto& sh : store->shards_) {
    if (sh->store()->applied_lsn() != common_lsn) {
      return Status::Corruption("shard WALs recovered to diverging LSNs");
    }
    store->next_lsn_ =
        std::max(store->next_lsn_, sh->store()->wal()->next_lsn());
  }
  store->next_lsn_ = std::max(store->next_lsn_, common_lsn + 1);
  rs.recovered_lsn = common_lsn;
  if (recovery != nullptr) *recovery = rs;
  store->RefreshShardMapLocked();
  *out = std::move(store);
  return Status::OK();
}

// --- Pin -----------------------------------------------------------------

ShardedStore::Pin::Pin(ShardedStore* store) : fence_(store->fence_) {
  pins_.reserve(store->shards_.size());
  for (const auto& sh : store->shards_) {
    pins_.push_back(std::make_unique<SecureStore::SnapshotPin>(sh->store()));
  }
}

ShardedStore::Pin::~Pin() {
  // SnapshotPins chain through a thread-local LIFO stack; vector destruction
  // runs first-to-last, so unpin explicitly in reverse acquisition order.
  while (!pins_.empty()) pins_.pop_back();
}

// --- Update replication --------------------------------------------------

Status ShardedStore::Poison(const Status& cause) {
  poisoned_ = true;
  return Status::Corruption("sharded store poisoned (replica divergence): " +
                            cause.message());
}

Status ShardedStore::Replicate(size_t owner,
                               const std::function<Status(SecureStore*)>& fn) {
  std::unique_lock<std::shared_mutex> fence(fence_);
  if (poisoned_) {
    return Status::Corruption("sharded store poisoned by an earlier failure");
  }
  SecureStore* os = shards_[owner]->store();
  if (options_.attach_wal) {
    // The owner logs the update at the global LSN; the record is then the
    // single source of truth every peer re-executes.
    SECXML_RETURN_NOT_OK(os->AlignWalLsn(next_lsn_));
    SECXML_RETURN_NOT_OK(fn(os));
    WriteAheadLog::Record rec;
    bool found = false;
    SECXML_RETURN_NOT_OK(os->wal()->Replay(
        next_lsn_ - 1, [&](const WriteAheadLog::Record& r) {
          if (r.lsn == next_lsn_ && !found) {
            rec = r;
            found = true;
          }
          return Status::OK();
        }));
    if (!found) {
      return Poison(
          Status::Corruption("owner WAL lost the just-appended record"));
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (s == owner) continue;
      Status applied = shards_[s]->store()->ApplyReplicated(rec);
      if (!applied.ok()) return Poison(applied);
    }
    next_lsn_ = rec.lsn + 1;
  } else {
    // No logs: the mutator itself is the replication vehicle (every update
    // body is deterministic, so replicas converge byte-for-byte).
    SECXML_RETURN_NOT_OK(fn(os));
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (s == owner) continue;
      Status applied = fn(shards_[s]->store());
      if (!applied.ok()) return Poison(applied);
    }
  }
  if (options_.attach_wal) {
    const uint64_t lsn = os->applied_lsn();
    for (const auto& sh : shards_) {
      if (sh->store()->applied_lsn() != lsn) {
        return Poison(Status::Corruption("replica LSNs diverged post-commit"));
      }
    }
  }
  RefreshShardMapLocked();
  return Status::OK();
}

Status ShardedStore::SetRangeAccess(NodeId begin, NodeId end,
                                    SubjectId subject, bool accessible) {
  return Replicate(map_.ShardOfNode(begin), [&](SecureStore* s) {
    return s->SetRangeAccess(begin, end, subject, accessible);
  });
}

Status ShardedStore::SetSubtreeAccess(NodeId root, SubjectId subject,
                                      bool accessible) {
  return Replicate(map_.ShardOfNode(root), [&](SecureStore* s) {
    return s->SetSubtreeAccess(root, subject, accessible);
  });
}

Status ShardedStore::DeleteSubtree(NodeId root) {
  return Replicate(map_.ShardOfNode(root), [&](SecureStore* s) {
    return s->DeleteSubtree(root);
  });
}

Result<NodeId> ShardedStore::InsertSubtree(
    NodeId parent, NodeId after, const Document& fragment,
    const DolLabeling& fragment_labeling) {
  NodeId landed = kInvalidNode;
  SECXML_RETURN_NOT_OK(
      Replicate(map_.ShardOfNode(parent), [&](SecureStore* s) {
        Result<NodeId> r =
            s->InsertSubtree(parent, after, fragment, fragment_labeling);
        if (!r.ok()) return r.status();
        landed = *r;  // replicas agree; the no-WAL path overwrites equal ids
        return Status::OK();
      }));
  return landed;
}

Result<SubjectId> ShardedStore::AddSubject(bool default_access) {
  SubjectId id = 0;
  // Codebook-wide updates have no page range; shard 0 is their owner by
  // convention (the partitioning rule in DESIGN.md §13).
  SECXML_RETURN_NOT_OK(Replicate(0, [&](SecureStore* s) {
    Result<SubjectId> r = s->AddSubject(default_access);
    if (!r.ok()) return r.status();
    id = *r;
    return Status::OK();
  }));
  return id;
}

Result<SubjectId> ShardedStore::AddSubjectLike(SubjectId like) {
  SubjectId id = 0;
  SECXML_RETURN_NOT_OK(Replicate(0, [&](SecureStore* s) {
    Result<SubjectId> r = s->AddSubjectLike(like);
    if (!r.ok()) return r.status();
    id = *r;
    return Status::OK();
  }));
  return id;
}

Status ShardedStore::RemoveSubject(SubjectId subject) {
  return Replicate(
      0, [&](SecureStore* s) { return s->RemoveSubject(subject); });
}

Status ShardedStore::CompactCodebook() {
  return Replicate(0, [&](SecureStore* s) { return s->CompactCodebook(); });
}

Status ShardedStore::Vacuum(const SecureStore::VacuumOptions& options,
                            SecureStore::VacuumStats* stats) {
  // Per-shard checkpointing is forced off: a unilateral Persist+Truncate on
  // the owner would drop records the peers have not persisted. The two-phase
  // Checkpoint below covers the whole replica set instead.
  SecureStore::VacuumOptions per_shard = options;
  per_shard.checkpoint_after = false;
  SECXML_RETURN_NOT_OK(Replicate(0, [&](SecureStore* s) {
    // Only the owner reports stats (replicas produce identical ones).
    return s->Vacuum(per_shard, stats);
  }));
  if (options.checkpoint_after) return Checkpoint();
  return Status::OK();
}

// --- Durability ----------------------------------------------------------

Status ShardedStore::Persist() {
  std::unique_lock<std::shared_mutex> fence(fence_);
  for (const auto& sh : shards_) {
    SECXML_RETURN_NOT_OK(sh->store()->Persist());
  }
  return Status::OK();
}

Status ShardedStore::Checkpoint() {
  std::unique_lock<std::shared_mutex> fence(fence_);
  if (poisoned_) {
    return Status::Corruption("sharded store poisoned by an earlier failure");
  }
  // Phase one: every shard's checkpoint blob is durable before ANY log
  // drops a record. A crash after some Persist()s leaves shards with
  // different checkpoint LSNs but every record still in some log — Open()'s
  // per-shard "lsn > applied" replay guard converges them.
  for (const auto& sh : shards_) {
    SECXML_RETURN_NOT_OK(sh->store()->Persist());
  }
  // Phase two: logs truncate in any order. A crash mid-phase leaves some
  // logs longer than needed; surviving records at or below every shard's
  // checkpoint LSN replay as no-ops.
  for (const auto& sh : shards_) {
    SECXML_RETURN_NOT_OK(sh->store()->TruncateWal());
  }
  return Status::OK();
}

// --- Read-side helpers ---------------------------------------------------

void ShardedStore::DropVisibilityCaches() {
  for (const auto& sh : shards_) sh->store()->DropVisibilityCaches();
}

IoStatsSnapshot ShardedStore::io_snapshot() const {
  IoStatsSnapshot sum;
  for (const auto& sh : shards_) {
    IoStatsSnapshot s = sh->store()->io_stats().Snapshot();
    sum.page_reads += s.page_reads;
    sum.page_writes += s.page_writes;
    sum.cache_hits += s.cache_hits;
    sum.pages_skipped += s.pages_skipped;
  }
  return sum;
}

void ShardedStore::RefreshShardMapLocked() {
  NokStore* nok = shards_[0]->store()->nok();
  const std::vector<NokStore::PageInfo>& infos = nok->page_infos();
  std::vector<uint32_t> first_nodes;
  first_nodes.reserve(infos.size());
  for (const NokStore::PageInfo& info : infos) {
    first_nodes.push_back(info.first_node);
  }
  map_ = ShardMap::Partition(first_nodes, nok->num_nodes(), shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->owned_ = map_.range(s);
  }
}

}  // namespace secxml
