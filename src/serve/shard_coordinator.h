#ifndef SECXML_SERVE_SHARD_COORDINATOR_H_
#define SECXML_SERVE_SHARD_COORDINATOR_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "query/batch_evaluator.h"
#include "query/evaluator.h"
#include "query/query_driver.h"
#include "serve/sharded_store.h"

namespace secxml {

struct ShardCoordinatorOptions {
  /// Scatter worker threads; 0 = one per shard (the natural width: each
  /// task is one shard's scan, and per-shard buffer pools overlap their
  /// physical reads across workers).
  size_t num_threads = 0;
  AccessSemantics semantics = AccessSemantics::kBinding;
  bool page_skip = true;
  bool use_view = true;
  bool ordered_siblings = false;
  /// Batch evaluation: cap on visibility classes per structural scan
  /// (see EvalOptions::batch_chunk_classes).
  size_t batch_chunk_classes = 0;
  /// Cross-request caches (DESIGN.md §14), probed at the COORDINATOR —
  /// before any scatter — so a hit skips every shard's scan. Invalidation
  /// attaches to shard 0 (AttachResultCacheInvalidation on shard_store(0)):
  /// every update reaches shard 0 under the exclusive fence and replicas
  /// publish in epoch lockstep, so shard 0's commit stream covers the
  /// fleet. Defaults off.
  QueryCaches caches;
};

/// Scatter-gather query front end over a ShardedStore (DESIGN.md §13).
///
/// Scatter: each shard runs the fragment matchers with its owned node range
/// as the candidate window ([ShardRange.first_node, end_node)), on its own
/// replica, buffer pool, and — for batches — its own MultiSubjectCursor
/// mask tables. The ranges tile [0, num_nodes), so across shards every
/// candidate is matched exactly once, and because each replica holds the
/// full structure, a match whose subtree spans past the shard boundary is
/// produced whole by the candidate's owner.
///
/// Gather: shard ranges ascend in document order, so concatenating the
/// per-shard match streams shard-by-shard IS the document-order merge; each
/// appended match verifies its root against the running maximum
/// (merge_comparisons) so the order the join requires is proved, not
/// assumed. The ε-STD join — and for batches the per-class projection,
/// visibility filter, and join (the shared FinalizeClassEval) — then runs
/// once at the coordinator on the merged streams, making every answer
/// byte-identical to the single-store evaluators'.
///
/// Class routing: GroupSubjects runs ONCE at the coordinator (all replicas
/// share one codebook state, so shard 0 answers for everyone); each shard
/// then evaluates each equivalence class at most once per chunk via its
/// local multi-subject cursor.
///
/// Failure: scatter tasks fail independently. In Run(), one shard's I/O
/// error fails only the jobs whose scatter touched it (first failing shard
/// in shard order, surfaced through AggregateBatchStats::first_error); the
/// rest of the batch completes normally.
class ShardCoordinator {
 public:
  ShardCoordinator(ShardedStore* store, const ShardCoordinatorOptions& options)
      : store_(store), options_(options) {}

  /// One subject, one query, scattered across every shard.
  Result<EvalResult> Evaluate(const PatternTree& pattern, SubjectId subject);

  /// The sharded analogue of QueryDriver::Run: every (job, shard) scan is
  /// one pool task. Outcomes align with jobs; a failed job never poisons
  /// the batch.
  BatchResult Run(const std::vector<QueryJob>& jobs);

  /// The sharded analogue of QueryDriver::EvaluateForSubjects: subjects
  /// group into visibility classes once, each chunk's multi-subject scan
  /// scatters across shards, and per-class answers are byte-identical to
  /// BatchEvaluator's.
  Result<SubjectBatchResult> EvaluateForSubjects(
      const PatternTree& pattern, std::span<const SubjectId> subjects);

 private:
  /// Matches every fragment of `pq` on shard `s` within its owned candidate
  /// window. Runs on a scatter worker (takes its own per-shard SnapshotPin;
  /// the caller holds the fence). View-semantics visibility filtering runs
  /// at the coordinator on the merged streams, matching the single-store
  /// operator order.
  struct ShardScan {
    Status status = Status::OK();
    std::vector<std::vector<FragmentMatch>> matches;
    ExecStats scan;
    int64_t micros = 0;
  };
  ShardScan ScanShard(size_t s, const PreparedQuery& pq, SubjectId subject);

  /// Gathers per-shard streams into document-order merged `matches`,
  /// verifying order and counting the merge work into `merge`.
  Status GatherMatches(const std::vector<ShardScan>& scans,
                       std::vector<std::vector<FragmentMatch>>* matches,
                       ExecStats* merge, size_t* fragment_matches);

  /// Body of Evaluate once the caller holds a ShardedStore::Pin and a
  /// resolved plan (so the batch path can reuse the pin and the cache path
  /// shares the plan with its probe).
  Result<EvalResult> EvaluatePinned(const PreparedQuery& pq,
                                    SubjectId subject);

  /// Cache-aware body of Evaluate under the caller's fence pin: resolves
  /// the plan (through the plan cache), probes the result cache with
  /// single-flight, scatters only on a miss, publishes after the join.
  Result<EvalResult> EvaluateCachedPinned(const ShardedStore::Pin& pin,
                                          const PatternTree& pattern,
                                          SubjectId subject);

  /// Runs `fn(shard)` for every shard on the scatter pool.
  void RunOnShards(const std::function<void(size_t)>& fn);

  size_t scatter_width() const {
    return options_.num_threads == 0 ? store_->num_shards()
                                     : options_.num_threads;
  }

  EvalOptions MakeEvalOptions(SubjectId subject) const;

  ShardedStore* store_;
  ShardCoordinatorOptions options_;
};

}  // namespace secxml

#endif  // SECXML_SERVE_SHARD_COORDINATOR_H_
