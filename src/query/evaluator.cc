#include "query/evaluator.h"

#include <algorithm>

#include "query/structural_join.h"
#include "query/xpath_parser.h"

namespace secxml {

Status PrepareQuery(const PatternTree& pattern, PreparedQuery* out) {
  *out = PreparedQuery();
  SECXML_RETURN_NOT_OK(Decompose(pattern, &out->query));
  const size_t nf = out->query.fragments.size();

  out->children.resize(nf);
  for (size_t f = 1; f < nf; ++f) {
    out->children[out->query.fragments[f].parent_fragment].push_back(
        static_cast<int>(f));
  }

  out->designated.resize(nf);
  out->child_slot.resize(nf);
  out->ret_slot.assign(nf, -1);
  for (size_t f = 0; f < nf; ++f) {
    auto slot_for = [&](int local) {
      auto& des = out->designated[f];
      for (size_t i = 0; i < des.size(); ++i) {
        if (des[i] == local) return static_cast<int>(i);
      }
      des.push_back(local);
      return static_cast<int>(des.size() - 1);
    };
    for (int c : out->children[f]) {
      out->child_slot[f].push_back(
          slot_for(out->query.fragments[c].source_in_parent));
    }
    if (out->query.fragments[f].returning_local >= 0) {
      out->ret_slot[f] = slot_for(out->query.fragments[f].returning_local);
    }
  }
  return Status::OK();
}

void FilterMatchesVisible(const std::vector<NodeInterval>& hidden,
                          std::vector<std::vector<FragmentMatch>>* matches,
                          ExecStats* stats) {
  // A fragment root inside a hidden subtree cannot contribute (every other
  // bound node in the fragment is then visible too, since fragments are
  // child-edge chains of accessible nodes). Surviving roots map back to
  // matches with one merge pass.
  for (std::vector<FragmentMatch>& fm : *matches) {
    std::vector<NodeId> roots;
    roots.reserve(fm.size());
    for (const FragmentMatch& m : fm) roots.push_back(m.root);
    std::vector<NodeId> visible = FilterVisible(hidden, roots, stats);
    std::vector<FragmentMatch> kept;
    kept.reserve(visible.size());
    size_t vi = 0;
    for (FragmentMatch& m : fm) {
      if (vi < visible.size() && visible[vi] == m.root) {
        kept.push_back(std::move(m));
        ++vi;
      }
    }
    fm = std::move(kept);
  }
}

void JoinMatches(const PreparedQuery& pq,
                 const std::vector<std::vector<FragmentMatch>>& matches,
                 std::vector<NodeId>* answers, ExecStats* join_stats) {
  const size_t nf = pq.query.fragments.size();

  // Bottom-up validity: a match is valid iff, for every child fragment,
  // some binding of the join-source node has a valid child root in its
  // subtree (the ancestor-descendant structural join, Section 4.1).
  std::vector<std::vector<char>> valid(nf);
  std::vector<std::vector<NodeId>> valid_roots(nf);
  for (size_t fi = nf; fi-- > 0;) {
    valid[fi].assign(matches[fi].size(), 1);
    for (size_t mi = 0; mi < matches[fi].size(); ++mi) {
      const FragmentMatch& m = matches[fi][mi];
      for (size_t ci = 0; ci < pq.children[fi].size(); ++ci) {
        int c = pq.children[fi][ci];
        const std::vector<NodeId>& roots = valid_roots[c];
        bool connected = false;
        for (const auto& [b, bend] : m.bindings[pq.child_slot[fi][ci]]) {
          ++join_stats->nodes_scanned;
          auto it = std::upper_bound(roots.begin(), roots.end(), b);
          if (it != roots.end() && *it < bend) {
            connected = true;
            break;
          }
        }
        if (!connected) {
          valid[fi][mi] = 0;
          break;
        }
      }
    }
    for (size_t mi = 0; mi < matches[fi].size(); ++mi) {
      if (valid[fi][mi]) valid_roots[fi].push_back(matches[fi][mi].root);
    }
  }

  // Top-down reachability: which valid matches participate in a complete
  // match anchored at the first fragment.
  std::vector<std::vector<char>> reach(nf);
  reach[0] = valid[0];
  for (size_t f = 1; f < nf; ++f) {
    int p = pq.query.fragments[f].parent_fragment;
    // Collect join-source bindings from reachable parent matches.
    int slot = -1;
    for (size_t ci = 0; ci < pq.children[p].size(); ++ci) {
      if (pq.children[p][ci] == static_cast<int>(f)) {
        slot = pq.child_slot[p][ci];
        break;
      }
    }
    std::vector<JoinItem> sources;
    for (size_t mi = 0; mi < matches[p].size(); ++mi) {
      if (!reach[p][mi]) continue;
      for (const auto& [b, bend] : matches[p][mi].bindings[slot]) {
        sources.push_back({b, bend});
      }
    }
    std::sort(sources.begin(), sources.end(),
              [](const JoinItem& a, const JoinItem& b) {
                return a.node < b.node;
              });
    // A match is reachable iff valid and its root lies under some source:
    // the Stack-Tree-Desc semijoin over sorted inputs (match roots ascend),
    // merged back onto the match list.
    std::vector<NodeId> roots;
    roots.reserve(matches[f].size());
    for (const FragmentMatch& m : matches[f]) roots.push_back(m.root);
    std::vector<NodeId> under = SemiJoinDescendants(sources, roots, join_stats);
    reach[f].assign(matches[f].size(), 0);
    size_t ui = 0;
    for (size_t mi = 0; mi < matches[f].size(); ++mi) {
      while (ui < under.size() && under[ui] < roots[mi]) ++ui;
      reach[f][mi] =
          valid[f][mi] && ui < under.size() && under[ui] == roots[mi];
    }
  }

  // Answers: returning-node bindings of valid, reachable matches.
  int rf = pq.query.returning_fragment;
  for (size_t mi = 0; mi < matches[rf].size(); ++mi) {
    if (!reach[rf][mi]) continue;
    for (const auto& [b, bend] : matches[rf][mi].bindings[pq.ret_slot[rf]]) {
      (void)bend;
      answers->push_back(b);
    }
  }
  std::sort(answers->begin(), answers->end());
  answers->erase(std::unique(answers->begin(), answers->end()),
                 answers->end());
}

Result<EvalResult> QueryEvaluator::EvaluateXPath(std::string_view xpath,
                                                 const EvalOptions& options) {
  PatternTree pattern;
  SECXML_RETURN_NOT_OK(ParseXPath(xpath, &pattern));
  return Evaluate(pattern, options);
}

Result<EvalResult> QueryEvaluator::Evaluate(const PatternTree& pattern,
                                            const EvalOptions& options) {
  PreparedQuery pq;
  SECXML_RETURN_NOT_OK(PrepareQuery(pattern, &pq));
  return EvaluatePrepared(pq, options);
}

Result<EvalResult> QueryEvaluator::EvaluatePrepared(
    const PreparedQuery& pq, const EvalOptions& options) {
  // Pin one epoch for the whole evaluation: every snapshot-dependent read
  // below (codebook probes, page directory, cached views, hidden intervals)
  // resolves against this snapshot even if updates commit concurrently.
  SecureStore::SnapshotPin pin(store_);

  const size_t nf = pq.query.fragments.size();

  // Match every fragment.
  NokMatcher::Options mopts;
  mopts.secure = options.semantics != AccessSemantics::kNone;
  mopts.subject = options.subject;
  mopts.page_skip = options.page_skip;
  mopts.use_view = options.use_view;
  mopts.ordered_siblings = options.ordered_siblings;
  NokMatcher matcher(store_, mopts);
  std::vector<std::vector<FragmentMatch>> matches(nf);
  EvalResult result;
  for (size_t f = 0; f < nf; ++f) {
    SECXML_RETURN_NOT_OK(matcher.MatchFragment(pq.query.fragments[f],
                                               pq.designated[f], &matches[f]));
    result.fragment_matches += matches[f].size();
  }

  // The scan operator is done once every fragment is matched; its counters
  // are the matcher's cursor stats. The evaluation's snapshot pin is
  // attributed here (one per query).
  ExecStats scan_stats = matcher.exec_stats();
  scan_stats.epoch_pins = 1;
  result.operators.push_back({"scan", scan_stats});

  // Visibility operator (view semantics): the hidden-interval sweep's own
  // page I/O is attributed here on the query that computes it; later
  // queries hit the store's cache.
  if (options.semantics == AccessSemantics::kView) {
    ExecStats vis_stats;
    SECXML_ASSIGN_OR_RETURN(
        std::vector<NodeInterval> hidden,
        store_->HiddenSubtreeIntervals(options.subject, &vis_stats));
    FilterMatchesVisible(hidden, &matches, &vis_stats);
    result.operators.push_back({"visibility", vis_stats});
  }

  ExecStats join_stats;
  JoinMatches(pq, matches, &result.answers, &join_stats);
  result.operators.push_back({"join", join_stats});
  result.exec = RollUp(result.operators);
  return result;
}

}  // namespace secxml
