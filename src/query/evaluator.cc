#include "query/evaluator.h"

#include <algorithm>

#include "query/structural_join.h"
#include "query/xpath_parser.h"

namespace secxml {

Result<EvalResult> QueryEvaluator::EvaluateXPath(std::string_view xpath,
                                                 const EvalOptions& options) {
  PatternTree pattern;
  SECXML_RETURN_NOT_OK(ParseXPath(xpath, &pattern));
  return Evaluate(pattern, options);
}

Result<EvalResult> QueryEvaluator::Evaluate(const PatternTree& pattern,
                                            const EvalOptions& options) {
  DecomposedQuery query;
  SECXML_RETURN_NOT_OK(Decompose(pattern, &query));
  const size_t nf = query.fragments.size();

  // Child fragments of each fragment.
  std::vector<std::vector<int>> children(nf);
  for (size_t f = 1; f < nf; ++f) {
    children[query.fragments[f].parent_fragment].push_back(
        static_cast<int>(f));
  }

  // Designated pattern nodes per fragment: one slot per child-fragment join
  // source plus one for the returning node (slots may coincide).
  std::vector<std::vector<int>> designated(nf);
  std::vector<std::vector<int>> child_slot(nf);  // parallel to children[f]
  std::vector<int> ret_slot(nf, -1);
  for (size_t f = 0; f < nf; ++f) {
    auto slot_for = [&](int local) {
      auto& des = designated[f];
      for (size_t i = 0; i < des.size(); ++i) {
        if (des[i] == local) return static_cast<int>(i);
      }
      des.push_back(local);
      return static_cast<int>(des.size() - 1);
    };
    for (int c : children[f]) {
      child_slot[f].push_back(slot_for(query.fragments[c].source_in_parent));
    }
    if (query.fragments[f].returning_local >= 0) {
      ret_slot[f] = slot_for(query.fragments[f].returning_local);
    }
  }

  // Match every fragment.
  NokMatcher::Options mopts;
  mopts.secure = options.semantics != AccessSemantics::kNone;
  mopts.subject = options.subject;
  mopts.page_skip = options.page_skip;
  mopts.use_view = options.use_view;
  mopts.ordered_siblings = options.ordered_siblings;
  NokMatcher matcher(store_, mopts);
  std::vector<std::vector<FragmentMatch>> matches(nf);
  EvalResult result;
  for (size_t f = 0; f < nf; ++f) {
    SECXML_RETURN_NOT_OK(
        matcher.MatchFragment(query.fragments[f], designated[f], &matches[f]));
    result.fragment_matches += matches[f].size();
  }

  // View semantics: a fragment root inside a hidden subtree cannot
  // contribute (every other bound node in the fragment is then visible too,
  // since fragments are child-edge chains of accessible nodes).
  if (options.semantics == AccessSemantics::kView) {
    SECXML_ASSIGN_OR_RETURN(std::vector<NodeInterval> hidden,
                            store_->HiddenSubtreeIntervals(options.subject));
    for (size_t f = 0; f < nf; ++f) {
      std::vector<FragmentMatch> kept;
      size_t h = 0;
      for (FragmentMatch& m : matches[f]) {
        while (h < hidden.size() && hidden[h].end <= m.root) ++h;
        if (h < hidden.size() && hidden[h].begin <= m.root) continue;
        kept.push_back(std::move(m));
      }
      matches[f] = std::move(kept);
    }
  }

  // Bottom-up validity: a match is valid iff, for every child fragment,
  // some binding of the join-source node has a valid child root in its
  // subtree (the ancestor-descendant structural join, Section 4.1).
  std::vector<std::vector<char>> valid(nf);
  std::vector<std::vector<NodeId>> valid_roots(nf);
  for (size_t fi = nf; fi-- > 0;) {
    valid[fi].assign(matches[fi].size(), 1);
    for (size_t mi = 0; mi < matches[fi].size(); ++mi) {
      const FragmentMatch& m = matches[fi][mi];
      for (size_t ci = 0; ci < children[fi].size(); ++ci) {
        int c = children[fi][ci];
        const std::vector<NodeId>& roots = valid_roots[c];
        bool connected = false;
        for (const auto& [b, bend] : m.bindings[child_slot[fi][ci]]) {
          auto it = std::upper_bound(roots.begin(), roots.end(), b);
          if (it != roots.end() && *it < bend) {
            connected = true;
            break;
          }
        }
        if (!connected) {
          valid[fi][mi] = 0;
          break;
        }
      }
    }
    for (size_t mi = 0; mi < matches[fi].size(); ++mi) {
      if (valid[fi][mi]) valid_roots[fi].push_back(matches[fi][mi].root);
    }
  }

  // Top-down reachability: which valid matches participate in a complete
  // match anchored at the first fragment.
  std::vector<std::vector<char>> reach(nf);
  reach[0] = valid[0];
  for (size_t f = 1; f < nf; ++f) {
    int p = query.fragments[f].parent_fragment;
    // Collect join-source bindings from reachable parent matches.
    int slot = -1;
    for (size_t ci = 0; ci < children[p].size(); ++ci) {
      if (children[p][ci] == static_cast<int>(f)) {
        slot = child_slot[p][ci];
        break;
      }
    }
    std::vector<JoinItem> sources;
    for (size_t mi = 0; mi < matches[p].size(); ++mi) {
      if (!reach[p][mi]) continue;
      for (const auto& [b, bend] : matches[p][mi].bindings[slot]) {
        sources.push_back({b, bend});
      }
    }
    std::sort(sources.begin(), sources.end(),
              [](const JoinItem& a, const JoinItem& b) {
                return a.node < b.node;
              });
    // Sweep: a match is reachable iff valid and its root lies under some
    // source (Stack-Tree-Desc semijoin over sorted inputs).
    reach[f].assign(matches[f].size(), 0);
    NodeId max_end = 0;
    size_t si = 0;
    for (size_t mi = 0; mi < matches[f].size(); ++mi) {
      NodeId root = matches[f][mi].root;
      while (si < sources.size() && sources[si].node < root) {
        max_end = std::max(max_end, sources[si].end);
        ++si;
      }
      reach[f][mi] = valid[f][mi] && root < max_end;
    }
  }

  // Answers: returning-node bindings of valid, reachable matches.
  int rf = query.returning_fragment;
  for (size_t mi = 0; mi < matches[rf].size(); ++mi) {
    if (!reach[rf][mi]) continue;
    for (const auto& [b, bend] : matches[rf][mi].bindings[ret_slot[rf]]) {
      (void)bend;
      result.answers.push_back(b);
    }
  }
  std::sort(result.answers.begin(), result.answers.end());
  result.answers.erase(
      std::unique(result.answers.begin(), result.answers.end()),
      result.answers.end());
  return result;
}

}  // namespace secxml
