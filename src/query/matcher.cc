#include "query/matcher.h"

#include <algorithm>

namespace secxml {

bool NokMatcher::TagValueMatches(const ResolvedPattern& p,
                                 const NokRecord& rec) const {
  if (!p.wildcard) {
    if (p.tag == kInvalidTag || rec.tag != p.tag) return false;
  }
  if (p.has_value && store_->nok()->Value(rec) != *p.value) return false;
  return true;
}

Result<bool> NokMatcher::MatchChildrenOrdered(
    const std::vector<int>& pchildren, NodeId sroot, const NokRecord& srec,
    FragmentMatch* match) {
  // Materialize the accessible data children (inaccessible ones can never
  // participate, per Algorithm 1's pruning; children inside wholly-dead
  // pages are skipped without loading those pages, like the unordered walk).
  struct Child {
    NodeId node;
    NokRecord rec;
  };
  std::vector<Child> data;
  {
    SecureCursor::ChildWalk walk(&cursor_, sroot, srec);
    NodeId u = kInvalidNode;
    NokRecord urec;
    bool accessible = true;
    for (;;) {
      SECXML_ASSIGN_OR_RETURN(bool more, walk.Next(&u, &urec, &accessible));
      if (!more) break;
      if (accessible) data.push_back({u, urec});
    }
  }
  const size_t K = pchildren.size();
  const size_t M = data.size();

  // Memoized feasibility of (pattern child k, data child d); recursive Npm
  // calls are always rolled back here — bindings are collected afterwards,
  // once validity windows are known.
  std::vector<int8_t> memo(K * M, -1);
  auto feasible = [&](size_t k, size_t d) -> Result<bool> {
    int8_t& slot = memo[k * M + d];
    if (slot >= 0) return slot == 1;
    const ResolvedPattern& rp = resolved_[pchildren[k]];
    bool ok = false;
    if (TagValueMatches(rp, data[d].rec)) {
      // Feasibility probes always roll back; marks live on the shared
      // stack rather than a fresh vector per probe.
      const size_t nb = match->bindings.size();
      const size_t base = mark_stack_.size();
      for (size_t i = 0; i < nb; ++i) {
        mark_stack_.push_back(match->bindings[i].size());
      }
      SECXML_ASSIGN_OR_RETURN(
          ok, Npm(pchildren[k], data[d].node, data[d].rec, match));
      for (size_t i = 0; i < nb; ++i) {
        match->bindings[i].resize(mark_stack_[base + i]);
      }
      mark_stack_.resize(base);
    }
    slot = ok ? 1 : 0;
    return ok;
  };

  // Forward greedy: earliest completion index of the pattern-child prefix.
  // Greedy earliest-feasible assignment is complete for subsequence
  // matching, so failure here means no ordered assignment exists.
  std::vector<size_t> prefix_end(K);
  size_t d = 0;
  for (size_t k = 0; k < K; ++k) {
    bool found = false;
    for (; d < M; ++d) {
      SECXML_ASSIGN_OR_RETURN(bool ok, feasible(k, d));
      if (ok) {
        prefix_end[k] = d;
        ++d;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }

  // Backward greedy: latest start index of the pattern-child suffix.
  std::vector<size_t> suffix_start(K);
  size_t dl = M;
  for (size_t k = K; k-- > 0;) {
    bool found = false;
    while (dl-- > 0) {
      SECXML_ASSIGN_OR_RETURN(bool ok, feasible(k, dl));
      if (ok) {
        suffix_start[k] = dl;
        found = true;
        break;
      }
    }
    if (!found) return false;  // unreachable: forward pass succeeded
  }

  // Collect bindings for designated-containing children from every data
  // child that participates in some valid ordered assignment: d works for
  // child k iff the prefix before k can finish before d and the suffix
  // after k can start after d.
  for (size_t k = 0; k < K; ++k) {
    if (!resolved_[pchildren[k]].contains_designated) continue;
    size_t lo = k == 0 ? 0 : prefix_end[k - 1] + 1;
    size_t hi = k + 1 == K ? M : suffix_start[k + 1];  // exclusive
    for (size_t cand = lo; cand < hi; ++cand) {
      SECXML_ASSIGN_OR_RETURN(bool ok, feasible(k, cand));
      if (!ok) continue;
      // Re-run without rollback to keep the bindings.
      SECXML_ASSIGN_OR_RETURN(
          bool again,
          Npm(pchildren[k], data[cand].node, data[cand].rec, match));
      (void)again;
    }
  }
  return true;
}

Result<bool> NokMatcher::Npm(int pnode, NodeId sroot, const NokRecord& srec,
                             FragmentMatch* match) {
  const ResolvedPattern& pat = resolved_[pnode];
  // Save rollback marks for designated bindings appended in this subtree.
  // The marks live as a frame on the matcher's shared stack — Npm recurses
  // once per pattern-data binding attempt, and a heap allocation per
  // recursion dominated the ACCESS-check fast path. The frame is popped on
  // every non-error exit; on error the whole fragment match aborts and
  // MatchFragment resets the stack.
  const size_t nb = match->bindings.size();
  const size_t base = mark_stack_.size();
  for (size_t i = 0; i < nb; ++i) {
    mark_stack_.push_back(match->bindings[i].size());
  }
  auto rollback = [&]() {
    for (size_t i = 0; i < nb; ++i) {
      match->bindings[i].resize(mark_stack_[base + i]);
    }
  };
  if (pat.designated_slot >= 0) {
    match->bindings[pat.designated_slot].emplace_back(
        sroot, sroot + srec.subtree_size);
  }
  if (options_.ordered_siblings && !pat.children->empty()) {
    SECXML_ASSIGN_OR_RETURN(
        bool ok, MatchChildrenOrdered(*pat.children, sroot, srec, match));
    if (!ok) rollback();
    mark_stack_.resize(base);
    return ok;
  }

  // S <- all pattern children of pnode (Algorithm 1 line 3). Children whose
  // subtree holds a designated node stay active after matching (collectors),
  // so `satisfied` tracks completion separately from retirement.
  const std::vector<int>& pchildren = *pat.children;
  std::vector<char> satisfied(pchildren.size(), 0);
  size_t unsatisfied = pchildren.size();
  bool has_collectors = false;
  for (int s : pchildren) has_collectors |= resolved_[s].contains_designated;
  if (!pchildren.empty()) {
    // The cursor's child walk owns the ε-NoK mechanics — page verdicts
    // before each page is touched, dead-run jumps, one fetch per record
    // with the ACCESS check resolved from the same page.
    SecureCursor::ChildWalk walk(&cursor_, sroot, srec);
    NodeId u = kInvalidNode;
    NokRecord urec;
    bool accessible = true;
    while (unsatisfied > 0 || has_collectors) {
      SECXML_ASSIGN_OR_RETURN(bool more, walk.Next(&u, &urec, &accessible));
      if (!more) break;
      if (accessible) {
        // Algorithm 1 lines 7-11: try every active pattern child whose
        // tag/value constraints u satisfies.
        for (size_t i = 0; i < pchildren.size(); ++i) {
          int s = pchildren[i];
          if (satisfied[i] && !resolved_[s].contains_designated) continue;
          if (!TagValueMatches(resolved_[s], urec)) continue;
          SECXML_ASSIGN_OR_RETURN(bool ok, Npm(s, u, urec, match));
          if (ok && !satisfied[i]) {
            satisfied[i] = 1;
            --unsatisfied;
          }
        }
      }
    }
  }

  if (unsatisfied > 0) {
    // Algorithm 1 lines 14-16: roll back this subtree's bindings.
    rollback();
    mark_stack_.resize(base);
    return false;
  }
  mark_stack_.resize(base);
  return true;
}

Status NokMatcher::MatchFragment(const QueryFragment& fragment,
                                 const std::vector<int>& designated,
                                 std::vector<FragmentMatch>* out) {
  out->clear();
  SECXML_RETURN_NOT_OK(fragment.tree.Validate());
  NokStore* nok = store_->nok();

  // Acquire the compiled view snapshot for this evaluation and reset the
  // cursor's per-scan skipped-page dedup map; the rollback-marks stack may
  // hold stale frames after an aborted earlier call.
  SECXML_RETURN_NOT_OK(cursor_.Attach());
  cursor_.BeginScan();
  mark_stack_.clear();

  // Resolve pattern tags once.
  resolved_.clear();
  resolved_.resize(fragment.tree.nodes.size());
  for (size_t i = 0; i < fragment.tree.nodes.size(); ++i) {
    const PatternNode& pn = fragment.tree.nodes[i];
    ResolvedPattern& rp = resolved_[i];
    rp.wildcard = pn.tag == "*";
    rp.tag = rp.wildcard ? kInvalidTag : nok->tags().Lookup(pn.tag);
    rp.has_value = pn.has_value;
    rp.value = &pn.value;
    rp.children = &pn.children;
  }
  for (size_t d = 0; d < designated.size(); ++d) {
    if (designated[d] < 0 ||
        designated[d] >= static_cast<int>(resolved_.size())) {
      return Status::InvalidArgument("designated node out of range");
    }
    resolved_[designated[d]].designated_slot = static_cast<int>(d);
  }
  // contains_designated is transitive toward the root; pattern nodes are in
  // preorder, so a reverse sweep propagates child flags to parents.
  for (size_t i = resolved_.size(); i-- > 0;) {
    ResolvedPattern& rp = resolved_[i];
    rp.contains_designated = rp.designated_slot >= 0;
    for (int c : fragment.tree.nodes[i].children) {
      rp.contains_designated |= resolved_[c].contains_designated;
    }
  }

  // Candidate roots: the document root when anchored, else the tag index
  // postings (Section 4.1: B+-trees on tag names start the matching). The
  // options' candidate window restricts which roots this matcher owns
  // (sharded scatter); every source below emits ascending ids, so the
  // window is a contiguous slice of the stream.
  const NodeId cbegin = options_.candidate_begin;
  const NodeId cend = std::min<NodeId>(options_.candidate_end,
                                       static_cast<NodeId>(nok->num_nodes()));
  std::vector<NodeId> candidates;
  if (fragment.root_anchored) {
    if (cbegin == 0 && cend > 0) candidates.push_back(0);
  } else if (resolved_[0].wildcard) {
    for (NodeId n = cbegin; n < cend; ++n) candidates.push_back(n);
  } else if (resolved_[0].tag != kInvalidTag) {
    candidates = nok->Postings(resolved_[0].tag);
    candidates.erase(
        std::lower_bound(candidates.begin(), candidates.end(), cend),
        candidates.end());
    candidates.erase(candidates.begin(),
                     std::lower_bound(candidates.begin(), candidates.end(),
                                      cbegin));
  }

  for (NodeId cand : candidates) {
    NokRecord rec;
    bool accessible = true;
    SECXML_ASSIGN_OR_RETURN(bool fetched,
                            cursor_.FetchCandidate(cand, &rec, &accessible));
    if (!fetched) continue;  // wholly-dead page, skipped without loading
    if (!TagValueMatches(resolved_[0], rec)) continue;
    if (!accessible) continue;  // Algorithm 1 pre-condition
    FragmentMatch match;
    match.root = cand;
    match.root_end = cand + rec.subtree_size;
    match.bindings.resize(designated.size());
    SECXML_ASSIGN_OR_RETURN(bool ok, Npm(0, cand, rec, &match));
    if (ok) out->push_back(std::move(match));
  }
  return Status::OK();
}

}  // namespace secxml
