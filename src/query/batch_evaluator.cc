#include "query/batch_evaluator.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "core/codebook.h"
#include "query/batch_matcher.h"

namespace secxml {

namespace {

/// Batch accounting for one chunk, reported as a "batch" operator on the
/// chunk's first class (the same attribution convention as the visibility
/// sweep: shared work lands on the evaluation that performed it, and the
/// rollup-sum identity over classes stays exact).
ExecStats BatchCounters(size_t subjects, size_t classes) {
  ExecStats s;
  s.subjects_batched = subjects;
  s.classes_evaluated = classes;
  s.class_dedup_hits = subjects - classes;
  return s;
}

}  // namespace

Status FinalizeClassEval(SecureStore* store, const PreparedQuery& pq,
                         const EvalOptions& options, SubjectId representative,
                         std::vector<std::vector<FragmentMatch>>* matches,
                         EvalResult* r) {
  if (options.semantics == AccessSemantics::kView) {
    // Hidden intervals are a function of the codebook column, so the
    // representative's intervals are every member's.
    ExecStats vis_stats;
    SECXML_ASSIGN_OR_RETURN(
        std::vector<NodeInterval> hidden,
        store->HiddenSubtreeIntervals(representative, &vis_stats));
    FilterMatchesVisible(hidden, matches, &vis_stats);
    r->operators.push_back({"visibility", vis_stats});
  }
  ExecStats join_stats;
  JoinMatches(pq, *matches, &r->answers, &join_stats);
  r->operators.push_back({"join", join_stats});
  return Status::OK();
}

Result<SubjectBatchResult> BatchEvaluator::Evaluate(
    const PatternTree& pattern, std::span<const SubjectId> subjects,
    const EvalOptions& options) {
  if (subjects.empty()) {
    return Status::InvalidArgument("batch evaluation needs subjects");
  }
  // One pin covers the whole batch; the nested QueryEvaluator (kNone path)
  // and every chunk below adopt this snapshot, so all classes answer
  // against the same epoch.
  SecureStore::SnapshotPin pin(store_);
  SubjectBatchResult batch;

  // Without access control every subject sees the whole document: the batch
  // is one equivalence class, evaluated once by the per-subject path
  // (through the caches when attached — the key's class half is {0,0}).
  if (options.semantics == AccessSemantics::kNone) {
    QueryEvaluator eval(store_);
    SECXML_ASSIGN_OR_RETURN(
        EvalResult r,
        EvaluateWithCaches(store_, &eval, pattern, options, caches_));
    r.operators.push_back({"batch", BatchCounters(subjects.size(), 1)});
    r.exec = RollUp(r.operators);
    ClassEvalResult cls;
    cls.subjects.assign(subjects.begin(), subjects.end());
    cls.result = std::move(r);
    batch.classes.push_back(std::move(cls));
    batch.class_of.assign(subjects.size(), 0);
    batch.exec = batch.classes[0].result.exec;
    return batch;
  }

  // Group by codebook column: classes are exact (every subject-dependent
  // step of evaluation — node checks, page verdicts, hidden intervals —
  // is a function of the column alone).
  std::vector<SubjectId> subject_list(subjects.begin(), subjects.end());
  std::vector<SubjectClass> groups = store_->GroupSubjects(subject_list);
  std::unordered_map<SubjectId, size_t> class_index;
  for (size_t k = 0; k < groups.size(); ++k) {
    for (SubjectId s : groups[k].members) class_index.emplace(s, k);
  }
  batch.class_of.reserve(subjects.size());
  for (SubjectId s : subjects) batch.class_of.push_back(class_index.at(s));

  cache::ResultCache* rcache = caches_.ResultsEnabled();
  QueryPlanCache* pcache = caches_.plans;
  std::string normalized;
  if (rcache != nullptr || pcache != nullptr) {
    normalized = NormalizePattern(pattern);
  }
  SECXML_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> plan,
                          ResolvePlan(pattern, normalized, pcache));
  const PreparedQuery& pq = *plan;
  const size_t nf = pq.query.fragments.size();

  batch.classes.resize(groups.size());

  // Probe the result cache per class (by column fingerprint). Non-blocking:
  // a class whose key is in flight on another thread is evaluated live
  // rather than waited on — a batch must never block holding per-class
  // flight leaderships. Leaderships taken here are abandoned by the guards
  // on every early error return.
  std::vector<cache::ResultKey> keys(groups.size());
  std::deque<FlightGuard> flights;
  std::vector<FlightGuard*> flight_of(groups.size(), nullptr);
  std::vector<size_t> miss;
  miss.reserve(groups.size());
  for (size_t k = 0; k < groups.size(); ++k) {
    if (rcache == nullptr) {
      miss.push_back(k);
      continue;
    }
    keys[k] = MakeResultKey(normalized, groups[k].fingerprint,
                            options.semantics, options.ordered_siblings);
    cache::ResultCache::Probe probe = rcache->Get(keys[k], pin.epoch());
    if (probe.outcome == cache::ResultCache::ProbeOutcome::kHit) {
      ClassEvalResult& cls = batch.classes[k];
      cls.subjects = groups[k].members;
      cls.result = MakeCachedResult(probe.payload, 0);
      // The batch's one pin is attributed once (below), not per hit.
      cls.result.operators.back().stats.epoch_pins = 0;
      cls.result.exec = RollUp(cls.result.operators);
      continue;
    }
    if (probe.outcome == cache::ResultCache::ProbeOutcome::kMissLead) {
      flights.emplace_back(rcache, keys[k]);
      flight_of[k] = &flights.back();
    }
    miss.push_back(k);
  }

  // The ACL dependency footprint is a function of the plan and semantics
  // alone, so one computation covers every class published below.
  uint64_t fp_begin = 0, fp_end = 0;
  bool acl_independent = false;
  if (rcache != nullptr && !miss.empty()) {
    QueryFootprint(store_, pq, options.semantics, &fp_begin, &fp_end,
                   &acl_independent);
  }

  // Evaluate the miss classes in chunks of up to chunk_cap: one structural
  // scan per chunk, mask-wide accessibility per node. With 512-wide masks
  // almost every batch collapses to a single chunk; the option keeps the
  // chunked path reachable for tests and tuning.
  const size_t chunk_cap =
      options.batch_chunk_classes == 0
          ? kMaxBatchClasses
          : std::min(options.batch_chunk_classes, kMaxBatchClasses);
  for (size_t chunk_begin = 0; chunk_begin < miss.size();
       chunk_begin += chunk_cap) {
    const size_t chunk_end = std::min(miss.size(), chunk_begin + chunk_cap);
    const size_t width = chunk_end - chunk_begin;
    std::vector<SubjectId> reps;
    reps.reserve(width);
    size_t chunk_subjects = 0;
    for (size_t j = chunk_begin; j < chunk_end; ++j) {
      reps.push_back(groups[miss[j]].representative());
      chunk_subjects += groups[miss[j]].members.size();
    }

    MultiSubjectMatcher::Options mopts;
    mopts.page_skip = options.page_skip;
    mopts.ordered_siblings = options.ordered_siblings;
    MultiSubjectMatcher matcher(store_, reps, mopts);

    std::vector<std::vector<BatchFragmentMatch>> bmatches(nf);
    for (size_t f = 0; f < nf; ++f) {
      SECXML_RETURN_NOT_OK(matcher.MatchFragment(pq.query.fragments[f],
                                                 pq.designated[f],
                                                 &bmatches[f]));
    }

    for (size_t j = chunk_begin; j < chunk_end; ++j) {
      const size_t k = miss[j];
      ClassEvalResult& cls = batch.classes[k];
      cls.subjects = groups[k].members;
      EvalResult& r = cls.result;

      std::vector<std::vector<FragmentMatch>> matches(nf);
      for (size_t f = 0; f < nf; ++f) {
        matches[f] = ProjectClassMatches(bmatches[f], j - chunk_begin);
        r.fragment_matches += matches[f].size();
      }

      // The chunk's shared scan is attributed to its first class; other
      // classes carry an empty scan operator so every class result has the
      // per-subject operator shape.
      r.operators.push_back(
          {"scan", j == chunk_begin ? matcher.exec_stats() : ExecStats()});

      SECXML_RETURN_NOT_OK(FinalizeClassEval(
          store_, pq, options, groups[k].representative(), &matches, &r));
      if (j == chunk_begin) {
        ExecStats bc = BatchCounters(chunk_subjects, width);
        // The batch's single snapshot pin is attributed to the very first
        // chunk's batch operator (the rollup then reports 1 per batch).
        if (chunk_begin == 0) bc.epoch_pins = 1;
        r.operators.push_back({"batch", bc});
      }

      if (rcache != nullptr) {
        r.exec = RollUp(r.operators);
        cache::ResultCache::Entry entry;
        entry.payload = MakeCachePayload(r);
        entry.epoch = pin.epoch();
        entry.begin = fp_begin;
        entry.end = fp_end;
        entry.acl_independent = acl_independent;
        const bool admitted = flight_of[k] != nullptr
                                  ? flight_of[k]->Publish(std::move(entry))
                                  : rcache->Publish(keys[k], std::move(entry));
        ExecStats cache_stats;
        cache_stats.result_cache_misses = 1;
        if (!admitted) cache_stats.result_cache_invalidations = 1;
        r.operators.push_back({"cache", cache_stats});
      }
      r.exec = RollUp(r.operators);
    }
  }

  // All classes served from cache: the batch's one pin still needs a home
  // for the rollup identity — attribute it to the first class's cache op.
  if (miss.empty() && !batch.classes.empty()) {
    EvalResult& r0 = batch.classes[0].result;
    r0.operators.back().stats.epoch_pins = 1;
    r0.exec = RollUp(r0.operators);
  }

  for (const ClassEvalResult& cls : batch.classes) {
    batch.exec += cls.result.exec;
  }
  return batch;
}

}  // namespace secxml
