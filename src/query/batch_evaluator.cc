#include "query/batch_evaluator.h"

#include <algorithm>
#include <unordered_map>

#include "core/codebook.h"
#include "query/batch_matcher.h"

namespace secxml {

namespace {

/// Batch accounting for one chunk, reported as a "batch" operator on the
/// chunk's first class (the same attribution convention as the visibility
/// sweep: shared work lands on the evaluation that performed it, and the
/// rollup-sum identity over classes stays exact).
ExecStats BatchCounters(size_t subjects, size_t classes) {
  ExecStats s;
  s.subjects_batched = subjects;
  s.classes_evaluated = classes;
  s.class_dedup_hits = subjects - classes;
  return s;
}

}  // namespace

Status FinalizeClassEval(SecureStore* store, const PreparedQuery& pq,
                         const EvalOptions& options, SubjectId representative,
                         std::vector<std::vector<FragmentMatch>>* matches,
                         EvalResult* r) {
  if (options.semantics == AccessSemantics::kView) {
    // Hidden intervals are a function of the codebook column, so the
    // representative's intervals are every member's.
    ExecStats vis_stats;
    SECXML_ASSIGN_OR_RETURN(
        std::vector<NodeInterval> hidden,
        store->HiddenSubtreeIntervals(representative, &vis_stats));
    FilterMatchesVisible(hidden, matches, &vis_stats);
    r->operators.push_back({"visibility", vis_stats});
  }
  ExecStats join_stats;
  JoinMatches(pq, *matches, &r->answers, &join_stats);
  r->operators.push_back({"join", join_stats});
  return Status::OK();
}

Result<SubjectBatchResult> BatchEvaluator::Evaluate(
    const PatternTree& pattern, std::span<const SubjectId> subjects,
    const EvalOptions& options) {
  if (subjects.empty()) {
    return Status::InvalidArgument("batch evaluation needs subjects");
  }
  // One pin covers the whole batch; the nested QueryEvaluator (kNone path)
  // and every chunk below adopt this snapshot, so all classes answer
  // against the same epoch.
  SecureStore::SnapshotPin pin(store_);
  SubjectBatchResult batch;

  // Without access control every subject sees the whole document: the batch
  // is one equivalence class, evaluated once by the per-subject path.
  if (options.semantics == AccessSemantics::kNone) {
    QueryEvaluator eval(store_);
    SECXML_ASSIGN_OR_RETURN(EvalResult r, eval.Evaluate(pattern, options));
    r.operators.push_back({"batch", BatchCounters(subjects.size(), 1)});
    r.exec = RollUp(r.operators);
    ClassEvalResult cls;
    cls.subjects.assign(subjects.begin(), subjects.end());
    cls.result = std::move(r);
    batch.classes.push_back(std::move(cls));
    batch.class_of.assign(subjects.size(), 0);
    batch.exec = batch.classes[0].result.exec;
    return batch;
  }

  // Group by codebook column: classes are exact (every subject-dependent
  // step of evaluation — node checks, page verdicts, hidden intervals —
  // is a function of the column alone).
  std::vector<SubjectId> subject_list(subjects.begin(), subjects.end());
  std::vector<SubjectClass> groups = store_->GroupSubjects(subject_list);
  std::unordered_map<SubjectId, size_t> class_index;
  for (size_t k = 0; k < groups.size(); ++k) {
    for (SubjectId s : groups[k].members) class_index.emplace(s, k);
  }
  batch.class_of.reserve(subjects.size());
  for (SubjectId s : subjects) batch.class_of.push_back(class_index.at(s));

  PreparedQuery pq;
  SECXML_RETURN_NOT_OK(PrepareQuery(pattern, &pq));
  const size_t nf = pq.query.fragments.size();

  batch.classes.resize(groups.size());

  // Evaluate in chunks of up to chunk_cap classes: one structural scan per
  // chunk, mask-wide accessibility per node. With 512-wide masks almost
  // every batch collapses to a single chunk; the option keeps the chunked
  // path reachable for tests and tuning.
  const size_t chunk_cap =
      options.batch_chunk_classes == 0
          ? kMaxBatchClasses
          : std::min(options.batch_chunk_classes, kMaxBatchClasses);
  for (size_t chunk_begin = 0; chunk_begin < groups.size();
       chunk_begin += chunk_cap) {
    const size_t chunk_end = std::min(groups.size(), chunk_begin + chunk_cap);
    const size_t width = chunk_end - chunk_begin;
    std::vector<SubjectId> reps;
    reps.reserve(width);
    size_t chunk_subjects = 0;
    for (size_t k = chunk_begin; k < chunk_end; ++k) {
      reps.push_back(groups[k].representative());
      chunk_subjects += groups[k].members.size();
    }

    MultiSubjectMatcher::Options mopts;
    mopts.page_skip = options.page_skip;
    mopts.ordered_siblings = options.ordered_siblings;
    MultiSubjectMatcher matcher(store_, reps, mopts);

    std::vector<std::vector<BatchFragmentMatch>> bmatches(nf);
    for (size_t f = 0; f < nf; ++f) {
      SECXML_RETURN_NOT_OK(matcher.MatchFragment(pq.query.fragments[f],
                                                 pq.designated[f],
                                                 &bmatches[f]));
    }

    for (size_t k = chunk_begin; k < chunk_end; ++k) {
      ClassEvalResult& cls = batch.classes[k];
      cls.subjects = groups[k].members;
      EvalResult& r = cls.result;

      std::vector<std::vector<FragmentMatch>> matches(nf);
      for (size_t f = 0; f < nf; ++f) {
        matches[f] = ProjectClassMatches(bmatches[f], k - chunk_begin);
        r.fragment_matches += matches[f].size();
      }

      // The chunk's shared scan is attributed to its first class; other
      // classes carry an empty scan operator so every class result has the
      // per-subject operator shape.
      r.operators.push_back(
          {"scan", k == chunk_begin ? matcher.exec_stats() : ExecStats()});

      SECXML_RETURN_NOT_OK(FinalizeClassEval(
          store_, pq, options, groups[k].representative(), &matches, &r));
      if (k == chunk_begin) {
        ExecStats bc = BatchCounters(chunk_subjects, width);
        // The batch's single snapshot pin is attributed to the very first
        // chunk's batch operator (the rollup then reports 1 per batch).
        if (chunk_begin == 0) bc.epoch_pins = 1;
        r.operators.push_back({"batch", bc});
      }
      r.exec = RollUp(r.operators);
      batch.exec += r.exec;
    }
  }
  return batch;
}

}  // namespace secxml
