#include "query/xpath_parser.h"

#include <cctype>

namespace secxml {

namespace {

class Parser {
 public:
  Parser(std::string_view input, PatternTree* out)
      : input_(input), out_(out) {}

  Status Run() {
    out_->nodes.clear();
    out_->returning_node = 0;
    int trunk_tail = -1;
    bool descendant;
    if (!ParseAxis(&descendant)) {
      return Error("query must start with '/' or '//'");
    }
    SECXML_RETURN_NOT_OK(ParseStep(trunk_tail, descendant, &trunk_tail));
    while (pos_ < input_.size()) {
      if (!ParseAxis(&descendant)) {
        return Error("expected '/' or '//'");
      }
      SECXML_RETURN_NOT_OK(ParseStep(trunk_tail, descendant, &trunk_tail));
    }
    out_->returning_node = trunk_tail;
    return out_->Validate();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("XPath parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool ParseAxis(bool* descendant) {
    if (pos_ >= input_.size() || input_[pos_] != '/') return false;
    ++pos_;
    *descendant = false;
    if (pos_ < input_.size() && input_[pos_] == '/') {
      ++pos_;
      *descendant = true;
    }
    return true;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':' || c == '@';
  }

  Status ParseName(std::string* out) {
    if (pos_ < input_.size() && input_[pos_] == '*') {
      ++pos_;
      *out = "*";
      return Status::OK();
    }
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected name");
    *out = std::string(input_.substr(start, pos_ - start));
    return Status::OK();
  }

  int AddNode(int parent, bool descendant, std::string tag) {
    int id = static_cast<int>(out_->nodes.size());
    PatternNode node;
    node.tag = std::move(tag);
    node.descendant_axis = descendant;
    node.parent = parent;
    out_->nodes.push_back(std::move(node));
    if (parent >= 0) out_->nodes[parent].children.push_back(id);
    return id;
  }

  /// step := name predicate*; appends to the trunk.
  Status ParseStep(int parent, bool descendant, int* created) {
    std::string tag;
    SECXML_RETURN_NOT_OK(ParseName(&tag));
    int id = AddNode(parent, descendant, std::move(tag));
    SECXML_RETURN_NOT_OK(ParsePredicates(id));
    *created = id;
    return Status::OK();
  }

  /// predicate* — zero or more bracketed relpaths hanging off `id`.
  Status ParsePredicates(int id) {
    while (pos_ < input_.size() && input_[pos_] == '[') {
      ++pos_;
      SECXML_RETURN_NOT_OK(ParseRelPath(id));
      if (pos_ >= input_.size() || input_[pos_] != ']') {
        return Error("expected ']'");
      }
      ++pos_;
    }
    return Status::OK();
  }

  /// relpath := name predicates? (('/' | '//') name predicates?)*
  ///            ('=' quoted)?        — hangs off `parent`.
  /// Predicates nest recursively, so twigs like [a[b][c]/d] are supported.
  Status ParseRelPath(int parent) {
    if (depth_ > 32) return Error("predicates nested too deeply");
    ++depth_;
    Status st = ParseRelPathImpl(parent);
    --depth_;
    return st;
  }

  Status ParseRelPathImpl(int parent) {
    bool descendant = false;
    if (pos_ < input_.size() && input_[pos_] == '/') {
      // Allow an optional leading axis inside predicates, e.g. [.//x] style
      // is written [//x] in this subset.
      ParseAxis(&descendant);
    }
    std::string tag;
    SECXML_RETURN_NOT_OK(ParseName(&tag));
    int id = AddNode(parent, descendant, std::move(tag));
    SECXML_RETURN_NOT_OK(ParsePredicates(id));
    while (pos_ < input_.size() && input_[pos_] == '/') {
      ParseAxis(&descendant);
      SECXML_RETURN_NOT_OK(ParseName(&tag));
      id = AddNode(id, descendant, std::move(tag));
      SECXML_RETURN_NOT_OK(ParsePredicates(id));
    }
    if (pos_ < input_.size() && input_[pos_] == '=') {
      ++pos_;
      if (pos_ >= input_.size() || input_[pos_] != '\'') {
        return Error("expected quoted value");
      }
      ++pos_;
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != '\'') ++pos_;
      if (pos_ >= input_.size()) return Error("unterminated value");
      out_->nodes[id].value = std::string(input_.substr(start, pos_ - start));
      out_->nodes[id].has_value = true;
      ++pos_;
    }
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
  int depth_ = 0;
  PatternTree* out_;
};

}  // namespace

Status ParseXPath(std::string_view input, PatternTree* out) {
  return Parser(input, out).Run();
}

}  // namespace secxml
