#ifndef SECXML_QUERY_BATCH_EVALUATOR_H_
#define SECXML_QUERY_BATCH_EVALUATOR_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "core/secure_store.h"
#include "exec/exec_stats.h"
#include "query/evaluator.h"
#include "query/pattern_tree.h"
#include "query/query_cache.h"

namespace secxml {

/// One visibility equivalence class of a subject batch: every member has the
/// same codebook column, so every member's answer is byte-identical to the
/// class result — computed once and fanned out.
struct ClassEvalResult {
  /// Members in request order (first member is the representative).
  std::vector<SubjectId> subjects;
  EvalResult result;
};

/// Outcome of one multi-subject batch evaluation.
struct SubjectBatchResult {
  std::vector<ClassEvalResult> classes;
  /// Index into `classes`, parallel to the requested subject span.
  std::vector<size_t> class_of;
  /// Rollup: the sum of every class's result.exec. The batch counters
  /// (subjects_batched, classes_evaluated, class_dedup_hits) live in a
  /// "batch" operator attributed to each chunk's first class, so the sum
  /// identity holds by construction; access_only_fetches staying 0 is the
  /// zero-extra-I/O claim at batch granularity.
  ExecStats exec;

  /// The (shared) evaluation result for the i-th requested subject.
  const EvalResult& ResultFor(size_t subject_index) const {
    return classes[class_of[subject_index]].result;
  }
};

/// The post-scan, per-class finalize shared by BatchEvaluator and the
/// sharded coordinator (src/serve): applies the view-semantics visibility
/// filter (the class representative's hidden intervals, served from
/// `store`'s per-epoch cache) and the ε-STD join to the class's projected
/// matches, appending the "visibility" and "join" operators to r->operators
/// and collecting r->answers. The caller pushes the scan (and any merge)
/// operators before, batch counters after, then rolls up.
Status FinalizeClassEval(SecureStore* store, const PreparedQuery& pq,
                         const EvalOptions& options, SubjectId representative,
                         std::vector<std::vector<FragmentMatch>>* matches,
                         EvalResult* r);

/// Multi-subject batch evaluator: answers one twig query for a whole batch
/// of subjects with one structural scan per ≤64-class chunk.
///
///  1. Subjects are grouped into visibility equivalence classes by codebook
///     column (GroupSubjectsByColumn). Identical columns imply identical
///     page verdicts, node checks, and hidden intervals, hence
///     byte-identical answers: each class is evaluated once.
///  2. Each chunk of up to kMaxBatchClasses classes runs the NoK structural
///     scan ONCE through MultiSubjectMatcher, testing the whole chunk per
///     node with a word-wide AND and skipping pages only when dead for
///     every live class.
///  3. The post-scan pipeline (view-semantics visibility filter, ε-STD
///     joins, answer collection) is the per-subject evaluator's own code
///     (FilterMatchesVisible/JoinMatches), run per class on the projected
///     matches — so per-class results equal QueryEvaluator::Evaluate for
///     the class representative, element for element.
///
/// Under AccessSemantics::kNone answers are subject-independent: the whole
/// batch is one class evaluated by the per-subject path.
///
/// EvalOptions::subject is ignored (the span governs) and
/// EvalOptions::use_view does not apply: the batch cursor's compiled mask
/// tables are the batch analogue of the subject-compiled access view.
/// With caches attached (DESIGN.md §14), each class probes the ResultCache
/// by its column fingerprint before evaluation (non-blocking — a class in
/// flight elsewhere is simply evaluated live) and publishes after; only the
/// miss classes enter the chunked scan, so a batch whose classes were all
/// answered by earlier traffic does no I/O at all. Batch counters
/// (subjects_batched, classes_evaluated, class_dedup_hits) cover the
/// classes actually evaluated; served classes are visible as
/// result_cache_hits on their own "cache" operator.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(SecureStore* store, QueryCaches caches = {})
      : store_(store), caches_(caches) {}

  Result<SubjectBatchResult> Evaluate(const PatternTree& pattern,
                                      std::span<const SubjectId> subjects,
                                      const EvalOptions& options);

 private:
  SecureStore* store_;
  QueryCaches caches_;
};

}  // namespace secxml

#endif  // SECXML_QUERY_BATCH_EVALUATOR_H_
