#include "query/query_driver.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/timer.h"
#include "query/xpath_parser.h"

namespace secxml {

void AggregateBatchStats(BatchResult* batch) {
  const std::vector<QueryOutcome>& outcomes = batch->outcomes;
  if (outcomes.empty()) return;
  std::vector<int64_t> latencies;
  latencies.reserve(outcomes.size());
  int64_t total = 0;
  for (const QueryOutcome& out : outcomes) {
    if (!out.status.ok()) {
      ++batch->stats.failed;
      if (batch->stats.first_error.ok()) {
        batch->stats.first_error = out.status;
      }
    } else {
      batch->stats.exec += out.result.exec;
    }
    latencies.push_back(out.latency_micros);
    total += out.latency_micros;
  }
  batch->stats.mean_latency_micros =
      static_cast<double>(total) / static_cast<double>(outcomes.size());
  std::sort(latencies.begin(), latencies.end());
  batch->stats.p95_latency_micros =
      latencies[std::min(latencies.size() - 1, latencies.size() * 95 / 100)];
  batch->stats.max_latency_micros = latencies.back();
}

BatchResult QueryDriver::Run(const std::vector<QueryJob>& jobs) {
  BatchResult batch;
  batch.outcomes.resize(jobs.size());
  if (jobs.empty()) return batch;

  IoStatsSnapshot before = store_->io_stats().Snapshot();
  std::atomic<size_t> next{0};

  auto worker = [&]() {
    QueryEvaluator eval(store_);
    EvalOptions eopts;
    eopts.semantics = options_.semantics;
    eopts.page_skip = options_.page_skip;
    eopts.use_view = options_.use_view;
    eopts.ordered_siblings = options_.ordered_siblings;
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) break;
      eopts.subject = jobs[i].subject;
      Timer timer;
      Result<EvalResult> r = EvaluateWithCaches(store_, &eval, jobs[i].pattern,
                                                eopts, options_.caches);
      QueryOutcome& out = batch.outcomes[i];
      out.latency_micros = timer.ElapsedMicros();
      if (r.ok()) {
        out.result = std::move(*r);
      } else {
        out.status = r.status();
      }
    }
  };

  size_t workers = std::clamp<size_t>(options_.num_threads, 1, jobs.size());
  Timer wall;
  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t t = 0; t < workers; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  batch.stats.wall_micros = wall.ElapsedMicros();
  batch.stats.io = store_->io_stats().Snapshot() - before;
  AggregateBatchStats(&batch);
  return batch;
}

Result<SubjectBatchResult> QueryDriver::EvaluateForSubjects(
    const PatternTree& pattern, std::span<const SubjectId> subjects) {
  BatchEvaluator eval(store_, options_.caches);
  EvalOptions eopts;
  eopts.semantics = options_.semantics;
  eopts.page_skip = options_.page_skip;
  eopts.ordered_siblings = options_.ordered_siblings;
  return eval.Evaluate(pattern, subjects, eopts);
}

Result<std::vector<QueryJob>> QueryDriver::MakeJobs(
    const std::vector<std::pair<SubjectId, std::string>>& queries) {
  std::vector<QueryJob> jobs;
  jobs.reserve(queries.size());
  for (const auto& [subject, xpath] : queries) {
    QueryJob job;
    job.subject = subject;
    SECXML_RETURN_NOT_OK(ParseXPath(xpath, &job.pattern));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace secxml
