#ifndef SECXML_QUERY_MATCHER_H_
#define SECXML_QUERY_MATCHER_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/secure_store.h"
#include "core/subject_view.h"
#include "query/decomposer.h"

namespace secxml {

/// One successful match of a NoK fragment at a data root.
struct FragmentMatch {
  /// Data node bound to the fragment root, with its subtree end.
  NodeId root = 0;
  NodeId root_end = 0;
  /// Bindings for each designated pattern node (parallel to the designated
  /// list passed to MatchFragment): every data node bound to it in this
  /// match, as (node, subtree end) pairs in discovery order.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> bindings;
};

/// Navigational NoK pattern matcher (paper Algorithm 1). The non-secure
/// mode is the original NoK matching; the secure mode is ε-NoK: each child
/// is ACCESS-checked as soon as its record is loaded (no extra I/O, since
/// the DOL code lives in the same page) and recursion into inaccessible
/// children is skipped. With `page_skip` on, runs of children inside pages
/// whose in-memory header proves them wholly inaccessible are skipped
/// without loading those pages at all (Section 3.3).
class NokMatcher {
 public:
  struct Options {
    bool secure = false;
    SubjectId subject = 0;
    bool page_skip = true;
    /// Run the secure checks through the subject-compiled access view
    /// (SubjectView): the inner ACCESS test becomes one byte load, page
    /// verdicts come precompiled, and sibling skipping jumps whole dead-page
    /// runs through the skip index. Results are identical to the direct
    /// codebook/header path; only the lookup machinery changes. Ignored
    /// unless `secure`.
    bool use_view = true;
    /// Ordered pattern trees (the paper's footnote: "we use ordered pattern
    /// tree in real experiments"): sibling pattern nodes must bind to data
    /// children in strictly ascending document order. Matching remains
    /// complete — feasibility windows are computed by forward/backward
    /// greedy passes, and designated bindings are collected from every
    /// data child that participates in some valid ordered assignment.
    bool ordered_siblings = false;
  };

  NokMatcher(SecureStore* store, const Options& options)
      : store_(store), options_(options) {}

  /// Finds all matches of `fragment` in the document. `designated` lists
  /// fragment-local pattern node indices whose bindings must be recorded
  /// (join sources and/or the returning node). In secure mode the fragment
  /// root binding must itself be accessible (Algorithm 1's pre-condition).
  Status MatchFragment(const QueryFragment& fragment,
                       const std::vector<int>& designated,
                       std::vector<FragmentMatch>* out);

 private:
  /// Resolved per-pattern-node match state for the current fragment.
  struct ResolvedPattern {
    TagId tag = kInvalidTag;  // kInvalidTag + !wildcard => cannot match
    bool wildcard = false;
    bool has_value = false;
    const std::string* value = nullptr;
    int designated_slot = -1;  // index into FragmentMatch::bindings or -1
    /// True if this pattern node's subtree contains a designated node. Such
    /// children are not retired after their first successful match
    /// (Algorithm 1 line 11 removes them): they keep matching later data
    /// children so that *all* bindings of designated nodes are collected,
    /// which the join and the result set require.
    bool contains_designated = false;
    const std::vector<int>* children = nullptr;
  };

  bool TagValueMatches(const ResolvedPattern& p, const NokRecord& rec) const;

  /// Algorithm 1 (ε-)NPM. `pnode` is the fragment-local pattern node already
  /// bound to data node `sroot` (record `srec`); returns whether the whole
  /// pattern subtree matches, appending designated bindings to `match`
  /// (rolled back on failure).
  Result<bool> Npm(int pnode, NodeId sroot, const NokRecord& srec,
                   FragmentMatch* match);

  /// Ordered-sibling variant of the children-matching loop: pattern
  /// children must bind to strictly ascending data children.
  Result<bool> MatchChildrenOrdered(const std::vector<int>& pchildren,
                                    NodeId sroot, const NokRecord& srec,
                                    FragmentMatch* match);

  /// Next sibling of an inaccessible child `u` at `depth` within the parent
  /// extent `limit`, loading no wholly-inaccessible page (ε-NoK page skip).
  Result<NodeId> SkipToNextSibling(NodeId u, uint16_t depth, NodeId limit);

  /// Secure record fetch for node `u` on the page at `ordinal`: on a
  /// check-free page (every node accessible to the subject — knowable only
  /// through the compiled view) the access code is never decoded and the
  /// ACCESS check is skipped; otherwise the record and code come from one
  /// fetch and `*accessible` is the check's result.
  Result<NokRecord> SecureFetch(size_t ordinal, NodeId u, bool* accessible);

  /// The ε-NoK inner ACCESS check: one byte load through the compiled view
  /// when available, else the codebook bit probe.
  bool Accessible(uint32_t code) const {
    return view_ != nullptr
               ? view_->CodeAccessible(code)
               : store_->codebook().Accessible(code, options_.subject);
  }

  /// Header page-skip test: precompiled verdict when the view is active,
  /// else recomputed from the header and codebook.
  bool PageDead(size_t ordinal) const {
    return view_ != nullptr
               ? view_->PageWhollyDead(ordinal)
               : store_->PageWhollyInaccessible(ordinal, options_.subject);
  }

  /// Counts `ordinal` toward IoStats::pages_skipped, once per distinct page
  /// per MatchFragment call — the candidate filter, the inline sibling skip,
  /// and SkipToNextSibling can all reject the same page, and each avoided
  /// page load should be counted exactly once.
  void CountSkippedPage(size_t ordinal) {
    if (ordinal < skip_counted_.size() && !skip_counted_[ordinal]) {
      skip_counted_[ordinal] = 1;
      ++store_->nok()->buffer_pool()->mutable_stats()->pages_skipped;
    }
  }

  SecureStore* store_;
  Options options_;
  std::vector<ResolvedPattern> resolved_;
  /// Compiled view snapshot for the current MatchFragment call (null when
  /// disabled). The shared_ptr keeps the snapshot alive even if the store's
  /// cache is invalidated mid-evaluation.
  std::shared_ptr<const SubjectView> view_holder_;
  const SubjectView* view_ = nullptr;
  /// Reusable rollback-marks stack: Npm and the ordered-children feasibility
  /// probe push one frame of per-binding sizes instead of allocating a fresh
  /// vector per recursion.
  std::vector<size_t> mark_stack_;
  /// Per-MatchFragment bitmap of pages already counted as skipped.
  std::vector<char> skip_counted_;
};

}  // namespace secxml

#endif  // SECXML_QUERY_MATCHER_H_
