#ifndef SECXML_QUERY_MATCHER_H_
#define SECXML_QUERY_MATCHER_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/secure_store.h"
#include "exec/exec_stats.h"
#include "exec/secure_cursor.h"
#include "query/decomposer.h"

namespace secxml {

/// One successful match of a NoK fragment at a data root.
struct FragmentMatch {
  /// Data node bound to the fragment root, with its subtree end.
  NodeId root = 0;
  NodeId root_end = 0;
  /// Bindings for each designated pattern node (parallel to the designated
  /// list passed to MatchFragment): every data node bound to it in this
  /// match, as (node, subtree end) pairs in discovery order.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> bindings;
};

/// Navigational NoK pattern matcher (paper Algorithm 1). The non-secure
/// mode is the original NoK matching; the secure mode is ε-NoK: each child
/// is ACCESS-checked as soon as its record is loaded (no extra I/O, since
/// the DOL code lives in the same page) and recursion into inaccessible
/// children is skipped. With `page_skip` on, runs of children inside pages
/// whose in-memory header proves them wholly inaccessible are skipped
/// without loading those pages at all (Section 3.3).
///
/// All record access and every ACCESS check goes through the matcher's
/// SecureCursor (src/exec) — the matcher owns Algorithm 1's control flow,
/// the cursor owns the fetch/decode/check/skip pipeline and its ExecStats.
class NokMatcher {
 public:
  struct Options {
    bool secure = false;
    SubjectId subject = 0;
    bool page_skip = true;
    /// Run the secure checks through the subject-compiled access view
    /// (SubjectView): the inner ACCESS test becomes one byte load, page
    /// verdicts come precompiled, and sibling skipping jumps whole dead-page
    /// runs through the skip index. Results are identical to the direct
    /// codebook/header path; only the lookup machinery changes. Ignored
    /// unless `secure`.
    bool use_view = true;
    /// Ordered pattern trees (the paper's footnote: "we use ordered pattern
    /// tree in real experiments"): sibling pattern nodes must bind to data
    /// children in strictly ascending document order. Matching remains
    /// complete — feasibility windows are computed by forward/backward
    /// greedy passes, and designated bindings are collected from every
    /// data child that participates in some valid ordered assignment.
    bool ordered_siblings = false;
    /// Candidate-root restriction for sharded scatter (DESIGN.md §13): only
    /// fragment candidates with candidate_begin <= root < candidate_end are
    /// matched. The walk below an admitted candidate is NOT restricted (a
    /// match may span past candidate_end), so a coordinator that tiles
    /// [0, num_nodes) across shards reproduces the unrestricted match
    /// stream exactly, each match found by exactly one shard.
    NodeId candidate_begin = 0;
    NodeId candidate_end = kInvalidNode;
  };

  NokMatcher(SecureStore* store, const Options& options)
      : store_(store),
        options_(options),
        cursor_(store, SecureCursor::Options{options.secure, options.subject,
                                             options.page_skip,
                                             options.use_view}) {}

  /// Finds all matches of `fragment` in the document. `designated` lists
  /// fragment-local pattern node indices whose bindings must be recorded
  /// (join sources and/or the returning node). In secure mode the fragment
  /// root binding must itself be accessible (Algorithm 1's pre-condition).
  Status MatchFragment(const QueryFragment& fragment,
                       const std::vector<int>& designated,
                       std::vector<FragmentMatch>* out);

  /// Cursor counters accumulated across every MatchFragment call on this
  /// matcher (the evaluator constructs one matcher per query, so this is
  /// the query's scan-operator contribution).
  const ExecStats& exec_stats() const { return cursor_.stats(); }

 private:
  /// Resolved per-pattern-node match state for the current fragment.
  struct ResolvedPattern {
    TagId tag = kInvalidTag;  // kInvalidTag + !wildcard => cannot match
    bool wildcard = false;
    bool has_value = false;
    const std::string* value = nullptr;
    int designated_slot = -1;  // index into FragmentMatch::bindings or -1
    /// True if this pattern node's subtree contains a designated node. Such
    /// children are not retired after their first successful match
    /// (Algorithm 1 line 11 removes them): they keep matching later data
    /// children so that *all* bindings of designated nodes are collected,
    /// which the join and the result set require.
    bool contains_designated = false;
    const std::vector<int>* children = nullptr;
  };

  bool TagValueMatches(const ResolvedPattern& p, const NokRecord& rec) const;

  /// Algorithm 1 (ε-)NPM. `pnode` is the fragment-local pattern node already
  /// bound to data node `sroot` (record `srec`); returns whether the whole
  /// pattern subtree matches, appending designated bindings to `match`
  /// (rolled back on failure).
  Result<bool> Npm(int pnode, NodeId sroot, const NokRecord& srec,
                   FragmentMatch* match);

  /// Ordered-sibling variant of the children-matching loop: pattern
  /// children must bind to strictly ascending data children.
  Result<bool> MatchChildrenOrdered(const std::vector<int>& pchildren,
                                    NodeId sroot, const NokRecord& srec,
                                    FragmentMatch* match);

  SecureStore* store_;
  Options options_;
  SecureCursor cursor_;
  std::vector<ResolvedPattern> resolved_;
  /// Reusable rollback-marks stack: Npm and the ordered-children feasibility
  /// probe push one frame of per-binding sizes instead of allocating a fresh
  /// vector per recursion.
  std::vector<size_t> mark_stack_;
};

}  // namespace secxml

#endif  // SECXML_QUERY_MATCHER_H_
