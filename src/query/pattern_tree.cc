#include "query/pattern_tree.h"

namespace secxml {

Status PatternTree::Validate() const {
  if (nodes.empty()) return Status::InvalidArgument("empty pattern");
  if (nodes[0].parent != -1) {
    return Status::InvalidArgument("node 0 must be the pattern root");
  }
  if (returning_node < 0 ||
      returning_node >= static_cast<int>(nodes.size())) {
    return Status::InvalidArgument("returning node out of range");
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    const PatternNode& n = nodes[i];
    if (n.tag.empty()) return Status::InvalidArgument("empty tag test");
    if (i > 0) {
      if (n.parent < 0 || n.parent >= static_cast<int>(nodes.size())) {
        return Status::InvalidArgument("bad parent link");
      }
      if (static_cast<size_t>(n.parent) >= i) {
        return Status::InvalidArgument("parent must precede child");
      }
    }
    for (int c : n.children) {
      if (c <= static_cast<int>(i) || c >= static_cast<int>(nodes.size()) ||
          nodes[c].parent != static_cast<int>(i)) {
        return Status::InvalidArgument("inconsistent child link");
      }
    }
  }
  return Status::OK();
}

namespace {

void AppendNode(const PatternTree& t, int i, std::string* out) {
  const PatternNode& n = t.nodes[i];
  out->append(n.descendant_axis ? "//" : "/");
  out->append(n.tag);
  if (n.has_value) {
    out->append("='");
    out->append(n.value);
    out->push_back('\'');
  }
  if (i == t.returning_node && t.nodes.size() > 1) out->push_back('$');
  for (int c : n.children) {
    out->push_back('[');
    AppendNode(t, c, out);
    out->push_back(']');
  }
}

}  // namespace

std::string PatternTree::ToString() const {
  std::string out;
  if (!nodes.empty()) AppendNode(*this, 0, &out);
  return out;
}

}  // namespace secxml
