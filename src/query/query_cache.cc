#include "query/query_cache.h"

#include <algorithm>
#include <cstdlib>

#include "nok/nok_store.h"

namespace secxml {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendStr(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

}  // namespace

bool ResultCacheDisabled() {
  static const bool disabled = [] {
    const char* v = std::getenv("SECXML_DISABLE_RESULT_CACHE");
    return v != nullptr && v[0] == '1';
  }();
  return disabled;
}

cache::ResultCache* QueryCaches::ResultsEnabled() const {
  return ResultCacheDisabled() ? nullptr : results;
}

std::string NormalizePattern(const PatternTree& pattern) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(pattern.nodes.size()));
  for (const PatternNode& n : pattern.nodes) {
    AppendStr(&out, n.tag);
    out.push_back(n.has_value ? 1 : 0);
    if (n.has_value) AppendStr(&out, n.value);
    out.push_back(n.descendant_axis ? 1 : 0);
    AppendU32(&out, static_cast<uint32_t>(n.parent));
  }
  AppendU32(&out, static_cast<uint32_t>(pattern.returning_node));
  return out;
}

cache::ResultKey MakeResultKey(const std::string& normalized_pattern,
                               const ColumnFingerprint& column,
                               AccessSemantics semantics, bool ordered) {
  cache::ResultKey key;
  key.column_hi = column.hi;
  key.column_lo = column.lo;
  key.query = normalized_pattern;
  key.semantics = static_cast<uint8_t>(semantics);
  key.ordered = ordered;
  return key;
}

void QueryFootprint(SecureStore* store, const PreparedQuery& pq,
                    AccessSemantics semantics, uint64_t* begin, uint64_t* end,
                    bool* acl_independent) {
  *begin = 0;
  *end = 0;
  *acl_independent = semantics == AccessSemantics::kNone;
  if (*acl_independent) return;

  // Hull of every pattern node's candidate range. The matcher consults
  // accessibility only for nodes that pass a pattern tag test (binding
  // semantics binds only pattern nodes; the view filter only moves match
  // roots, handled below), so nodes outside every tag's posting range
  // cannot influence the answer through their ACLs.
  NokStore* nok = store->nok();
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  bool any = false;
  for (const QueryFragment& frag : pq.query.fragments) {
    for (const PatternNode& n : frag.tree.nodes) {
      if (n.tag == "*") {
        lo = 0;
        hi = nok->num_nodes();
        any = true;
        continue;
      }
      TagId tag = nok->tags().Lookup(n.tag);
      if (tag == kInvalidTag) continue;  // tag absent: no candidates at all
      const std::vector<NodeId>& postings = nok->Postings(tag);
      if (postings.empty()) continue;
      lo = std::min<uint64_t>(lo, postings.front());
      hi = std::max<uint64_t>(hi, static_cast<uint64_t>(postings.back()) + 1);
      any = true;
    }
  }
  if (!any) {
    // No pattern tag exists in the document: the answer is empty and no
    // ACL change can alter that (only structural updates could, and those
    // flush the cache).
    *acl_independent = true;
    return;
  }
  // View semantics: a match root is suppressed when any *ancestor* is
  // inaccessible, and ancestors precede their subtree in document order —
  // so the dependency range extends to the document start.
  *begin = semantics == AccessSemantics::kView ? 0 : lo;
  *end = hi;
}

void AttachResultCacheInvalidation(SecureStore* store,
                                   cache::ResultCache* cache) {
  store->AddCommitHook([cache](const SecureStore::CommitEvent& ev) {
    switch (ev.kind) {
      case SecureStore::CommitEvent::Kind::kAclPatch:
        cache->InvalidateAclRange(ev.begin, ev.end, ev.epoch);
        break;
      case SecureStore::CommitEvent::Kind::kSubjectAdded:
        // Existing columns (and therefore fingerprints and answers) are
        // untouched by an appended subject; nothing to do.
        break;
      case SecureStore::CommitEvent::Kind::kStructural:
      case SecureStore::CommitEvent::Kind::kShapeChange:
        cache->Flush(ev.epoch);
        break;
    }
  });
}

Result<std::shared_ptr<const PreparedQuery>> ResolvePlan(
    const PatternTree& pattern, const std::string& normalized,
    QueryPlanCache* pcache) {
  std::shared_ptr<const PreparedQuery> plan;
  if (pcache != nullptr) plan = pcache->Get(normalized);
  if (plan == nullptr) {
    auto fresh = std::make_shared<PreparedQuery>();
    SECXML_RETURN_NOT_OK(PrepareQuery(pattern, fresh.get()));
    plan = pcache != nullptr
               ? pcache->Insert(normalized, std::move(fresh))
               : std::shared_ptr<const PreparedQuery>(std::move(fresh));
  }
  return plan;
}

EvalResult MakeCachedResult(
    const std::shared_ptr<const cache::CacheableResult>& payload,
    uint32_t waits) {
  const auto* cached = static_cast<const CachedEvalResult*>(payload.get());
  EvalResult result;
  result.answers = cached->answers;
  result.fragment_matches = cached->fragment_matches;
  ExecStats cache_stats;
  cache_stats.result_cache_hits = 1;
  cache_stats.single_flight_waits = waits;
  // The probing caller pinned a snapshot to validate the entry against;
  // keep the one-pin-per-query accounting the live path reports.
  cache_stats.epoch_pins = 1;
  result.operators.push_back({"cache", cache_stats});
  result.exec = RollUp(result.operators);
  return result;
}

std::shared_ptr<const CachedEvalResult> MakeCachePayload(
    const EvalResult& result) {
  auto payload = std::make_shared<CachedEvalResult>();
  payload->answers = result.answers;
  payload->fragment_matches = result.fragment_matches;
  payload->saved_exec = result.exec;
  return payload;
}

Result<EvalResult> EvaluateWithCaches(SecureStore* store, QueryEvaluator* eval,
                                      const PatternTree& pattern,
                                      const EvalOptions& options,
                                      const QueryCaches& caches) {
  cache::ResultCache* rcache = caches.ResultsEnabled();
  QueryPlanCache* pcache = caches.plans;

  std::string normalized;
  if (rcache != nullptr || pcache != nullptr) {
    normalized = NormalizePattern(pattern);
  }
  SECXML_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> plan,
                          ResolvePlan(pattern, normalized, pcache));
  if (rcache == nullptr) return eval->EvaluatePrepared(*plan, options);

  // Pin before probing so the probe epoch and the (possible) live
  // evaluation agree on one snapshot — EvaluatePrepared's inner pin adopts
  // this one.
  SecureStore::SnapshotPin pin(store);
  ColumnFingerprint fp;  // {0,0} when the answer is subject-independent
  if (options.semantics != AccessSemantics::kNone) {
    fp = store->SubjectColumnFingerprint(options.subject);
  }
  cache::ResultKey key = MakeResultKey(normalized, fp, options.semantics,
                                       options.ordered_siblings);
  cache::ResultCache::Probe probe = rcache->GetOrWait(key, pin.epoch());
  if (probe.outcome == cache::ResultCache::ProbeOutcome::kHit) {
    return MakeCachedResult(probe.payload, probe.waits);
  }
  FlightGuard flight(rcache, key);
  Result<EvalResult> r = eval->EvaluatePrepared(*plan, options);
  if (!r.ok()) return r;  // the guard abandons the flight

  cache::ResultCache::Entry entry;
  entry.payload = MakeCachePayload(*r);
  entry.epoch = pin.epoch();
  QueryFootprint(store, *plan, options.semantics, &entry.begin, &entry.end,
                 &entry.acl_independent);
  const bool admitted = flight.Publish(std::move(entry));

  ExecStats cache_stats;
  cache_stats.result_cache_misses = 1;
  cache_stats.single_flight_waits = probe.waits;
  if (!admitted) cache_stats.result_cache_invalidations = 1;
  r->operators.push_back({"cache", cache_stats});
  r->exec = RollUp(r->operators);
  return r;
}

}  // namespace secxml
