#ifndef SECXML_QUERY_QUERY_DRIVER_H_
#define SECXML_QUERY_QUERY_DRIVER_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/secure_store.h"
#include "exec/exec_stats.h"
#include "query/batch_evaluator.h"
#include "query/evaluator.h"
#include "query/pattern_tree.h"
#include "query/query_cache.h"
#include "storage/io_stats.h"

namespace secxml {

/// One unit of work for the parallel driver: one subject evaluating one twig
/// pattern against the shared store.
struct QueryJob {
  SubjectId subject = 0;
  PatternTree pattern;
};

/// Driver-wide evaluation settings; per-job settings live in QueryJob.
struct QueryDriverOptions {
  /// Worker threads. 1 runs the batch inline on the calling thread (the
  /// serial baseline); the driver never spawns more workers than jobs.
  size_t num_threads = 1;
  AccessSemantics semantics = AccessSemantics::kBinding;
  bool page_skip = true;
  /// Per-worker evaluators run through subject-compiled access views (the
  /// store caches one per subject, so a batch with many jobs per subject
  /// compiles each view once). Identical answers either way.
  bool use_view = true;
  bool ordered_siblings = false;
  /// Cross-request caches (DESIGN.md §14). Both default off (null): every
  /// existing call site keeps its exact pre-cache behavior. With a result
  /// cache attached, workers probe (class fingerprint, normalized query)
  /// before evaluating and publish after, with single-flight collapsing of
  /// concurrent misses; with a plan cache attached, PrepareQuery runs once
  /// per distinct pattern instead of once per job.
  QueryCaches caches;
};

/// Outcome of one job, index-aligned with the submitted batch.
struct QueryOutcome {
  Status status = Status::OK();
  EvalResult result;
  int64_t latency_micros = 0;
};

/// Aggregates over one batch run.
struct BatchStats {
  int64_t wall_micros = 0;
  double mean_latency_micros = 0;
  int64_t p95_latency_micros = 0;
  int64_t max_latency_micros = 0;
  size_t failed = 0;
  /// Status of the first failed outcome in batch order (OK when failed == 0).
  /// A failed query never poisons the batch; this is a summary for callers
  /// that only look at stats.
  Status first_error = Status::OK();
  /// Buffer-pool traffic incurred by this batch (delta of the store's
  /// counters across the run).
  IoStatsSnapshot io;
  /// Execution-counter rollup over the batch's successful outcomes (sum of
  /// each EvalResult's operator rollup). `exec.access_only_fetches` staying
  /// 0 across a whole batch is the paper's zero-extra-I/O claim at batch
  /// granularity.
  ExecStats exec;

  double QueriesPerSecond(size_t num_queries) const {
    return wall_micros > 0
               ? static_cast<double>(num_queries) * 1e6 /
                     static_cast<double>(wall_micros)
               : 0.0;
  }
};

struct BatchResult {
  std::vector<QueryOutcome> outcomes;
  BatchStats stats;
};

/// Fills `batch->stats` failure, exec, and latency aggregates from its
/// outcomes: failed count with first_error in batch order, the exec rollup
/// over successful outcomes, and latency mean/p95/max. A failed outcome
/// never poisons the batch — whether a whole query failed (QueryDriver) or
/// one shard of its scatter did (ShardCoordinator), the other outcomes keep
/// their results and stats. wall_micros and io are the caller's to fill
/// (they depend on how the batch ran). No-op on an empty batch.
void AggregateBatchStats(BatchResult* batch);

/// Parallel secure-query driver: evaluates a batch of (subject, pattern)
/// jobs over one shared SecureStore on a fixed-size worker pool. Each worker
/// owns its QueryEvaluator/NokMatcher state; the store is only read (the
/// thread-safe surface documented on SecureStore/NokStore/BufferPool), so
/// per-query results are identical to evaluating the same jobs serially.
/// Jobs are handed out through an atomic cursor, so long and short queries
/// balance across workers.
///
/// The driver itself is stateless between Run() calls; do not run store
/// updates (ACL or structural) concurrently with Run().
class QueryDriver {
 public:
  QueryDriver(SecureStore* store, const QueryDriverOptions& options)
      : store_(store), options_(options) {}

  /// Evaluates the batch; outcomes[i] corresponds to jobs[i]. A failed
  /// query fails only its own outcome, never the batch.
  BatchResult Run(const std::vector<QueryJob>& jobs);

  /// Evaluates one pattern for a whole batch of subjects with the
  /// word-parallel batch pipeline (BatchEvaluator): subjects collapse into
  /// visibility equivalence classes, each ≤64-class chunk shares one
  /// structural scan, and every subject's answer is byte-identical to a
  /// per-subject Run() of the same query. Uses the driver's semantics,
  /// page_skip, and ordered_siblings settings (use_view has no batch
  /// analogue; the compiled mask tables play that role).
  Result<SubjectBatchResult> EvaluateForSubjects(
      const PatternTree& pattern, std::span<const SubjectId> subjects);

  /// Convenience: builds jobs from (subject, XPath) pairs. Fails on the
  /// first unparsable query.
  static Result<std::vector<QueryJob>> MakeJobs(
      const std::vector<std::pair<SubjectId, std::string>>& queries);

 private:
  SecureStore* store_;
  QueryDriverOptions options_;
};

}  // namespace secxml

#endif  // SECXML_QUERY_QUERY_DRIVER_H_
