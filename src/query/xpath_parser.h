#ifndef SECXML_QUERY_XPATH_PARSER_H_
#define SECXML_QUERY_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/pattern_tree.h"

namespace secxml {

/// Parses the XPath subset used by the paper's workload (Table 1) into a
/// pattern tree:
///
///   path      := ('/' | '//') step ( ('/' | '//') step )*
///   step      := name predicate*
///   predicate := '[' ('/' | '//')? step ( ('/' | '//') step )*
///                ( '=' '\'' text '\'' )? ']'
///   name      := XML name or '*'
///
/// Predicates nest (e.g. /a[b[c][d]/e]//f), each bracketed path hanging off
/// the preceding step as an existence branch; a trailing ='value' constrains
/// the text of the branch's last step.
///
/// The returning node is the last step of the trunk (outside predicates).
/// A leading '/' anchors the first step at the document root; a leading
/// '//' lets it match anywhere.
Status ParseXPath(std::string_view input, PatternTree* out);

}  // namespace secxml

#endif  // SECXML_QUERY_XPATH_PARSER_H_
