#ifndef SECXML_QUERY_STRUCTURAL_JOIN_H_
#define SECXML_QUERY_STRUCTURAL_JOIN_H_

#include <utility>
#include <vector>

#include "core/accessibility_map.h"
#include "exec/exec_stats.h"
#include "xml/document.h"

namespace secxml {

/// An element of a structural-join input list: a data node plus its subtree
/// end (node + subtree size), so ancestorship is a pure interval test.
struct JoinItem {
  NodeId node = 0;
  NodeId end = 0;
  bool operator==(const JoinItem&) const = default;
};

// Each function takes an optional ExecStats into which it counts the items
// it consumed (nodes_scanned); the evaluator attributes these to its "join"
// and "visibility" operators.

/// Stack-Tree-Desc structural join (Al-Khalifa et al., ICDE 2002), the
/// algorithm the paper's ε-STD secure join extends (Section 4.2).
/// Inputs must be sorted by node id (document order); `ancestors` may
/// contain nested items. Returns all (ancestor, descendant) pairs with the
/// descendant strictly inside the ancestor's subtree, sorted by descendant.
std::vector<std::pair<NodeId, NodeId>> StackTreeDesc(
    const std::vector<JoinItem>& ancestors,
    const std::vector<NodeId>& descendants, ExecStats* stats = nullptr);

/// Semijoin form: the descendants that have at least one ancestor in
/// `ancestors`. Inputs sorted; output sorted and duplicate-free.
std::vector<NodeId> SemiJoinDescendants(const std::vector<JoinItem>& ancestors,
                                        const std::vector<NodeId>& descendants,
                                        ExecStats* stats = nullptr);

/// Semijoin form: the ancestors that contain at least one descendant.
std::vector<JoinItem> SemiJoinAncestors(const std::vector<JoinItem>& ancestors,
                                        const std::vector<NodeId>& descendants,
                                        ExecStats* stats = nullptr);

/// Removes the nodes falling inside any of the `hidden` intervals (sorted,
/// disjoint). This is how ε-STD enforces the Gabillon-Bruno view semantics:
/// a binding inside a hidden subtree cannot contribute answers.
std::vector<NodeId> FilterVisible(const std::vector<NodeInterval>& hidden,
                                  const std::vector<NodeId>& nodes,
                                  ExecStats* stats = nullptr);

/// JoinItem overload of FilterVisible.
std::vector<JoinItem> FilterVisibleItems(
    const std::vector<NodeInterval>& hidden, const std::vector<JoinItem>& items,
    ExecStats* stats = nullptr);

}  // namespace secxml

#endif  // SECXML_QUERY_STRUCTURAL_JOIN_H_
