#include "query/decomposer.h"

#include <unordered_map>

namespace secxml {

Status Decompose(const PatternTree& pattern, DecomposedQuery* out) {
  SECXML_RETURN_NOT_OK(pattern.Validate());
  out->fragments.clear();
  out->returning_fragment = -1;

  // Pattern node id -> (fragment index, local index).
  std::vector<std::pair<int, int>> location(pattern.nodes.size(), {-1, -1});

  // Pattern nodes are in preorder (parents precede children), so one sweep
  // assigns every node to a fragment.
  for (size_t i = 0; i < pattern.nodes.size(); ++i) {
    const PatternNode& pn = pattern.nodes[i];
    int frag_idx;
    int local_parent = -1;
    if (i == 0 || pn.descendant_axis) {
      // Starts a new fragment.
      frag_idx = static_cast<int>(out->fragments.size());
      out->fragments.emplace_back();
      QueryFragment& frag = out->fragments.back();
      if (i == 0) {
        frag.parent_fragment = -1;
        frag.root_anchored = !pn.descendant_axis;
      } else {
        auto [pf, pl] = location[pn.parent];
        frag.parent_fragment = pf;
        frag.source_in_parent = pl;
      }
    } else {
      auto [pf, pl] = location[pn.parent];
      frag_idx = pf;
      local_parent = pl;
    }
    QueryFragment& frag = out->fragments[frag_idx];
    int local = static_cast<int>(frag.tree.nodes.size());
    PatternNode copy = pn;
    copy.parent = local_parent;
    copy.children.clear();
    if (local == 0) {
      // The incoming axis is recorded on the fragment root for reference.
      copy.descendant_axis = pn.descendant_axis;
    } else {
      copy.descendant_axis = false;
      frag.tree.nodes[local_parent].children.push_back(local);
    }
    frag.tree.nodes.push_back(std::move(copy));
    frag.orig_ids.push_back(static_cast<int>(i));
    location[i] = {frag_idx, local};
    if (static_cast<int>(i) == pattern.returning_node) {
      frag.returning_local = local;
      frag.tree.returning_node = local;
      out->returning_fragment = frag_idx;
    }
  }
  return Status::OK();
}

}  // namespace secxml
