#include "query/batch_matcher.h"

#include <algorithm>

namespace secxml {

namespace {

/// Narrows every binding appended after the frame's marks to `keep` and
/// drops bindings whose mask ran empty (no class keeps them). Dropping only
/// touches the appended suffix, so marks recorded by enclosing frames stay
/// valid. This is the mask analogue of NokMatcher's rollback-by-resize.
void NarrowAppended(BatchFragmentMatch* match,
                    const std::vector<size_t>& marks, size_t base,
                    const ClassMask& keep) {
  const MaskKernels& kernels = ActiveMaskKernels();
  for (size_t i = 0; i < match->bindings.size(); ++i) {
    std::vector<MaskedBinding>& slot = match->bindings[i];
    size_t from = marks[base + i];
    if (from < slot.size()) {
      kernels.and_broadcast_strided(&slot[from].mask, sizeof(MaskedBinding),
                                    slot.size() - from, keep);
    }
    slot.erase(
        std::remove_if(slot.begin() + static_cast<long>(from), slot.end(),
                       [](const MaskedBinding& b) { return b.mask.none(); }),
        slot.end());
  }
}

/// Physically rolls back every binding appended after the marks (the
/// ordered path's feasibility probes never keep their appends).
void RollBackAppended(BatchFragmentMatch* match,
                      const std::vector<size_t>& marks, size_t base) {
  for (size_t i = 0; i < match->bindings.size(); ++i) {
    match->bindings[i].resize(marks[base + i]);
  }
}

}  // namespace

bool MultiSubjectMatcher::TagValueMatches(const ResolvedPattern& p,
                                          const NokRecord& rec) const {
  if (!p.wildcard) {
    if (p.tag == kInvalidTag || rec.tag != p.tag) return false;
  }
  if (p.has_value && store_->nok()->Value(rec) != *p.value) return false;
  return true;
}

Result<ClassMask> MultiSubjectMatcher::MatchChildrenOrdered(
    const std::vector<int>& pchildren, NodeId sroot, const NokRecord& srec,
    const ClassMask& live, BatchFragmentMatch* match) {
  // Materialize the data children once with their batch access masks.
  // Children no live class can access can never participate for anyone and
  // are dropped, like the per-subject walk drops inaccessible children;
  // per-class projections see their own accessible subsequence either way.
  struct Child {
    NodeId node;
    NokRecord rec;
    ClassMask amask;
  };
  std::vector<Child> data;
  {
    MultiSubjectCursor::ChildWalk walk(&cursor_, sroot, srec, live);
    NodeId u = kInvalidNode;
    NokRecord urec;
    ClassMask amask;
    for (;;) {
      SECXML_ASSIGN_OR_RETURN(bool more, walk.Next(&u, &urec, &amask));
      if (!more) break;
      if (amask.any()) data.push_back({u, urec, amask});
    }
  }
  const size_t K = pchildren.size();
  const size_t M = data.size();

  // Batch-memoized feasibility of (pattern child k, data child d): the mask
  // of classes for which the recursive probe succeeds AND the data child is
  // accessible. One probe answers all classes; per-class greedy passes below
  // consume single bits of it.
  std::vector<ClassMask> memo(K * M);
  std::vector<char> computed(K * M, 0);
  auto feasible = [&](size_t k, size_t d) -> Result<ClassMask> {
    if (computed[k * M + d]) return memo[k * M + d];
    const ResolvedPattern& rp = resolved_[pchildren[k]];
    ClassMask m;
    if (TagValueMatches(rp, data[d].rec)) {
      const size_t nb = match->bindings.size();
      const size_t base = mark_stack_.size();
      for (size_t i = 0; i < nb; ++i) {
        mark_stack_.push_back(match->bindings[i].size());
      }
      SECXML_ASSIGN_OR_RETURN(
          m, Npm(pchildren[k], data[d].node, data[d].rec, live, match));
      RollBackAppended(match, mark_stack_, base);
      mark_stack_.resize(base);
      m &= data[d].amask;
    }
    memo[k * M + d] = m;
    computed[k * M + d] = 1;
    return m;
  };

  // Per-class forward/backward greedy passes over the shared feasibility
  // masks (a class's infeasible entries include children it cannot access,
  // which its own walk would never have materialized — the greedy
  // subsequence assignment is identical over either sequence).
  std::vector<size_t> prefix_end(K), suffix_start(K);
  std::vector<std::vector<size_t>> prefix_end_of(cursor_.num_classes()),
      suffix_start_of(cursor_.num_classes());
  ClassMask succ;
  for (size_t c = 0; c < cursor_.num_classes(); ++c) {
    if (!live.Test(c)) continue;
    bool class_ok = true;
    size_t d = 0;
    for (size_t k = 0; k < K && class_ok; ++k) {
      class_ok = false;
      for (; d < M; ++d) {
        SECXML_ASSIGN_OR_RETURN(ClassMask fm, feasible(k, d));
        if (fm.Test(c)) {
          prefix_end[k] = d;
          ++d;
          class_ok = true;
          break;
        }
      }
    }
    if (!class_ok) continue;
    size_t dl = M;
    for (size_t k = K; k-- > 0;) {
      bool found = false;
      while (dl-- > 0) {
        SECXML_ASSIGN_OR_RETURN(ClassMask fm, feasible(k, dl));
        if (fm.Test(c)) {
          suffix_start[k] = dl;
          found = true;
          break;
        }
      }
      if (!found) break;  // unreachable: forward pass succeeded
    }
    succ.Set(c);
    prefix_end_of[c] = prefix_end;
    suffix_start_of[c] = suffix_start;
  }

  // Collect bindings for designated-containing children from every data
  // child inside some succeeding class's validity window. One un-rolled-back
  // rerun per (k, child) covers every class wanting it; the rerun's appends
  // come out masked by its own success mask, which the probe already proved
  // covers each wanting class.
  for (size_t k = 0; k < K; ++k) {
    if (!resolved_[pchildren[k]].contains_designated) continue;
    for (size_t cand = 0; cand < M; ++cand) {
      ClassMask want;
      for (size_t c = 0; c < cursor_.num_classes(); ++c) {
        if (!succ.Test(c)) continue;
        size_t lo = k == 0 ? 0 : prefix_end_of[c][k - 1] + 1;
        size_t hi = k + 1 == K ? M : suffix_start_of[c][k + 1];  // exclusive
        if (cand >= lo && cand < hi) want.Set(c);
      }
      if (want.none()) continue;
      SECXML_ASSIGN_OR_RETURN(ClassMask fm, feasible(k, cand));
      want &= fm;
      if (want.none()) continue;
      SECXML_ASSIGN_OR_RETURN(
          ClassMask again,
          Npm(pchildren[k], data[cand].node, data[cand].rec, want, match));
      (void)again;
    }
  }
  return succ;
}

Result<ClassMask> MultiSubjectMatcher::Npm(int pnode, NodeId sroot,
                                           const NokRecord& srec,
                                           const ClassMask& live,
                                           BatchFragmentMatch* match) {
  const ResolvedPattern& pat = resolved_[pnode];
  // Mark this frame's binding positions on the shared stack; the frame exit
  // narrows everything appended here to the frame's success mask (the mask
  // analogue of the per-subject rollback).
  const size_t nb = match->bindings.size();
  const size_t base = mark_stack_.size();
  for (size_t i = 0; i < nb; ++i) {
    mark_stack_.push_back(match->bindings[i].size());
  }
  if (pat.designated_slot >= 0) {
    match->bindings[pat.designated_slot].push_back(
        {sroot, sroot + srec.subtree_size, live});
  }
  if (options_.ordered_siblings && !pat.children->empty()) {
    SECXML_ASSIGN_OR_RETURN(
        ClassMask ok,
        MatchChildrenOrdered(*pat.children, sroot, srec, live, match));
    NarrowAppended(match, mark_stack_, base, ok);
    mark_stack_.resize(base);
    return ok;
  }

  const std::vector<int>& pchildren = *pat.children;
  // satisfied[i]: classes (within live) that have satisfied pattern child i.
  std::vector<ClassMask> satisfied(pchildren.size());
  bool has_collectors = false;
  for (int s : pchildren) has_collectors |= resolved_[s].contains_designated;
  if (!pchildren.empty()) {
    MultiSubjectCursor::ChildWalk walk(&cursor_, sroot, srec, live);
    NodeId u = kInvalidNode;
    NokRecord urec;
    ClassMask amask;
    for (;;) {
      if (!has_collectors) {
        // Stop once every live class has satisfied every pattern child —
        // the batch form of the per-subject early exit. Classes done
        // earlier simply stop contributing want bits while the walk serves
        // the rest.
        ClassMask all_sat = live;
        for (ClassMask s : satisfied) all_sat &= s;
        if (all_sat == live) break;
      }
      SECXML_ASSIGN_OR_RETURN(bool more, walk.Next(&u, &urec, &amask));
      if (!more) break;
      if (amask.none()) continue;
      // Algorithm 1 lines 7-11, mask-valued: try every pattern child some
      // class that can access u still wants (unsatisfied, or a designated
      // collector that keeps matching).
      for (size_t i = 0; i < pchildren.size(); ++i) {
        int s = pchildren[i];
        ClassMask want = resolved_[s].contains_designated
                             ? amask
                             : amask.AndNot(satisfied[i]);
        if (want.none()) continue;
        if (!TagValueMatches(resolved_[s], urec)) continue;
        SECXML_ASSIGN_OR_RETURN(ClassMask ok, Npm(s, u, urec, want, match));
        satisfied[i] |= ok;
      }
    }
  }

  ClassMask ok_mask = live;
  for (ClassMask s : satisfied) ok_mask &= s;
  // Algorithm 1 lines 14-16, mask-valued: classes that failed the subtree
  // lose their bits on everything appended here (including this node's own
  // designated binding).
  NarrowAppended(match, mark_stack_, base, ok_mask);
  mark_stack_.resize(base);
  return ok_mask;
}

Status MultiSubjectMatcher::MatchFragment(const QueryFragment& fragment,
                                          const std::vector<int>& designated,
                                          std::vector<BatchFragmentMatch>* out) {
  out->clear();
  SECXML_RETURN_NOT_OK(fragment.tree.Validate());
  NokStore* nok = store_->nok();

  // The mask tables are a per-evaluation snapshot, shared by every fragment
  // of the query (updates never run concurrently with evaluation).
  if (!attached_) {
    SECXML_RETURN_NOT_OK(cursor_.Attach());
    attached_ = true;
  }
  cursor_.BeginScan();
  mark_stack_.clear();

  // Resolve pattern tags once (identical to NokMatcher).
  resolved_.clear();
  resolved_.resize(fragment.tree.nodes.size());
  for (size_t i = 0; i < fragment.tree.nodes.size(); ++i) {
    const PatternNode& pn = fragment.tree.nodes[i];
    ResolvedPattern& rp = resolved_[i];
    rp.wildcard = pn.tag == "*";
    rp.tag = rp.wildcard ? kInvalidTag : nok->tags().Lookup(pn.tag);
    rp.has_value = pn.has_value;
    rp.value = &pn.value;
    rp.children = &pn.children;
  }
  for (size_t d = 0; d < designated.size(); ++d) {
    if (designated[d] < 0 ||
        designated[d] >= static_cast<int>(resolved_.size())) {
      return Status::InvalidArgument("designated node out of range");
    }
    resolved_[designated[d]].designated_slot = static_cast<int>(d);
  }
  for (size_t i = resolved_.size(); i-- > 0;) {
    ResolvedPattern& rp = resolved_[i];
    rp.contains_designated = rp.designated_slot >= 0;
    for (int c : fragment.tree.nodes[i].children) {
      rp.contains_designated |= resolved_[c].contains_designated;
    }
  }

  // Candidate roots come from the tag index (or the document root), so one
  // candidate stream serves the whole batch. The options' candidate window
  // restricts which roots this matcher owns (sharded scatter; see
  // NokMatcher::MatchFragment).
  const NodeId cbegin = options_.candidate_begin;
  const NodeId cend = std::min<NodeId>(options_.candidate_end,
                                       static_cast<NodeId>(nok->num_nodes()));
  std::vector<NodeId> candidates;
  if (fragment.root_anchored) {
    if (cbegin == 0 && cend > 0) candidates.push_back(0);
  } else if (resolved_[0].wildcard) {
    for (NodeId n = cbegin; n < cend; ++n) candidates.push_back(n);
  } else if (resolved_[0].tag != kInvalidTag) {
    candidates = nok->Postings(resolved_[0].tag);
    candidates.erase(
        std::lower_bound(candidates.begin(), candidates.end(), cend),
        candidates.end());
    candidates.erase(candidates.begin(),
                     std::lower_bound(candidates.begin(), candidates.end(),
                                      cbegin));
  }

  const ClassMask full = cursor_.FullMask();
  for (NodeId cand : candidates) {
    NokRecord rec;
    ClassMask amask;
    SECXML_ASSIGN_OR_RETURN(
        bool fetched, cursor_.FetchCandidate(cand, full, &rec, &amask));
    if (!fetched) continue;  // page dead for every class, never loaded
    if (!TagValueMatches(resolved_[0], rec)) continue;
    if (amask.none()) continue;  // Algorithm 1 pre-condition, batch-wide
    BatchFragmentMatch match;
    match.root = cand;
    match.root_end = cand + rec.subtree_size;
    match.bindings.resize(designated.size());
    SECXML_ASSIGN_OR_RETURN(ClassMask ok, Npm(0, cand, rec, amask, &match));
    if (ok.any()) {
      match.ok = ok;
      out->push_back(std::move(match));
    }
  }
  return Status::OK();
}

std::vector<FragmentMatch> ProjectClassMatches(
    const std::vector<BatchFragmentMatch>& batch, size_t k) {
  std::vector<FragmentMatch> out;
  for (const BatchFragmentMatch& bm : batch) {
    if (!bm.ok.Test(k)) continue;
    FragmentMatch m;
    m.root = bm.root;
    m.root_end = bm.root_end;
    m.bindings.resize(bm.bindings.size());
    for (size_t i = 0; i < bm.bindings.size(); ++i) {
      for (const MaskedBinding& b : bm.bindings[i]) {
        if (b.mask.Test(k)) m.bindings[i].emplace_back(b.node, b.end);
      }
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace secxml
