#include "query/structural_join.h"

#include <algorithm>

namespace secxml {

std::vector<std::pair<NodeId, NodeId>> StackTreeDesc(
    const std::vector<JoinItem>& ancestors,
    const std::vector<NodeId>& descendants, ExecStats* stats) {
  if (stats != nullptr) {
    stats->nodes_scanned += ancestors.size() + descendants.size();
  }
  std::vector<std::pair<NodeId, NodeId>> out;
  std::vector<JoinItem> stack;
  size_t i = 0;
  for (NodeId d : descendants) {
    // Admit every ancestor that starts before d.
    while (i < ancestors.size() && ancestors[i].node < d) {
      while (!stack.empty() && stack.back().end <= ancestors[i].node) {
        stack.pop_back();
      }
      stack.push_back(ancestors[i]);
      ++i;
    }
    // Retire ancestors whose subtree ended before d.
    while (!stack.empty() && stack.back().end <= d) stack.pop_back();
    // Everything on the stack is now an ancestor of d (nested intervals).
    for (const JoinItem& a : stack) out.emplace_back(a.node, d);
  }
  return out;
}

std::vector<NodeId> SemiJoinDescendants(const std::vector<JoinItem>& ancestors,
                                        const std::vector<NodeId>& descendants,
                                        ExecStats* stats) {
  if (stats != nullptr) {
    stats->nodes_scanned += ancestors.size() + descendants.size();
  }
  std::vector<NodeId> out;
  // Track only the furthest-reaching open ancestor: d has an ancestor iff
  // d < max end among ancestors starting before d.
  NodeId max_end = 0;
  size_t i = 0;
  for (NodeId d : descendants) {
    while (i < ancestors.size() && ancestors[i].node < d) {
      max_end = std::max(max_end, ancestors[i].end);
      ++i;
    }
    if (d < max_end) {
      if (out.empty() || out.back() != d) out.push_back(d);
    }
  }
  return out;
}

std::vector<JoinItem> SemiJoinAncestors(const std::vector<JoinItem>& ancestors,
                                        const std::vector<NodeId>& descendants,
                                        ExecStats* stats) {
  if (stats != nullptr) {
    stats->nodes_scanned += ancestors.size();
  }
  std::vector<JoinItem> out;
  for (const JoinItem& a : ancestors) {
    // First descendant strictly after a.
    auto it = std::upper_bound(descendants.begin(), descendants.end(), a.node);
    if (it != descendants.end() && *it < a.end) out.push_back(a);
  }
  return out;
}

std::vector<NodeId> FilterVisible(const std::vector<NodeInterval>& hidden,
                                  const std::vector<NodeId>& nodes,
                                  ExecStats* stats) {
  if (stats != nullptr) stats->nodes_scanned += nodes.size();
  std::vector<NodeId> out;
  out.reserve(nodes.size());
  size_t i = 0;
  for (NodeId n : nodes) {
    while (i < hidden.size() && hidden[i].end <= n) ++i;
    if (i < hidden.size() && hidden[i].begin <= n) continue;  // hidden
    out.push_back(n);
  }
  return out;
}

std::vector<JoinItem> FilterVisibleItems(
    const std::vector<NodeInterval>& hidden,
    const std::vector<JoinItem>& items, ExecStats* stats) {
  if (stats != nullptr) stats->nodes_scanned += items.size();
  std::vector<JoinItem> out;
  out.reserve(items.size());
  size_t i = 0;
  for (const JoinItem& item : items) {
    while (i < hidden.size() && hidden[i].end <= item.node) ++i;
    if (i < hidden.size() && hidden[i].begin <= item.node) continue;
    out.push_back(item);
  }
  return out;
}

}  // namespace secxml
