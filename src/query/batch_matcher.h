#ifndef SECXML_QUERY_BATCH_MATCHER_H_
#define SECXML_QUERY_BATCH_MATCHER_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/secure_store.h"
#include "exec/exec_stats.h"
#include "exec/multi_cursor.h"
#include "query/decomposer.h"
#include "query/matcher.h"

namespace secxml {

/// A designated-node binding annotated with the classes it belongs to: bit
/// k set means class k's per-subject evaluation would have recorded this
/// binding at this position.
struct MaskedBinding {
  NodeId node = 0;
  NodeId end = 0;
  ClassMask mask;
};

/// One data root at which the fragment matches for at least one class.
/// Projecting bit k (ProjectClassMatches) reproduces, element for element,
/// the FragmentMatch list the per-subject NokMatcher emits for class k's
/// representative.
struct BatchFragmentMatch {
  NodeId root = 0;
  NodeId root_end = 0;
  /// Classes for which the fragment matches at this root.
  ClassMask ok;
  /// Parallel to the designated list passed to MatchFragment; bindings in
  /// discovery order, each carrying its class mask.
  std::vector<std::vector<MaskedBinding>> bindings;
};

/// Word-parallel multi-subject NoK pattern matcher: Algorithm 1 run once
/// for a whole batch of visibility equivalence classes. Control flow follows
/// the per-subject NokMatcher exactly, but every accessibility test yields a
/// wide mask of per-class bits (one AND via MultiSubjectCursor) and every
/// success/rollback decision becomes a mask operation (frame-exit narrowing
/// runs through the dispatched SIMD kernels in exec/mask_ops.h):
///
///  - a recursion frame carries the live mask of classes still pursuing the
///    current subtree; bindings are appended with that mask and narrowed to
///    the frame's success mask on exit (mask-AND replaces the per-subject
///    rollback — a class that fails the subtree simply loses its bit);
///  - a pattern child's retirement (satisfied, not a designated collector)
///    is per class: the recursion runs if *any* live class still wants it,
///    and classes that already retired the child contribute no mask bits,
///    so their bindings are untouched — exactly the per-subject skip;
///  - pages are skipped only when dead for every live class, and children
///    on pages dead for a strict subset carry zeroed access bits for those
///    classes, which the per-class projection cannot distinguish from the
///    per-subject page skip.
///
/// The equivalence invariant (pinned by tests/query/batch_eval_test.cc):
/// for every class k in a frame's live mask, bit k of the frame's result
/// and the subsequence of bindings carrying bit k equal the per-subject
/// matcher's return and retained appends for class k's representative.
class MultiSubjectMatcher {
 public:
  struct Options {
    bool page_skip = true;
    /// Ordered pattern trees (see NokMatcher::Options::ordered_siblings);
    /// feasibility probes are memoized per (pattern child, data child) and
    /// answered for the whole batch at once.
    bool ordered_siblings = false;
    /// Candidate-root window for sharded scatter, identical contract to
    /// NokMatcher::Options: only roots in [candidate_begin, candidate_end)
    /// start a match; the walk below an admitted root is unrestricted.
    NodeId candidate_begin = 0;
    NodeId candidate_end = kInvalidNode;
  };

  /// `class_reps` holds one representative subject per equivalence class
  /// (at most kMaxBatchClasses; callers chunk wider batches).
  MultiSubjectMatcher(SecureStore* store,
                      const std::vector<SubjectId>& class_reps,
                      const Options& options)
      : store_(store),
        options_(options),
        cursor_(store, class_reps,
                MultiSubjectCursor::Options{options.page_skip}) {}

  /// Finds all roots where `fragment` matches for at least one class; see
  /// NokMatcher::MatchFragment for the per-subject contract this batches.
  Status MatchFragment(const QueryFragment& fragment,
                       const std::vector<int>& designated,
                       std::vector<BatchFragmentMatch>* out);

  /// Cursor counters accumulated across every MatchFragment call (the
  /// chunk's shared scan-operator contribution).
  const ExecStats& exec_stats() const { return cursor_.stats(); }

  size_t num_classes() const { return cursor_.num_classes(); }

 private:
  /// Per-pattern-node match state, identical to NokMatcher's resolution.
  struct ResolvedPattern {
    TagId tag = kInvalidTag;
    bool wildcard = false;
    bool has_value = false;
    const std::string* value = nullptr;
    int designated_slot = -1;
    bool contains_designated = false;
    const std::vector<int>* children = nullptr;
  };

  bool TagValueMatches(const ResolvedPattern& p, const NokRecord& rec) const;

  /// Mask-valued Algorithm 1: `live` is the set of classes pursuing this
  /// binding of `pnode` to `sroot`. Returns the subset for which the whole
  /// pattern subtree matches; bindings appended by the call carry masks
  /// already narrowed to that result.
  Result<ClassMask> Npm(int pnode, NodeId sroot, const NokRecord& srec,
                        const ClassMask& live, BatchFragmentMatch* match);

  /// Ordered-sibling variant: per-class greedy feasibility windows over the
  /// shared (batch-checked) data-child list, with batch-memoized probes.
  Result<ClassMask> MatchChildrenOrdered(const std::vector<int>& pchildren,
                                         NodeId sroot, const NokRecord& srec,
                                         const ClassMask& live,
                                         BatchFragmentMatch* match);

  SecureStore* store_;
  Options options_;
  MultiSubjectCursor cursor_;
  bool attached_ = false;
  std::vector<ResolvedPattern> resolved_;
  /// Reusable rollback-marks stack, same shape as NokMatcher's: frames of
  /// per-slot binding sizes for frame-exit mask narrowing and for the
  /// ordered path's physically-rolled-back feasibility probes.
  std::vector<size_t> mark_stack_;
};

/// Projects one class out of a batch match list: the FragmentMatch sequence
/// the per-subject matcher would have produced for class `k`'s
/// representative (matches with bit k, bindings filtered to bit k, orders
/// preserved).
std::vector<FragmentMatch> ProjectClassMatches(
    const std::vector<BatchFragmentMatch>& batch, size_t k);

}  // namespace secxml

#endif  // SECXML_QUERY_BATCH_MATCHER_H_
