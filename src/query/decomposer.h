#ifndef SECXML_QUERY_DECOMPOSER_H_
#define SECXML_QUERY_DECOMPOSER_H_

#include <vector>

#include "common/status.h"
#include "query/pattern_tree.h"

namespace secxml {

/// One NoK subtree of a decomposed twig query: a maximal fragment of the
/// pattern connected by child (next-of-kin) edges only (paper Section 3.1).
struct QueryFragment {
  /// The fragment as a standalone pattern tree (all edges are child edges;
  /// the fragment root's descendant_axis records the incoming join axis).
  PatternTree tree;

  /// Fragment-local index -> original pattern node id.
  std::vector<int> orig_ids;

  /// Fragment this one joins under via an ancestor-descendant edge, or -1
  /// for the first fragment.
  int parent_fragment = -1;

  /// Local index (within the parent fragment) of the pattern node that is
  /// the ancestor side of the join edge.
  int source_in_parent = -1;

  /// True if the fragment root must bind to the document root (the query
  /// began with '/' rather than '//').
  bool root_anchored = false;

  /// Local index of the query's returning node inside this fragment, or -1.
  int returning_local = -1;
};

/// A twig query decomposed into NoK fragments connected by
/// ancestor-descendant join edges. Fragments are in topological order
/// (parents before children).
struct DecomposedQuery {
  std::vector<QueryFragment> fragments;
  /// Index of the fragment containing the returning node.
  int returning_fragment = 0;
};

/// Splits `pattern` at descendant-axis edges into NoK fragments.
Status Decompose(const PatternTree& pattern, DecomposedQuery* out);

}  // namespace secxml

#endif  // SECXML_QUERY_DECOMPOSER_H_
