#ifndef SECXML_QUERY_EVALUATOR_H_
#define SECXML_QUERY_EVALUATOR_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/secure_store.h"
#include "exec/exec_stats.h"
#include "query/decomposer.h"
#include "query/matcher.h"
#include "query/pattern_tree.h"

namespace secxml {

/// Which access-control semantics to evaluate under (paper Section 4).
enum class AccessSemantics {
  /// No access control: the original NoK/STD evaluation.
  kNone,
  /// Cho et al. binding semantics (Section 4.1): a result is kept iff every
  /// *bound* data node is accessible. Implemented by ε-NoK.
  kBinding,
  /// Gabillon-Bruno view semantics (Section 4.2): a non-accessible node
  /// additionally hides its entire subtree. Implemented by ε-NoK plus the
  /// ε-STD visibility-filtered structural join.
  kView,
};

/// Evaluation options.
struct EvalOptions {
  AccessSemantics semantics = AccessSemantics::kNone;
  SubjectId subject = 0;
  /// Use the in-memory DOL page headers to skip wholly inaccessible pages.
  bool page_skip = true;
  /// Run secure checks through the subject-compiled access view (see
  /// NokMatcher::Options::use_view). Identical answers either way.
  bool use_view = true;
  /// Require sibling pattern nodes to bind in document order (NoK's ordered
  /// pattern trees; see NokMatcher::Options::ordered_siblings).
  bool ordered_siblings = false;
  /// Batch evaluation only: cap on visibility classes per structural scan.
  /// 0 means the full mask width (kMaxBatchClasses); tests set a smaller
  /// cap to pin the one-wide-scan path byte-identical to the chunked one.
  size_t batch_chunk_classes = 0;
};

/// Evaluation outcome plus the counters the paper's Figure 7 reports.
struct EvalResult {
  /// Distinct data nodes bound to the returning node across all complete
  /// matches, in document order.
  std::vector<NodeId> answers;
  /// Fragment matches found before joining (diagnostic).
  size_t fragment_matches = 0;
  /// Per-operator execution counters: "scan" (the ε-NoK matcher's cursor),
  /// "visibility" (the hidden-interval sweep + root filtering, view
  /// semantics only; sweep costs appear on the query that computed the
  /// cached intervals), "join" (validity + reachability semijoins).
  std::vector<OperatorStats> operators;
  /// Rollup of `operators`. `exec.access_only_fetches` staying 0 is the
  /// paper's zero-extra-I/O claim as a measured value; `exec.pages_skipped`
  /// matches the IoStats::pages_skipped delta of this evaluation.
  ExecStats exec;
};

/// A pattern tree decomposed and wired for evaluation: the fragment list
/// plus the slot bookkeeping every evaluation needs (which pattern nodes are
/// designated per fragment, which slot joins to each child fragment, which
/// slot returns answers). Pattern-only — shared verbatim by the per-subject
/// evaluator and the multi-subject batch evaluator, which is what pins the
/// two pipelines to the same plan.
struct PreparedQuery {
  DecomposedQuery query;
  /// Child fragments of each fragment.
  std::vector<std::vector<int>> children;
  /// Designated pattern nodes per fragment: one slot per child-fragment
  /// join source plus one for the returning node (slots may coincide).
  std::vector<std::vector<int>> designated;
  /// Slot (into designated[f]) joining to children[f][i]; parallel lists.
  std::vector<std::vector<int>> child_slot;
  /// Slot of the returning node, -1 for fragments that return nothing.
  std::vector<int> ret_slot;
};

/// Decomposes `pattern` and computes the slot wiring above.
Status PrepareQuery(const PatternTree& pattern, PreparedQuery* out);

/// View-semantics visibility filter (ε-STD, Section 4.2): drops every
/// fragment match whose root lies inside a hidden interval, in place. Match
/// roots must ascend (the matcher visits candidates in document order).
/// Counts consumed items into `stats`.
void FilterMatchesVisible(const std::vector<NodeInterval>& hidden,
                          std::vector<std::vector<FragmentMatch>>* matches,
                          ExecStats* stats);

/// Connects fragment matches with the (ε-)STD ancestor-descendant semijoins
/// (bottom-up validity, then top-down reachability) and collects the
/// returning-node bindings of complete matches into sorted, duplicate-free
/// `answers`. Counts join work into `join_stats`.
void JoinMatches(const PreparedQuery& pq,
                 const std::vector<std::vector<FragmentMatch>>& matches,
                 std::vector<NodeId>* answers, ExecStats* join_stats);

/// Secure twig query evaluator: decomposes the pattern into NoK fragments,
/// matches them with (ε-)NoK, and connects fragments with (ε-)STD
/// ancestor-descendant joins (paper Sections 3-4).
class QueryEvaluator {
 public:
  explicit QueryEvaluator(SecureStore* store) : store_(store) {}

  /// Evaluates a pattern tree.
  Result<EvalResult> Evaluate(const PatternTree& pattern,
                              const EvalOptions& options);

  /// Evaluates an already-prepared query (the plan-cache entry point: the
  /// caller fetched or built `pq` once and reuses it across calls). Pins
  /// its own snapshot like Evaluate; a pin already held by the calling
  /// thread is adopted, so cache-probing callers that pinned first get a
  /// consistent epoch.
  Result<EvalResult> EvaluatePrepared(const PreparedQuery& pq,
                                      const EvalOptions& options);

  /// Convenience: parse an XPath-subset string and evaluate it.
  Result<EvalResult> EvaluateXPath(std::string_view xpath,
                                   const EvalOptions& options);

 private:
  SecureStore* store_;
};

}  // namespace secxml

#endif  // SECXML_QUERY_EVALUATOR_H_
