#ifndef SECXML_QUERY_PATTERN_TREE_H_
#define SECXML_QUERY_PATTERN_TREE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace secxml {

/// One node of a twig query pattern tree (paper Section 3.1, Figure 2).
struct PatternNode {
  /// Element tag test ("*" matches any tag).
  std::string tag;

  /// Optional value-equality constraint on the element's text; empty means
  /// unconstrained. (NoK matches "tag name and value constraints",
  /// Algorithm 1 line 7.)
  std::string value;
  bool has_value = false;

  /// Axis of the edge from the parent: child (/) or descendant (//).
  /// For the root node this is the leading axis of the query: child means
  /// the pattern root must match the document root.
  bool descendant_axis = false;

  int parent = -1;
  std::vector<int> children;
};

/// A twig query: pattern nodes with one distinguished returning node whose
/// bindings form the query result (Section 4.1).
struct PatternTree {
  std::vector<PatternNode> nodes;  // index 0 is the pattern root
  int returning_node = 0;

  bool empty() const { return nodes.empty(); }

  /// Structural sanity checks: parent/child consistency, returning node in
  /// range, node 0 is the root.
  Status Validate() const;

  /// Renders the pattern as an XPath-like string (for logs and tests).
  std::string ToString() const;
};

}  // namespace secxml

#endif  // SECXML_QUERY_PATTERN_TREE_H_
