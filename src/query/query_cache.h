#ifndef SECXML_QUERY_QUERY_CACHE_H_
#define SECXML_QUERY_QUERY_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "cache/cache_key.h"
#include "cache/plan_cache.h"
#include "cache/result_cache.h"
#include "core/secure_store.h"
#include "query/evaluator.h"

namespace secxml {

/// The query layer's view of the cross-request caches (DESIGN.md §14):
/// glue between the payload-agnostic src/cache machinery and
/// EvalResult/PreparedQuery/SecureStore. Everything here is pure plumbing —
/// the correctness story (epoch validation, footprints, invalidation
/// ordering) lives in ResultCache and SecureStore::AddCommitHook.

/// A materialized secure answer as stored in the ResultCache: the answer
/// node set plus the diagnostic counters of the evaluation that produced it
/// (reported by the cache's stats surfaces, never re-added to live rollups
/// — a hit costs none of the saved work).
class CachedEvalResult : public cache::CacheableResult {
 public:
  std::vector<NodeId> answers;
  size_t fragment_matches = 0;
  ExecStats saved_exec;

  size_t ApproxBytes() const override {
    return sizeof(*this) + answers.size() * sizeof(NodeId);
  }
};

/// Plans are keyed on the normalized pattern alone (pattern-pure, no
/// invalidation — see PlanCache).
using QueryPlanCache = cache::PlanCache<PreparedQuery>;

/// The cache pointers a driver/coordinator threads through to its workers.
/// Null members disable that cache; both default off, so every existing
/// call site keeps its exact pre-cache behavior.
struct QueryCaches {
  cache::ResultCache* results = nullptr;
  QueryPlanCache* plans = nullptr;

  /// The result cache, honoring the SECXML_DISABLE_RESULT_CACHE escape
  /// hatch (the CI differential leg runs the whole suite with the cache
  /// force-disabled).
  cache::ResultCache* ResultsEnabled() const;
};

/// True when SECXML_DISABLE_RESULT_CACHE=1 is set (read once).
bool ResultCacheDisabled();

/// Injective encoding of a pattern tree: two patterns encode equal iff they
/// are structurally identical (same tags, value tests, axes, parents, and
/// returning node). The debug ToString is ambiguous (a tag containing '/'
/// would collide); cache keys use this instead.
std::string NormalizePattern(const PatternTree& pattern);

/// Assembles a result-cache key. `column` is the subject's visibility-class
/// fingerprint; pass a default-constructed ({0,0}) fingerprint for kNone,
/// where the answer does not depend on any subject.
cache::ResultKey MakeResultKey(const std::string& normalized_pattern,
                               const ColumnFingerprint& column,
                               AccessSemantics semantics, bool ordered);

/// Computes the ACL dependency footprint of `pq` against the calling
/// thread's snapshot of `store`: a document-order range [begin, end)
/// outside which no accessibility change can alter the query's secure
/// answer, or acl_independent for semantics-free evaluation. For binding
/// semantics the range is the hull of every pattern tag's posting list
/// (only bound nodes are access-checked); view semantics extends it to
/// [0, end) because a hidden subtree is rooted at an *ancestor* of a match,
/// and ancestors precede their subtree in document order. Wildcard tags
/// widen to the whole document. Structural updates flush the cache outright
/// (CommitEvent::kStructural), so the footprint only ever faces ACL patches
/// over a fixed node numbering.
void QueryFootprint(SecureStore* store, const PreparedQuery& pq,
                    AccessSemantics semantics, uint64_t* begin, uint64_t* end,
                    bool* acl_independent);

/// Subscribes `cache` to `store`'s commits: ACL patches invalidate by
/// range, subject additions are no-ops (existing columns and answers are
/// untouched), structural and shape changes flush. The hook fires inside
/// the store's snapshot-publication critical section (see AddCommitHook),
/// which is what makes a served hit provably fresh; `cache` must outlive
/// `store`.
void AttachResultCacheInvalidation(SecureStore* store,
                                   cache::ResultCache* cache);

/// Resolves the prepared plan for `pattern`: plan-cache lookup under the
/// normalized key when `pcache` is attached (concurrent resolvers converge
/// on the resident instance), a fresh PrepareQuery otherwise.
Result<std::shared_ptr<const PreparedQuery>> ResolvePlan(
    const PatternTree& pattern, const std::string& normalized,
    QueryPlanCache* pcache);

/// Builds the EvalResult a cache hit serves: the cached answers plus one
/// "cache" operator whose counters record the hit (and any single-flight
/// waits). The saved evaluation's counters are NOT folded in — a hit did
/// none of that work.
EvalResult MakeCachedResult(
    const std::shared_ptr<const cache::CacheableResult>& payload,
    uint32_t waits);

/// Packages a live evaluation's outcome for publication.
std::shared_ptr<const CachedEvalResult> MakeCachePayload(
    const EvalResult& result);

/// Full cached evaluation of one (subject, pattern) job: plan-cache lookup
/// (or a fresh PrepareQuery), then a blocking result-cache probe
/// (single-flight: concurrent misses on one key evaluate once) and, on a
/// miss, a live evaluation followed by publication. With both caches null
/// (or the result cache disabled by env) this degenerates to exactly
/// QueryEvaluator::Evaluate. The caller must not hold a flight on another
/// key (QueryDriver workers never do — one job at a time).
Result<EvalResult> EvaluateWithCaches(SecureStore* store, QueryEvaluator* eval,
                                      const PatternTree& pattern,
                                      const EvalOptions& options,
                                      const QueryCaches& caches);

/// RAII leadership guard: a kMissLead caller arms one of these so the
/// flight is abandoned (waking waiters) on every early-exit path; Publish
/// disarms it.
class FlightGuard {
 public:
  FlightGuard(cache::ResultCache* cache, cache::ResultKey key)
      : cache_(cache), key_(std::move(key)) {}
  ~FlightGuard() {
    if (armed_) cache_->Abandon(key_);
  }
  FlightGuard(const FlightGuard&) = delete;
  FlightGuard& operator=(const FlightGuard&) = delete;

  /// Publishes and disarms. Returns Publish's verdict (false = the entry
  /// was rejected by a racing invalidation or the byte budget).
  bool Publish(cache::ResultCache::Entry entry) {
    armed_ = false;
    return cache_->Publish(key_, std::move(entry));
  }

 private:
  cache::ResultCache* cache_;
  cache::ResultKey key_;
  bool armed_ = true;
};

}  // namespace secxml

#endif  // SECXML_QUERY_QUERY_CACHE_H_
