#ifndef SECXML_COMMON_STATUS_H_
#define SECXML_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace secxml {

/// Error categories used across the library. Fallible operations return a
/// Status (or Result<T>) instead of throwing; this follows the RocksDB /
/// Arrow idiom for database code where I/O and parse failures are expected
/// and must be handled explicitly by the caller.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kIOError,
  kOutOfRange,
  kAlreadyExists,
  kUnsupported,
  kPermissionDenied,
};

/// Returns a short human-readable name for a status code ("OK", "IOError"...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic status object. Cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace secxml

/// Propagates a non-OK Status from an expression to the caller.
#define SECXML_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::secxml::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // SECXML_COMMON_STATUS_H_
