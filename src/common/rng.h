#ifndef SECXML_COMMON_RNG_H_
#define SECXML_COMMON_RNG_H_

#include <cstdint>

namespace secxml {

/// Deterministic 64-bit pseudo-random generator (xorshift128+ seeded via
/// splitmix64). All workload generators take an explicit seed so experiments
/// are exactly reproducible across runs and platforms; std::mt19937
/// distributions are implementation-defined, so we roll our own helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator. Two generators with the same seed produce the
  /// same sequence.
  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into two non-zero state words.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 0x9e3779b97f4a7c15ULL;
  }

  /// Uniform random 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw: true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
};

}  // namespace secxml

#endif  // SECXML_COMMON_RNG_H_
