#ifndef SECXML_COMMON_RESULT_H_
#define SECXML_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace secxml {

/// A Status combined with a value of type T. Exactly one of the two is
/// meaningful: if `status().ok()` the value is present, otherwise it is not.
/// Modeled on arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace secxml

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define SECXML_ASSIGN_OR_RETURN(lhs, expr)            \
  SECXML_ASSIGN_OR_RETURN_IMPL(                       \
      SECXML_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define SECXML_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define SECXML_CONCAT_NAME(a, b) SECXML_CONCAT_NAME_INNER(a, b)
#define SECXML_CONCAT_NAME_INNER(a, b) a##b

#endif  // SECXML_COMMON_RESULT_H_
