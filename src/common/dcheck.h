#ifndef SECXML_COMMON_DCHECK_H_
#define SECXML_COMMON_DCHECK_H_

#include <cassert>

/// Debug-only invariant check for hot paths. Compiles to nothing under
/// NDEBUG (the default RelWithDebInfo build), so the release fast paths stay
/// branch-free; Debug and sanitizer builds get bounds checking on the
/// innermost accessibility lookups.
#define SECXML_DCHECK(cond) assert(cond)

#endif  // SECXML_COMMON_DCHECK_H_
