#ifndef SECXML_COMMON_BITVECTOR_H_
#define SECXML_COMMON_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/dcheck.h"

namespace secxml {

/// Fixed-width dynamic bit vector used for per-subject access control lists.
/// One bit per access control subject; bit s set means subject s may access.
/// Supports equality and hashing so it can serve as a codebook dictionary key.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `nbits` bits, all initialized to `value`.
  explicit BitVector(size_t nbits, bool value = false)
      : nbits_(nbits), words_((nbits + 63) / 64, value ? ~0ULL : 0ULL) {
    ClearPadding();
  }

  size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool Get(size_t i) const {
    SECXML_DCHECK(i < nbits_);
    return GetUnchecked(i);
  }

  /// The word-indexed fast path of Get, without the bounds DCHECK: callers
  /// that have already validated `i` (the codebook's per-node accessibility
  /// probe) use this directly.
  bool GetUnchecked(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void Set(size_t i, bool value) {
    SECXML_DCHECK(i < nbits_);
    if (value) {
      words_[i >> 6] |= (1ULL << (i & 63));
    } else {
      words_[i >> 6] &= ~(1ULL << (i & 63));
    }
  }

  /// Appends one bit at the end (used when adding a new subject).
  void PushBack(bool value) {
    if ((nbits_ & 63) == 0) words_.push_back(0);
    ++nbits_;
    Set(nbits_ - 1, value);
  }

  /// Removes bit `i`, shifting all later bits down by one (subject deletion).
  void Erase(size_t i) {
    for (size_t j = i + 1; j < nbits_; ++j) Set(j - 1, Get(j));
    --nbits_;
    words_.resize((nbits_ + 63) / 64);
    ClearPadding();
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Storage consumed by the payload, in bytes (ceil(nbits/8)); used by the
  /// storage-cost benchmarks.
  size_t ByteSize() const { return (nbits_ + 7) / 8; }

  bool operator==(const BitVector& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  /// 128-bit content fingerprint: two independently mixed streams over the
  /// words plus the bit length. Unlike Hash() this is meant for keys that
  /// outlive the vector (cross-request cache keys): at 128 bits a collision
  /// between two distinct ACL columns is negligible, so equal fingerprints
  /// can be treated as equal content without retaining the bits. The value
  /// is a pure function of the contents — stable across processes and runs.
  void Fingerprint128(uint64_t* hi, uint64_t* lo) const {
    uint64_t a = 0x9e3779b97f4a7c15ULL ^ (nbits_ * 0xff51afd7ed558ccdULL);
    uint64_t b = 0xc2b2ae3d27d4eb4fULL ^ nbits_;
    for (uint64_t w : words_) {
      a = (a ^ w) * 0x100000001b3ULL;
      a ^= a >> 31;
      b = (b + w) * 0x9e3779b97f4a7c15ULL;
      b ^= b >> 29;
    }
    *hi = a;
    *lo = b;
  }

  /// 64-bit hash of the contents (FNV-1a over words), for dictionary keys.
  size_t Hash() const {
    uint64_t h = 0xcbf29ce484222325ULL ^ nbits_;
    for (uint64_t w : words_) {
      h ^= w;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return static_cast<size_t>(h);
  }

  /// Renders as a string of '0'/'1', subject 0 first; for debugging and tests.
  std::string ToString() const {
    std::string s;
    s.reserve(nbits_);
    for (size_t i = 0; i < nbits_; ++i) s.push_back(Get(i) ? '1' : '0');
    return s;
  }

 private:
  void ClearPadding() {
    if (nbits_ & 63) {
      words_.back() &= (1ULL << (nbits_ & 63)) - 1;
    }
  }

  size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

struct BitVectorHash {
  size_t operator()(const BitVector& bv) const { return bv.Hash(); }
};

}  // namespace secxml

#endif  // SECXML_COMMON_BITVECTOR_H_
