#include "common/status.h"

namespace secxml {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace secxml
