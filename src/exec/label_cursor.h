#ifndef SECXML_EXEC_LABEL_CURSOR_H_
#define SECXML_EXEC_LABEL_CURSOR_H_

#include <cstdint>
#include <vector>

#include "core/dol_labeling.h"
#include "exec/exec_stats.h"

namespace secxml {

/// Streaming counterpart of SecureCursor for consumers that see nodes in
/// document order against a *logical* DOL (no pages): the secure stream
/// filter, and any one-pass algorithm over a SAX stream (paper Section 7).
///
/// The cursor keeps the current run's code by advancing a monotone cursor
/// over the labeling's transition list — O(1) amortized per node versus the
/// O(log T) binary search of DolLabeling::CodeAt — and, like SubjectView,
/// compiles the codebook into a per-subject byte table at construction so
/// the inner ACCESS check is one indexed load (`use_view`; off falls back to
/// the codebook bit probe, with identical results).
///
/// Nodes passed to Accessible must be non-decreasing; skipping ahead (e.g.
/// past a suppressed subtree whose nodes the caller never checks) is fine.
/// The caller is responsible for the node-range check against
/// `labeling->num_nodes()`, as the stream filter already does.
class LabelStreamCursor {
 public:
  LabelStreamCursor() = default;

  /// `labeling` must outlive the cursor and satisfy DolLabeling's
  /// invariants (first transition at node 0).
  LabelStreamCursor(const DolLabeling* labeling, SubjectId subject,
                    bool use_view = true)
      : labeling_(labeling), subject_(subject) {
    if (use_view) {
      const Codebook& cb = labeling_->codebook();
      code_accessible_.resize(cb.size());
      for (size_t c = 0; c < cb.size(); ++c) {
        code_accessible_[c] =
            cb.Accessible(static_cast<AccessCodeId>(c), subject) ? 1 : 0;
      }
    }
  }

  /// Accessibility of `node` for the subject. One amortized transition-list
  /// advance plus one byte load (or codebook probe without the view).
  bool Accessible(NodeId node) {
    const std::vector<DolEntry>& ts = labeling_->transitions();
    while (next_transition_ < ts.size() &&
           ts[next_transition_].node <= node) {
      code_ = ts[next_transition_].code;
      ++next_transition_;
    }
    ++stats_.nodes_scanned;
    ++stats_.codes_checked;
    return code_accessible_.empty()
               ? labeling_->codebook().Accessible(code_, subject_)
               : code_accessible_[code_] != 0;
  }

  const ExecStats& stats() const { return stats_; }

 private:
  const DolLabeling* labeling_ = nullptr;
  SubjectId subject_ = 0;
  /// Per-subject compiled code->accessible byte table (empty = view off).
  std::vector<uint8_t> code_accessible_;
  /// Monotone cursor over the transition list; `code_` is the code in
  /// effect for the last node consumed.
  size_t next_transition_ = 0;
  AccessCodeId code_ = 0;
  ExecStats stats_;
};

}  // namespace secxml

#endif  // SECXML_EXEC_LABEL_CURSOR_H_
