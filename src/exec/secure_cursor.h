#ifndef SECXML_EXEC_SECURE_CURSOR_H_
#define SECXML_EXEC_SECURE_CURSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/secure_store.h"
#include "core/subject_view.h"
#include "exec/exec_stats.h"
#include "nok/nok_format.h"
#include "nok/nok_store.h"

namespace secxml {

/// The one secure scan primitive of the execution layer. A SecureCursor owns
/// the full ε-NoK access pipeline over NoK document-order pages:
///
///   fetch (one buffer-pool pin per record, miss counted as a fetch wait)
///     → DOL code decode (from the record's own page — never a second fetch,
///       which is the paper's zero-extra-I/O property, kept honest by the
///       `access_only_fetches` counter staying 0)
///     → ACCESS check (one byte load through the subject-compiled view, or
///       the codebook bit probe when the view is off)
///     → check-free fast path (pages the view proves wholly accessible skip
///       the decode and the check entirely)
///     → dead-page skip (wholly-inaccessible pages are never loaded; runs of
///       them are jumped through the view's next_live_page index)
///     → readahead hints (sequential sweeps stream upcoming pages through
///       the store's background prefetcher; see PageSweep).
///
/// Iteration modes:
///  - document-order: ChildWalk yields a parent's children in order, page
///    verdicts consulted before each page is touched;
///  - tag-index-driven: FetchCandidate screens tag-posting candidates
///    against page verdicts before fetching;
///  - page-scoped: PageSweep + PageCodeWalker iterate whole pages for the
///    sequential consumers (hidden-interval sweep, view compilation,
///    codebook compaction).
///
/// Every consumer of secure record access — the NoK matcher, the structural
/// join's input scans, the visibility sweep, view compilation, the stream
/// filter (via LabelStreamCursor) — goes through this layer; direct
/// NokStore/Codebook probing outside it is linted away
/// (scripts/check_no_direct_fetch.sh).
///
/// A cursor is single-threaded (each QueryDriver worker owns its own); the
/// store underneath is the documented thread-safe read surface. Stats
/// accumulate in the cursor's ExecStats across scans until reset by the
/// owner.
class SecureCursor {
 public:
  struct Options {
    /// Off = the original non-secure NoK scan (records only, no checks).
    bool secure = false;
    SubjectId subject = 0;
    /// Consult page verdicts to skip wholly-inaccessible pages (Sec. 3.3).
    bool page_skip = true;
    /// Run checks through the subject-compiled SubjectView; off falls back
    /// to codebook probes and header recomputation. Identical results.
    bool use_view = true;
  };

  SecureCursor(SecureStore* store, const Options& options)
      : store_(store), options_(options) {}

  /// Acquires the compiled view snapshot for this evaluation (secure +
  /// use_view only; cached per subject in the store). Call once per query;
  /// the held shared_ptr keeps the snapshot consistent even if an update
  /// invalidates the store's cache mid-evaluation.
  Status Attach();

  /// Begins a fragment-scoped scan: resets the distinct-page dedup map so
  /// each avoided page counts toward pages_skipped exactly once per scan.
  void BeginScan();

  // --- Node-at-a-time access -------------------------------------------

  /// Secure fetch of node `u` on the page at `ordinal`: record and access
  /// verdict from one page pin. On a check-free page the code is never
  /// decoded (checks_elided); otherwise the code is resolved from the same
  /// page and probed (codes_checked).
  Result<NokRecord> FetchChecked(size_t ordinal, NodeId u, bool* accessible);

  /// Non-secure record fetch (plain NoK scan).
  Result<NokRecord> Fetch(NodeId u);

  /// Tag-index candidate screening: consults the page verdict first; a
  /// candidate on a wholly-dead page is skipped without loading the page
  /// (returns false, page counted once). Otherwise fetches and checks like
  /// FetchChecked. In non-secure mode always fetches with *accessible=true.
  Result<bool> FetchCandidate(NodeId cand, NokRecord* rec, bool* accessible);

  /// Next sibling of `u` at `depth` within the parent extent `limit`,
  /// loading no wholly-dead page (runs of dead pages are jumped through the
  /// view's skip index in O(1)).
  Result<NodeId> NextSiblingSkippingDead(NodeId u, uint16_t depth,
                                         NodeId limit);

  /// The inner ACCESS check: one byte load through the compiled view when
  /// attached, else the codebook bit probe.
  bool CodeAccessible(uint32_t code) const {
    return view_ != nullptr
               ? view_->CodeAccessible(code)
               : store_->codebook().Accessible(code, options_.subject);
  }

  /// Page-skip verdict: precompiled when the view is attached, else derived
  /// from the in-memory header and codebook (one shared classification —
  /// SubjectView::ClassifyPage — so the two paths cannot drift).
  bool PageWhollyDead(size_t ordinal) const {
    return view_ != nullptr ? view_->PageWhollyDead(ordinal)
                            : store_->PageWhollyInaccessible(ordinal,
                                                             options_.subject);
  }

  /// Counts `ordinal` toward pages_skipped (ExecStats and the store's
  /// IoStats), once per distinct page per scan — the candidate filter, the
  /// inline sibling skip, and NextSiblingSkippingDead can all reject the
  /// same page, and each avoided page load counts exactly once.
  void CountSkippedPage(size_t ordinal);

  /// Document-order child iteration: yields the children of one parent,
  /// skipping (and counting) wholly-dead pages in secure page-skip mode.
  /// Inaccessible children on live pages are still yielded (with
  /// *accessible = false) because the walk needs their subtree size to jump
  /// to the following sibling.
  class ChildWalk {
   public:
    /// `parent_rec` must be the record of `parent`.
    ChildWalk(SecureCursor* cursor, NodeId parent,
              const NokRecord& parent_rec);

    /// Advances to the next child; false when the walk is exhausted.
    Result<bool> Next(NodeId* u, NokRecord* rec, bool* accessible);

   private:
    SecureCursor* c_;
    NodeId next_ = kInvalidNode;
    NodeId parent_end_ = 0;
    uint16_t child_depth_ = 0;
    /// Cached page extent of the last verdict check, so consecutive
    /// siblings in one page cost no repeated page-table lookups.
    NodeId page_begin_ = 0, page_end_ = 0;
    size_t page_ordinal_ = 0;
    bool page_dead_ = false;
  };

  const Options& options() const { return options_; }
  SecureStore* store() { return store_; }
  const SubjectView* view() const { return view_; }
  ExecStats& stats() { return stats_; }
  const ExecStats& stats() const { return stats_; }

 private:
  /// Pins the page at `ordinal` after validating that it holds `u`;
  /// counts a fetch wait when the pin required a physical read.
  Result<PageHandle> PinPage(size_t ordinal, NodeId u);

  SecureStore* store_;
  Options options_;
  /// Compiled view snapshot (null when secure checks run codebook-direct).
  std::shared_ptr<const SubjectView> view_holder_;
  const SubjectView* view_ = nullptr;
  /// Per-scan bitmap of pages already counted as skipped.
  std::vector<char> skip_counted_;
  ExecStats stats_;
};

/// Sequential document-order page sweep with background readahead: the
/// page-scoped iteration mode shared by the hidden-interval sweep, subject
/// view compilation, and codebook compaction. Prefetch requests stream
/// through the store's Readahead (when configured) so device latency
/// overlaps the per-page computation; the destructor drains every in-flight
/// fetch, preserving the no-overlap-with-exclusive-updates contract.
class PageSweep {
 public:
  /// Pages for which `skip` returns true are not prefetched (the consumer
  /// will not fetch them either). `bounded_window` caps the prefetch cursor
  /// at `ordinal + window` (used by in-place rewriters so prefetching never
  /// runs far ahead of pages that may still change); unbounded mode issues
  /// up to `window` not-skipped pages per PrefetchFrom call.
  PageSweep(NokStore* nok, std::function<bool(size_t)> skip, ExecStats* stats,
            bool bounded_window = false);
  ~PageSweep();

  PageSweep(const PageSweep&) = delete;
  PageSweep& operator=(const PageSweep&) = delete;

  /// Tops up the prefetch window beyond `ordinal`. Cheap no-op when the
  /// store has no readahead configured.
  void PrefetchFrom(size_t ordinal);

  /// Pins the page at `ordinal`; counts a fetch wait on a physical read.
  Result<PageHandle> Fetch(size_t ordinal);

 private:
  NokStore* nok_;
  Readahead* ra_;
  size_t window_;
  std::function<bool(size_t)> skip_;
  ExecStats* stats_;
  bool bounded_window_;
  size_t prefetch_cursor_ = 0;
};

/// Decodes one pinned page: walks its records in slot order, resolving each
/// slot's DOL code from the embedded transition list in O(1) amortized (the
/// decode step of the cursor pipeline, exposed for page-scoped consumers).
/// Slots passed to CodeFor must ascend.
class PageCodeWalker {
 public:
  /// `header` must be the page's validated on-disk header (CheckOnDiskHeader).
  PageCodeWalker(const Page& page, const NokPageHeader& header);

  /// DOL code in effect at `slot`.
  uint32_t CodeFor(uint32_t slot);

  NokRecord RecordAt(uint32_t slot) const {
    return page_->ReadAt<NokRecord>(RecordOffset(slot));
  }

  uint32_t num_transitions() const { return header_.num_transitions; }
  DolTransition TransitionAt(uint32_t i) const {
    return page_->ReadAt<DolTransition>(TransitionOffset(i));
  }

 private:
  const Page* page_;
  NokPageHeader header_;
  uint32_t code_;
  uint32_t next_transition_ = 0;
  DolTransition pending_{};
};

}  // namespace secxml

#endif  // SECXML_EXEC_SECURE_CURSOR_H_
