#ifndef SECXML_EXEC_MULTI_CURSOR_H_
#define SECXML_EXEC_MULTI_CURSOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/secure_store.h"
#include "exec/exec_stats.h"
#include "exec/mask_ops.h"
#include "nok/nok_format.h"
#include "nok/nok_store.h"

namespace secxml {

/// The multi-subject analogue of SecureCursor: one structural scan answering
/// accessibility for a whole batch of visibility equivalence classes at
/// once. Where the per-subject cursor resolves a DOL code and probes one
/// codebook bit, this cursor resolves the code once and loads one
/// precomputed wide mask whose bit k is class k's accessibility — up to
/// kMaxBatchClasses subjects per mask-AND, in the bit-sliced style of
/// columnar word-parallel scans (ClassMask and the SIMD kernels live in
/// exec/mask_ops.h).
///
/// Attach() compiles two tables from the codebook columns of the class
/// representatives:
///   - code mask: for a codebook entry, the word of per-class
///     accessibility bits (the transposed columns). Materialized lazily,
///     one entry on first touch: a fragment-sized query resolves a handful
///     of distinct codes, and an eager transpose of the whole codebook
///     (entries x classes) would dwarf the scan itself on wide batches;
///   - page dead mask: for every page, the word of classes for which the
///     in-memory header proves the page wholly inaccessible — exactly
///     SubjectView::ClassifyPage per class, so the batch page skip agrees
///     with the per-subject one by construction.
///
/// The scan carries a live mask of classes still interested in the current
/// fragment; a page is skipped (never loaded) when its dead mask covers the
/// whole live mask, so pages_skipped scales with how many classes die
/// mid-scan. All accessibility masks returned to callers are already
/// restricted to the requesting live mask.
///
/// Zero-extra-I/O holds exactly as for the per-subject cursor: codes are
/// decoded from the record's own pinned page, so access_only_fetches stays
/// structurally 0 no matter the batch width.
///
/// A cursor is single-threaded; the store underneath is the documented
/// thread-safe read surface. Stats accumulate across scans until the owner
/// resets them; the batch counters (subjects_batched, classes_evaluated,
/// class_dedup_hits) are filled in by the batch evaluator, not here.
class MultiSubjectCursor {
 public:
  struct Options {
    /// Consult batch page verdicts to skip pages wholly inaccessible to
    /// every live class (Section 3.3, generalized to the batch).
    bool page_skip = true;
  };

  /// `class_reps` holds one representative subject per equivalence class,
  /// at most kMaxBatchClasses of them; bit k of every mask refers to
  /// class_reps[k].
  MultiSubjectCursor(SecureStore* store,
                     const std::vector<SubjectId>& class_reps,
                     const Options& options);

  /// Compiles the code and page mask tables from the current codebook and
  /// page directory. Call once per evaluation (the tables are a snapshot;
  /// updates must not run concurrently, same as every query path).
  Status Attach();

  /// Begins a fragment-scoped scan: resets the distinct-page dedup map so
  /// each avoided page counts toward pages_skipped exactly once per scan.
  void BeginScan();

  size_t num_classes() const { return class_reps_.size(); }
  /// Mask with one bit per class of this batch.
  ClassMask FullMask() const { return ClassMask::FirstN(class_reps_.size()); }

  /// Mask of per-class accessibility bits for `code`, materialized on
  /// first touch (the cursor is single-threaded, so the memo needs no
  /// synchronization). Fails closed: an out-of-range code denies every
  /// class, matching Codebook::Accessible.
  const ClassMask& AccessMask(uint32_t code) const {
    static constexpr ClassMask kDenied;
    if (code >= code_mask_.size()) return kDenied;
    if (!code_mask_ready_[code]) MaterializeCodeMask(code);
    return code_mask_[code];
  }

  /// Mask of classes for which the page at `ordinal` is provably wholly
  /// inaccessible (per-class SubjectView::ClassifyPage == kDead).
  ClassMask PageDeadMask(size_t ordinal) const {
    return ordinal < page_dead_.size() ? page_dead_[ordinal] : FullMask();
  }

  /// True when no class in `live` can see anything on the page:
  /// the dead mask covers the whole live mask.
  bool PageWhollyDeadFor(size_t ordinal, const ClassMask& live) const {
    return PageDeadMask(ordinal).Covers(live);
  }

  /// Secure fetch of node `u` on the page at `ordinal`: record plus the
  /// whole batch's access verdict from one page pin. The DOL code is
  /// resolved from the same page (zero extra I/O) and answered for every
  /// class with one table load (*access is not yet masked by any live set).
  Result<NokRecord> FetchChecked(size_t ordinal, NodeId u, ClassMask* access);

  /// Tag-index candidate screening for the batch: a candidate on a page
  /// dead for every class in `live` is skipped without loading the page
  /// (returns false, page counted once). Otherwise fetches and checks like
  /// FetchChecked, returning *access already restricted to `live`.
  Result<bool> FetchCandidate(NodeId cand, const ClassMask& live,
                              NokRecord* rec, ClassMask* access);

  /// Next sibling of `u` at `depth` within the parent extent `limit`,
  /// loading no page that is wholly dead for every class in `live` (the
  /// in-memory dead-mask table makes each page test O(1), no I/O).
  Result<NodeId> NextSiblingSkippingDead(NodeId u, uint16_t depth,
                                         NodeId limit, const ClassMask& live);

  /// Counts `ordinal` toward pages_skipped (ExecStats and the store's
  /// IoStats), once per distinct page per scan.
  void CountSkippedPage(size_t ordinal);

  /// Document-order child iteration for the batch: yields the children of
  /// one parent with per-class access masks (restricted to the walk's live
  /// mask), skipping and counting pages dead for every live class. Children
  /// inaccessible to every live class are still yielded (*access == 0) on
  /// live pages, because the walk needs their subtree size to jump to the
  /// following sibling — mirroring the per-subject ChildWalk.
  class ChildWalk {
   public:
    /// `parent_rec` must be the record of `parent`; `live` is fixed for the
    /// walk (a recursion frame's live set never grows).
    ChildWalk(MultiSubjectCursor* cursor, NodeId parent,
              const NokRecord& parent_rec, const ClassMask& live);

    /// Advances to the next child; false when the walk is exhausted.
    Result<bool> Next(NodeId* u, NokRecord* rec, ClassMask* access);

   private:
    MultiSubjectCursor* c_;
    ClassMask live_;
    NodeId next_ = kInvalidNode;
    NodeId parent_end_ = 0;
    uint16_t child_depth_ = 0;
    /// Cached page extent of the last verdict check, so consecutive
    /// siblings in one page cost no repeated page-table lookups.
    NodeId page_begin_ = 0, page_end_ = 0;
    size_t page_ordinal_ = 0;
    bool page_dead_ = false;
  };

  const Options& options() const { return options_; }
  SecureStore* store() { return store_; }
  ExecStats& stats() { return stats_; }
  const ExecStats& stats() const { return stats_; }

 private:
  /// Pins the page at `ordinal` after validating that it holds `u`;
  /// counts a fetch wait when the pin required a physical read.
  Result<PageHandle> PinPage(size_t ordinal, NodeId u);

  /// Fills code_mask_[code] with the per-class bits of one codebook entry
  /// (O(classes) point probes, done at most once per distinct code).
  void MaterializeCodeMask(uint32_t code) const;

  SecureStore* store_;
  std::vector<SubjectId> class_reps_;
  Options options_;
  /// Transposed codebook columns: one word of per-class bits per entry,
  /// lazily materialized (mutable: filling the memo is logically const).
  mutable std::vector<ClassMask> code_mask_;
  mutable std::vector<char> code_mask_ready_;
  /// Per-page word of classes for which the page is wholly dead.
  std::vector<ClassMask> page_dead_;
  /// Per-scan bitmap of pages already counted as skipped.
  std::vector<char> skip_counted_;
  ExecStats stats_;
};

}  // namespace secxml

#endif  // SECXML_EXEC_MULTI_CURSOR_H_
