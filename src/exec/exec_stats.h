#ifndef SECXML_EXEC_EXEC_STATS_H_
#define SECXML_EXEC_EXEC_STATS_H_

#include <cstdint>
#include <vector>

namespace secxml {

/// Per-cursor / per-operator execution counters for the secure query path.
/// Every SecureCursor accumulates one of these while it runs; operators roll
/// their cursors' stats into the query's EvalResult and QueryDriver rolls
/// queries into BatchStats. The counters make the paper's central claim —
/// accessibility checks add no I/O to NoK evaluation — a *measured* value
/// (`access_only_fetches == 0` on the DOL path) instead of an inference.
///
/// A single ExecStats is only ever written by one thread (each worker owns
/// its cursors); aggregation happens after workers join, so plain uint64
/// fields suffice.
struct ExecStats {
  /// Records materialized by a cursor (candidates, children, swept slots).
  uint64_t nodes_scanned = 0;
  /// ACCESS checks actually performed (a DOL code decoded and probed).
  uint64_t codes_checked = 0;
  /// ACCESS checks elided outright because the page is check-free in the
  /// subject-compiled view (record fetched, code never decoded).
  uint64_t checks_elided = 0;
  /// Distinct page loads avoided via wholly-dead page verdicts (the
  /// Section 3.3 page skip). Matches IoStats::pages_skipped accounting.
  uint64_t pages_skipped = 0;
  /// Pages handed to the background readahead by this cursor.
  uint64_t pages_prefetched = 0;
  /// Buffer-pool fetches that had to wait on a physical read (misses);
  /// cache hits and skipped pages cost no wait.
  uint64_t fetch_waits = 0;
  /// Page fetches issued *solely* to resolve an access code, i.e. I/O the
  /// structural scan would not have done anyway. Structurally zero for the
  /// DOL cursor (the code is decoded from the record's own page within the
  /// same fetch); a non-zero value means the zero-extra-I/O property broke.
  uint64_t access_only_fetches = 0;

  // Multi-subject batch evaluation counters (zero on single-subject paths).

  /// Subjects answered by this evaluation. 1 for a per-subject query; the
  /// batch size for QueryDriver::EvaluateForSubjects.
  uint64_t subjects_batched = 0;
  /// Visibility equivalence classes actually evaluated (each class runs the
  /// structural scan once; its members share the answer byte-for-byte).
  uint64_t classes_evaluated = 0;
  /// Subjects served from another class member's evaluation:
  /// subjects_batched - classes_evaluated.
  uint64_t class_dedup_hits = 0;

  /// Epoch snapshot pins taken by this evaluation (one per query or batch:
  /// the whole evaluation runs against the pinned snapshot while updates
  /// commit concurrently — DESIGN.md §11).
  uint64_t epoch_pins = 0;

  // Sharded scatter-gather counters (zero on single-store paths).

  /// Shards this evaluation scattered matching work to (the coordinator's
  /// fan-out width, counted once per scatter — DESIGN.md §13).
  uint64_t shards_scattered = 0;
  /// Document-order comparisons spent merging per-shard match streams back
  /// into one global stream (each merged match verifies its root against
  /// the running maximum, so the merge proves the order it claims).
  uint64_t merge_comparisons = 0;

  // Cross-request result-cache counters (zero when no cache is attached —
  // DESIGN.md §14). Reported on a "cache" operator so the rollup-sum
  // identity over classes/queries holds like every other counter.

  /// Queries (or batch classes) answered from the class-keyed ResultCache
  /// instead of a live evaluation.
  uint64_t result_cache_hits = 0;
  /// Queries (or batch classes) that probed the ResultCache and had to
  /// evaluate live (their answer was published afterwards).
  uint64_t result_cache_misses = 0;
  /// Freshly computed answers whose cache publish was rejected because an
  /// invalidation (or the byte budget) raced the evaluation — the live
  /// answer served is still correct; only the cache declined to keep it.
  uint64_t result_cache_invalidations = 0;
  /// Times this query blocked on another caller's in-flight evaluation of
  /// the same key (single-flight collapse) before being served.
  uint64_t single_flight_waits = 0;

  ExecStats& operator+=(const ExecStats& o) {
    nodes_scanned += o.nodes_scanned;
    codes_checked += o.codes_checked;
    checks_elided += o.checks_elided;
    pages_skipped += o.pages_skipped;
    pages_prefetched += o.pages_prefetched;
    fetch_waits += o.fetch_waits;
    access_only_fetches += o.access_only_fetches;
    subjects_batched += o.subjects_batched;
    classes_evaluated += o.classes_evaluated;
    class_dedup_hits += o.class_dedup_hits;
    epoch_pins += o.epoch_pins;
    shards_scattered += o.shards_scattered;
    merge_comparisons += o.merge_comparisons;
    result_cache_hits += o.result_cache_hits;
    result_cache_misses += o.result_cache_misses;
    result_cache_invalidations += o.result_cache_invalidations;
    single_flight_waits += o.single_flight_waits;
    return *this;
  }
};

/// One named operator's contribution to a query (scan, visibility, join).
struct OperatorStats {
  const char* op = "";
  ExecStats stats;
};

/// Rolls a per-operator breakdown up into one total.
inline ExecStats RollUp(const std::vector<OperatorStats>& operators) {
  ExecStats total;
  for (const OperatorStats& o : operators) total += o.stats;
  return total;
}

}  // namespace secxml

#endif  // SECXML_EXEC_EXEC_STATS_H_
