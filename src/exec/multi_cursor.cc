#include "exec/multi_cursor.h"

#include <string>

#include "common/bitvector.h"

namespace secxml {

namespace {

/// Mirror of the store's node-in-page validation (see secure_cursor.cc):
/// the directory entry is trusted, the node id is not.
Status CheckNodeInPage(const NokStore::PageInfo& info, NodeId n) {
  if (n < info.first_node || n - info.first_node >= info.num_records) {
    return Status::Corruption("node " + std::to_string(n) +
                              " lies outside page " +
                              std::to_string(info.page_id) +
                              " (corrupt node id or directory)");
  }
  return Status::OK();
}

}  // namespace

MultiSubjectCursor::MultiSubjectCursor(SecureStore* store,
                                       const std::vector<SubjectId>& class_reps,
                                       const Options& options)
    : store_(store), class_reps_(class_reps), options_(options) {
  SECXML_DCHECK(!class_reps_.empty() &&
                class_reps_.size() <= kMaxBatchClasses);
}

Status MultiSubjectCursor::Attach() {
  if (class_reps_.empty() || class_reps_.size() > kMaxBatchClasses) {
    return Status::InvalidArgument("batch cursor needs 1.." +
                                   std::to_string(kMaxBatchClasses) +
                                   " classes, got " +
                                   std::to_string(class_reps_.size()));
  }
  const Codebook& codebook = store_->codebook();
  // The transposed columns (bit k of code_mask_[c] = class k's
  // accessibility under entry c) are materialized per entry on first
  // touch: a scan resolves only the codes its pages actually carry, and
  // eagerly transposing every entry costs entries x classes — more than a
  // fragment-sized scan does in total on wide batches.
  code_mask_.assign(codebook.size(), ClassMask());
  code_mask_ready_.assign(codebook.size(), 0);
  // Per-page batch verdicts from the in-memory directory alone: a clear
  // change bit means every slot carries first_code, so the page is dead for
  // exactly the classes that cannot access first_code — the same
  // classification SubjectView::ClassifyPage applies per subject.
  const std::vector<NokStore::PageInfo>& pages = store_->nok()->page_infos();
  page_dead_.assign(pages.size(), ClassMask());
  const ClassMask full = FullMask();
  for (size_t p = 0; p < pages.size(); ++p) {
    if (!pages[p].change_bit) {
      page_dead_[p] = full.AndNot(AccessMask(pages[p].first_code));
    }
  }
  return Status::OK();
}

void MultiSubjectCursor::MaterializeCodeMask(uint32_t code) const {
  // Accessible() fails closed for an unknown representative, so a bad rep
  // denies rather than misreads — same contract the eager transpose had
  // through Column().
  const Codebook& codebook = store_->codebook();
  ClassMask m;
  for (size_t k = 0; k < class_reps_.size(); ++k) {
    if (codebook.Accessible(code, class_reps_[k])) m.Set(k);
  }
  code_mask_[code] = m;
  code_mask_ready_[code] = 1;
}

void MultiSubjectCursor::BeginScan() {
  if (options_.page_skip) {
    skip_counted_.assign(store_->nok()->num_pages(), 0);
  } else {
    skip_counted_.clear();
  }
}

void MultiSubjectCursor::CountSkippedPage(size_t ordinal) {
  if (ordinal < skip_counted_.size() && !skip_counted_[ordinal]) {
    skip_counted_[ordinal] = 1;
    ++stats_.pages_skipped;
    ++store_->nok()->buffer_pool()->mutable_stats()->pages_skipped;
  }
}

Result<PageHandle> MultiSubjectCursor::PinPage(size_t ordinal, NodeId u) {
  NokStore* nok = store_->nok();
  if (ordinal >= nok->num_pages()) {
    return Status::Corruption("page ordinal " + std::to_string(ordinal) +
                              " out of range");
  }
  const NokStore::PageInfo& info = nok->page_infos()[ordinal];
  SECXML_RETURN_NOT_OK(CheckNodeInPage(info, u));
  bool miss = false;
  SECXML_ASSIGN_OR_RETURN(PageHandle handle,
                          nok->buffer_pool()->Fetch(info.page_id, &miss));
  if (miss) ++stats_.fetch_waits;
  return handle;
}

Result<NokRecord> MultiSubjectCursor::FetchChecked(size_t ordinal, NodeId u,
                                                   ClassMask* access) {
  SECXML_ASSIGN_OR_RETURN(PageHandle handle, PinPage(ordinal, u));
  const NokStore::PageInfo& info = store_->nok()->page_infos()[ordinal];
  uint32_t slot = u - info.first_node;
  NokRecord rec = handle.page().ReadAt<NokRecord>(RecordOffset(slot));
  ++stats_.nodes_scanned;
  // The code lives in u's own page (Section 3.3), so resolving it costs no
  // additional I/O: same pin, a transition walk at worst. One table load
  // then answers accessibility for the whole batch.
  uint32_t code = info.first_code;
  if (info.change_bit && slot > 0) {
    NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
    SECXML_RETURN_NOT_OK(CheckOnDiskHeader(header, info.page_id));
    for (uint32_t i = 0; i < header.num_transitions; ++i) {
      DolTransition t =
          handle.page().ReadAt<DolTransition>(TransitionOffset(i));
      if (t.slot > slot) break;
      code = t.code;
    }
  }
  ++stats_.codes_checked;
  *access = AccessMask(code);
  return rec;
}

Result<bool> MultiSubjectCursor::FetchCandidate(NodeId cand,
                                                const ClassMask& live,
                                                NokRecord* rec,
                                                ClassMask* access) {
  NokStore* nok = store_->nok();
  if (cand >= nok->num_nodes()) {
    return Status::OutOfRange("node id " + std::to_string(cand) +
                              " out of range");
  }
  size_t ordinal = nok->PageOrdinalOf(cand);
  if (options_.page_skip && PageWhollyDeadFor(ordinal, live)) {
    // The whole page of postings is dead for every live class; each
    // distinct page counts once no matter how many candidates fall into it.
    CountSkippedPage(ordinal);
    return false;
  }
  SECXML_ASSIGN_OR_RETURN(*rec, FetchChecked(ordinal, cand, access));
  *access &= live;
  return true;
}

Result<NodeId> MultiSubjectCursor::NextSiblingSkippingDead(
    NodeId u, uint16_t depth, NodeId limit, const ClassMask& live) {
  NokStore* nok = store_->nok();
  size_t ordinal = nok->PageOrdinalOf(u) + 1;
  while (ordinal < nok->num_pages()) {
    const NokStore::PageInfo& info = nok->page_infos()[ordinal];
    if (info.first_node >= limit) return kInvalidNode;
    if (PageWhollyDeadFor(ordinal, live)) {
      // Nothing in this page is visible to any live class: any sibling
      // inside it would be pruned for everyone, so the page is never
      // loaded. The dead-mask table makes this test one in-memory AND.
      CountSkippedPage(ordinal);
      ++ordinal;
      continue;
    }
    // Probe this live page for the first node at the sibling depth. One
    // pin; the scanned records are probes, not yields, so they do not
    // count toward nodes_scanned.
    bool miss = false;
    SECXML_ASSIGN_OR_RETURN(PageHandle handle,
                            nok->buffer_pool()->Fetch(info.page_id, &miss));
    if (miss) ++stats_.fetch_waits;
    for (uint32_t slot = 0; slot < info.num_records; ++slot) {
      NodeId n = info.first_node + slot;
      if (n >= limit) break;
      NokRecord rec = handle.page().ReadAt<NokRecord>(RecordOffset(slot));
      if (rec.depth == depth) return n;
    }
    ++ordinal;
  }
  return kInvalidNode;
}

MultiSubjectCursor::ChildWalk::ChildWalk(MultiSubjectCursor* cursor,
                                         NodeId parent,
                                         const NokRecord& parent_rec,
                                         const ClassMask& live)
    : c_(cursor),
      live_(live),
      next_(NokStore::FirstChild(parent, parent_rec)),
      parent_end_(parent + parent_rec.subtree_size),
      child_depth_(static_cast<uint16_t>(parent_rec.depth + 1)) {}

Result<bool> MultiSubjectCursor::ChildWalk::Next(NodeId* u, NokRecord* rec,
                                                 ClassMask* access) {
  NokStore* nok = c_->store_->nok();
  while (next_ != kInvalidNode) {
    NodeId n = next_;
    // Consult the batch page verdict before touching n's page: skipped iff
    // dead for every class still live in this walk.
    if (c_->options_.page_skip) {
      if (n < page_begin_ || n >= page_end_) {
        page_ordinal_ = nok->PageOrdinalOf(n);
        const NokStore::PageInfo& info = nok->page_infos()[page_ordinal_];
        page_begin_ = info.first_node;
        page_end_ = info.first_node + info.num_records;
        page_dead_ = c_->PageWhollyDeadFor(page_ordinal_, live_);
      }
      if (page_dead_) {
        c_->CountSkippedPage(page_ordinal_);
        SECXML_ASSIGN_OR_RETURN(
            next_,
            c_->NextSiblingSkippingDead(n, child_depth_, parent_end_, live_));
        continue;
      }
    }
    size_t ordinal =
        c_->options_.page_skip ? page_ordinal_ : nok->PageOrdinalOf(n);
    SECXML_ASSIGN_OR_RETURN(*rec, c_->FetchChecked(ordinal, n, access));
    *access &= live_;
    next_ = NokStore::FollowingSibling(n, *rec, parent_end_);
    *u = n;
    return true;
  }
  return false;
}

}  // namespace secxml
