#include "exec/mask_ops.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SECXML_MASK_SIMD 1
#include <immintrin.h>
#else
#define SECXML_MASK_SIMD 0
#endif

namespace secxml {

namespace {

// --- Scalar kernels -------------------------------------------------------
//
// The reference tier: every SIMD variant must match these bit for bit
// (tests/exec/mask_ops_test.cc pins that). Plain word loops; at 8 words per
// mask the compiler unrolls and vectorizes them to the baseline ISA.

void AndBroadcastScalar(WideClassMask* rows, size_t n,
                        const WideClassMask& m) {
  for (size_t i = 0; i < n; ++i) rows[i] &= m;
}

void AndBroadcastStridedScalar(void* first_mask, size_t stride_bytes,
                               size_t n, const WideClassMask& m) {
  char* p = static_cast<char*>(first_mask);
  for (size_t i = 0; i < n; ++i, p += stride_bytes) {
    // The mask is embedded in a larger struct; memcpy in and out keeps the
    // access well-defined regardless of the holder's alignment.
    WideClassMask row;
    std::memcpy(&row, p, sizeof(row));
    row &= m;
    std::memcpy(p, &row, sizeof(row));
  }
}

void ReduceAndScalar(const WideClassMask* rows, size_t n, WideClassMask* out) {
  WideClassMask acc = WideClassMask::FirstN(kMaxBatchClasses);
  for (size_t i = 0; i < n; ++i) acc &= rows[i];
  *out = acc;
}

void ReduceOrScalar(const WideClassMask* rows, size_t n, WideClassMask* out) {
  WideClassMask acc;
  for (size_t i = 0; i < n; ++i) acc |= rows[i];
  *out = acc;
}

uint64_t PopcountRowsScalar(const WideClassMask* rows, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += rows[i].count();
  return total;
}

constexpr MaskKernels kScalarKernels = {
    AndBroadcastScalar, AndBroadcastStridedScalar, ReduceAndScalar,
    ReduceOrScalar,     PopcountRowsScalar,        MaskIsa::kScalar,
};

#if SECXML_MASK_SIMD

// --- AVX2 kernels ---------------------------------------------------------
//
// One mask = two 256-bit lanes. Compiled with the target attribute so no
// special -m flags are needed; never called unless CPUID says avx2.

__attribute__((target("avx2"))) void AndBroadcastAvx2(WideClassMask* rows,
                                                      size_t n,
                                                      const WideClassMask& m) {
  const __m256i mlo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m.words()));
  const __m256i mhi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m.words() + 4));
  for (size_t i = 0; i < n; ++i) {
    __m256i* p = reinterpret_cast<__m256i*>(rows[i].words());
    _mm256_storeu_si256(p, _mm256_and_si256(_mm256_loadu_si256(p), mlo));
    _mm256_storeu_si256(p + 1,
                        _mm256_and_si256(_mm256_loadu_si256(p + 1), mhi));
  }
}

__attribute__((target("avx2"))) void AndBroadcastStridedAvx2(
    void* first_mask, size_t stride_bytes, size_t n, const WideClassMask& m) {
  const __m256i mlo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m.words()));
  const __m256i mhi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m.words() + 4));
  char* p = static_cast<char*>(first_mask);
  for (size_t i = 0; i < n; ++i, p += stride_bytes) {
    __m256i* q = reinterpret_cast<__m256i*>(p);
    _mm256_storeu_si256(q, _mm256_and_si256(_mm256_loadu_si256(q), mlo));
    _mm256_storeu_si256(q + 1,
                        _mm256_and_si256(_mm256_loadu_si256(q + 1), mhi));
  }
}

__attribute__((target("avx2"))) void ReduceAndAvx2(const WideClassMask* rows,
                                                   size_t n,
                                                   WideClassMask* out) {
  __m256i lo = _mm256_set1_epi64x(-1);
  __m256i hi = _mm256_set1_epi64x(-1);
  for (size_t i = 0; i < n; ++i) {
    const __m256i* p = reinterpret_cast<const __m256i*>(rows[i].words());
    lo = _mm256_and_si256(lo, _mm256_loadu_si256(p));
    hi = _mm256_and_si256(hi, _mm256_loadu_si256(p + 1));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out->words()), lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out->words() + 4), hi);
}

__attribute__((target("avx2"))) void ReduceOrAvx2(const WideClassMask* rows,
                                                  size_t n,
                                                  WideClassMask* out) {
  __m256i lo = _mm256_setzero_si256();
  __m256i hi = _mm256_setzero_si256();
  for (size_t i = 0; i < n; ++i) {
    const __m256i* p = reinterpret_cast<const __m256i*>(rows[i].words());
    lo = _mm256_or_si256(lo, _mm256_loadu_si256(p));
    hi = _mm256_or_si256(hi, _mm256_loadu_si256(p + 1));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out->words()), lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out->words() + 4), hi);
}

/// Mula's nibble-LUT popcount: per-byte counts via two pshufb lookups,
/// horizontally summed with sad against zero.
__attribute__((target("avx2"))) inline __m256i PopcountBytes256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

__attribute__((target("avx2"))) uint64_t PopcountRowsAvx2(
    const WideClassMask* rows, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  for (size_t i = 0; i < n; ++i) {
    const __m256i* p = reinterpret_cast<const __m256i*>(rows[i].words());
    __m256i bytes = _mm256_add_epi8(PopcountBytes256(_mm256_loadu_si256(p)),
                                    PopcountBytes256(_mm256_loadu_si256(p + 1)));
    // Per-mask byte counts max out at 16 < 255, safe to sad per iteration.
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

constexpr MaskKernels kAvx2Kernels = {
    AndBroadcastAvx2, AndBroadcastStridedAvx2, ReduceAndAvx2,
    ReduceOrAvx2,     PopcountRowsAvx2,        MaskIsa::kAvx2,
};

// --- AVX-512 kernels ------------------------------------------------------
//
// One mask = one 512-bit lane. Requires avx512f+avx512bw for the lane ops
// and avx512vpopcntdq for the vector popcount.

#define SECXML_AVX512_TARGET \
  __attribute__((target("avx512f,avx512bw,avx512vpopcntdq")))

SECXML_AVX512_TARGET void AndBroadcastAvx512(WideClassMask* rows, size_t n,
                                             const WideClassMask& m) {
  const __m512i mm = _mm512_loadu_si512(m.words());
  for (size_t i = 0; i < n; ++i) {
    uint64_t* p = rows[i].words();
    _mm512_storeu_si512(p, _mm512_and_si512(_mm512_loadu_si512(p), mm));
  }
}

SECXML_AVX512_TARGET void AndBroadcastStridedAvx512(void* first_mask,
                                                    size_t stride_bytes,
                                                    size_t n,
                                                    const WideClassMask& m) {
  const __m512i mm = _mm512_loadu_si512(m.words());
  char* p = static_cast<char*>(first_mask);
  for (size_t i = 0; i < n; ++i, p += stride_bytes) {
    _mm512_storeu_si512(p, _mm512_and_si512(_mm512_loadu_si512(p), mm));
  }
}

SECXML_AVX512_TARGET void ReduceAndAvx512(const WideClassMask* rows, size_t n,
                                          WideClassMask* out) {
  __m512i acc = _mm512_set1_epi64(-1);
  for (size_t i = 0; i < n; ++i) {
    acc = _mm512_and_si512(acc, _mm512_loadu_si512(rows[i].words()));
  }
  _mm512_storeu_si512(out->words(), acc);
}

SECXML_AVX512_TARGET void ReduceOrAvx512(const WideClassMask* rows, size_t n,
                                         WideClassMask* out) {
  __m512i acc = _mm512_setzero_si512();
  for (size_t i = 0; i < n; ++i) {
    acc = _mm512_or_si512(acc, _mm512_loadu_si512(rows[i].words()));
  }
  _mm512_storeu_si512(out->words(), acc);
}

SECXML_AVX512_TARGET uint64_t PopcountRowsAvx512(const WideClassMask* rows,
                                                 size_t n) {
  __m512i acc = _mm512_setzero_si512();
  for (size_t i = 0; i < n; ++i) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_loadu_si512(rows[i].words())));
  }
  return static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
}

constexpr MaskKernels kAvx512Kernels = {
    AndBroadcastAvx512, AndBroadcastStridedAvx512, ReduceAndAvx512,
    ReduceOrAvx512,     PopcountRowsAvx512,        MaskIsa::kAvx512,
};

#endif  // SECXML_MASK_SIMD

bool CpuHasAvx2() {
#if SECXML_MASK_SIMD
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if SECXML_MASK_SIMD
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
  return false;
#endif
}

MaskIsa ClampToSupported(MaskIsa isa) {
  if (isa == MaskIsa::kAvx512 && CpuHasAvx512()) return MaskIsa::kAvx512;
  if (isa >= MaskIsa::kAvx2 && CpuHasAvx2()) return MaskIsa::kAvx2;
  return MaskIsa::kScalar;
}

MaskIsa InitialIsa() {
  const char* force = std::getenv("SECXML_FORCE_SCALAR_MASKS");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') {
    return MaskIsa::kScalar;
  }
  return ClampToSupported(MaskIsa::kAvx512);
}

std::atomic<MaskIsa>& ActiveIsaSlot() {
  static std::atomic<MaskIsa> slot{InitialIsa()};
  return slot;
}

}  // namespace

const char* MaskIsaName(MaskIsa isa) {
  switch (isa) {
    case MaskIsa::kScalar:
      return "scalar";
    case MaskIsa::kAvx2:
      return "avx2";
    case MaskIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool MaskIsaSupported(MaskIsa isa) { return ClampToSupported(isa) == isa; }

const MaskKernels& MaskKernelsFor(MaskIsa isa) {
#if SECXML_MASK_SIMD
  switch (ClampToSupported(isa)) {
    case MaskIsa::kAvx512:
      return kAvx512Kernels;
    case MaskIsa::kAvx2:
      return kAvx2Kernels;
    case MaskIsa::kScalar:
      break;
  }
#else
  (void)isa;
#endif
  return kScalarKernels;
}

const MaskKernels& ActiveMaskKernels() {
  return MaskKernelsFor(ActiveIsaSlot().load(std::memory_order_relaxed));
}

MaskIsa ActiveMaskIsa() {
  return ActiveIsaSlot().load(std::memory_order_relaxed);
}

MaskIsa ForceMaskIsa(MaskIsa isa) {
  MaskIsa selected = ClampToSupported(isa);
  ActiveIsaSlot().store(selected, std::memory_order_relaxed);
  return selected;
}

}  // namespace secxml
