#ifndef SECXML_EXEC_MASK_OPS_H_
#define SECXML_EXEC_MASK_OPS_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace secxml {

/// One bit per visibility equivalence class of a subject batch. PR 5 capped
/// the batch at one machine word (64 classes, chunking above that); the wide
/// mask lifts the cap to kMaxBatchClasses so one structural scan serves the
/// whole batch. All mask arithmetic in the engine goes through this type or
/// the dispatched kernels below — the layering lint forbids raw uint64_t
/// mask math outside this header.
inline constexpr size_t kMaxBatchClasses = 512;
inline constexpr size_t kClassMaskWords = kMaxBatchClasses / 64;

/// Fixed small-vector of mask words: 8 x 64 = 512 class bits, exactly one
/// AVX-512 register (or two AVX2 registers) per mask. Single-mask operations
/// are inline word loops — at 8 words the compiler auto-vectorizes them and
/// an indirect kernel call would cost more than the work. The runtime-
/// dispatched SIMD kernels (MaskKernels) cover the bulk loops, where arrays
/// of masks amortize the dispatch.
///
/// Deliberately trivially copyable and standard-layout (bindings embed masks
/// and the strided kernels address them by byte offset); natural 8-byte
/// alignment with unaligned SIMD loads in the kernels, so embedding a mask
/// in a struct costs no padding.
class WideClassMask {
 public:
  constexpr WideClassMask() = default;

  /// Mask with only class bit `k` set (k < kMaxBatchClasses).
  static constexpr WideClassMask Bit(size_t k) {
    WideClassMask m;
    m.w_[k / 64] = 1ULL << (k % 64);
    return m;
  }

  /// Mask with class bits [0, n) set — the batch-wide "full" mask for a
  /// batch of n classes.
  static constexpr WideClassMask FirstN(size_t n) {
    WideClassMask m;
    for (size_t i = 0; i < kClassMaskWords; ++i) {
      if (n >= (i + 1) * 64) {
        m.w_[i] = ~0ULL;
      } else if (n > i * 64) {
        m.w_[i] = (1ULL << (n - i * 64)) - 1;
      }
    }
    return m;
  }

  constexpr bool Test(size_t k) const {
    return ((w_[k / 64] >> (k % 64)) & 1) != 0;
  }
  constexpr void Set(size_t k) { w_[k / 64] |= 1ULL << (k % 64); }
  constexpr void Reset(size_t k) { w_[k / 64] &= ~(1ULL << (k % 64)); }

  constexpr bool any() const {
    uint64_t acc = 0;
    for (size_t i = 0; i < kClassMaskWords; ++i) acc |= w_[i];
    return acc != 0;
  }
  constexpr bool none() const { return !any(); }

  constexpr size_t count() const {
    size_t c = 0;
    for (size_t i = 0; i < kClassMaskWords; ++i) c += std::popcount(w_[i]);
    return c;
  }

  constexpr WideClassMask& operator&=(const WideClassMask& o) {
    for (size_t i = 0; i < kClassMaskWords; ++i) w_[i] &= o.w_[i];
    return *this;
  }
  constexpr WideClassMask& operator|=(const WideClassMask& o) {
    for (size_t i = 0; i < kClassMaskWords; ++i) w_[i] |= o.w_[i];
    return *this;
  }
  friend constexpr WideClassMask operator&(WideClassMask a,
                                           const WideClassMask& b) {
    a &= b;
    return a;
  }
  friend constexpr WideClassMask operator|(WideClassMask a,
                                           const WideClassMask& b) {
    a |= b;
    return a;
  }

  /// this & ~o — the fail-closed complement restricted to this mask, so
  /// callers never form an unrestricted ~mask over the 512-bit universe.
  constexpr WideClassMask AndNot(const WideClassMask& o) const {
    WideClassMask r;
    for (size_t i = 0; i < kClassMaskWords; ++i) r.w_[i] = w_[i] & ~o.w_[i];
    return r;
  }

  /// True when every bit of `sub` is set here: (sub & ~this) == 0. The
  /// page-skip test "dead covers live" is one call.
  constexpr bool Covers(const WideClassMask& sub) const {
    uint64_t stray = 0;
    for (size_t i = 0; i < kClassMaskWords; ++i) stray |= sub.w_[i] & ~w_[i];
    return stray == 0;
  }

  constexpr bool Intersects(const WideClassMask& o) const {
    uint64_t acc = 0;
    for (size_t i = 0; i < kClassMaskWords; ++i) acc |= w_[i] & o.w_[i];
    return acc != 0;
  }

  friend constexpr bool operator==(const WideClassMask&,
                                   const WideClassMask&) = default;

  /// Lowest set class bit, or kMaxBatchClasses when empty.
  constexpr size_t FirstSetBit() const {
    for (size_t i = 0; i < kClassMaskWords; ++i) {
      if (w_[i] != 0) return i * 64 + std::countr_zero(w_[i]);
    }
    return kMaxBatchClasses;
  }

  /// Calls f(k) for every set class bit, ascending.
  template <typename F>
  void ForEachSetBit(F&& f) const {
    for (size_t i = 0; i < kClassMaskWords; ++i) {
      uint64_t w = w_[i];
      while (w != 0) {
        f(i * 64 + static_cast<size_t>(std::countr_zero(w)));
        w &= w - 1;
      }
    }
  }

  /// Raw word access for the kernel layer and tests only.
  constexpr uint64_t word(size_t i) const { return w_[i]; }
  uint64_t* words() { return w_; }
  const uint64_t* words() const { return w_; }

 private:
  uint64_t w_[kClassMaskWords] = {};
};

using ClassMask = WideClassMask;

/// Instruction sets the bulk kernels are compiled for. Selection happens
/// once at startup via CPUID (__builtin_cpu_supports); the environment
/// variable SECXML_FORCE_SCALAR_MASKS=1 pins kScalar for differential
/// testing, and ForceMaskIsa() lets tests/benches pick any supported tier.
enum class MaskIsa { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* MaskIsaName(MaskIsa isa);

/// Bulk mask kernels: loops over arrays of masks, dispatched per ISA. Every
/// variant computes bit-identical results; tests pin that across tiers.
struct MaskKernels {
  /// rows[i] &= m for i in [0, n).
  void (*and_broadcast)(WideClassMask* rows, size_t n, const WideClassMask& m);
  /// Strided variant for arrays-of-struct (e.g. MaskedBinding): the i-th
  /// mask lives at first_mask + i * stride_bytes. This is the frame-exit
  /// success-mask narrowing loop of the batch matcher.
  void (*and_broadcast_strided)(void* first_mask, size_t stride_bytes,
                                size_t n, const WideClassMask& m);
  /// *out = AND over rows[0, n); all-ones (FirstN(kMaxBatchClasses)) when
  /// n == 0. The per-page dead-mask AND-reduction.
  void (*reduce_and)(const WideClassMask* rows, size_t n, WideClassMask* out);
  /// *out = OR over rows[0, n); zero when n == 0.
  void (*reduce_or)(const WideClassMask* rows, size_t n, WideClassMask* out);
  /// Total set bits across rows[0, n).
  uint64_t (*popcount_rows)(const WideClassMask* rows, size_t n);
  MaskIsa isa = MaskIsa::kScalar;
};

/// True when the host CPU can run kernels of `isa` (kScalar is always true).
bool MaskIsaSupported(MaskIsa isa);

/// Kernel table for `isa`; falls back to scalar when unsupported.
const MaskKernels& MaskKernelsFor(MaskIsa isa);

/// The active kernel table: best supported ISA at first use, unless
/// SECXML_FORCE_SCALAR_MASKS=1 pinned scalar or ForceMaskIsa() overrode it.
const MaskKernels& ActiveMaskKernels();
MaskIsa ActiveMaskIsa();

/// Overrides the active ISA (clamped to the best supported tier at or below
/// the request); returns what was actually selected. Not thread-safe against
/// concurrent scans — a test/bench hook, not a serving control.
MaskIsa ForceMaskIsa(MaskIsa isa);

}  // namespace secxml

#endif  // SECXML_EXEC_MASK_OPS_H_
