#include "exec/secure_cursor.h"

#include <string>

namespace secxml {

namespace {

/// Mirror of the store's node-in-page validation: the directory entry is
/// trusted (in-memory, validated at open), the node id is not — corrupt
/// subtree_size fields can aim navigation anywhere.
Status CheckNodeInPage(const NokStore::PageInfo& info, NodeId n) {
  if (n < info.first_node || n - info.first_node >= info.num_records) {
    return Status::Corruption("node " + std::to_string(n) +
                              " lies outside page " +
                              std::to_string(info.page_id) +
                              " (corrupt node id or directory)");
  }
  return Status::OK();
}

}  // namespace

Status SecureCursor::Attach() {
  view_holder_.reset();
  view_ = nullptr;
  if (options_.secure && options_.use_view) {
    SECXML_ASSIGN_OR_RETURN(view_holder_, store_->View(options_.subject));
    view_ = view_holder_.get();
  }
  return Status::OK();
}

void SecureCursor::BeginScan() {
  if (options_.secure && options_.page_skip) {
    skip_counted_.assign(store_->nok()->num_pages(), 0);
  } else {
    skip_counted_.clear();
  }
}

void SecureCursor::CountSkippedPage(size_t ordinal) {
  if (ordinal < skip_counted_.size() && !skip_counted_[ordinal]) {
    skip_counted_[ordinal] = 1;
    ++stats_.pages_skipped;
    ++store_->nok()->buffer_pool()->mutable_stats()->pages_skipped;
  }
}

Result<PageHandle> SecureCursor::PinPage(size_t ordinal, NodeId u) {
  NokStore* nok = store_->nok();
  if (ordinal >= nok->num_pages()) {
    return Status::Corruption("page ordinal " + std::to_string(ordinal) +
                              " out of range");
  }
  const NokStore::PageInfo& info = nok->page_infos()[ordinal];
  SECXML_RETURN_NOT_OK(CheckNodeInPage(info, u));
  bool miss = false;
  SECXML_ASSIGN_OR_RETURN(PageHandle handle,
                          nok->buffer_pool()->Fetch(info.page_id, &miss));
  if (miss) ++stats_.fetch_waits;
  return handle;
}

Result<NokRecord> SecureCursor::FetchChecked(size_t ordinal, NodeId u,
                                             bool* accessible) {
  SECXML_ASSIGN_OR_RETURN(PageHandle handle, PinPage(ordinal, u));
  const NokStore::PageInfo& info = store_->nok()->page_infos()[ordinal];
  uint32_t slot = u - info.first_node;
  NokRecord rec = handle.page().ReadAt<NokRecord>(RecordOffset(slot));
  ++stats_.nodes_scanned;
  if (view_ != nullptr && view_->PageCheckFree(ordinal)) {
    // Every node of this page is accessible to the subject: the record
    // fetch stands, the code is never decoded.
    ++stats_.checks_elided;
    *accessible = true;
    return rec;
  }
  // The code lives in u's own page (Section 3.3), so resolving it costs no
  // additional I/O: same pin, a transition walk at worst.
  uint32_t code = info.first_code;
  if (info.change_bit && slot > 0) {
    NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
    SECXML_RETURN_NOT_OK(CheckOnDiskHeader(header, info.page_id));
    for (uint32_t i = 0; i < header.num_transitions; ++i) {
      DolTransition t =
          handle.page().ReadAt<DolTransition>(TransitionOffset(i));
      if (t.slot > slot) break;
      code = t.code;
    }
  }
  ++stats_.codes_checked;
  *accessible = CodeAccessible(code);
  return rec;
}

Result<NokRecord> SecureCursor::Fetch(NodeId u) {
  NokStore* nok = store_->nok();
  if (u >= nok->num_nodes()) {
    return Status::OutOfRange("node id " + std::to_string(u) +
                              " out of range");
  }
  size_t ordinal = nok->PageOrdinalOf(u);
  SECXML_ASSIGN_OR_RETURN(PageHandle handle, PinPage(ordinal, u));
  const NokStore::PageInfo& info = nok->page_infos()[ordinal];
  ++stats_.nodes_scanned;
  return handle.page().ReadAt<NokRecord>(
      RecordOffset(u - info.first_node));
}

Result<bool> SecureCursor::FetchCandidate(NodeId cand, NokRecord* rec,
                                          bool* accessible) {
  *accessible = true;
  if (!options_.secure) {
    SECXML_ASSIGN_OR_RETURN(*rec, Fetch(cand));
    return true;
  }
  size_t ordinal = store_->nok()->PageOrdinalOf(cand);
  if (options_.page_skip && PageWhollyDead(ordinal)) {
    // The whole page of postings is dead; each distinct page counts once
    // toward pages_skipped no matter how many candidates fall into it.
    CountSkippedPage(ordinal);
    return false;
  }
  SECXML_ASSIGN_OR_RETURN(*rec, FetchChecked(ordinal, cand, accessible));
  return true;
}

Result<NodeId> SecureCursor::NextSiblingSkippingDead(NodeId u, uint16_t depth,
                                                     NodeId limit) {
  NokStore* nok = store_->nok();
  size_t ordinal = nok->PageOrdinalOf(u) + 1;
  while (ordinal < nok->num_pages()) {
    if (view_ != nullptr) {
      // The skip index jumps the whole run of wholly-dead pages in O(1)
      // instead of probing each header in turn. Pages of the run before
      // `limit` are ones we avoided loading; count each (at most once per
      // scan, same as the probing path).
      size_t next = view_->NextLivePage(ordinal);
      for (; ordinal < next; ++ordinal) {
        if (nok->page_infos()[ordinal].first_node >= limit) {
          return kInvalidNode;
        }
        CountSkippedPage(ordinal);
      }
      if (ordinal >= nok->num_pages()) return kInvalidNode;
    }
    const NokStore::PageInfo& info = nok->page_infos()[ordinal];
    if (info.first_node >= limit) return kInvalidNode;
    if (PageWhollyDead(ordinal)) {
      // Everything in this page is inaccessible: any sibling inside it
      // would be pruned anyway, and the records we would need are exactly
      // the ones the paper's header check lets us avoid reading. (Reached
      // only without a view; the skip index already stepped past dead
      // pages above.)
      CountSkippedPage(ordinal);
      ++ordinal;
      continue;
    }
    // Probe this live page for the first node at the sibling depth. One
    // pin; the scanned records are probes, not yields, so they do not
    // count toward nodes_scanned.
    bool miss = false;
    SECXML_ASSIGN_OR_RETURN(PageHandle handle,
                            nok->buffer_pool()->Fetch(info.page_id, &miss));
    if (miss) ++stats_.fetch_waits;
    for (uint32_t slot = 0; slot < info.num_records; ++slot) {
      NodeId n = info.first_node + slot;
      if (n >= limit) break;
      NokRecord rec = handle.page().ReadAt<NokRecord>(RecordOffset(slot));
      if (rec.depth == depth) return n;
    }
    ++ordinal;
  }
  return kInvalidNode;
}

SecureCursor::ChildWalk::ChildWalk(SecureCursor* cursor, NodeId parent,
                                   const NokRecord& parent_rec)
    : c_(cursor),
      next_(NokStore::FirstChild(parent, parent_rec)),
      parent_end_(parent + parent_rec.subtree_size),
      child_depth_(static_cast<uint16_t>(parent_rec.depth + 1)) {}

Result<bool> SecureCursor::ChildWalk::Next(NodeId* u, NokRecord* rec,
                                           bool* accessible) {
  const Options& opts = c_->options_;
  NokStore* nok = c_->store_->nok();
  while (next_ != kInvalidNode) {
    NodeId n = next_;
    // ε-NoK: consult the page verdict (compiled or from the in-memory
    // header) before touching n's page.
    if (opts.secure && opts.page_skip) {
      if (n < page_begin_ || n >= page_end_) {
        page_ordinal_ = nok->PageOrdinalOf(n);
        const NokStore::PageInfo& info = nok->page_infos()[page_ordinal_];
        page_begin_ = info.first_node;
        page_end_ = info.first_node + info.num_records;
        page_dead_ = c_->PageWhollyDead(page_ordinal_);
      }
      if (page_dead_) {
        c_->CountSkippedPage(page_ordinal_);
        SECXML_ASSIGN_OR_RETURN(
            next_, c_->NextSiblingSkippingDead(n, child_depth_, parent_end_));
        continue;
      }
    }
    *accessible = true;
    if (opts.secure) {
      // With page skipping on, the ordinal is the one cached by the verdict
      // check above.
      size_t ordinal =
          opts.page_skip ? page_ordinal_ : nok->PageOrdinalOf(n);
      SECXML_ASSIGN_OR_RETURN(*rec, c_->FetchChecked(ordinal, n, accessible));
    } else {
      SECXML_ASSIGN_OR_RETURN(*rec, c_->Fetch(n));
    }
    next_ = NokStore::FollowingSibling(n, *rec, parent_end_);
    *u = n;
    return true;
  }
  return false;
}

PageSweep::PageSweep(NokStore* nok, std::function<bool(size_t)> skip,
                     ExecStats* stats, bool bounded_window)
    : nok_(nok),
      ra_(nok->readahead()),
      window_(nok->readahead_window()),
      skip_(std::move(skip)),
      stats_(stats),
      bounded_window_(bounded_window) {}

PageSweep::~PageSweep() {
  // No background fetch may outlive the sweep that issued it (the
  // no-overlap-with-exclusive-updates contract).
  if (ra_ != nullptr) ra_->Drain();
}

void PageSweep::PrefetchFrom(size_t ordinal) {
  if (ra_ == nullptr || window_ == 0) return;
  if (prefetch_cursor_ < ordinal + 1) prefetch_cursor_ = ordinal + 1;
  size_t issued = 0;
  while (issued < window_ && prefetch_cursor_ < nok_->num_pages()) {
    if (bounded_window_ && prefetch_cursor_ > ordinal + window_) break;
    size_t ord = prefetch_cursor_++;
    if (skip_ && skip_(ord)) continue;
    ra_->Request(nok_->page_infos()[ord].page_id);
    if (stats_ != nullptr) ++stats_->pages_prefetched;
    ++issued;
  }
}

Result<PageHandle> PageSweep::Fetch(size_t ordinal) {
  if (ordinal >= nok_->num_pages()) {
    return Status::OutOfRange("page ordinal out of range");
  }
  bool miss = false;
  SECXML_ASSIGN_OR_RETURN(
      PageHandle handle,
      nok_->buffer_pool()->Fetch(nok_->page_infos()[ordinal].page_id, &miss));
  if (miss && stats_ != nullptr) ++stats_->fetch_waits;
  return handle;
}

PageCodeWalker::PageCodeWalker(const Page& page, const NokPageHeader& header)
    : page_(&page), header_(header), code_(header.first_code) {
  if (next_transition_ < header_.num_transitions) {
    pending_ =
        page_->ReadAt<DolTransition>(TransitionOffset(next_transition_));
  }
}

uint32_t PageCodeWalker::CodeFor(uint32_t slot) {
  while (next_transition_ < header_.num_transitions && pending_.slot <= slot) {
    code_ = pending_.code;
    ++next_transition_;
    if (next_transition_ < header_.num_transitions) {
      pending_ =
          page_->ReadAt<DolTransition>(TransitionOffset(next_transition_));
    }
  }
  return code_;
}

}  // namespace secxml
