#include "baseline/cam.h"

#include <cassert>
#include <limits>

namespace secxml {

namespace {

// Label counts above this are never reached; used as the impossible cost.
constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max() / 4;

}  // namespace

Cam Cam::Build(const Document& doc,
               const std::function<bool(NodeId)>& accessible) {
  const NodeId n = static_cast<NodeId>(doc.NumNodes());
  Cam cam;
  if (n == 0) return cam;

  // Bottom-up DP. For each node v and inherited default d in {0, 1}:
  //   cost(v, d) = min(
  //     acc(v) == d ? sum_c cost(c, d) : INF,          // v unlabeled
  //     1 + min_e ( sum_c cost(c, e) ) )               // v labeled, desc=e
  // sum_d[v] accumulates children's cost(c, d); since children follow their
  // parent in preorder, a reverse scan folds each node's cost into its
  // parent before the parent is processed.
  std::vector<uint64_t> sum0(n, 0), sum1(n, 0);
  std::vector<uint64_t> cost0(n), cost1(n);
  for (NodeId v = n; v-- > 0;) {
    bool acc = accessible(v);
    uint64_t labeled = 1 + std::min(sum0[v], sum1[v]);
    cost0[v] = std::min(acc == false ? sum0[v] : kInf, labeled);
    cost1[v] = std::min(acc == true ? sum1[v] : kInf, labeled);
    NodeId p = doc.Parent(v);
    if (p != kInvalidNode) {
      sum0[p] += cost0[v];
      sum1[p] += cost1[v];
    }
  }

  // Top-down reconstruction: each node sees the effective default chosen by
  // its nearest labeled ancestor (root inherits the closed-world 0).
  std::vector<uint8_t> effective(n);
  for (NodeId v = 0; v < n; ++v) {
    NodeId p = doc.Parent(v);
    bool inherited = p == kInvalidNode ? false : (effective[p] != 0);
    bool acc = accessible(v);
    uint64_t unlabeled = acc == inherited ? (inherited ? sum1[v] : sum0[v])
                                          : kInf;
    uint64_t labeled = 1 + std::min(sum0[v], sum1[v]);
    if (labeled < unlabeled) {
      bool desc = sum1[v] < sum0[v];
      cam.labels_.emplace(v, Label{acc, desc});
      effective[v] = desc ? 1 : 0;
    } else {
      effective[v] = inherited ? 1 : 0;
    }
  }
  return cam;
}

bool Cam::Accessible(const Document& doc, NodeId node) const {
  auto it = labels_.find(node);
  if (it != labels_.end()) return it->second.self;
  for (NodeId a = doc.Parent(node); a != kInvalidNode; a = doc.Parent(a)) {
    it = labels_.find(a);
    if (it != labels_.end()) return it->second.desc;
  }
  return false;  // closed world
}

PositiveCam PositiveCam::Build(
    const Document& doc, const std::function<bool(NodeId)>& accessible) {
  const NodeId n = static_cast<NodeId>(doc.NumNodes());
  PositiveCam cam;
  if (n == 0) return cam;

  // Prefix sums of accessibility decide in O(1) whether a subtree is fully
  // accessible: subtree(x) fully accessible iff its accessible-node count
  // equals its size.
  std::vector<uint32_t> prefix(n + 1, 0);
  std::vector<uint8_t> acc(n);
  for (NodeId x = 0; x < n; ++x) {
    acc[x] = accessible(x) ? 1 : 0;
    prefix[x + 1] = prefix[x] + acc[x];
  }
  auto fully = [&](NodeId x) {
    NodeId end = doc.SubtreeEnd(x);
    return prefix[end] - prefix[x] == end - x;
  };

  for (NodeId x = 0; x < n; ++x) {
    if (!acc[x]) continue;
    if (fully(x)) {
      NodeId p = doc.Parent(x);
      if (p == kInvalidNode || !fully(p)) {
        // Root of a maximal fully-accessible subtree: one desc label.
        cam.labels_.emplace(x, Label{true, true});
      }
      // Else covered by an ancestor's desc label.
    } else {
      // Accessible, but the subtree has an inaccessible node: self label.
      cam.labels_.emplace(x, Label{true, false});
    }
  }
  return cam;
}

bool PositiveCam::Accessible(const Document& doc, NodeId node) const {
  auto it = labels_.find(node);
  if (it != labels_.end() && it->second.self) return true;
  for (NodeId a = node;; a = doc.Parent(a)) {
    it = labels_.find(a);
    if (it != labels_.end() && it->second.desc) return true;
    if (doc.Parent(a) == kInvalidNode) break;
  }
  return false;  // closed world
}

}  // namespace secxml
