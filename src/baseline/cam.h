#ifndef SECXML_BASELINE_CAM_H_
#define SECXML_BASELINE_CAM_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "xml/document.h"

namespace secxml {

/// Compressed Accessibility Map (Yu, Srivastava, Lakshmanan, Jagadish,
/// VLDB 2002) — the single-subject baseline the paper compares DOL against
/// (Section 5.1).
///
/// A CAM is a set of labeled tree nodes; each label carries two bits:
///   - self: the labeled node's own accessibility;
///   - desc: the default accessibility of its descendants, holding until
///     overridden by a deeper CAM node.
/// The accessibility of node x is decided by the lowest labeled
/// ancestor-or-self: its self bit if x itself is labeled, its desc bit
/// otherwise; nodes with no labeled ancestor are inaccessible (closed
/// world). Build() computes the exact minimum-cardinality CAM via a
/// two-state bottom-up dynamic program in O(n).
///
/// This variant reproduces the paper's headline comparison: CAM at roughly
/// half the DOL transition count for a single subject at low accessibility
/// ratios (Figure 4(a)), while multi-subject DOL wins by orders of
/// magnitude (Section 5.1.1).
class Cam {
 public:
  struct Label {
    bool self = false;
    bool desc = false;
  };

  /// Builds the minimal CAM for one subject over `doc`.
  static Cam Build(const Document& doc,
                   const std::function<bool(NodeId)>& accessible);

  /// Number of CAM labels — the size metric of Figure 4.
  size_t num_labels() const { return labels_.size(); }

  /// Resolves accessibility of `node` (O(depth) ancestor walk).
  bool Accessible(const Document& doc, NodeId node) const;

  /// Storage estimate in bytes. Each CAM label must reference its document
  /// node and carry structure pointers in addition to the two access bits;
  /// `pointer_bytes` sets that per-label overhead (the paper's LiveLink
  /// analysis charitably assumes just 1 byte).
  size_t ByteSize(size_t pointer_bytes = 8) const {
    return labels_.size() * (pointer_bytes + 1);
  }

  const std::unordered_map<NodeId, Label>& labels() const { return labels_; }

 private:
  std::unordered_map<NodeId, Label> labels_;
};

/// Ablation variant whose labels only *assert* accessibility: a desc label
/// claims the labeled node's entire subtree accessible (so it is legal only
/// on fully accessible subtrees) and a self label covers one node; nothing
/// can be revoked deeper down. Minimality: one desc label per maximal fully
/// accessible subtree root plus one self label per accessible node whose
/// subtree contains an inaccessible node, computed in O(n).
///
/// The positive cover is asymmetric in the accessibility ratio — cheap when
/// little is accessible, expensive when almost everything is — which is the
/// flavor of asymmetry the paper remarks on for CAM; we keep it to bound how
/// sensitive the Figure 4 comparisons are to the exact CAM semantics
/// (see DESIGN.md).
class PositiveCam {
 public:
  struct Label {
    bool self = false;
    bool desc = false;
  };

  static PositiveCam Build(const Document& doc,
                           const std::function<bool(NodeId)>& accessible);

  size_t num_labels() const { return labels_.size(); }
  bool Accessible(const Document& doc, NodeId node) const;
  size_t ByteSize(size_t pointer_bytes = 8) const {
    return labels_.size() * (pointer_bytes + 1);
  }
  const std::unordered_map<NodeId, Label>& labels() const { return labels_; }

 private:
  std::unordered_map<NodeId, Label> labels_;
};

}  // namespace secxml

#endif  // SECXML_BASELINE_CAM_H_
