#ifndef SECXML_CACHE_CACHE_KEY_H_
#define SECXML_CACHE_CACHE_KEY_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace secxml::cache {

/// Key of one cross-request result-cache entry. The paper's compact-labeling
/// insight — a secure answer is a function of the subject's *visibility
/// class*, not the subject id — becomes the key design: the class is named
/// by the 128-bit content fingerprint of the subject's codebook column
/// (ColumnFingerprint), so every member of a class shares one entry, and a
/// CompactCodebook renumbering (which changes the column content) changes
/// the key instead of silently aliasing a stale one. The query half is the
/// normalized pattern encoding (NormalizePattern — injective, unlike the
/// debug ToString), plus the semantics and sibling-order flags that change
/// the answer bytes.
struct ResultKey {
  uint64_t column_hi = 0;  ///< ColumnFingerprint of the subject's class;
  uint64_t column_lo = 0;  ///< {0,0} for semantics-free (kNone) evaluation
  std::string query;       ///< normalized pattern encoding
  uint8_t semantics = 0;   ///< AccessSemantics as an integer
  bool ordered = false;    ///< ordered-sibling matching flag

  bool operator==(const ResultKey& o) const {
    return column_hi == o.column_hi && column_lo == o.column_lo &&
           semantics == o.semantics && ordered == o.ordered &&
           query == o.query;
  }
  bool operator!=(const ResultKey& o) const { return !(*this == o); }

  /// Bytes this key pins in the cache (counted against the entry budget).
  size_t ApproxBytes() const { return sizeof(*this) + query.size(); }
};

struct ResultKeyHash {
  size_t operator()(const ResultKey& k) const {
    uint64_t h = k.column_hi ^ (k.column_lo * 0x9e3779b97f4a7c15ULL);
    for (char c : k.query) {
      h ^= static_cast<uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= (static_cast<uint64_t>(k.semantics) << 1) ^
         static_cast<uint64_t>(k.ordered);
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

}  // namespace secxml::cache

#endif  // SECXML_CACHE_CACHE_KEY_H_
