#include "cache/result_cache.h"

#include <algorithm>

namespace secxml::cache {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Fixed per-entry overhead charged on top of the payload and key bytes
/// (hash node, LRU node, Resident bookkeeping).
constexpr size_t kEntryOverhead = 96;

}  // namespace

ResultCache::ResultCache(const ResultCacheOptions& options)
    : shard_mask_(RoundUpPow2(options.shards == 0 ? 1 : options.shards) - 1),
      shard_budget_(options.max_bytes / (shard_mask_ + 1)),
      shards_(shard_mask_ + 1) {}

ResultCache::Probe ResultCache::Get(const ResultKey& key, Epoch reader_epoch) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(key);
  if (it != shard.table.end() && it->second.entry.epoch <= reader_epoch) {
    // Valid for this reader: every commit since the entry's epoch that
    // could have affected it would already have erased it before the
    // reader's epoch became pinnable (the store fires invalidation hooks
    // under its snapshot-publication lock).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    hits_.fetch_add(1, std::memory_order_relaxed);
    Probe p;
    p.outcome = ProbeOutcome::kHit;
    p.payload = it->second.entry.payload;
    p.epoch = it->second.entry.epoch;
    return p;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Probe p;
  if (shard.in_flight.count(key) != 0) {
    p.outcome = ProbeOutcome::kMissInFlight;
  } else {
    shard.in_flight.insert(key);
    p.outcome = ProbeOutcome::kMissLead;
  }
  return p;
}

ResultCache::Probe ResultCache::GetOrWait(const ResultKey& key,
                                          Epoch reader_epoch) {
  Shard& shard = ShardOf(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  uint32_t waits = 0;
  for (;;) {
    auto it = shard.table.find(key);
    if (it != shard.table.end() && it->second.entry.epoch <= reader_epoch) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      hits_.fetch_add(1, std::memory_order_relaxed);
      Probe p;
      p.outcome = ProbeOutcome::kHit;
      p.payload = it->second.entry.payload;
      p.epoch = it->second.entry.epoch;
      p.waits = waits;
      return p;
    }
    if (shard.in_flight.count(key) == 0) {
      shard.in_flight.insert(key);
      misses_.fetch_add(1, std::memory_order_relaxed);
      Probe p;
      p.outcome = ProbeOutcome::kMissLead;
      p.waits = waits;
      return p;
    }
    // Leader in progress: wait for its Publish/Abandon, then re-probe. The
    // leader may publish at an epoch this reader cannot use (reader pinned
    // older), in which case the re-probe takes leadership and evaluates
    // live against its own snapshot.
    ++waits;
    single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
    shard.flight_cv.wait(lock);
  }
}

bool ResultCache::Publish(const ResultKey& key, Entry entry) {
  Shard& shard = ShardOf(key);
  const size_t entry_bytes = (entry.payload ? entry.payload->ApproxBytes() : 0) +
                             key.ApproxBytes() + kEntryOverhead;
  bool admitted = false;
  {
    // events_mu_ is held across validation AND insertion so an invalidation
    // (which records its event, then sweeps the shards, all under
    // events_mu_) can never interleave between the two and miss this entry.
    std::lock_guard<std::mutex> events_lock(events_mu_);
    bool stale = entry.epoch < floor_epoch_ || entry.payload == nullptr;
    if (!stale) {
      for (const Event& ev : events_) {
        if (EventAffects(ev, entry)) {
          stale = true;
          break;
        }
      }
    }
    const bool oversized = entry_bytes > shard_budget_;
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!stale && !oversized) {
      auto it = shard.table.find(key);
      if (it != shard.table.end()) {
        // Replace (a non-leader published first, or a newer-epoch answer
        // landed). Either way both values are correct for their epochs;
        // keep the newer one.
        if (entry.epoch >= it->second.entry.epoch) {
          bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
          shard.resident_bytes -= it->second.bytes;
          it->second.entry = std::move(entry);
          it->second.bytes = entry_bytes;
          bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
          shard.resident_bytes += entry_bytes;
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
        }
        admitted = true;
      } else {
        // Evict from the cold end until the newcomer fits its shard slice.
        while (!shard.lru.empty() &&
               shard.resident_bytes + entry_bytes > shard_budget_) {
          auto victim = shard.table.find(shard.lru.back());
          EraseLocked(shard, victim);
          evictions_.fetch_add(1, std::memory_order_relaxed);
        }
        shard.lru.push_front(key);
        Resident r;
        r.entry = std::move(entry);
        r.lru_it = shard.lru.begin();
        r.bytes = entry_bytes;
        shard.table.emplace(key, std::move(r));
        entries_.fetch_add(1, std::memory_order_relaxed);
        bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
        shard.resident_bytes += entry_bytes;
        inserts_.fetch_add(1, std::memory_order_relaxed);
        admitted = true;
      }
    } else {
      rejected_inserts_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.in_flight.erase(key);
  }
  shard.flight_cv.notify_all();
  return admitted;
}

void ResultCache::Abandon(const ResultKey& key) {
  Shard& shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.in_flight.erase(key);
  }
  shard.flight_cv.notify_all();
}

void ResultCache::InvalidateAclRange(uint64_t begin, uint64_t end,
                                     Epoch epoch) {
  Event ev;
  ev.begin = begin;
  ev.end = end;
  ev.structural = false;
  ev.epoch = epoch;
  std::lock_guard<std::mutex> events_lock(events_mu_);
  events_.push_back(ev);
  if (events_.size() > kMaxEvents) {
    // History dropped: anything older than the dropped event can no longer
    // be checked, so the floor rises and such publishes are rejected.
    floor_epoch_ = std::max(floor_epoch_, events_.front().epoch);
    events_.pop_front();
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.table.begin(); it != shard.table.end();) {
      if (EventAffects(ev, it->second.entry)) {
        it = EraseLocked(shard, it);
        invalidated_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::Flush(Epoch epoch) {
  std::lock_guard<std::mutex> events_lock(events_mu_);
  floor_epoch_ = std::max(floor_epoch_, epoch);
  // The floor now subsumes all recorded history.
  events_.clear();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.table.begin(); it != shard.table.end();) {
      it = EraseLocked(shard, it);
    }
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

std::unordered_map<ResultKey, ResultCache::Resident, ResultKeyHash>::iterator
ResultCache::EraseLocked(
    Shard& shard,
    std::unordered_map<ResultKey, Resident, ResultKeyHash>::iterator it) {
  bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
  shard.resident_bytes -= it->second.bytes;
  entries_.fetch_sub(1, std::memory_order_relaxed);
  shard.lru.erase(it->second.lru_it);
  return shard.table.erase(it);
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.rejected_inserts = rejected_inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidated = invalidated_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.single_flight_waits = single_flight_waits_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace secxml::cache
