#ifndef SECXML_CACHE_RESULT_CACHE_H_
#define SECXML_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/cache_key.h"

namespace secxml::cache {

/// What a ResultCache stores: the cache is payload-agnostic so it can live
/// below the query layer (no dependency on EvalResult). Payloads are
/// immutable once published and shared by reference with every hit.
class CacheableResult {
 public:
  virtual ~CacheableResult() = default;
  /// Bytes this payload pins in memory, counted against the cache budget.
  virtual size_t ApproxBytes() const = 0;
};

struct ResultCacheOptions {
  /// Lock shards (rounded up to a power of two). Each shard has its own
  /// mutex, hash map, LRU list, and single-flight set.
  size_t shards = 8;
  /// Total payload budget across all shards. An entry that alone exceeds
  /// its shard's slice is rejected outright (fail closed, like an oversized
  /// BufferPool pin request) rather than evicting the whole shard for it.
  size_t max_bytes = 64u << 20;
};

/// Sharded, epoch-aware, byte-budgeted LRU cache of materialized secure
/// query answers, keyed by (visibility-class fingerprint, normalized query,
/// semantics flags) — DESIGN.md §14.
///
/// Correctness model. Every entry records the epoch of the snapshot it was
/// computed against plus its *ACL dependency footprint*: either
/// acl_independent (the answer cannot change under any accessibility
/// update) or a document-order range [begin, end) outside which
/// accessibility changes provably cannot change the answer. The store's
/// commit hook calls InvalidateAclRange / Flush *before any reader can pin
/// the new epoch* (SecureStore fires hooks under its snapshot-publication
/// lock), which yields the serving rule: an entry is valid for a reader
/// pinned at epoch R iff entry.epoch <= R — had any commit in
/// (entry.epoch, R] affected it, the entry would already have been erased
/// by the time R became pinnable. A reader pinned *older* than an entry
/// must not be served it (the entry may bake in updates the reader's
/// snapshot excludes).
///
/// Late publishes. An answer is evaluated outside any cache lock, so an
/// invalidation can race the evaluation and the publish must not resurrect
/// stale data. The cache keeps a bounded ring of recent invalidation events
/// plus a floor epoch (raised when the ring overflows or a flush discards
/// history); Publish rejects any entry that an event after its epoch could
/// have affected, or whose epoch predates the floor. Rejections are counted
/// (rejected_inserts) and surface as result_cache_invalidations in the
/// evaluating query's ExecStats.
///
/// Single-flight. A miss can register its caller as the key's evaluation
/// leader; concurrent misses on the same key either wait (GetOrWait) or
/// proceed live without waiting (Get — the batch paths, which must not
/// block holding per-class state). A leader must Publish or Abandon; both
/// release the flight and wake waiters. A caller must not wait on one key
/// while leading another (deadlock by design; the query layer never does).
class ResultCache {
 public:
  using Epoch = uint64_t;

  struct Entry {
    std::shared_ptr<const CacheableResult> payload;
    Epoch epoch = 0;          ///< snapshot the payload was computed against
    uint64_t begin = 0;       ///< ACL footprint [begin, end), document order
    uint64_t end = 0;
    bool acl_independent = false;  ///< no accessibility update can affect it
  };

  enum class ProbeOutcome {
    kHit,           ///< payload returned; served count bumped
    kMissLead,      ///< caller is now the key's flight leader
    kMissInFlight,  ///< another caller is evaluating; no leadership taken
  };

  struct Probe {
    ProbeOutcome outcome = ProbeOutcome::kMissLead;
    std::shared_ptr<const CacheableResult> payload;  ///< kHit only
    Epoch epoch = 0;   ///< kHit only: the entry's publish epoch
    uint32_t waits = 0;  ///< times GetOrWait blocked before resolving
  };

  /// Monotonic counters plus a point-in-time occupancy snapshot.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t rejected_inserts = 0;  ///< racing invalidation or over budget
    uint64_t evictions = 0;
    uint64_t invalidated = 0;  ///< entries erased by range invalidation
    uint64_t flushes = 0;
    uint64_t single_flight_waits = 0;
    uint64_t entries = 0;  ///< current resident entries
    uint64_t bytes = 0;    ///< current resident payload + key bytes
  };

  explicit ResultCache(const ResultCacheOptions& options = {});

  /// Non-blocking probe for a reader pinned at `reader_epoch`. A miss with
  /// no flight in progress registers the caller as leader (kMissLead — the
  /// caller MUST later Publish or Abandon this key).
  Probe Get(const ResultKey& key, Epoch reader_epoch);

  /// Blocking probe: like Get, but a kMissInFlight waits for the leader to
  /// publish or abandon, then re-probes. Returns kHit or kMissLead, never
  /// kMissInFlight.
  Probe GetOrWait(const ResultKey& key, Epoch reader_epoch);

  /// Publishes an answer. Returns false (and drops the entry) when a racing
  /// invalidation or the byte budget rejects it — the caller's live answer
  /// is still correct; only the cache declined to keep it. Always releases
  /// the key's flight and wakes waiters, whether or not the caller led.
  bool Publish(const ResultKey& key, Entry entry);

  /// Releases the key's flight without publishing (evaluation failed).
  void Abandon(const ResultKey& key);

  /// Erases every entry an accessibility change over [begin, end) at commit
  /// `epoch` could affect, and records the event so late publishes of
  /// answers computed before it are rejected.
  void InvalidateAclRange(uint64_t begin, uint64_t end, Epoch epoch);

  /// Erases everything (structural or shape change at commit `epoch`);
  /// publishes of anything computed before `epoch` are rejected from here
  /// on.
  void Flush(Epoch epoch);

  Stats stats() const;

 private:
  struct Resident {
    Entry entry;
    std::list<ResultKey>::iterator lru_it;
    size_t bytes = 0;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable flight_cv;
    std::unordered_map<ResultKey, Resident, ResultKeyHash> table;
    std::list<ResultKey> lru;  ///< front = most recent
    std::unordered_set<ResultKey, ResultKeyHash> in_flight;
    size_t resident_bytes = 0;  ///< this shard's slice of the budget
  };

  /// One recorded invalidation, kept so late publishes can be checked
  /// against commits that raced their evaluation.
  struct Event {
    uint64_t begin = 0;
    uint64_t end = 0;
    bool structural = false;  ///< affects every entry regardless of range
    Epoch epoch = 0;
  };

  Shard& ShardOf(const ResultKey& key) {
    return shards_[ResultKeyHash{}(key) & shard_mask_];
  }

  static bool EventAffects(const Event& ev, const Entry& entry) {
    if (ev.epoch <= entry.epoch) return false;
    if (ev.structural) return true;
    if (entry.acl_independent) return false;
    return ev.begin < entry.end && entry.begin < ev.end;
  }

  /// Erases `it` from `shard` (caller holds shard.mu) and returns the next
  /// iterator.
  std::unordered_map<ResultKey, Resident, ResultKeyHash>::iterator EraseLocked(
      Shard& shard,
      std::unordered_map<ResultKey, Resident, ResultKeyHash>::iterator it);

  size_t shard_mask_;
  size_t shard_budget_;
  std::vector<Shard> shards_;

  /// Guards the event ring and floor; held across Publish's validate+insert
  /// and InvalidateAclRange/Flush's record+erase so a publish can never
  /// slip a stale entry in behind an invalidation scan (lock order:
  /// events_mu_ before any shard.mu).
  mutable std::mutex events_mu_;
  std::deque<Event> events_;
  Epoch floor_epoch_ = 0;  ///< publishes with entry.epoch < floor are rejected

  static constexpr size_t kMaxEvents = 256;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> rejected_inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidated_{0};
  std::atomic<uint64_t> flushes_{0};
  mutable std::atomic<uint64_t> single_flight_waits_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace secxml::cache

#endif  // SECXML_CACHE_RESULT_CACHE_H_
