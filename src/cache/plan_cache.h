#ifndef SECXML_CACHE_PLAN_CACHE_H_
#define SECXML_CACHE_PLAN_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace secxml::cache {

/// LRU cache of parsed/decomposed query plans, keyed on the normalized
/// query encoding alone. A plan is a pure function of the pattern — it
/// carries no document, ACL, or epoch state — so entries never need
/// invalidation; the cache only bounds its entry count. Plans are shared by
/// reference (immutable once inserted). Thread-safe; a single mutex
/// suffices because a plan lookup is a tiny fraction of even a cached
/// query's work.
template <typename Plan>
class PlanCache {
 public:
  explicit PlanCache(size_t max_entries = 1024)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  std::shared_ptr<const Plan> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(key);
    if (it == table_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.plan;
  }

  /// Inserts (or refreshes) the plan for `key`. Returns the resident plan:
  /// if another thread inserted first, theirs wins and is returned, so
  /// every caller converges on one shared instance.
  std::shared_ptr<const Plan> Insert(const std::string& key,
                                     std::shared_ptr<const Plan> plan) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(key);
    if (it != table_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.plan;
    }
    while (table_.size() >= max_entries_) {
      table_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    Resident r;
    r.plan = std::move(plan);
    r.lru_it = lru_.begin();
    auto [inserted, ok] = table_.emplace(key, std::move(r));
    (void)ok;
    return inserted->second.plan;
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }

 private:
  struct Resident {
    std::shared_ptr<const Plan> plan;
    std::list<std::string>::iterator lru_it;
  };

  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Resident> table_;
  std::list<std::string> lru_;  ///< front = most recent
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace secxml::cache

#endif  // SECXML_CACHE_PLAN_CACHE_H_
