#include "core/dol_labeling.h"

#include <algorithm>
#include <cstring>
#include <cassert>
#include <unordered_map>

namespace secxml {

DolLabeling DolLabeling::Build(const AccessibilityMap& map) {
  DolLabeling dol;
  dol.num_nodes_ = map.num_nodes();
  dol.codebook_ = Codebook(map.num_subjects());
  BitVector prev, cur;
  for (NodeId n = 0; n < map.num_nodes(); ++n) {
    map.AclFor(n, &cur);
    if (n == 0 || cur != prev) {
      dol.transitions_.push_back({n, dol.codebook_.Intern(cur)});
      prev = cur;
    }
  }
  return dol;
}

DolLabeling DolLabeling::BuildFromEvents(NodeId num_nodes,
                                         BitVector initial_acl,
                                         const std::vector<AclEvent>& events) {
  DolLabeling dol;
  dol.num_nodes_ = num_nodes;
  dol.codebook_ = Codebook(initial_acl.size());
  BitVector cur = std::move(initial_acl);
  dol.transitions_.push_back({0, dol.codebook_.Intern(cur)});
  size_t i = 0;
  while (i < events.size()) {
    NodeId pos = events[i].pos;
    bool changed = false;
    while (i < events.size() && events[i].pos == pos) {
      if (cur.Get(events[i].subject) != events[i].accessible) {
        cur.Set(events[i].subject, events[i].accessible);
        changed = true;
      }
      ++i;
    }
    if (changed && pos < num_nodes && pos > 0) {
      AccessCodeId code = dol.codebook_.Intern(cur);
      if (code != dol.transitions_.back().code) {
        dol.transitions_.push_back({pos, code});
      }
    }
  }
  return dol;
}

DolLabeling DolLabeling::BuildFromRuns(const RunAccessMap& map) {
  DolLabeling dol;
  dol.num_nodes_ = map.num_nodes();
  dol.codebook_ = Codebook(map.num_subjects());
  for (size_t i = 0; i < map.num_runs(); ++i) {
    AccessCodeId code = dol.codebook_.Intern(map.run_acl(i));
    if (dol.transitions_.empty() || dol.transitions_.back().code != code) {
      dol.transitions_.push_back({map.run_start(i), code});
    }
  }
  return dol;
}

size_t DolLabeling::TransitionIndexFor(NodeId node) const {
  // Caller guarantees transitions_ is non-empty.
  // Last index with transitions_[idx].node <= node.
  size_t lo = 0, hi = transitions_.size();
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (transitions_[mid].node <= node) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

AccessCodeId DolLabeling::CodeAt(NodeId node) const {
  // Fail closed instead of asserting: an empty labeling or an out-of-range
  // node (corrupt caller state) yields the invalid code, which
  // Codebook::Accessible denies — release builds must not read out of
  // bounds here.
  if (transitions_.empty() || node >= num_nodes_) return kInvalidAccessCode;
  return transitions_[TransitionIndexFor(node)].code;
}

void DolLabeling::Normalize() {
  std::vector<DolEntry> out;
  out.reserve(transitions_.size());
  for (const DolEntry& e : transitions_) {
    if (!out.empty() && out.back().code == e.code) continue;
    out.push_back(e);
  }
  transitions_ = std::move(out);
}

Status DolLabeling::SetRangeAccess(NodeId begin, NodeId end, SubjectId subject,
                                   bool accessible) {
  if (begin >= end || end > num_nodes_) {
    return Status::InvalidArgument("bad node range");
  }
  if (subject >= codebook_.num_subjects()) {
    return Status::InvalidArgument("no such subject");
  }
  // Cache of old code -> code with the subject bit set to `accessible`.
  std::unordered_map<AccessCodeId, AccessCodeId> mapped;
  auto map_code = [&](AccessCodeId old) {
    auto it = mapped.find(old);
    if (it != mapped.end()) return it->second;
    BitVector acl = codebook_.Entry(old);  // copy: Intern may reallocate
    acl.Set(subject, accessible);
    AccessCodeId neu = codebook_.Intern(acl);
    mapped.emplace(old, neu);
    return neu;
  };

  AccessCodeId code_at_end =
      end < num_nodes_ ? CodeAt(end) : kInvalidAccessCode;

  std::vector<DolEntry> out;
  out.reserve(transitions_.size() + 2);
  bool begin_emitted = false;
  for (const DolEntry& e : transitions_) {
    if (e.node < begin) {
      out.push_back(e);
      continue;
    }
    if (!begin_emitted) {
      // The run covering `begin` starts here (remapped). CodeAt still reads
      // the original, untouched transition list.
      out.push_back({begin, map_code(CodeAt(begin))});
      begin_emitted = true;
    }
    if (e.node < end) {
      if (e.node > begin) out.push_back({e.node, map_code(e.code)});
      // e.node == begin was already folded into the emitted entry above.
    } else {
      if (e.node > end && code_at_end != kInvalidAccessCode &&
          (out.empty() || out.back().node < end)) {
        out.push_back({end, code_at_end});
      }
      out.push_back(e);
    }
  }
  if (!begin_emitted) {
    out.push_back({begin, map_code(CodeAt(begin))});
  }
  if (end < num_nodes_ && out.back().node < end) {
    out.push_back({end, code_at_end});
  }
  transitions_ = std::move(out);
  Normalize();
  return Status::OK();
}

Status DolLabeling::InsertNodes(NodeId pos, const DolLabeling& fragment) {
  if (pos > num_nodes_) return Status::InvalidArgument("bad position");
  if (fragment.num_nodes_ == 0) return Status::OK();
  if (fragment.codebook_.num_subjects() != codebook_.num_subjects()) {
    return Status::InvalidArgument("fragment has a different subject set");
  }
  NodeId count = fragment.num_nodes_;
  AccessCodeId code_at_pos = pos < num_nodes_ ? CodeAt(pos) : kInvalidAccessCode;

  std::vector<DolEntry> out;
  out.reserve(transitions_.size() + fragment.transitions_.size() + 1);
  size_t i = 0;
  while (i < transitions_.size() && transitions_[i].node < pos) {
    out.push_back(transitions_[i]);
    ++i;
  }
  for (const DolEntry& e : fragment.transitions_) {
    out.push_back({e.node + pos, codebook_.Intern(fragment.codebook_.Entry(e.code))});
  }
  // The node previously at `pos` now sits at pos + count and must keep its
  // old code.
  if (code_at_pos != kInvalidAccessCode &&
      (i >= transitions_.size() || transitions_[i].node != pos)) {
    out.push_back({pos + count, code_at_pos});
  }
  for (; i < transitions_.size(); ++i) {
    out.push_back({transitions_[i].node + count, transitions_[i].code});
  }
  num_nodes_ += count;
  transitions_ = std::move(out);
  Normalize();
  return Status::OK();
}

Status DolLabeling::DeleteNodes(NodeId begin, NodeId end) {
  if (begin >= end || end > num_nodes_) {
    return Status::InvalidArgument("bad node range");
  }
  if (end - begin == num_nodes_) {
    return Status::InvalidArgument("cannot delete the entire document");
  }
  NodeId count = end - begin;
  AccessCodeId code_at_end = end < num_nodes_ ? CodeAt(end) : kInvalidAccessCode;

  std::vector<DolEntry> out;
  out.reserve(transitions_.size() + 1);
  for (const DolEntry& e : transitions_) {
    if (e.node < begin) {
      out.push_back(e);
    } else if (e.node >= end) {
      if (code_at_end != kInvalidAccessCode &&
          (out.empty() || out.back().node < begin)) {
        // The node previously at `end` now sits at `begin`.
        out.push_back({begin, code_at_end});
        code_at_end = kInvalidAccessCode;
      }
      out.push_back({e.node - count, e.code});
    }
  }
  if (code_at_end != kInvalidAccessCode &&
      (out.empty() || out.back().node < begin)) {
    out.push_back({begin, code_at_end});
  }
  num_nodes_ -= count;
  transitions_ = std::move(out);
  Normalize();
  return Status::OK();
}

Status DolLabeling::CheckInvariants() const {
  if (num_nodes_ == 0) {
    return transitions_.empty()
               ? Status::OK()
               : Status::Corruption("transitions in empty labeling");
  }
  if (transitions_.empty() || transitions_[0].node != 0) {
    return Status::Corruption("first transition must be at node 0");
  }
  for (size_t i = 0; i < transitions_.size(); ++i) {
    if (transitions_[i].node >= num_nodes_) {
      return Status::Corruption("transition beyond document");
    }
    if (transitions_[i].code >= codebook_.size()) {
      return Status::Corruption("dangling code");
    }
    if (i > 0) {
      if (transitions_[i].node <= transitions_[i - 1].node) {
        return Status::Corruption("transitions not strictly ascending");
      }
      if (transitions_[i].code == transitions_[i - 1].code) {
        return Status::Corruption("consecutive duplicate codes");
      }
    }
  }
  return Status::OK();
}

namespace {

constexpr uint32_t kDolMagic = 0x53444f4cu;  // "SDOL"

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&v),
              reinterpret_cast<const uint8_t*>(&v) + sizeof(v));
}

bool TakeU32(const std::vector<uint8_t>& in, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

}  // namespace

std::vector<uint8_t> DolLabeling::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(&out, kDolMagic);
  PutU32(&out, num_nodes_);
  PutU32(&out, static_cast<uint32_t>(transitions_.size()));
  for (const DolEntry& e : transitions_) {
    PutU32(&out, e.node);
    PutU32(&out, e.code);
  }
  std::vector<uint8_t> cb = codebook_.Serialize();
  PutU32(&out, static_cast<uint32_t>(cb.size()));
  out.insert(out.end(), cb.begin(), cb.end());
  return out;
}

Result<DolLabeling> DolLabeling::Deserialize(const std::vector<uint8_t>& data) {
  size_t pos = 0;
  uint32_t magic, num_nodes, num_transitions, cb_size;
  if (!TakeU32(data, &pos, &magic) || magic != kDolMagic) {
    return Status::Corruption("not a serialized DOL");
  }
  if (!TakeU32(data, &pos, &num_nodes) ||
      !TakeU32(data, &pos, &num_transitions)) {
    return Status::Corruption("truncated DOL header");
  }
  DolLabeling dol;
  dol.num_nodes_ = num_nodes;
  dol.transitions_.reserve(num_transitions);
  for (uint32_t i = 0; i < num_transitions; ++i) {
    DolEntry e;
    if (!TakeU32(data, &pos, &e.node) || !TakeU32(data, &pos, &e.code)) {
      return Status::Corruption("truncated transition list");
    }
    dol.transitions_.push_back(e);
  }
  if (!TakeU32(data, &pos, &cb_size) || pos + cb_size > data.size()) {
    return Status::Corruption("truncated codebook");
  }
  SECXML_ASSIGN_OR_RETURN(
      dol.codebook_,
      Codebook::Deserialize(std::vector<uint8_t>(
          data.begin() + static_cast<long>(pos),
          data.begin() + static_cast<long>(pos + cb_size))));
  SECXML_RETURN_NOT_OK(dol.CheckInvariants());
  return dol;
}

DolLabeling::Stats DolLabeling::ComputeStats(size_t code_bytes) const {
  Stats s;
  s.num_transitions = transitions_.size();
  s.codebook_entries = codebook_.size();
  s.codebook_bytes = codebook_.ByteSize();
  s.transition_bytes = transitions_.size() * code_bytes;
  s.total_bytes = s.codebook_bytes + s.transition_bytes;
  return s;
}

}  // namespace secxml
