#ifndef SECXML_CORE_DOL_LABELING_H_
#define SECXML_CORE_DOL_LABELING_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/accessibility_map.h"
#include "core/codebook.h"

namespace secxml {

/// One logical DOL transition: document node `node` starts a run of nodes
/// sharing the access control list identified by `code`.
struct DolEntry {
  NodeId node = 0;
  AccessCodeId code = 0;
  bool operator==(const DolEntry&) const = default;
};

/// The logical Document Ordered Labeling of paper Section 2: the list of
/// transition nodes (in document order) plus the codebook of distinct access
/// control lists. This is the representation-independent core of DOL; the
/// physical page-embedded form is SecureStore (built *from* a DolLabeling in
/// a single pass).
///
/// Invariants: transitions are strictly ascending in node id; the first
/// transition is at node 0 (the root is always a transition node); no two
/// consecutive transitions carry the same code.
class DolLabeling {
 public:
  DolLabeling() : codebook_(0) {}

  /// Builds the labeling from any accessibility map with one document-order
  /// pass, comparing each node's ACL to its predecessor's (Section 2).
  static DolLabeling Build(const AccessibilityMap& map);

  /// Builds from the ACL at node 0 plus a sorted event stream of per-subject
  /// accessibility changes; runs in O(E + T * S / 64) for E events and T
  /// transitions, never materializing per-node ACLs. This is the scalable
  /// path used for the multi-thousand-subject workloads.
  static DolLabeling BuildFromEvents(NodeId num_nodes, BitVector initial_acl,
                                     const std::vector<AclEvent>& events);

  /// Builds from a run-length map in O(#runs): each run boundary whose ACL
  /// differs from its predecessor becomes a transition.
  static DolLabeling BuildFromRuns(const RunAccessMap& map);

  NodeId num_nodes() const { return num_nodes_; }
  const std::vector<DolEntry>& transitions() const { return transitions_; }
  size_t num_transitions() const { return transitions_.size(); }
  const Codebook& codebook() const { return codebook_; }
  Codebook* mutable_codebook() { return &codebook_; }

  /// Code in effect at `node` (nearest preceding transition).
  AccessCodeId CodeAt(NodeId node) const;

  /// Accessibility of `node` for `subject`.
  bool Accessible(SubjectId subject, NodeId node) const {
    return codebook_.Accessible(CodeAt(node), subject);
  }

  // --- Updates (paper Section 3.4) -------------------------------------
  //
  // Proposition 1: each operation below adds at most 2 transition nodes
  // beyond those already present (and, for insertion, those in the inserted
  // fragment). Tests assert this bound.

  /// Sets one subject's accessibility over the node range [begin, end)
  /// (a subtree update passes the subtree's preorder interval).
  Status SetRangeAccess(NodeId begin, NodeId end, SubjectId subject,
                        bool accessible);

  /// Single-node convenience form.
  Status SetNodeAccess(NodeId node, SubjectId subject, bool accessible) {
    return SetRangeAccess(node, node + 1, subject, accessible);
  }

  /// Structural insertion: `fragment` (a labeling of the inserted nodes,
  /// over the same subject set) is spliced in so its node 0 lands at `pos`.
  /// Fragment codes are re-interned into this codebook.
  Status InsertNodes(NodeId pos, const DolLabeling& fragment);

  /// Structural deletion of nodes [begin, end).
  Status DeleteNodes(NodeId begin, NodeId end);

  /// Verifies the invariants listed above.
  Status CheckInvariants() const;

  /// Serializes the labeling (transition list + codebook) into a compact
  /// byte buffer. Lets accessibility maps compiled offline (e.g. from a
  /// rule engine) be shipped to query nodes and loaded without re-deriving
  /// them from the policy.
  std::vector<uint8_t> Serialize() const;

  /// Inverse of Serialize(); validates invariants on load.
  static Result<DolLabeling> Deserialize(const std::vector<uint8_t>& data);

  /// Storage accounting used by the Section 5.1 benchmarks.
  struct Stats {
    size_t num_transitions = 0;
    size_t codebook_entries = 0;
    /// Codebook payload bytes (entries * ceil(subjects / 8)).
    size_t codebook_bytes = 0;
    /// Embedded transition bytes at `code_bytes` per transition node (the
    /// paper assumes 2-byte codes for the LiveLink analysis).
    size_t transition_bytes = 0;
    size_t total_bytes = 0;
  };
  Stats ComputeStats(size_t code_bytes = 2) const;

 private:
  /// Index of the transition governing `node`.
  size_t TransitionIndexFor(NodeId node) const;
  /// Removes consecutive duplicate codes in [first_idx-1, last_idx+1].
  void Normalize();

  NodeId num_nodes_ = 0;
  std::vector<DolEntry> transitions_;
  Codebook codebook_;
};

}  // namespace secxml

#endif  // SECXML_CORE_DOL_LABELING_H_
