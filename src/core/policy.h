#ifndef SECXML_CORE_POLICY_H_
#define SECXML_CORE_POLICY_H_

#include <vector>

#include "core/accessibility_map.h"
#include "xml/document.h"

namespace secxml {

/// One rule of a subtree-propagating access control policy: the node is
/// labeled accessible or non-accessible, and the label propagates to its
/// whole subtree until overridden by a deeper seed.
struct AclSeed {
  NodeId node = 0;
  bool accessible = false;
};

/// Derives one subject's accessible node set from seeds under the
/// Most-Specific-Override policy of Jajodia et al. used by the paper's
/// synthetic workload (Section 5): each node inherits the accessibility of
/// its closest seeded ancestor-or-self; nodes with no seeded ancestor get
/// `default_access`. If several seeds name the same node, the last one in
/// `seeds` wins.
///
/// Returns the maximal sorted disjoint accessible intervals, ready for
/// IntervalAccessMap::SetSubjectIntervals. Runs in O(R log R) for R seeds,
/// independent of document size.
std::vector<NodeInterval> PropagateMostSpecificOverride(
    const Document& doc, std::vector<AclSeed> seeds,
    bool default_access = false);

}  // namespace secxml

#endif  // SECXML_CORE_POLICY_H_
