#include "core/epoch.h"

#include <cassert>
#include <utility>

namespace secxml {

EpochManager::~EpochManager() {
  // By destruction time no reader may hold a pin, so every deferred
  // callback's grace period has trivially elapsed: drain them all.
  std::vector<std::function<void()>> run;
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(pins_.empty());
    for (auto& [epoch, fn] : retired_) run.push_back(std::move(fn));
    retired_.clear();
    stats_.reclaimed += run.size();
  }
  for (auto& fn : run) fn();
}

EpochManager::Epoch EpochManager::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

EpochManager::Epoch EpochManager::PinCurrent() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[current_];
  ++stats_.pins;
  return current_;
}

void EpochManager::PinAt(Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(epoch != 0 && epoch <= current_);
  ++pins_[epoch];
  ++stats_.pins;
}

void EpochManager::Unpin(Epoch epoch) {
  std::vector<std::function<void()>> run;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pins_.find(epoch);
    assert(it != pins_.end());
    ++stats_.unpins;
    if (--it->second == 0) pins_.erase(it);
    run = CollectReclaimableLocked();
  }
  for (auto& fn : run) fn();
}

EpochManager::Epoch EpochManager::Advance() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.advances;
  return ++current_;
}

void EpochManager::Retire(Epoch epoch, std::function<void()> reclaim) {
  std::vector<std::function<void()>> run;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.retired;
    retired_.emplace(epoch, std::move(reclaim));
    run = CollectReclaimableLocked();
  }
  for (auto& fn : run) fn();
}

size_t EpochManager::active_pins() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [epoch, count] : pins_) n += count;
  return n;
}

EpochManager::Epoch EpochManager::oldest_pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_.empty() ? 0 : pins_.begin()->first;
}

EpochManager::Stats EpochManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::function<void()>> EpochManager::CollectReclaimableLocked() {
  std::vector<std::function<void()>> run;
  // A callback retired at epoch e is safe once no pin at any epoch ≤ e
  // remains. pins_ is ordered, so the oldest pin bounds what can drain;
  // with no pins at all, everything retired drains.
  auto end = pins_.empty() ? retired_.end()
                           : retired_.lower_bound(pins_.begin()->first);
  for (auto it = retired_.begin(); it != end; ++it) {
    run.push_back(std::move(it->second));
  }
  retired_.erase(retired_.begin(), end);
  stats_.reclaimed += run.size();
  return run;
}

}  // namespace secxml
