#include "core/mode_folding.h"

namespace secxml {

Result<IntervalAccessMap> FoldModes(
    const std::vector<const IntervalAccessMap*>& modes) {
  if (modes.empty()) {
    return Status::InvalidArgument("no modes to fold");
  }
  NodeId num_nodes = modes[0]->num_nodes();
  size_t num_subjects = modes[0]->num_subjects();
  for (const IntervalAccessMap* m : modes) {
    if (m->num_nodes() != num_nodes || m->num_subjects() != num_subjects) {
      return Status::InvalidArgument(
          "modes disagree on node or subject counts");
    }
  }
  IntervalAccessMap folded(num_nodes, num_subjects * modes.size());
  for (size_t mode = 0; mode < modes.size(); ++mode) {
    for (SubjectId s = 0; s < num_subjects; ++s) {
      folded.SetSubjectIntervals(
          FoldedSubject(static_cast<ModeId>(mode), s, num_subjects),
          modes[mode]->SubjectIntervals(s));
    }
  }
  return folded;
}

}  // namespace secxml
