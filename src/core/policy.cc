#include "core/policy.h"

#include <algorithm>

namespace secxml {

std::vector<NodeInterval> PropagateMostSpecificOverride(
    const Document& doc, std::vector<AclSeed> seeds, bool default_access) {
  NodeId n = static_cast<NodeId>(doc.NumNodes());
  // Stable sort by node so that among duplicate seeds on one node, the later
  // one in the input ends up last and wins.
  std::stable_sort(seeds.begin(), seeds.end(),
                   [](const AclSeed& a, const AclSeed& b) {
                     return a.node < b.node;
                   });

  // Sweep the seeds in document order, maintaining the stack of currently
  // covering seeds; record accessibility change points.
  struct Scope {
    NodeId end;
    bool accessible;
  };
  std::vector<Scope> stack = {{n, default_access}};
  std::vector<std::pair<NodeId, bool>> changes;  // (pos, new state)
  bool cur = default_access;

  auto change_to = [&](NodeId pos, bool state) {
    if (state == cur) return;
    if (!changes.empty() && changes.back().first == pos) {
      changes.back().second = state;
      // Collapse a no-op change.
      bool prev = changes.size() >= 2 ? changes[changes.size() - 2].second
                                      : default_access;
      if (prev == state) changes.pop_back();
    } else {
      changes.emplace_back(pos, state);
    }
    cur = state;
  };

  auto close_scopes = [&](NodeId upto) {
    while (stack.size() > 1 && stack.back().end <= upto) {
      NodeId e = stack.back().end;
      stack.pop_back();
      change_to(e, stack.back().accessible);
    }
  };

  for (const AclSeed& seed : seeds) {
    if (seed.node >= n) continue;
    close_scopes(seed.node);
    change_to(seed.node, seed.accessible);
    stack.push_back({doc.SubtreeEnd(seed.node), seed.accessible});
  }
  close_scopes(n);

  // Convert change points to maximal accessible intervals.
  std::vector<NodeInterval> intervals;
  bool state = default_access;
  NodeId start = 0;
  for (const auto& [pos, next] : changes) {
    if (state && pos > start) intervals.push_back({start, pos});
    state = next;
    start = pos;
  }
  if (state && n > start) intervals.push_back({start, n});
  return intervals;
}

}  // namespace secxml
