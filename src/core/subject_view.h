#ifndef SECXML_CORE_SUBJECT_VIEW_H_
#define SECXML_CORE_SUBJECT_VIEW_H_

#include <cstdint>
#include <vector>

#include "common/dcheck.h"
#include "core/access_types.h"
#include "core/codebook.h"
#include "nok/nok_store.h"

namespace secxml {

/// A per-subject compilation of the DOL codebook and the in-memory page
/// header table into flat arrays, so the secure-query hot path pays one
/// indexed load where it used to pay a bit-vector probe or a header-plus-
/// codebook recomputation:
///
///  - `CodeAccessible(code)`: one byte load per ACCESS check (the innermost
///    test of ε-NoK matching), replacing the two dependent loads of
///    `Codebook::Accessible` (entry vector, then ACL words),
///  - `Verdict(ordinal)`: a 2-bit-per-page verdict — wholly dead / wholly
///    live / mixed — precomputed from the same in-memory header fields that
///    `SecureStore::PageWhollyInaccessible` re-derives on every probe,
///  - `NextLivePage(ordinal)`: a skip index giving the first not-wholly-dead
///    page at or after `ordinal`, so sibling skipping and candidate
///    filtering jump a whole run of dead pages in O(1) instead of probing
///    each header in turn (Section 3.3's page skip, amortized),
///  - `PageCheckFree(ordinal)`: a per-subject refinement the header alone
///    cannot express — the change bit is subject-agnostic, so a page whose
///    embedded transitions all belong to *other* subjects still reads as
///    "mixed" even though every node in it is accessible to this one.
///    Compilation scans each changed page's transition list once and
///    records whether all of its codes are accessible; the matcher then
///    fetches plain records on check-free pages, eliding the per-node
///    transition walk and ACCESS check entirely.
///
/// A view is an immutable snapshot of the store at compile time. SecureStore
/// caches one per subject and drops the cache on every accessibility,
/// structural, or subject update; queries hold their view via shared_ptr so
/// an evaluation in flight keeps a consistent snapshot. All methods are
/// const and safe for any number of concurrent readers. Compilation costs
/// O(codebook entries + pages); when given a NokStore it additionally reads
/// each changed page once (prefetched through the store's readahead when
/// enabled) to compile the check-free bits — amortized across every query
/// the cached view serves.
class SubjectView {
 public:
  enum class PageVerdict : uint8_t {
    /// Header proves every node in the page inaccessible to the subject.
    kDead = 0,
    /// Header proves every node accessible.
    kLive = 1,
    /// The page's change bit is set (embedded transitions): must look inside.
    kMixed = 2,
  };

  /// Compiles the view for `subject` from the codebook and the in-memory
  /// page directory. `subject` must be a valid subject of `codebook`.
  /// With a non-null `nok`, also scans each changed page's transitions to
  /// compile the check-free bits; without one, check-free falls back to
  /// exactly the header-provable wholly-live pages.
  static SubjectView Compile(const Codebook& codebook,
                             const std::vector<NokStore::PageInfo>& pages,
                             SubjectId subject, NokStore* nok = nullptr);

  /// Incremental maintenance at update commit (DESIGN.md §11): derives the
  /// new epoch's view from `old` (compiled against the pre-update snapshot)
  /// and the committed transaction's page delta, without reading any page.
  /// Untouched pages carry their verdict and check-free bits over verbatim
  /// (their bytes are unchanged and ACL updates never mutate existing
  /// codebook entries — only append; mutating updates renumber and drop the
  /// cache instead of patching). Fresh pages are classified from their
  /// header and their delta-recorded code runs — exactly the bits Compile
  /// would read off the page. Proposition 1 bounds the delta at a handful
  /// of pages per update, so the patch is O(pages copied) bookkeeping where
  /// a recompile is O(codebook + pages + changed-page I/O).
  /// `pages` must be the post-commit page directory; `codebook` the
  /// post-commit codebook, of which `old`'s codebook must be a prefix.
  static SubjectView Patched(const SubjectView& old, const Codebook& codebook,
                             const std::vector<NokStore::PageInfo>& pages,
                             const NokStore::UpdateDelta& delta);

  /// The one place an in-memory page header is classified into a verdict:
  /// `first_code_accessible` is the subject's accessibility of
  /// `info.first_code` (byte-table or codebook probe — the caller's choice).
  /// Both Compile's verdict table and SecureStore's header-direct
  /// PageWhollyInaccessible/PageWhollyAccessible call this, so the compiled
  /// and recomputed page-skip tests cannot drift (Section 3.3).
  static PageVerdict ClassifyPage(const NokStore::PageInfo& info,
                                  bool first_code_accessible) {
    if (info.change_bit) return PageVerdict::kMixed;
    return first_code_accessible ? PageVerdict::kLive : PageVerdict::kDead;
  }

  SubjectId subject() const { return subject_; }
  size_t num_codes() const { return code_accessible_.size(); }
  size_t num_pages() const { return num_pages_; }

  /// The ε-NoK inner ACCESS check: one indexed byte load.
  bool CodeAccessible(uint32_t code) const {
    SECXML_DCHECK(code < code_accessible_.size());
    return code_accessible_[code] != 0;
  }

  PageVerdict Verdict(size_t ordinal) const {
    SECXML_DCHECK(ordinal < num_pages_);
    return static_cast<PageVerdict>(
        (verdicts_[ordinal >> 2] >> ((ordinal & 3) * 2)) & 3u);
  }

  /// Equivalent of SecureStore::PageWhollyInaccessible, precompiled.
  bool PageWhollyDead(size_t ordinal) const {
    return Verdict(ordinal) == PageVerdict::kDead;
  }

  /// Equivalent of SecureStore::PageWhollyAccessible, precompiled.
  bool PageWhollyLive(size_t ordinal) const {
    return Verdict(ordinal) == PageVerdict::kLive;
  }

  /// First ordinal at or after `ordinal` whose page is not wholly dead;
  /// num_pages() if every remaining page is dead. O(1).
  size_t NextLivePage(size_t ordinal) const {
    SECXML_DCHECK(ordinal <= num_pages_);
    return ordinal >= num_pages_ ? num_pages_ : next_live_[ordinal];
  }

  /// True if every node in the page is accessible to the subject — even
  /// when the page's change bit is set by other subjects' transitions.
  /// On such pages the matcher needs no access code and no ACCESS check.
  /// Conservative: false never lies, it only forfeits the fast path.
  bool PageCheckFree(size_t ordinal) const {
    SECXML_DCHECK(ordinal < num_pages_);
    return (check_free_[ordinal >> 3] >> (ordinal & 7)) & 1u;
  }

 private:
  SubjectId subject_ = 0;
  size_t num_pages_ = 0;
  std::vector<uint8_t> code_accessible_;  // one byte per codebook entry
  std::vector<uint8_t> verdicts_;         // 2 bits per page, 4 pages per byte
  std::vector<uint32_t> next_live_;       // skip index, one entry per page
  std::vector<uint8_t> check_free_;       // 1 bit per page
};

}  // namespace secxml

#endif  // SECXML_CORE_SUBJECT_VIEW_H_
