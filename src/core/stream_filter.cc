#include "core/stream_filter.h"

namespace secxml {

void SecureStreamFilter::AppendEscaped(std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '<':
        out_->append("&lt;");
        break;
      case '>':
        out_->append("&gt;");
        break;
      case '&':
        out_->append("&amp;");
        break;
      case '"':
        out_->append("&quot;");
        break;
      default:
        out_->push_back(c);
    }
  }
}

void SecureStreamFilter::CloseStartTagIfOpen() {
  if (tag_open_) {
    out_->push_back('>');
    tag_open_ = false;
  }
}

Status SecureStreamFilter::StartElement(std::string_view name) {
  NodeId node = next_node_++;
  if (suppress_depth_ > 0) {
    ++suppress_depth_;
    return Status::OK();
  }
  if (node >= labeling_->num_nodes()) {
    return Status::InvalidArgument(
        "stream has more elements than the labeling covers");
  }
  if (!cursor_.Accessible(node)) {
    // View semantics: the whole subtree disappears.
    suppress_depth_ = 1;
    return Status::OK();
  }
  if (!name.empty() && name[0] == '@' && tag_open_ && !in_attribute_) {
    // Reconstitute as an attribute of the still-open start tag.
    in_attribute_ = true;
    attr_name_ = std::string(name.substr(1));
    attr_value_.clear();
    return Status::OK();
  }
  CloseStartTagIfOpen();
  out_->push_back('<');
  out_->append(name);
  tag_open_ = true;
  return Status::OK();
}

Status SecureStreamFilter::Characters(std::string_view text) {
  if (suppress_depth_ > 0) return Status::OK();
  if (in_attribute_) {
    attr_value_.append(text);
    return Status::OK();
  }
  CloseStartTagIfOpen();
  AppendEscaped(text);
  return Status::OK();
}

Status SecureStreamFilter::EndElement(std::string_view name) {
  if (suppress_depth_ > 0) {
    --suppress_depth_;
    return Status::OK();
  }
  if (in_attribute_) {
    out_->push_back(' ');
    out_->append(attr_name_);
    out_->append("=\"");
    AppendEscaped(attr_value_);
    out_->push_back('"');
    in_attribute_ = false;
    return Status::OK();
  }
  if (tag_open_) {
    // Empty element.
    out_->append("/>");
    tag_open_ = false;
    return Status::OK();
  }
  out_->append("</");
  out_->append(name);
  out_->push_back('>');
  return Status::OK();
}

}  // namespace secxml
