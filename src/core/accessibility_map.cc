#include "core/accessibility_map.h"

#include <algorithm>

namespace secxml {

void AccessibilityMap::AclFor(NodeId node, BitVector* out) const {
  *out = BitVector(num_subjects());
  for (SubjectId s = 0; s < num_subjects(); ++s) {
    if (Accessible(s, node)) out->Set(s, true);
  }
}

bool IntervalAccessMap::Accessible(SubjectId subject, NodeId node) const {
  const std::vector<NodeInterval>& ivs = per_subject_[subject];
  // Last interval with begin <= node.
  auto it = std::upper_bound(
      ivs.begin(), ivs.end(), node,
      [](NodeId n, const NodeInterval& iv) { return n < iv.begin; });
  if (it == ivs.begin()) return false;
  --it;
  return node < it->end;
}

void IntervalAccessMap::AclFor(NodeId node, BitVector* out) const {
  *out = BitVector(per_subject_.size());
  for (SubjectId s = 0; s < per_subject_.size(); ++s) {
    if (Accessible(s, node)) out->Set(s, true);
  }
}

Status IntervalAccessMap::Validate() const {
  for (SubjectId s = 0; s < per_subject_.size(); ++s) {
    NodeId prev_end = 0;
    bool first = true;
    for (const NodeInterval& iv : per_subject_[s]) {
      if (iv.begin >= iv.end) {
        return Status::InvalidArgument("empty interval for subject " +
                                       std::to_string(s));
      }
      if (iv.end > num_nodes_) {
        return Status::InvalidArgument("interval beyond document for subject " +
                                       std::to_string(s));
      }
      if (!first && iv.begin <= prev_end) {
        return Status::InvalidArgument(
            "intervals not sorted/disjoint/maximal for subject " +
            std::to_string(s));
      }
      prev_end = iv.end;
      first = false;
    }
  }
  return Status::OK();
}

BitVector IntervalAccessMap::InitialAcl(
    const std::vector<SubjectId>* subset) const {
  size_t n = subset ? subset->size() : per_subject_.size();
  BitVector acl(n);
  for (size_t i = 0; i < n; ++i) {
    SubjectId s = subset ? (*subset)[i] : static_cast<SubjectId>(i);
    if (Accessible(s, 0)) acl.Set(i, true);
  }
  return acl;
}

std::vector<AclEvent> IntervalAccessMap::CollectEvents(
    const std::vector<SubjectId>* subset) const {
  std::vector<AclEvent> events;
  size_t n = subset ? subset->size() : per_subject_.size();
  for (size_t i = 0; i < n; ++i) {
    SubjectId s = subset ? (*subset)[i] : static_cast<SubjectId>(i);
    for (const NodeInterval& iv : per_subject_[s]) {
      if (iv.begin > 0) {
        events.push_back({iv.begin, static_cast<SubjectId>(i), true});
      }
      if (iv.end < num_nodes_) {
        events.push_back({iv.end, static_cast<SubjectId>(i), false});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const AclEvent& a, const AclEvent& b) {
              return a.pos < b.pos ||
                     (a.pos == b.pos && a.subject < b.subject);
            });
  return events;
}

size_t RunAccessMap::RunIndexOf(NodeId node) const {
  // Last run with start <= node.
  size_t lo = 0, hi = starts_.size();
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (starts_[mid] <= node) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status RunAccessMap::Validate() const {
  if (starts_.empty() || starts_[0] != 0) {
    return Status::InvalidArgument("first run must start at node 0");
  }
  for (size_t i = 0; i < starts_.size(); ++i) {
    if (starts_[i] >= num_nodes_) {
      return Status::InvalidArgument("run beyond document");
    }
    if (i > 0 && starts_[i] <= starts_[i - 1]) {
      return Status::InvalidArgument("run starts must strictly ascend");
    }
    if (acls_[i].size() != num_subjects_) {
      return Status::InvalidArgument("run ACL width mismatch");
    }
  }
  return Status::OK();
}

RunAccessMap RunAccessMap::ProjectSubjects(
    const std::vector<SubjectId>& subset) const {
  RunAccessMap out(num_nodes_, subset.size());
  for (size_t i = 0; i < starts_.size(); ++i) {
    BitVector acl(subset.size());
    for (size_t j = 0; j < subset.size(); ++j) {
      if (acls_[i].Get(subset[j])) acl.Set(j, true);
    }
    if (!out.acls_.empty() && out.acls_.back() == acl) continue;
    out.AppendRun(starts_[i], std::move(acl));
  }
  return out;
}

std::vector<NodeInterval> UnionIntervals(
    const std::vector<const std::vector<NodeInterval>*>& lists) {
  // Collect and sort all intervals by begin, then sweep-merge.
  std::vector<NodeInterval> all;
  for (const auto* list : lists) {
    all.insert(all.end(), list->begin(), list->end());
  }
  std::sort(all.begin(), all.end(),
            [](const NodeInterval& a, const NodeInterval& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  std::vector<NodeInterval> out;
  for (const NodeInterval& iv : all) {
    if (!out.empty() && iv.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

}  // namespace secxml
