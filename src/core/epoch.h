#ifndef SECXML_CORE_EPOCH_H_
#define SECXML_CORE_EPOCH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace secxml {

/// Monotonic epoch counter with reader pins and deferred reclamation, the
/// snapshot-isolation backbone of the secure store's online-update path
/// (DESIGN.md §11).
///
/// Every committed update advances the epoch. A reader pins the epoch that
/// was current when it started and evaluates its whole query against that
/// snapshot; a writer retires the superseded snapshot's resources with a
/// callback that runs only once no reader can still reference them (no pin
/// at an epoch ≤ the retired one remains). This is RCU-style grace-period
/// reclamation with explicit pin counts instead of quiescent states —
/// queries are long and reentrant, so explicit pins are the simpler
/// invariant to test (active_pins() must return to zero).
///
/// Thread-safe; retire callbacks run outside the internal mutex, so they may
/// themselves pin, retire, or destroy heavyweight objects.
class EpochManager {
 public:
  using Epoch = uint64_t;

  struct Stats {
    uint64_t pins = 0;       ///< total successful PinCurrent/PinAt calls
    uint64_t unpins = 0;     ///< total Unpin calls
    uint64_t advances = 0;   ///< total Advance calls
    uint64_t retired = 0;    ///< callbacks handed to Retire
    uint64_t reclaimed = 0;  ///< callbacks actually run
  };

  EpochManager() = default;
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The current epoch. Starts at 1 so epoch 0 can mean "never pinned".
  Epoch current() const;

  /// Pins the current epoch and returns it.
  Epoch PinCurrent();

  /// Adds one pin at `epoch` (used by nested snapshots adopting an outer
  /// pin's epoch). `epoch` must be ≤ current().
  void PinAt(Epoch epoch);

  /// Releases one pin taken at `epoch`. Runs any retire callbacks whose
  /// grace period this release completes.
  void Unpin(Epoch epoch);

  /// Advances to a new epoch and returns it. Called by the writer at commit,
  /// after publishing the new snapshot.
  Epoch Advance();

  /// Registers `reclaim` to run once no pin at an epoch ≤ `epoch` remains.
  /// Runs immediately (on this thread) if that is already true.
  void Retire(Epoch epoch, std::function<void()> reclaim);

  /// Number of outstanding pins across all epochs.
  size_t active_pins() const;

  /// Oldest epoch that still has a pin, or 0 when nothing is pinned.
  Epoch oldest_pinned() const;

  Stats stats() const;

 private:
  /// Pops every callback whose grace period has elapsed. Caller must hold
  /// `mu_`; the popped callbacks are run by the caller after unlocking.
  std::vector<std::function<void()>> CollectReclaimableLocked();

  mutable std::mutex mu_;
  Epoch current_ = 1;
  /// pin count per epoch; erased when it drops to zero.
  std::map<Epoch, uint64_t> pins_;
  /// retired callbacks keyed by the epoch whose readers must drain first.
  std::multimap<Epoch, std::function<void()>> retired_;
  Stats stats_;
};

}  // namespace secxml

#endif  // SECXML_CORE_EPOCH_H_
