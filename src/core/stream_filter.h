#ifndef SECXML_CORE_STREAM_FILTER_H_
#define SECXML_CORE_STREAM_FILTER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/dol_labeling.h"
#include "exec/exec_stats.h"
#include "exec/label_cursor.h"
#include "xml/sax.h"

namespace secxml {

/// One-pass secure XML dissemination (paper Section 7: the DOL layout makes
/// it "easy to embed into streaming XML data ... many one-pass algorithms on
/// streaming XML data can be made secure").
///
/// The filter consumes a SAX event stream, numbers elements in document
/// order (the same numbering DOL labels), and re-emits only the content
/// visible to `subject` under the Gabillon-Bruno view semantics: an
/// inaccessible element swallows its entire subtree. Attribute pseudo
/// elements ("@name") are reconstituted as attributes. Memory use is O(tree
/// depth); the input is never materialized.
///
/// Typical use:
///   SecureStreamFilter filter(&labeling, subject, &output);
///   ParseXmlStream(input_xml, &filter);
class SecureStreamFilter final : public XmlContentHandler {
 public:
  /// `labeling` must cover at least as many nodes as the stream contains
  /// and outlive the filter. Output is appended to `*out`. Per-node checks
  /// run through the exec layer's LabelStreamCursor (a monotone
  /// transition-list cursor plus the subject-compiled byte table);
  /// `use_view` = false falls back to per-node codebook probes, with
  /// byte-identical output.
  SecureStreamFilter(const DolLabeling* labeling, SubjectId subject,
                     std::string* out, bool use_view = true)
      : labeling_(labeling),
        out_(out),
        cursor_(labeling, subject, use_view) {}

  Status StartElement(std::string_view name) override;
  Status Characters(std::string_view text) override;
  Status EndElement(std::string_view name) override;

  /// Number of element events consumed (for validating against the
  /// labeling's document size).
  NodeId nodes_seen() const { return next_node_; }

  /// Execution counters of the underlying cursor: one nodes_scanned /
  /// codes_checked pair per subtree-root accessibility decision (nodes
  /// inside suppressed subtrees are never checked).
  const ExecStats& exec_stats() const { return cursor_.stats(); }

 private:
  void CloseStartTagIfOpen();
  void AppendEscaped(std::string_view text);

  const DolLabeling* labeling_;
  std::string* out_;
  LabelStreamCursor cursor_;

  NodeId next_node_ = 0;
  /// Number of currently open elements inside a suppressed subtree; 0 means
  /// emitting.
  uint32_t suppress_depth_ = 0;
  /// An emitted start tag whose '>' has not been written yet (attributes may
  /// still arrive).
  bool tag_open_ = false;
  /// Currently inside an emitted attribute pseudo-element.
  bool in_attribute_ = false;
  std::string attr_name_;
  std::string attr_value_;
};

}  // namespace secxml

#endif  // SECXML_CORE_STREAM_FILTER_H_
