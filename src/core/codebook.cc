#include "core/codebook.h"

#include <cassert>
#include <cstring>
#include <unordered_set>

namespace secxml {

namespace {

constexpr uint32_t kCodebookMagic = 0x53434442u;  // "SCDB"

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&v),
              reinterpret_cast<const uint8_t*>(&v) + sizeof(v));
}

bool TakeU32(const std::vector<uint8_t>& in, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

}  // namespace

std::vector<uint8_t> Codebook::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(&out, kCodebookMagic);
  PutU32(&out, static_cast<uint32_t>(num_subjects_));
  PutU32(&out, static_cast<uint32_t>(entries_.size()));
  size_t entry_bytes = (num_subjects_ + 7) / 8;
  for (const BitVector& acl : entries_) {
    for (size_t b = 0; b < entry_bytes; ++b) {
      uint8_t byte = 0;
      for (size_t bit = 0; bit < 8; ++bit) {
        size_t i = b * 8 + bit;
        if (i < acl.size() && acl.Get(i)) byte |= (1u << bit);
      }
      out.push_back(byte);
    }
  }
  return out;
}

Result<Codebook> Codebook::Deserialize(const std::vector<uint8_t>& data) {
  size_t pos = 0;
  uint32_t magic, num_subjects, num_entries;
  if (!TakeU32(data, &pos, &magic) || magic != kCodebookMagic) {
    return Status::Corruption("not a serialized codebook");
  }
  if (!TakeU32(data, &pos, &num_subjects) ||
      !TakeU32(data, &pos, &num_entries)) {
    return Status::Corruption("truncated codebook header");
  }
  Codebook cb(num_subjects);
  size_t entry_bytes = (num_subjects + 7) / 8;
  cb.entries_.reserve(num_entries);
  for (uint32_t e = 0; e < num_entries; ++e) {
    if (pos + entry_bytes > data.size()) {
      return Status::Corruption("truncated codebook entry");
    }
    BitVector acl(num_subjects);
    for (size_t i = 0; i < num_subjects; ++i) {
      if ((data[pos + i / 8] >> (i % 8)) & 1u) acl.Set(i, true);
    }
    pos += entry_bytes;
    cb.entries_.push_back(std::move(acl));  // ids preserved verbatim
  }
  cb.RebuildIndex();
  return cb;
}

AccessCodeId Codebook::Intern(const BitVector& acl) {
  assert(acl.size() == num_subjects_);
  auto it = index_.find(acl);
  if (it != index_.end()) return it->second;
  AccessCodeId code = static_cast<AccessCodeId>(entries_.size());
  entries_.push_back(acl);
  index_.emplace(acl, code);
  return code;
}

AccessCodeId Codebook::Find(const BitVector& acl) const {
  auto it = index_.find(acl);
  return it == index_.end() ? kInvalidAccessCode : it->second;
}

SubjectId Codebook::AddSubject(bool default_access) {
  SubjectId id = static_cast<SubjectId>(num_subjects_);
  ++num_subjects_;
  for (BitVector& entry : entries_) entry.PushBack(default_access);
  RebuildIndex();
  return id;
}

Result<SubjectId> Codebook::AddSubjectLike(SubjectId like) {
  if (like >= num_subjects_) {
    return Status::InvalidArgument("no such subject to copy rights from");
  }
  SubjectId id = static_cast<SubjectId>(num_subjects_);
  ++num_subjects_;
  for (BitVector& entry : entries_) entry.PushBack(entry.Get(like));
  RebuildIndex();
  return id;
}

Status Codebook::RemoveSubject(SubjectId subject) {
  if (subject >= num_subjects_) {
    return Status::InvalidArgument("no such subject");
  }
  --num_subjects_;
  for (BitVector& entry : entries_) entry.Erase(subject);
  RebuildIndex();
  return Status::OK();
}

BitVector Codebook::Column(SubjectId subject) const {
  BitVector column(entries_.size());
  if (subject >= num_subjects_) return column;  // fail closed: all denied
  for (size_t e = 0; e < entries_.size(); ++e) {
    if (entries_[e].GetUnchecked(subject)) column.Set(e, true);
  }
  return column;
}

ColumnFingerprint Codebook::ColumnFingerprintOf(SubjectId subject) const {
  return ColumnFingerprint::Of(Column(subject));
}

std::vector<SubjectClass> GroupSubjectsByColumn(
    const Codebook& codebook, const std::vector<SubjectId>& subjects) {
  std::vector<SubjectClass> classes;
  std::unordered_map<BitVector, size_t, BitVectorHash> by_column;
  for (SubjectId s : subjects) {
    BitVector column = codebook.Column(s);
    ColumnFingerprint fp = ColumnFingerprint::Of(column);
    auto [it, inserted] = by_column.emplace(std::move(column), classes.size());
    if (inserted) {
      classes.emplace_back();
      classes.back().fingerprint = fp;
    }
    classes[it->second].members.push_back(s);
  }
  return classes;
}

size_t Codebook::CountDistinct() const {
  std::unordered_set<BitVector, BitVectorHash> seen(entries_.begin(),
                                                    entries_.end());
  return seen.size();
}

Codebook Codebook::Compacted(std::vector<AccessCodeId>* mapping) const {
  Codebook out(num_subjects_);
  mapping->resize(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    (*mapping)[i] = out.Intern(entries_[i]);
  }
  return out;
}

void Codebook::RebuildIndex() {
  index_.clear();
  // First occurrence wins so lookups are deterministic; duplicates created
  // by subject removal keep their (now unreferenced-by-Intern) ids, which
  // remain valid for codes already embedded in pages.
  for (size_t i = 0; i < entries_.size(); ++i) {
    index_.emplace(entries_[i], static_cast<AccessCodeId>(i));
  }
}

}  // namespace secxml
