#include "core/secure_store.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/dcheck.h"
#include "exec/secure_cursor.h"

namespace secxml {

namespace {

// --- WAL payload / checkpoint-blob codec helpers (little-endian) ---------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutBytes(std::string* out, const std::vector<uint8_t>& b) {
  PutU32(out, static_cast<uint32_t>(b.size()));
  out->append(reinterpret_cast<const char*>(b.data()), b.size());
}

bool TakeU8(std::string_view in, size_t* pos, uint8_t* v) {
  if (*pos + 1 > in.size()) return false;
  *v = static_cast<uint8_t>(in[*pos]);
  *pos += 1;
  return true;
}

bool TakeU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool TakeU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

bool TakeStr(std::string_view in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!TakeU32(in, pos, &len) || *pos + len > in.size()) return false;
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

bool TakeBytes(std::string_view in, size_t* pos, std::vector<uint8_t>* b) {
  uint32_t len = 0;
  if (!TakeU32(in, pos, &len) || *pos + len > in.size()) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in.data() + *pos);
  b->assign(p, p + len);
  *pos += len;
  return true;
}

/// Leading magic of a checkpoint blob ("SXCP" on disk); distinguishes the
/// wrapped [magic][lsn][codebook] form from a legacy bare codebook blob
/// (whose own magic differs).
constexpr uint32_t kCheckpointMagic = 0x50435853u;

std::vector<uint8_t> EncodeCheckpointBlob(const Codebook& cb, uint64_t lsn) {
  std::string head;
  PutU32(&head, kCheckpointMagic);
  PutU64(&head, lsn);
  std::vector<uint8_t> out(head.begin(), head.end());
  std::vector<uint8_t> body = cb.Serialize();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Status DecodeStoreBlob(const std::vector<uint8_t>& blob, Codebook* cb,
                       uint64_t* lsn) {
  *lsn = 0;
  uint32_t magic = 0;
  if (blob.size() >= 12) std::memcpy(&magic, blob.data(), 4);
  if (magic == kCheckpointMagic) {
    std::memcpy(lsn, blob.data() + 4, 8);
    std::vector<uint8_t> body(blob.begin() + 12, blob.end());
    SECXML_ASSIGN_OR_RETURN(*cb, Codebook::Deserialize(body));
    return Status::OK();
  }
  // Legacy form: the blob is the codebook itself (pre-WAL Persist).
  SECXML_ASSIGN_OR_RETURN(*cb, Codebook::Deserialize(blob));
  return Status::OK();
}

/// Serializes a fragment document for the InsertSubtree WAL record
/// (Document has no native serialization; replay rebuilds it node by node).
std::string EncodeFragment(const Document& frag) {
  std::string out;
  PutU32(&out, frag.NumNodes());
  for (NodeId n = 0; n < frag.NumNodes(); ++n) {
    PutU32(&out, frag.SubtreeSize(n));
    PutStr(&out, frag.TagName(n));
    const bool has = frag.HasValue(n);
    PutU8(&out, has ? 1 : 0);
    if (has) PutStr(&out, frag.Value(n));
  }
  return out;
}

Status DecodeFragment(std::string_view in, size_t* pos, Document* out) {
  uint32_t num = 0;
  if (!TakeU32(in, pos, &num)) {
    return Status::Corruption("truncated fragment header in WAL record");
  }
  DocumentBuilder builder;
  std::vector<NodeId> ends;  // innermost-last exclusive subtree ends
  for (NodeId n = 0; n < num; ++n) {
    while (!ends.empty() && ends.back() == n) {
      SECXML_RETURN_NOT_OK(builder.EndElement());
      ends.pop_back();
    }
    uint32_t size = 0;
    std::string tag;
    uint8_t has = 0;
    if (!TakeU32(in, pos, &size) || !TakeStr(in, pos, &tag) ||
        !TakeU8(in, pos, &has)) {
      return Status::Corruption("truncated fragment node in WAL record");
    }
    if (size == 0 || n + size > num ||
        (!ends.empty() && n + size > ends.back())) {
      return Status::Corruption("malformed fragment subtree sizes");
    }
    builder.BeginElement(tag);
    if (has != 0) {
      std::string value;
      if (!TakeStr(in, pos, &value)) {
        return Status::Corruption("truncated fragment value in WAL record");
      }
      SECXML_RETURN_NOT_OK(builder.Text(value));
    }
    ends.push_back(n + size);
  }
  while (!ends.empty()) {
    SECXML_RETURN_NOT_OK(builder.EndElement());
    ends.pop_back();
  }
  return builder.Finish(out);
}

/// The thread's innermost-first chain of snapshot pins (across all stores;
/// codebook()/PinnedEpoch walk it looking for one on this store).
thread_local SecureStore::SnapshotPin* tl_secure_pins = nullptr;

}  // namespace

// --- SnapshotPin ---------------------------------------------------------

SecureStore::SnapshotPin::SnapshotPin(SecureStore* store)
    : store_(store), next_(tl_secure_pins) {
  // Adopt an enclosing pin's snapshot on this thread so nested pins never
  // straddle a commit; otherwise latch the latest committed snapshot under
  // snapshot_mu_, which makes (epoch, codebook, NokStore state) one
  // consistent triple even against a concurrent commit.
  for (SnapshotPin* p = next_; p != nullptr; p = p->next_) {
    if (p->store_ == store) {
      epoch_ = p->epoch_;
      codebook_ = p->codebook_;
      store->epochs_.PinAt(epoch_);
      nok_pin_.emplace(store->nok_.get());  // adopts the outer nok pin
      break;
    }
  }
  if (codebook_ == nullptr) {
    std::lock_guard<std::mutex> lock(store->snapshot_mu_);
    epoch_ = store->epochs_.PinCurrent();
    codebook_ = store->codebook_;
    nok_pin_.emplace(store->nok_.get());
  }
  tl_secure_pins = this;
}

SecureStore::SnapshotPin::~SnapshotPin() {
  SECXML_DCHECK(tl_secure_pins == this);
  tl_secure_pins = next_;
  nok_pin_.reset();
  store_->epochs_.Unpin(epoch_);
}

// --- Construction / open -------------------------------------------------

SecureStore::SecureStore(std::unique_ptr<NokStore> nok, Codebook codebook)
    : nok_(std::move(nok)),
      codebook_(std::make_shared<const Codebook>(std::move(codebook))) {
  codebook_raw_.store(codebook_.get(), std::memory_order_release);
}

SecureStore::~SecureStore() = default;

Status SecureStore::Build(const Document& doc, const DolLabeling& labeling,
                          PagedFile* file, const NokStoreOptions& options,
                          std::unique_ptr<SecureStore>* out) {
  if (labeling.num_nodes() != doc.NumNodes()) {
    return Status::InvalidArgument(
        "labeling does not match the document size");
  }
  SECXML_RETURN_NOT_OK(labeling.CheckInvariants());
  // NokStore::Build consults code_of in strict document order, so a cursor
  // over the transition list gives O(1) amortized code lookup.
  const std::vector<DolEntry>& ts = labeling.transitions();
  size_t cursor = 0;
  auto code_of = [&ts, &cursor](NodeId n) -> uint32_t {
    while (cursor + 1 < ts.size() && ts[cursor + 1].node <= n) ++cursor;
    return ts[cursor].code;
  };
  std::unique_ptr<NokStore> nok;
  SECXML_RETURN_NOT_OK(NokStore::Build(doc, file, options, code_of, &nok));
  out->reset(new SecureStore(std::move(nok), labeling.codebook()));
  return Status::OK();
}

Status SecureStore::Open(PagedFile* file, const NokStoreOptions& options,
                         std::unique_ptr<SecureStore>* out) {
  std::unique_ptr<NokStore> nok;
  std::vector<uint8_t> blob;
  SECXML_RETURN_NOT_OK(NokStore::Open(file, options, &nok, &blob));
  if (blob.empty()) {
    return Status::InvalidArgument(
        "file holds no codebook; use SecureStore::Persist() when saving");
  }
  Codebook codebook;
  uint64_t lsn = 0;
  SECXML_RETURN_NOT_OK(DecodeStoreBlob(blob, &codebook, &lsn));
  out->reset(new SecureStore(std::move(nok), std::move(codebook)));
  (*out)->applied_lsn_.store(lsn, std::memory_order_relaxed);
  return Status::OK();
}

Status SecureStore::BuildWithWal(const Document& doc,
                                 const DolLabeling& labeling,
                                 PagedFile* data_file, PagedFile* wal_file,
                                 const NokStoreOptions& options,
                                 std::unique_ptr<SecureStore>* out) {
  SECXML_RETURN_NOT_OK(Build(doc, labeling, data_file, options, out));
  SECXML_ASSIGN_OR_RETURN(std::unique_ptr<WriteAheadLog> wal,
                          WriteAheadLog::Open(wal_file));
  (*out)->wal_ = std::move(wal);
  // Seal the build with a durable checkpoint so recovery always has a base
  // snapshot to replay onto.
  return (*out)->Checkpoint();
}

Status SecureStore::OpenWithWal(PagedFile* data_file, PagedFile* wal_file,
                                const NokStoreOptions& options,
                                std::unique_ptr<SecureStore>* out,
                                RecoveryStats* recovery, bool replay_log) {
  NokStoreOptions opts = options;
  opts.recover_superblock = true;
  std::unique_ptr<NokStore> nok;
  std::vector<uint8_t> blob;
  SECXML_RETURN_NOT_OK(NokStore::Open(data_file, opts, &nok, &blob));
  if (blob.empty()) {
    return Status::Corruption("recovered store holds no checkpoint blob");
  }
  Codebook codebook;
  uint64_t checkpoint_lsn = 0;
  SECXML_RETURN_NOT_OK(DecodeStoreBlob(blob, &codebook, &checkpoint_lsn));
  SECXML_ASSIGN_OR_RETURN(std::unique_ptr<WriteAheadLog> wal,
                          WriteAheadLog::Open(wal_file));
  std::unique_ptr<SecureStore> store(
      new SecureStore(std::move(nok), std::move(codebook)));
  store->wal_ = std::move(wal);
  store->applied_lsn_.store(checkpoint_lsn, std::memory_order_relaxed);

  RecoveryStats rs;
  rs.checkpoint_lsn = checkpoint_lsn;
  rs.records_in_log = store->wal_->num_records();
  rs.torn_tail = store->wal_->stats().torn_tail;
  if (replay_log) {
    store->recovering_ = true;
    Status replayed = store->wal_->Replay(
        checkpoint_lsn, [&](const WriteAheadLog::Record& rec) {
          Status st = store->ReplayRecord(rec);
          if (st.ok()) ++rs.records_replayed;
          return st;
        });
    store->recovering_ = false;
    if (recovery != nullptr) *recovery = rs;
    SECXML_RETURN_NOT_OK(replayed);
  } else if (recovery != nullptr) {
    *recovery = rs;
  }
  *out = std::move(store);
  return Status::OK();
}

// --- Snapshot resolution -------------------------------------------------

const Codebook& SecureStore::codebook() const {
  // Mid-update the writer thread reads its own staged copy so staged
  // mutations compose; other threads never pass the tid test.
  if (writer_tid_.load(std::memory_order_relaxed) ==
          std::this_thread::get_id() &&
      wcodebook_ != nullptr) {
    return *wcodebook_;
  }
  for (SnapshotPin* p = tl_secure_pins; p != nullptr; p = p->next_) {
    if (p->store_ == this) return *p->codebook_;
  }
  return *codebook_raw_.load(std::memory_order_acquire);
}

EpochManager::Epoch SecureStore::PinnedEpoch() const {
  for (SnapshotPin* p = tl_secure_pins; p != nullptr; p = p->next_) {
    if (p->store_ == this) return p->epoch_;
  }
  return 0;
}

// --- Update transaction machinery ---------------------------------------

Status SecureStore::BeginStaged() {
  SECXML_RETURN_NOT_OK(nok_->BeginUpdate());
  // The staged codebook starts from the *committed* one (not a pinned
  // snapshot the calling thread might hold), so updates always stack on the
  // latest state.
  wcodebook_ = std::make_unique<Codebook>(
      *codebook_raw_.load(std::memory_order_acquire));
  writer_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  return Status::OK();
}

void SecureStore::AbortStaged() {
  nok_->AbortUpdate();
  writer_tid_.store(std::thread::id(), std::memory_order_relaxed);
  wcodebook_.reset();
}

Status SecureStore::CommitStaged(uint32_t wal_type, const std::string& payload,
                                 CacheEffect effect, CommitEvent event) {
  // WAL first: the record must be durable before any reader can observe the
  // update (write-ahead rule). A failed append aborts the whole update —
  // fail-closed, the committed snapshot never changed.
  uint64_t lsn = applied_lsn_.load(std::memory_order_relaxed);
  if (recovering_) {
    lsn = replay_lsn_;
  } else if (wal_ != nullptr) {
    Result<uint64_t> appended = wal_->Append(wal_type, payload);
    if (!appended.ok()) {
      AbortStaged();
      return appended.status();
    }
    lsn = appended.value();
  }

  // Capture the staged directory before publication: after the commit this
  // thread's own pins (if any) would alias an older snapshot.
  const std::vector<NokStore::PageInfo> pages = nok_->page_infos();

  NokStore::UpdateDelta delta;
  std::shared_ptr<const Codebook> old_codebook;
  EpochManager::Epoch old_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    Status committed = nok_->CommitUpdate(&delta);
    if (!committed.ok()) {
      AbortStaged();
      return committed;
    }
    const size_t old_codes = codebook_->size();
    auto next = std::make_shared<const Codebook>(std::move(*wcodebook_));
    old_codebook = std::move(codebook_);
    codebook_ = next;
    codebook_raw_.store(next.get(), std::memory_order_release);
    wcodebook_.reset();
    writer_tid_.store(std::thread::id(), std::memory_order_relaxed);
    applied_lsn_.store(lsn, std::memory_order_relaxed);
    old_epoch = epochs_.current();
    EpochManager::Epoch new_epoch = epochs_.Advance();
    MaintainCaches(effect, delta, pages, codebook_, new_epoch, old_codes);
    // External caches are told about the commit while snapshot_mu_ is still
    // held: a fresh SnapshotPin also takes snapshot_mu_, so no reader can
    // pin new_epoch before every hook has finished invalidating — the
    // stale-serve window is closed by lock order, not by timing.
    event.epoch = new_epoch;
    for (const auto& hook : commit_hooks_) hook(event);
  }
  // The superseded codebook lives until every reader pinned at or before
  // old_epoch drains (their SnapshotPins also hold their own shared_ptr, so
  // this retire is about bounding the retire queue, not correctness).
  epochs_.Retire(old_epoch,
                 [cb = std::move(old_codebook)]() mutable { cb.reset(); });
  (recovering_ ? counters_.updates_replayed : counters_.updates_applied)
      .fetch_add(1, std::memory_order_relaxed);
  counters_.epochs_advanced.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void SecureStore::MaintainCaches(CacheEffect effect,
                                 const NokStore::UpdateDelta& delta,
                                 const std::vector<NokStore::PageInfo>& pages,
                                 const std::shared_ptr<const Codebook>& cb,
                                 EpochManager::Epoch new_epoch,
                                 size_t old_codebook_size) {
  std::lock_guard<std::mutex> hidden_lock(hidden_cache_mu_);
  std::lock_guard<std::mutex> view_lock(view_cache_mu_);
  std::lock_guard<std::mutex> column_lock(column_cache_mu_);
  switch (effect) {
    case CacheEffect::kDropAll:
      counters_.views_dropped.fetch_add(view_cache_.size(),
                                        std::memory_order_relaxed);
      hidden_cache_.clear();
      view_cache_.clear();
      column_cache_.clear();
      break;
    case CacheEffect::kSubjectAdded:
      // A new subject column changes nothing an existing subject's view,
      // column, or hidden intervals depend on — restamp only.
      break;
    case CacheEffect::kPatch: {
      // Hidden intervals are whole-document aggregates; recompute lazily.
      hidden_cache_.clear();
      for (auto& [subject, view] : view_cache_) {
        view = std::make_shared<const SubjectView>(
            SubjectView::Patched(*view, *cb, pages, delta));
        counters_.views_patched.fetch_add(1, std::memory_order_relaxed);
      }
      // ACL updates only append codebook entries, so a cached column is
      // extended in place, never recomputed.
      for (auto& [subject, column] : column_cache_) {
        SECXML_DCHECK(column.size() == old_codebook_size);
        for (size_t code = old_codebook_size; code < cb->size(); ++code) {
          column.PushBack(
              cb->Accessible(static_cast<AccessCodeId>(code), subject));
        }
        counters_.columns_patched.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
  }
  hidden_cache_epoch_ = new_epoch;
  view_cache_epoch_ = new_epoch;
  column_cache_epoch_ = new_epoch;
}

// --- Mutators ------------------------------------------------------------

Status SecureStore::SetSubtreeAccess(NodeId root, SubjectId subject,
                                     bool accessible) {
  std::lock_guard<std::mutex> lock(update_mu_);
  SECXML_RETURN_NOT_OK(BeginStaged());
  // Resolve the subtree against the staged state (== committed at this
  // point) so the logged range is exact, making replay deterministic.
  Result<NokRecord> rec = nok_->Record(root);
  if (!rec.ok()) {
    AbortStaged();
    return rec.status();
  }
  const NodeId end = root + rec->subtree_size;
  Status staged = SetRangeAccessStaged(root, end, subject, accessible);
  if (!staged.ok()) {
    AbortStaged();
    return staged;
  }
  std::string payload;
  PutU64(&payload, root);
  PutU64(&payload, end);
  PutU32(&payload, subject);
  PutU8(&payload, accessible ? 1 : 0);
  return CommitStaged(kWalSetRangeAccess, payload, CacheEffect::kPatch,
                      {CommitEvent::Kind::kAclPatch, root, end, 0});
}

Status SecureStore::SetRangeAccess(NodeId begin, NodeId end, SubjectId subject,
                                   bool accessible) {
  std::lock_guard<std::mutex> lock(update_mu_);
  return SetRangeAccessLocked(begin, end, subject, accessible);
}

Status SecureStore::SetRangeAccessLocked(NodeId begin, NodeId end,
                                         SubjectId subject, bool accessible) {
  SECXML_RETURN_NOT_OK(BeginStaged());
  Status staged = SetRangeAccessStaged(begin, end, subject, accessible);
  if (!staged.ok()) {
    AbortStaged();
    return staged;
  }
  std::string payload;
  PutU64(&payload, begin);
  PutU64(&payload, end);
  PutU32(&payload, subject);
  PutU8(&payload, accessible ? 1 : 0);
  return CommitStaged(kWalSetRangeAccess, payload, CacheEffect::kPatch,
                      {CommitEvent::Kind::kAclPatch, begin, end, 0});
}

Status SecureStore::SetRangeAccessStaged(NodeId begin, NodeId end,
                                         SubjectId subject, bool accessible) {
  if (begin >= end || end > nok_->num_nodes()) {
    return Status::InvalidArgument("bad node range");
  }
  Codebook& cb = *wcodebook_;
  if (subject >= cb.num_subjects()) {
    return Status::InvalidArgument("no such subject");
  }
  std::unordered_map<AccessCodeId, AccessCodeId> mapped;
  auto map_code = [&](AccessCodeId old) {
    auto it = mapped.find(old);
    if (it != mapped.end()) return it->second;
    BitVector acl = cb.Entry(old);  // copy: Intern may reallocate
    acl.Set(subject, accessible);
    AccessCodeId neu = cb.Intern(acl);
    mapped.emplace(old, neu);
    return neu;
  };

  size_t ordinal = nok_->PageOrdinalOf(begin);
  while (ordinal < nok_->num_pages() &&
         nok_->page_infos()[ordinal].first_node < end) {
    const NokStore::PageInfo info = nok_->page_infos()[ordinal];
    NodeId page_begin = info.first_node;
    NodeId page_end = info.first_node + info.num_records;

    // Decompose the page into runs of equal code.
    SECXML_ASSIGN_OR_RETURN(std::vector<DolTransition> old_ts,
                            nok_->PageTransitions(ordinal));
    struct Run {
      NodeId start;
      AccessCodeId code;
    };
    std::vector<Run> runs;
    runs.push_back({page_begin, info.first_code});
    for (const DolTransition& t : old_ts) {
      runs.push_back({page_begin + t.slot, t.code});
    }

    // Split runs at the range boundaries, then remap the covered parts.
    std::vector<Run> new_runs;
    for (size_t i = 0; i < runs.size(); ++i) {
      NodeId run_start = runs[i].start;
      NodeId run_end = i + 1 < runs.size() ? runs[i + 1].start : page_end;
      AccessCodeId code = runs[i].code;
      NodeId cut1 = std::clamp(begin, run_start, run_end);
      NodeId cut2 = std::clamp(end, run_start, run_end);
      if (cut1 > run_start) new_runs.push_back({run_start, code});
      if (cut2 > cut1) new_runs.push_back({cut1, map_code(code)});
      if (run_end > cut2) new_runs.push_back({cut2, code});
    }

    // Collapse duplicates and rebuild the page's ACL region.
    uint32_t first_code = new_runs.front().code;
    std::vector<DolTransition> new_ts;
    AccessCodeId prev = first_code;
    for (size_t i = 1; i < new_runs.size(); ++i) {
      if (new_runs[i].code == prev) continue;
      new_ts.push_back(DolTransition{
          static_cast<uint16_t>(new_runs[i].start - page_begin), 0,
          new_runs[i].code});
      prev = new_runs[i].code;
    }
    size_t pages_before = nok_->num_pages();
    SECXML_RETURN_NOT_OK(nok_->SetPageAcl(ordinal, first_code, new_ts));
    // A split distributes the new ACL over both halves; skip past them.
    ordinal += (nok_->num_pages() > pages_before) ? 2 : 1;
  }
  return Status::OK();
}

Status SecureStore::DeleteSubtree(NodeId root) {
  std::lock_guard<std::mutex> lock(update_mu_);
  return DeleteSubtreeLocked(root);
}

Status SecureStore::DeleteSubtreeLocked(NodeId root) {
  SECXML_RETURN_NOT_OK(BeginStaged());
  Status staged = nok_->DeleteSubtree(root);  // runs inside our transaction
  if (!staged.ok()) {
    AbortStaged();
    return staged;
  }
  std::string payload;
  PutU64(&payload, root);
  return CommitStaged(kWalDeleteSubtree, payload, CacheEffect::kPatch,
                      {CommitEvent::Kind::kStructural, 0, 0, 0});
}

Result<NodeId> SecureStore::InsertSubtree(
    NodeId parent, NodeId after, const Document& fragment,
    const DolLabeling& fragment_labeling) {
  std::lock_guard<std::mutex> lock(update_mu_);
  return InsertSubtreeLocked(parent, after, fragment, fragment_labeling);
}

Result<NodeId> SecureStore::InsertSubtreeLocked(
    NodeId parent, NodeId after, const Document& fragment,
    const DolLabeling& fragment_labeling) {
  if (fragment_labeling.num_nodes() != fragment.NumNodes()) {
    return Status::InvalidArgument(
        "fragment labeling does not match the fragment size");
  }
  // A malformed labeling (no transition at node 0, descending nodes) would
  // otherwise make the CodeAt calls below misresolve codes.
  SECXML_RETURN_NOT_OK(fragment_labeling.CheckInvariants());
  SECXML_RETURN_NOT_OK(BeginStaged());
  if (fragment_labeling.codebook().num_subjects() !=
      wcodebook_->num_subjects()) {
    AbortStaged();
    return Status::InvalidArgument("fragment has a different subject set");
  }
  // Re-intern the fragment's codes into this store's codebook once.
  std::unordered_map<AccessCodeId, uint32_t> mapped;
  auto code_of = [this, &fragment_labeling, &mapped](NodeId f) -> uint32_t {
    AccessCodeId frag_code = fragment_labeling.CodeAt(f);
    auto it = mapped.find(frag_code);
    if (it != mapped.end()) return it->second;
    uint32_t code =
        wcodebook_->Intern(fragment_labeling.codebook().Entry(frag_code));
    mapped.emplace(frag_code, code);
    return code;
  };
  Result<NodeId> landed =
      nok_->InsertSubtree(parent, after, fragment, code_of);
  if (!landed.ok()) {
    AbortStaged();
    return landed.status();
  }
  std::string payload;
  PutU64(&payload, parent);
  PutU64(&payload, after);
  payload += EncodeFragment(fragment);
  PutBytes(&payload, fragment_labeling.Serialize());
  SECXML_RETURN_NOT_OK(
      CommitStaged(kWalInsertSubtree, payload, CacheEffect::kPatch,
                   {CommitEvent::Kind::kStructural, 0, 0, 0}));
  return landed.value();
}

Result<SubjectId> SecureStore::AddSubject(bool default_access) {
  std::lock_guard<std::mutex> lock(update_mu_);
  return AddSubjectLocked(default_access);
}

Result<SubjectId> SecureStore::AddSubjectLocked(bool default_access) {
  SECXML_RETURN_NOT_OK(BeginStaged());
  SubjectId id = wcodebook_->AddSubject(default_access);
  std::string payload;
  PutU8(&payload, default_access ? 1 : 0);
  SECXML_RETURN_NOT_OK(
      CommitStaged(kWalAddSubject, payload, CacheEffect::kSubjectAdded,
                   {CommitEvent::Kind::kSubjectAdded, 0, 0, 0}));
  return id;
}

Result<SubjectId> SecureStore::AddSubjectLike(SubjectId like) {
  std::lock_guard<std::mutex> lock(update_mu_);
  return AddSubjectLikeLocked(like);
}

Result<SubjectId> SecureStore::AddSubjectLikeLocked(SubjectId like) {
  SECXML_RETURN_NOT_OK(BeginStaged());
  Result<SubjectId> id = wcodebook_->AddSubjectLike(like);
  if (!id.ok()) {
    AbortStaged();
    return id.status();
  }
  std::string payload;
  PutU32(&payload, like);
  SECXML_RETURN_NOT_OK(
      CommitStaged(kWalAddSubjectLike, payload, CacheEffect::kSubjectAdded,
                   {CommitEvent::Kind::kSubjectAdded, 0, 0, 0}));
  return id.value();
}

Status SecureStore::RemoveSubject(SubjectId subject) {
  std::lock_guard<std::mutex> lock(update_mu_);
  return RemoveSubjectLocked(subject);
}

Status SecureStore::RemoveSubjectLocked(SubjectId subject) {
  SECXML_RETURN_NOT_OK(BeginStaged());
  Status staged = wcodebook_->RemoveSubject(subject);
  if (!staged.ok()) {
    AbortStaged();
    return staged;
  }
  std::string payload;
  PutU32(&payload, subject);
  // Remaining subjects renumber: views and columns are keyed by subject id,
  // so everything recompiles lazily under the new epoch.
  return CommitStaged(kWalRemoveSubject, payload, CacheEffect::kDropAll,
                      {CommitEvent::Kind::kShapeChange, 0, 0, 0});
}

Status SecureStore::CompactCodebook() {
  std::lock_guard<std::mutex> lock(update_mu_);
  return CompactCodebookLocked();
}

Status SecureStore::CompactCodebookLocked() {
  SECXML_RETURN_NOT_OK(BeginStaged());
  std::vector<AccessCodeId> mapping;
  Codebook compacted = wcodebook_->Compacted(&mapping);
  // One sequential pass over the staged directory. Pinned readers keep
  // resolving codes against the pre-compaction snapshot until commit; no
  // prefetch sweep here because background workers resolve ordinals against
  // the committed state, not the staged one.
  for (size_t ordinal = 0; ordinal < nok_->num_pages(); ++ordinal) {
    const NokStore::PageInfo info = nok_->page_infos()[ordinal];
    Result<std::vector<DolTransition>> ts = nok_->PageTransitions(ordinal);
    if (!ts.ok()) {
      AbortStaged();
      return ts.status();
    }
    uint32_t first_code = mapping[info.first_code];
    bool changed = first_code != info.first_code;
    // Remap and drop transitions that became no-ops.
    std::vector<DolTransition> remapped;
    uint32_t prev = first_code;
    for (DolTransition t : *ts) {
      uint32_t neu = mapping[t.code];
      changed |= neu != t.code;
      if (neu == prev) {
        changed = true;  // a merged transition disappears
        continue;
      }
      t.code = neu;
      remapped.push_back(t);
      prev = neu;
    }
    if (changed) {
      Status staged =
          nok_->SetPageAcl(ordinal, first_code, std::move(remapped));
      if (!staged.ok()) {
        AbortStaged();
        return staged;
      }
    }
  }
  *wcodebook_ = std::move(compacted);
  return CommitStaged(kWalCompactCodebook, std::string(),
                      CacheEffect::kDropAll,
                      {CommitEvent::Kind::kShapeChange, 0, 0, 0});
}

Status SecureStore::Vacuum(const VacuumOptions& options, VacuumStats* stats) {
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    SECXML_RETURN_NOT_OK(VacuumLocked(options, stats));
  }
  // The vacuum rewrote every page; checkpointing immediately bounds the log
  // (recovery replaying the wholesale rewrite works, it is just slower).
  if (options.checkpoint_after) return Checkpoint();
  return Status::OK();
}

Status SecureStore::VacuumLocked(const VacuumOptions& options,
                                 VacuumStats* stats) {
  SECXML_RETURN_NOT_OK(BeginStaged());
  const size_t pages_before = nok_->num_pages();
  size_t homogeneous_before = 0;
  for (size_t ordinal = 0; ordinal < pages_before; ++ordinal) {
    if (!nok_->page_infos()[ordinal].change_bit) ++homogeneous_before;
  }
  VacuumPlan plan;
  Status repacked = nok_->Repack(options.min_run_records, &plan);
  if (!repacked.ok()) {
    AbortStaged();
    return repacked;
  }
  // The record carries only the planner input: replay re-reads the staged
  // pages and re-runs the deterministic planner, like every logical redo.
  std::string payload;
  PutU32(&payload, options.min_run_records);
  SECXML_RETURN_NOT_OK(
      CommitStaged(kWalVacuum, payload, CacheEffect::kDropAll,
                   {CommitEvent::Kind::kStructural, 0, 0, 0}));
  if (stats != nullptr) {
    stats->pages_before = pages_before;
    stats->pages_after = plan.page_starts.size();
    stats->homogeneous_pages_before = homogeneous_before;
    stats->homogeneous_pages_after = plan.homogeneous_pages;
    stats->transitions_after = plan.transitions;
  }
  return Status::OK();
}

// --- WAL replay ----------------------------------------------------------

Status SecureStore::ReplayRecord(const WriteAheadLog::Record& record) {
  std::lock_guard<std::mutex> lock(update_mu_);
  replay_lsn_ = record.lsn;
  std::string_view p(record.payload);
  size_t pos = 0;
  switch (record.type) {
    case kWalSetRangeAccess: {
      uint64_t begin = 0, end = 0;
      uint32_t subject = 0;
      uint8_t accessible = 0;
      if (!TakeU64(p, &pos, &begin) || !TakeU64(p, &pos, &end) ||
          !TakeU32(p, &pos, &subject) || !TakeU8(p, &pos, &accessible) ||
          pos != p.size()) {
        return Status::Corruption("malformed SetRangeAccess WAL record");
      }
      return SetRangeAccessLocked(static_cast<NodeId>(begin),
                                  static_cast<NodeId>(end), subject,
                                  accessible != 0);
    }
    case kWalAddSubject: {
      uint8_t default_access = 0;
      if (!TakeU8(p, &pos, &default_access) || pos != p.size()) {
        return Status::Corruption("malformed AddSubject WAL record");
      }
      Result<SubjectId> id = AddSubjectLocked(default_access != 0);
      return id.ok() ? Status::OK() : id.status();
    }
    case kWalAddSubjectLike: {
      uint32_t like = 0;
      if (!TakeU32(p, &pos, &like) || pos != p.size()) {
        return Status::Corruption("malformed AddSubjectLike WAL record");
      }
      Result<SubjectId> id = AddSubjectLikeLocked(like);
      return id.ok() ? Status::OK() : id.status();
    }
    case kWalRemoveSubject: {
      uint32_t subject = 0;
      if (!TakeU32(p, &pos, &subject) || pos != p.size()) {
        return Status::Corruption("malformed RemoveSubject WAL record");
      }
      return RemoveSubjectLocked(subject);
    }
    case kWalDeleteSubtree: {
      uint64_t root = 0;
      if (!TakeU64(p, &pos, &root) || pos != p.size()) {
        return Status::Corruption("malformed DeleteSubtree WAL record");
      }
      return DeleteSubtreeLocked(static_cast<NodeId>(root));
    }
    case kWalInsertSubtree: {
      uint64_t parent = 0, after = 0;
      if (!TakeU64(p, &pos, &parent) || !TakeU64(p, &pos, &after)) {
        return Status::Corruption("malformed InsertSubtree WAL record");
      }
      Document fragment;
      SECXML_RETURN_NOT_OK(DecodeFragment(p, &pos, &fragment));
      std::vector<uint8_t> labeling_bytes;
      if (!TakeBytes(p, &pos, &labeling_bytes) || pos != p.size()) {
        return Status::Corruption("malformed InsertSubtree WAL record");
      }
      SECXML_ASSIGN_OR_RETURN(DolLabeling labeling,
                              DolLabeling::Deserialize(labeling_bytes));
      Result<NodeId> landed =
          InsertSubtreeLocked(static_cast<NodeId>(parent),
                              static_cast<NodeId>(after), fragment, labeling);
      return landed.ok() ? Status::OK() : landed.status();
    }
    case kWalCompactCodebook: {
      if (!p.empty()) {
        return Status::Corruption("malformed CompactCodebook WAL record");
      }
      return CompactCodebookLocked();
    }
    case kWalVacuum: {
      uint32_t min_run = 0;
      if (!TakeU32(p, &pos, &min_run) || pos != p.size()) {
        return Status::Corruption("malformed Vacuum WAL record");
      }
      VacuumOptions opts;
      opts.min_run_records = min_run;
      opts.checkpoint_after = false;  // recovery never truncates mid-replay
      return VacuumLocked(opts, nullptr);
    }
    default:
      return Status::Corruption("unknown WAL record type");
  }
}

// --- Durability ----------------------------------------------------------

Status SecureStore::Persist() {
  std::lock_guard<std::mutex> lock(update_mu_);
  return PersistLocked();
}

Status SecureStore::PersistLocked() {
  const Codebook* cb = codebook_raw_.load(std::memory_order_acquire);
  return nok_->Persist(
      EncodeCheckpointBlob(*cb, applied_lsn_.load(std::memory_order_relaxed)));
}

Status SecureStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(update_mu_);
  SECXML_RETURN_NOT_OK(PersistLocked());
  if (wal_ != nullptr) SECXML_RETURN_NOT_OK(wal_->Truncate());
  counters_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SecureStore::TruncateWal() {
  std::lock_guard<std::mutex> lock(update_mu_);
  if (wal_ == nullptr) return Status::OK();
  SECXML_RETURN_NOT_OK(wal_->Truncate());
  // Completing the truncate phase is what makes a (two-phase) checkpoint a
  // checkpoint, so it is counted here, symmetric with Checkpoint().
  counters_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// --- Replication hooks (sharded serving) ---------------------------------

Status SecureStore::ApplyReplicated(const WriteAheadLog::Record& record) {
  // ReplayRecord takes update_mu_ itself and runs the same *Locked update
  // bodies a live mutator runs; with recovering_ set, CommitStaged adopts
  // the record's LSN instead of appending to this replica's own log. The
  // coordinator serializes every mutator across the replica set, so the
  // flag cannot race another writer on this store.
  recovering_ = true;
  Status st = ReplayRecord(record);
  recovering_ = false;
  return st;
}

Status SecureStore::AlignWalLsn(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(update_mu_);
  if (wal_ != nullptr) wal_->set_next_lsn(lsn);
  return Status::OK();
}

// --- Pinned read paths ---------------------------------------------------

Result<bool> SecureStore::Accessible(SubjectId subject, NodeId node) {
  SnapshotPin pin(this);
  const Codebook& cb = codebook();
  if (subject >= cb.num_subjects()) {
    return Status::InvalidArgument("no such subject");
  }
  SECXML_ASSIGN_OR_RETURN(uint32_t code, nok_->AccessCode(node));
  return cb.Accessible(code, subject);
}

Result<std::shared_ptr<const SubjectView>> SecureStore::View(
    SubjectId subject) {
  SnapshotPin pin(this);
  const Codebook& cb = codebook();
  if (subject >= cb.num_subjects()) {
    return Status::InvalidArgument("no such subject");
  }
  // Held across the miss: concurrent first users of one subject serialize
  // briefly and share one compilation. Compilation reads pages through this
  // thread's pin, so it sees exactly the pinned snapshot. A caller at an
  // older epoch (stamp mismatch) compiles from its snapshot without
  // polluting the cache.
  std::lock_guard<std::mutex> lock(view_cache_mu_);
  const bool current = view_cache_epoch_ == pin.epoch();
  if (current) {
    auto it = view_cache_.find(subject);
    if (it != view_cache_.end()) return it->second;
  }
  auto view = std::make_shared<const SubjectView>(
      SubjectView::Compile(cb, nok_->page_infos(), subject, nok_.get()));
  if (current) view_cache_.emplace(subject, view);
  return view;
}

Result<std::vector<NodeInterval>> SecureStore::HiddenSubtreeIntervals(
    SubjectId subject, ExecStats* stats) {
  SnapshotPin pin(this);
  const Codebook& cb = codebook();
  if (subject >= cb.num_subjects()) {
    return Status::InvalidArgument("no such subject");
  }
  std::lock_guard<std::mutex> lock(hidden_cache_mu_);
  const bool current = hidden_cache_epoch_ == pin.epoch();
  if (current) {
    auto it = hidden_cache_.find(subject);
    if (it != hidden_cache_.end()) return it->second;
  }
  SECXML_ASSIGN_OR_RETURN(std::vector<NodeInterval> hidden,
                          ComputeHiddenSubtreeIntervals(subject, stats));
  if (current) hidden_cache_.emplace(subject, hidden);
  return hidden;
}

Result<std::vector<NodeInterval>> SecureStore::ComputeHiddenSubtreeIntervals(
    SubjectId subject, ExecStats* stats) {
  // The compiled view answers both per-page verdicts and the inner
  // per-code test with one indexed load each. View() takes view_cache_mu_
  // underneath our caller's hidden_cache_mu_ — the fixed hidden->view
  // order also used by MaintainCaches.
  SECXML_ASSIGN_OR_RETURN(std::shared_ptr<const SubjectView> view,
                          View(subject));
  std::vector<NodeInterval> hidden;
  NodeId blocked_end = 0;  // exclusive end of the current hidden interval

  // Page-scoped iteration through the exec layer: the sweep visits pages
  // in document order and (mostly) fetches those the view cannot prove
  // wholly live, so stream those in ahead of the cursor. Wholly-live pages
  // are only ever fetched when a hidden subtree spills into them — rare
  // enough that missing the prefetch there just costs a synchronous read.
  // The sweep's destructor drains every in-flight fetch before we return,
  // so no background read outlives the sweep (the no-overlap-with-
  // exclusive-updates contract).
  ExecStats local;
  if (stats == nullptr) stats = &local;
  PageSweep sweep(
      nok_.get(),
      [&view](size_t ord) { return view->PageCheckFree(ord); }, stats);

  for (size_t ordinal = 0; ordinal < nok_->num_pages(); ++ordinal) {
    const NokStore::PageInfo& info = nok_->page_infos()[ordinal];
    NodeId page_begin = info.first_node;
    NodeId page_end = info.first_node + info.num_records;
    // Page skip from the compiled view: a page whose every node is
    // accessible (check-free covers changed pages whose transitions are
    // all live for this subject, which the header alone cannot prove)
    // beyond any hidden subtree cannot start a new hidden interval. Not
    // counted as pages_skipped — that counter belongs to the matcher's
    // cursor (see HiddenSubtreeIntervals).
    if (view->PageCheckFree(ordinal) && page_begin >= blocked_end) {
      continue;
    }
    // A uniformly *inaccessible* page fully covered by the current hidden
    // interval also needs no inspection.
    if (page_end <= blocked_end) continue;

    sweep.PrefetchFrom(ordinal);
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, sweep.Fetch(ordinal));
    NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
    SECXML_RETURN_NOT_OK(CheckOnDiskHeader(header, info.page_id));
    // The walker must see every slot (codes resolve from the run in
    // effect), so slots inside an already-hidden subtree still advance it
    // — they are just not probed or counted.
    PageCodeWalker walker(handle.page(), header);
    for (uint32_t slot = 0; slot < header.num_records; ++slot) {
      uint32_t code = walker.CodeFor(slot);
      NodeId n = page_begin + slot;
      if (n < blocked_end) continue;  // inside an already-hidden subtree
      ++stats->nodes_scanned;
      ++stats->codes_checked;
      if (view->CodeAccessible(code)) continue;
      NokRecord rec = walker.RecordAt(slot);
      NodeId subtree_end = n + rec.subtree_size;
      if (!hidden.empty() && hidden.back().end == n) {
        hidden.back().end = subtree_end;  // adjacent subtrees merge
      } else {
        hidden.push_back({n, subtree_end});
      }
      blocked_end = subtree_end;
    }
  }
  return hidden;
}

std::vector<SubjectClass> SecureStore::GroupSubjects(
    const std::vector<SubjectId>& subjects) {
  SnapshotPin pin(this);
  const Codebook& cb = codebook();
  std::unique_lock<std::mutex> lock(column_cache_mu_);
  if (column_cache_epoch_ != pin.epoch()) {
    // Pinned at an older epoch than the cache serves: group directly from
    // the pinned codebook without touching the cache.
    lock.unlock();
    return GroupSubjectsByColumn(cb, subjects);
  }
  // Mirror GroupSubjectsByColumn exactly (first-occurrence class order),
  // serving columns from the cache. Out-of-range subjects get the fail-
  // closed all-denied column but are never cached: a later AddSubject could
  // make the id valid with different rights.
  std::vector<SubjectClass> classes;
  std::unordered_map<BitVector, size_t, BitVectorHash> index;
  std::deque<BitVector> scratch;  // stable addresses for uncached columns
  for (SubjectId s : subjects) {
    const BitVector* column;
    auto it = column_cache_.find(s);
    if (it != column_cache_.end()) {
      column = &it->second;
    } else if (s < cb.num_subjects()) {
      column = &column_cache_.emplace(s, cb.Column(s)).first->second;
    } else {
      scratch.push_back(cb.Column(s));
      column = &scratch.back();
    }
    auto [cit, inserted] = index.emplace(*column, classes.size());
    if (inserted) {
      classes.emplace_back();
      classes.back().fingerprint = ColumnFingerprint::Of(*column);
    }
    classes[cit->second].members.push_back(s);
  }
  return classes;
}

void SecureStore::AddCommitHook(
    std::function<void(const CommitEvent&)> hook) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  commit_hooks_.push_back(std::move(hook));
}

ColumnFingerprint SecureStore::SubjectColumnFingerprint(SubjectId subject) {
  SnapshotPin pin(this);
  const Codebook& cb = codebook();
  std::unique_lock<std::mutex> lock(column_cache_mu_);
  if (column_cache_epoch_ == pin.epoch()) {
    auto it = column_cache_.find(subject);
    if (it == column_cache_.end() && subject < cb.num_subjects()) {
      // Same admission rule as GroupSubjects: cache real subjects' columns,
      // never the fail-closed column of an unknown id.
      it = column_cache_.emplace(subject, cb.Column(subject)).first;
    }
    if (it != column_cache_.end()) {
      return ColumnFingerprint::Of(it->second);
    }
  }
  lock.unlock();
  return cb.ColumnFingerprintOf(subject);
}

void SecureStore::DropVisibilityCaches() {
  std::lock_guard<std::mutex> hidden_lock(hidden_cache_mu_);
  std::lock_guard<std::mutex> view_lock(view_cache_mu_);
  std::lock_guard<std::mutex> column_lock(column_cache_mu_);
  hidden_cache_.clear();
  view_cache_.clear();
  column_cache_.clear();
}

Result<DolLabeling> SecureStore::ExtractLabeling() {
  SnapshotPin pin(this);
  const Codebook& cb = codebook();
  // Reconstruct per-node codes from the pages, then rebuild a labeling via
  // a map adapter so invariants (normalization) are re-established.
  class CodeMap final : public AccessibilityMap {
   public:
    CodeMap(const Codebook* cb, std::vector<AccessCodeId> codes)
        : cb_(cb), codes_(std::move(codes)) {}
    size_t num_subjects() const override { return cb_->num_subjects(); }
    NodeId num_nodes() const override {
      return static_cast<NodeId>(codes_.size());
    }
    bool Accessible(SubjectId s, NodeId n) const override {
      return cb_->Accessible(codes_[n], s);
    }
    void AclFor(NodeId n, BitVector* out) const override {
      *out = cb_->Entry(codes_[n]);
    }

   private:
    const Codebook* cb_;
    std::vector<AccessCodeId> codes_;
  };

  std::vector<AccessCodeId> codes(nok_->num_nodes());
  for (size_t ordinal = 0; ordinal < nok_->num_pages(); ++ordinal) {
    const NokStore::PageInfo& info = nok_->page_infos()[ordinal];
    SECXML_ASSIGN_OR_RETURN(std::vector<DolTransition> ts,
                            nok_->PageTransitions(ordinal));
    uint32_t code = info.first_code;
    size_t next = 0;
    for (uint16_t slot = 0; slot < info.num_records; ++slot) {
      if (next < ts.size() && ts[next].slot == slot) {
        code = ts[next].code;
        ++next;
      }
      codes[info.first_node + slot] = code;
    }
  }
  return DolLabeling::Build(CodeMap(&cb, std::move(codes)));
}

SecureStore::UpdateStats SecureStore::update_stats() const {
  UpdateStats s;
  s.updates_applied =
      counters_.updates_applied.load(std::memory_order_relaxed);
  s.updates_replayed =
      counters_.updates_replayed.load(std::memory_order_relaxed);
  s.epochs_advanced =
      counters_.epochs_advanced.load(std::memory_order_relaxed);
  s.views_patched = counters_.views_patched.load(std::memory_order_relaxed);
  s.views_dropped = counters_.views_dropped.load(std::memory_order_relaxed);
  s.columns_patched =
      counters_.columns_patched.load(std::memory_order_relaxed);
  s.checkpoints = counters_.checkpoints.load(std::memory_order_relaxed);
  return s;
}

}  // namespace secxml
