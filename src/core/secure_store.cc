#include "core/secure_store.h"

#include <algorithm>
#include <unordered_map>

#include "exec/secure_cursor.h"

namespace secxml {

Status SecureStore::Build(const Document& doc, const DolLabeling& labeling,
                          PagedFile* file, const NokStoreOptions& options,
                          std::unique_ptr<SecureStore>* out) {
  if (labeling.num_nodes() != doc.NumNodes()) {
    return Status::InvalidArgument(
        "labeling does not match the document size");
  }
  SECXML_RETURN_NOT_OK(labeling.CheckInvariants());
  // NokStore::Build consults code_of in strict document order, so a cursor
  // over the transition list gives O(1) amortized code lookup.
  const std::vector<DolEntry>& ts = labeling.transitions();
  size_t cursor = 0;
  auto code_of = [&ts, &cursor](NodeId n) -> uint32_t {
    while (cursor + 1 < ts.size() && ts[cursor + 1].node <= n) ++cursor;
    return ts[cursor].code;
  };
  std::unique_ptr<NokStore> nok;
  SECXML_RETURN_NOT_OK(NokStore::Build(doc, file, options, code_of, &nok));
  out->reset(new SecureStore(std::move(nok), labeling.codebook()));
  return Status::OK();
}

Status SecureStore::Open(PagedFile* file, const NokStoreOptions& options,
                         std::unique_ptr<SecureStore>* out) {
  std::unique_ptr<NokStore> nok;
  std::vector<uint8_t> blob;
  SECXML_RETURN_NOT_OK(NokStore::Open(file, options, &nok, &blob));
  if (blob.empty()) {
    return Status::InvalidArgument(
        "file holds no codebook; use SecureStore::Persist() when saving");
  }
  SECXML_ASSIGN_OR_RETURN(Codebook codebook, Codebook::Deserialize(blob));
  out->reset(new SecureStore(std::move(nok), std::move(codebook)));
  return Status::OK();
}

Result<bool> SecureStore::Accessible(SubjectId subject, NodeId node) {
  if (subject >= codebook_.num_subjects()) {
    return Status::InvalidArgument("no such subject");
  }
  SECXML_ASSIGN_OR_RETURN(uint32_t code, nok_->AccessCode(node));
  return codebook_.Accessible(code, subject);
}

Status SecureStore::SetSubtreeAccess(NodeId root, SubjectId subject,
                                     bool accessible) {
  SECXML_ASSIGN_OR_RETURN(NokRecord rec, nok_->Record(root));
  return SetRangeAccess(root, root + rec.subtree_size, subject, accessible);
}

Status SecureStore::SetRangeAccess(NodeId begin, NodeId end, SubjectId subject,
                                   bool accessible) {
  if (begin >= end || end > nok_->num_nodes()) {
    return Status::InvalidArgument("bad node range");
  }
  if (subject >= codebook_.num_subjects()) {
    return Status::InvalidArgument("no such subject");
  }
  std::unordered_map<AccessCodeId, AccessCodeId> mapped;
  auto map_code = [&](AccessCodeId old) {
    auto it = mapped.find(old);
    if (it != mapped.end()) return it->second;
    BitVector acl = codebook_.Entry(old);  // copy: Intern may reallocate
    acl.Set(subject, accessible);
    AccessCodeId neu = codebook_.Intern(acl);
    mapped.emplace(old, neu);
    return neu;
  };

  size_t ordinal = nok_->PageOrdinalOf(begin);
  while (ordinal < nok_->num_pages() &&
         nok_->page_infos()[ordinal].first_node < end) {
    const NokStore::PageInfo info = nok_->page_infos()[ordinal];
    NodeId page_begin = info.first_node;
    NodeId page_end = info.first_node + info.num_records;

    // Decompose the page into runs of equal code.
    SECXML_ASSIGN_OR_RETURN(std::vector<DolTransition> old_ts,
                            nok_->PageTransitions(ordinal));
    struct Run {
      NodeId start;
      AccessCodeId code;
    };
    std::vector<Run> runs;
    runs.push_back({page_begin, info.first_code});
    for (const DolTransition& t : old_ts) {
      runs.push_back({page_begin + t.slot, t.code});
    }

    // Split runs at the range boundaries, then remap the covered parts.
    std::vector<Run> new_runs;
    for (size_t i = 0; i < runs.size(); ++i) {
      NodeId run_start = runs[i].start;
      NodeId run_end = i + 1 < runs.size() ? runs[i + 1].start : page_end;
      AccessCodeId code = runs[i].code;
      NodeId cut1 = std::clamp(begin, run_start, run_end);
      NodeId cut2 = std::clamp(end, run_start, run_end);
      if (cut1 > run_start) new_runs.push_back({run_start, code});
      if (cut2 > cut1) new_runs.push_back({cut1, map_code(code)});
      if (run_end > cut2) new_runs.push_back({cut2, code});
    }

    // Collapse duplicates and rebuild the page's ACL region.
    uint32_t first_code = new_runs.front().code;
    std::vector<DolTransition> new_ts;
    AccessCodeId prev = first_code;
    for (size_t i = 1; i < new_runs.size(); ++i) {
      if (new_runs[i].code == prev) continue;
      new_ts.push_back(DolTransition{
          static_cast<uint16_t>(new_runs[i].start - page_begin), 0,
          new_runs[i].code});
      prev = new_runs[i].code;
    }
    size_t pages_before = nok_->num_pages();
    InvalidateVisibilityCache();
    SECXML_RETURN_NOT_OK(nok_->SetPageAcl(ordinal, first_code, new_ts));
    // A split distributes the new ACL over both halves; skip past them.
    ordinal += (nok_->num_pages() > pages_before) ? 2 : 1;
  }
  return Status::OK();
}

Status SecureStore::CompactCodebook() {
  // Compaction renumbers codes, so compiled views (whose code->accessible
  // tables are indexed by code) and cached intervals go stale the moment
  // pages start rewriting. Drop them before touching any page, and again
  // after the codebook swap in case a concurrent-read epoch recompiled one
  // against the half-rewritten state.
  InvalidateVisibilityCache();
  std::vector<AccessCodeId> mapping;
  Codebook compacted = codebook_.Compacted(&mapping);
  // The rewrite is one sequential pass; stream the next pages in through
  // the background prefetcher so the pass overlaps I/O with remapping. The
  // bounded window keeps the prefetch cursor from running far ahead of
  // pages SetPageAcl may still split or rewrite; the sweep's destructor
  // drains every in-flight fetch before we return.
  PageSweep sweep(nok_.get(), /*skip=*/{}, /*stats=*/nullptr,
                  /*bounded_window=*/true);
  for (size_t ordinal = 0; ordinal < nok_->num_pages(); ++ordinal) {
    sweep.PrefetchFrom(ordinal);
    const NokStore::PageInfo& info = nok_->page_infos()[ordinal];
    SECXML_ASSIGN_OR_RETURN(std::vector<DolTransition> ts,
                            nok_->PageTransitions(ordinal));
    uint32_t first_code = mapping[info.first_code];
    bool changed = first_code != info.first_code;
    // Remap and drop transitions that became no-ops.
    std::vector<DolTransition> remapped;
    uint32_t prev = first_code;
    for (DolTransition t : ts) {
      uint32_t neu = mapping[t.code];
      changed |= neu != t.code;
      if (neu == prev) {
        changed = true;  // a merged transition disappears
        continue;
      }
      t.code = neu;
      remapped.push_back(t);
      prev = neu;
    }
    if (changed) {
      SECXML_RETURN_NOT_OK(nok_->SetPageAcl(ordinal, first_code,
                                            std::move(remapped)));
    }
  }
  codebook_ = std::move(compacted);
  InvalidateVisibilityCache();
  return Status::OK();
}

Result<NodeId> SecureStore::InsertSubtree(NodeId parent, NodeId after,
                                          const Document& fragment,
                                          const DolLabeling& fragment_labeling) {
  if (fragment_labeling.num_nodes() != fragment.NumNodes()) {
    return Status::InvalidArgument(
        "fragment labeling does not match the fragment size");
  }
  if (fragment_labeling.codebook().num_subjects() != codebook_.num_subjects()) {
    return Status::InvalidArgument("fragment has a different subject set");
  }
  // A malformed labeling (no transition at node 0, descending nodes) would
  // otherwise make the CodeAt calls below misresolve codes.
  SECXML_RETURN_NOT_OK(fragment_labeling.CheckInvariants());
  // Re-intern the fragment's codes into this store's codebook once.
  std::unordered_map<AccessCodeId, uint32_t> mapped;
  auto code_of = [this, &fragment_labeling, &mapped](NodeId f) -> uint32_t {
    AccessCodeId frag_code = fragment_labeling.CodeAt(f);
    auto it = mapped.find(frag_code);
    if (it != mapped.end()) return it->second;
    uint32_t code = codebook_.Intern(fragment_labeling.codebook().Entry(frag_code));
    mapped.emplace(frag_code, code);
    return code;
  };
  InvalidateVisibilityCache();
  return nok_->InsertSubtree(parent, after, fragment, code_of);
}

Result<std::shared_ptr<const SubjectView>> SecureStore::View(
    SubjectId subject) {
  if (subject >= codebook_.num_subjects()) {
    return Status::InvalidArgument("no such subject");
  }
  // Held across the miss: concurrent first users of one subject serialize
  // briefly and share one snapshot. Compilation scans changed pages for
  // the check-free bits, taking only buffer-pool shard latches (and the
  // readahead queue mutex) below us — view_cache_mu_ stays above both in
  // the lock order.
  std::lock_guard<std::mutex> lock(view_cache_mu_);
  auto it = view_cache_.find(subject);
  if (it != view_cache_.end()) return it->second;
  auto view = std::make_shared<const SubjectView>(
      SubjectView::Compile(codebook_, nok_->page_infos(), subject,
                           nok_.get()));
  view_cache_.emplace(subject, view);
  return view;
}

Result<std::vector<NodeInterval>> SecureStore::HiddenSubtreeIntervals(
    SubjectId subject, ExecStats* stats) {
  if (subject >= codebook_.num_subjects()) {
    return Status::InvalidArgument("no such subject");
  }
  // The mutex is held across the miss computation: concurrent queries for
  // the same subject then compute the sweep once, and the only lock taken
  // underneath it is the buffer pool's shard latch (a leaf lock), so the
  // ordering stays acyclic.
  std::lock_guard<std::mutex> lock(hidden_cache_mu_);
  auto it = hidden_cache_.find(subject);
  if (it != hidden_cache_.end()) return it->second;
  SECXML_ASSIGN_OR_RETURN(std::vector<NodeInterval> hidden,
                          ComputeHiddenSubtreeIntervals(subject, stats));
  hidden_cache_.emplace(subject, hidden);
  return hidden;
}

Result<std::vector<NodeInterval>> SecureStore::ComputeHiddenSubtreeIntervals(
    SubjectId subject, ExecStats* stats) {
  // The compiled view answers both per-page verdicts and the inner
  // per-code test with one indexed load each. View() takes view_cache_mu_
  // underneath our caller's hidden_cache_mu_ — the fixed hidden->view
  // order also used by InvalidateVisibilityCache.
  SECXML_ASSIGN_OR_RETURN(std::shared_ptr<const SubjectView> view,
                          View(subject));
  std::vector<NodeInterval> hidden;
  NodeId blocked_end = 0;  // exclusive end of the current hidden interval

  // Page-scoped iteration through the exec layer: the sweep visits pages
  // in document order and (mostly) fetches those the view cannot prove
  // wholly live, so stream those in ahead of the cursor. Wholly-live pages
  // are only ever fetched when a hidden subtree spills into them — rare
  // enough that missing the prefetch there just costs a synchronous read.
  // The sweep's destructor drains every in-flight fetch before we return,
  // so no background read outlives the sweep (the no-overlap-with-
  // exclusive-updates contract).
  ExecStats local;
  if (stats == nullptr) stats = &local;
  PageSweep sweep(
      nok_.get(),
      [&view](size_t ord) { return view->PageCheckFree(ord); }, stats);

  for (size_t ordinal = 0; ordinal < nok_->num_pages(); ++ordinal) {
    const NokStore::PageInfo& info = nok_->page_infos()[ordinal];
    NodeId page_begin = info.first_node;
    NodeId page_end = info.first_node + info.num_records;
    // Page skip from the compiled view: a page whose every node is
    // accessible (check-free covers changed pages whose transitions are
    // all live for this subject, which the header alone cannot prove)
    // beyond any hidden subtree cannot start a new hidden interval. Not
    // counted as pages_skipped — that counter belongs to the matcher's
    // cursor (see HiddenSubtreeIntervals).
    if (view->PageCheckFree(ordinal) && page_begin >= blocked_end) {
      continue;
    }
    // A uniformly *inaccessible* page fully covered by the current hidden
    // interval also needs no inspection.
    if (page_end <= blocked_end) continue;

    sweep.PrefetchFrom(ordinal);
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, sweep.Fetch(ordinal));
    NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
    SECXML_RETURN_NOT_OK(CheckOnDiskHeader(header, info.page_id));
    // The walker must see every slot (codes resolve from the run in
    // effect), so slots inside an already-hidden subtree still advance it
    // — they are just not probed or counted.
    PageCodeWalker walker(handle.page(), header);
    for (uint32_t slot = 0; slot < header.num_records; ++slot) {
      uint32_t code = walker.CodeFor(slot);
      NodeId n = page_begin + slot;
      if (n < blocked_end) continue;  // inside an already-hidden subtree
      ++stats->nodes_scanned;
      ++stats->codes_checked;
      if (view->CodeAccessible(code)) continue;
      NokRecord rec = walker.RecordAt(slot);
      NodeId subtree_end = n + rec.subtree_size;
      if (!hidden.empty() && hidden.back().end == n) {
        hidden.back().end = subtree_end;  // adjacent subtrees merge
      } else {
        hidden.push_back({n, subtree_end});
      }
      blocked_end = subtree_end;
    }
  }
  return hidden;
}

Result<DolLabeling> SecureStore::ExtractLabeling() {
  // Reconstruct per-node codes from the pages, then rebuild a labeling via
  // a map adapter so invariants (normalization) are re-established.
  class CodeMap final : public AccessibilityMap {
   public:
    CodeMap(const Codebook* cb, std::vector<AccessCodeId> codes)
        : cb_(cb), codes_(std::move(codes)) {}
    size_t num_subjects() const override { return cb_->num_subjects(); }
    NodeId num_nodes() const override {
      return static_cast<NodeId>(codes_.size());
    }
    bool Accessible(SubjectId s, NodeId n) const override {
      return cb_->Accessible(codes_[n], s);
    }
    void AclFor(NodeId n, BitVector* out) const override {
      *out = cb_->Entry(codes_[n]);
    }

   private:
    const Codebook* cb_;
    std::vector<AccessCodeId> codes_;
  };

  std::vector<AccessCodeId> codes(nok_->num_nodes());
  for (size_t ordinal = 0; ordinal < nok_->num_pages(); ++ordinal) {
    const NokStore::PageInfo& info = nok_->page_infos()[ordinal];
    SECXML_ASSIGN_OR_RETURN(std::vector<DolTransition> ts,
                            nok_->PageTransitions(ordinal));
    uint32_t code = info.first_code;
    size_t next = 0;
    for (uint16_t slot = 0; slot < info.num_records; ++slot) {
      if (next < ts.size() && ts[next].slot == slot) {
        code = ts[next].code;
        ++next;
      }
      codes[info.first_node + slot] = code;
    }
  }
  return DolLabeling::Build(CodeMap(&codebook_, std::move(codes)));
}

}  // namespace secxml
