#ifndef SECXML_CORE_SECURE_STORE_H_
#define SECXML_CORE_SECURE_STORE_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/accessibility_map.h"
#include "core/codebook.h"
#include "core/dol_labeling.h"
#include "core/subject_view.h"
#include "exec/exec_stats.h"
#include "nok/nok_store.h"

namespace secxml {

/// A secured XML store: NoK block storage of the document structure with the
/// DOL physically embedded (paper Section 3), plus the in-memory codebook.
/// This is the object the secure query processor runs against.
///
/// Thread safety: the query-time read path — Accessible,
/// PageWhollyInaccessible, PageWhollyAccessible, HiddenSubtreeIntervals,
/// codebook(), and everything NokStore documents as read-safe — may be
/// called from many threads concurrently (this is what QueryDriver does:
/// one shared SecureStore, many subjects). The codebook is immutable during
/// reads and Codebook::Accessible is const; HiddenSubtreeIntervals guards
/// its per-subject cache with an internal mutex. Updates (SetNodeAccess,
/// SetSubtreeAccess, SetRangeAccess, DeleteSubtree, InsertSubtree,
/// Add/RemoveSubject, CompactCodebook, Persist) require exclusive access.
class SecureStore {
 public:
  /// Builds the physical store from a document and its logical DOL in one
  /// document-order pass (structure and access codes are laid out together,
  /// Section 3.2). The labeling's codebook is copied in.
  static Status Build(const Document& doc, const DolLabeling& labeling,
                      PagedFile* file, const NokStoreOptions& options,
                      std::unique_ptr<SecureStore>* out);

  /// Reopens a store previously saved with Persist() (structure, embedded
  /// codes, and codebook all restored).
  static Status Open(PagedFile* file, const NokStoreOptions& options,
                     std::unique_ptr<SecureStore>* out);

  /// Persists the store: NoK snapshot plus the codebook (kept in the
  /// snapshot's user blob).
  Status Persist() { return nok_->Persist(codebook_.Serialize()); }

  SecureStore(const SecureStore&) = delete;
  SecureStore& operator=(const SecureStore&) = delete;

  NokStore* nok() { return nok_.get(); }
  const Codebook& codebook() const { return codebook_; }

  NodeId num_nodes() const { return nok_->num_nodes(); }

  /// Accessibility check for one node (Section 3.3). Costs at most one
  /// buffer-pool fetch of the node's own page, and zero I/O when the page's
  /// change bit is clear (answered from the in-memory header table).
  /// Safe for concurrent callers.
  Result<bool> Accessible(SubjectId subject, NodeId node);

  /// True if, judging from the in-memory page header alone, every node in
  /// the page is inaccessible to `subject` — the page-skipping test of
  /// Section 3.3. Never performs I/O; false means "must look inside".
  /// Classification is shared with the compiled SubjectView verdict table
  /// (SubjectView::ClassifyPage), so the two paths agree by construction.
  bool PageWhollyInaccessible(size_t page_ordinal, SubjectId subject) const {
    const NokStore::PageInfo& info = nok_->page_infos()[page_ordinal];
    return SubjectView::ClassifyPage(
               info, codebook_.Accessible(info.first_code, subject)) ==
           SubjectView::PageVerdict::kDead;
  }

  /// Likewise, true if the header alone proves every node accessible.
  bool PageWhollyAccessible(size_t page_ordinal, SubjectId subject) const {
    const NokStore::PageInfo& info = nok_->page_infos()[page_ordinal];
    return SubjectView::ClassifyPage(
               info, codebook_.Accessible(info.first_code, subject)) ==
           SubjectView::PageVerdict::kLive;
  }

  // --- Updates (paper Section 3.4) -------------------------------------

  /// Sets `subject`'s accessibility for a single node. Touches only the
  /// node's page (read + write).
  Status SetNodeAccess(NodeId node, SubjectId subject, bool accessible) {
    return SetRangeAccess(node, node + 1, subject, accessible);
  }

  /// Sets `subject`'s accessibility for the whole subtree rooted at `root`.
  /// Touches the ceil(N/B) consecutive pages covering the subtree.
  Status SetSubtreeAccess(NodeId root, SubjectId subject, bool accessible);

  /// Range form over document-order interval [begin, end).
  Status SetRangeAccess(NodeId begin, NodeId end, SubjectId subject,
                        bool accessible);

  /// Structural deletion (Section 3.4): removes the subtree rooted at
  /// `root` together with its embedded labels; later nodes renumber
  /// implicitly and keep their access codes.
  Status DeleteSubtree(NodeId root) {
    InvalidateVisibilityCache();
    return nok_->DeleteSubtree(root);
  }

  /// Structural insertion (Section 3.4): splices `fragment` (whose nodes
  /// already carry access controls via `fragment_labeling`, over the same
  /// subject set) in as a child of `parent` after child `after`
  /// (kInvalidNode = first child). Fragment ACLs are interned into this
  /// store's codebook. Returns the fragment root's new document id.
  Result<NodeId> InsertSubtree(NodeId parent, NodeId after,
                               const Document& fragment,
                               const DolLabeling& fragment_labeling);

  /// Adds a subject with uniform `default_access`; codebook-only (no page
  /// I/O), per Section 3.4.
  SubjectId AddSubject(bool default_access) {
    return codebook_.AddSubject(default_access);
  }

  /// Adds a subject whose rights mirror an existing subject's; codebook-only.
  /// Fails with InvalidArgument if `like` does not exist.
  Result<SubjectId> AddSubjectLike(SubjectId like) {
    return codebook_.AddSubjectLike(like);
  }

  /// Removes a subject; codebook-only. Embedded codes stay valid; duplicate
  /// codebook entries are tolerated and cleaned lazily.
  Status RemoveSubject(SubjectId subject) {
    // Remaining subjects renumber, so cached per-subject intervals would be
    // misattributed.
    InvalidateVisibilityCache();
    return codebook_.RemoveSubject(subject);
  }

  /// The lazy maintenance pass of Section 3.4: deduplicates the codebook
  /// (duplicates accumulate after subject removals) and rewrites every
  /// page's embedded codes through the remapping, merging transitions that
  /// became redundant. One sequential pass; pages whose codes are already
  /// canonical and merged are left untouched.
  Status CompactCodebook();

  // --- Support for the stricter view semantics (Section 4.2) -----------

  /// Computes the maximal document-order intervals hidden from `subject`
  /// under the Gabillon-Bruno semantics (a non-accessible node hides its
  /// entire subtree). One sequential pass; every page is loaded at most
  /// once, and pages whose in-memory header proves them wholly accessible
  /// and not under a hidden subtree are not loaded at all.
  ///
  /// Results are cached per subject and invalidated by any accessibility or
  /// structural update, so repeated view-semantics queries by one subject
  /// pay the sweep once. Safe for concurrent callers: the cache is guarded
  /// by an internal mutex (held across a miss's sweep, so concurrent
  /// view-semantics queries serialize on the first computation).
  ///
  /// With a non-null `stats`, a cache miss's sweep counts its work there
  /// (nodes_scanned per probed slot, codes_checked per ACCESS probe,
  /// fetch_waits and pages_prefetched for its page I/O); a cache hit counts
  /// nothing. The sweep never counts pages_skipped: skipped-page accounting
  /// belongs to the matcher's cursor, keeping EvalResult.exec.pages_skipped
  /// equal to the IoStats::pages_skipped delta of the evaluation.
  Result<std::vector<NodeInterval>> HiddenSubtreeIntervals(
      SubjectId subject, ExecStats* stats = nullptr);

  /// The compiled access view for `subject` (flat code->accessible table,
  /// per-page verdicts, dead-run skip index — see SubjectView). Compiled on
  /// first use and cached; every accessibility, structural, or subject
  /// update drops the cache, so a later call recompiles against the new
  /// state. Safe for concurrent callers: the cache is guarded by an
  /// internal mutex (held across a miss's compilation, which performs no
  /// I/O), and the returned shared_ptr keeps the snapshot alive for the
  /// caller even after invalidation.
  Result<std::shared_ptr<const SubjectView>> View(SubjectId subject);

  /// Drops the cached hidden intervals and compiled views, as any update
  /// would. Benchmarks and tests use this to measure cold recomputation.
  void DropVisibilityCaches() { InvalidateVisibilityCache(); }

  /// Rebuilds the logical DolLabeling from the physical pages (for tests
  /// and for re-deriving statistics after updates).
  Result<DolLabeling> ExtractLabeling();

  const IoStats& io_stats() const { return nok_->io_stats(); }

 private:
  SecureStore(std::unique_ptr<NokStore> nok, Codebook codebook)
      : nok_(std::move(nok)), codebook_(std::move(codebook)) {}

  /// Computes hidden intervals without consulting the cache, counting the
  /// sweep's work into `stats` when non-null.
  Result<std::vector<NodeInterval>> ComputeHiddenSubtreeIntervals(
      SubjectId subject, ExecStats* stats);

  /// Drops everything derived from the current accessibility state: the
  /// per-subject hidden intervals and the compiled SubjectViews. Lock order
  /// is hidden_cache_mu_ before view_cache_mu_, matching the miss path of
  /// HiddenSubtreeIntervals (which compiles a view while holding the hidden
  /// cache mutex).
  void InvalidateVisibilityCache() {
    std::lock_guard<std::mutex> hidden_lock(hidden_cache_mu_);
    std::lock_guard<std::mutex> view_lock(view_cache_mu_);
    hidden_cache_.clear();
    view_cache_.clear();
  }

  std::unique_ptr<NokStore> nok_;
  Codebook codebook_;
  std::mutex hidden_cache_mu_;
  std::unordered_map<SubjectId, std::vector<NodeInterval>> hidden_cache_;
  std::mutex view_cache_mu_;
  std::unordered_map<SubjectId, std::shared_ptr<const SubjectView>>
      view_cache_;
};

}  // namespace secxml

#endif  // SECXML_CORE_SECURE_STORE_H_
