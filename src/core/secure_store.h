#ifndef SECXML_CORE_SECURE_STORE_H_
#define SECXML_CORE_SECURE_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/accessibility_map.h"
#include "core/codebook.h"
#include "core/dol_labeling.h"
#include "core/epoch.h"
#include "core/subject_view.h"
#include "exec/exec_stats.h"
#include "nok/nok_store.h"
#include "storage/wal.h"

namespace secxml {

/// A secured XML store: NoK block storage of the document structure with the
/// DOL physically embedded (paper Section 3), plus the in-memory codebook.
/// This is the object the secure query processor runs against.
///
/// Thread safety (DESIGN.md §11): the store is an epoch-versioned snapshot
/// machine. Every committed update publishes a new immutable snapshot
/// (codebook + NokStore state + visibility caches) and advances the epoch;
/// a query takes a SnapshotPin and evaluates entirely against the snapshot
/// that was current when the pin was taken, so one writer may run
/// concurrently with any number of query threads and no query ever observes
/// a half-applied update. Updates themselves (SetNodeAccess,
/// SetSubtreeAccess, SetRangeAccess, DeleteSubtree, InsertSubtree,
/// Add/RemoveSubject, CompactCodebook) are serialized on an internal writer
/// mutex and are atomic: they either commit completely or leave the store
/// unchanged (fail-closed).
///
/// Durability: with an attached write-ahead log (BuildWithWal/OpenWithWal)
/// every update is appended and synced to the log *before* it is published
/// to readers, so a crash at any point either recovers the update completely
/// or not at all. Checkpoint() persists the current snapshot and truncates
/// the log; OpenWithWal() recovers the last checkpoint (scanning backward
/// for the superblock — shadow paging keeps it intact) and replays the
/// log's tail.
class SecureStore {
 public:
  /// WAL record types (logical redo records; replay re-executes the same
  /// update code that originally ran).
  enum WalRecordType : uint32_t {
    kWalSetRangeAccess = 1,
    kWalAddSubject = 2,
    kWalAddSubjectLike = 3,
    kWalRemoveSubject = 4,
    kWalDeleteSubtree = 5,
    kWalInsertSubtree = 6,
    kWalCompactCodebook = 7,
    kWalVacuum = 8,
  };

  /// What OpenWithWal() did to bring the store back.
  struct RecoveryStats {
    uint64_t checkpoint_lsn = 0;    ///< LSN recorded by the last checkpoint
    uint64_t records_in_log = 0;    ///< valid records the WAL scan found
    uint64_t records_replayed = 0;  ///< records with lsn > checkpoint_lsn
    uint64_t torn_tail = 0;         ///< 1 if the WAL dropped a torn tail
  };

  /// One committed update, as seen by external epoch-keyed caches (the
  /// cross-request ResultCache — DESIGN.md §14). Fired through AddCommitHook
  /// for every live commit, WAL replay, and replicated apply, classifying
  /// the update by what a cache keyed on (column fingerprint, query) must
  /// do about it.
  struct CommitEvent {
    enum class Kind : uint8_t {
      /// Accessibility changed over document-order range [begin, end);
      /// entries whose answer could depend on that range are stale.
      kAclPatch,
      /// A subject column was appended. Existing columns' content — and
      /// therefore their fingerprints and every answer keyed on them — is
      /// unchanged; caches need do nothing.
      kSubjectAdded,
      /// Structure changed (insert/delete/vacuum): node ids renumber, so
      /// every cached answer set is suspect.
      kStructural,
      /// Codes or subjects renumbered (remove subject, compact codebook):
      /// column fingerprints themselves shift; flush everything.
      kShapeChange,
    };
    Kind kind = Kind::kShapeChange;
    NodeId begin = 0;  ///< kAclPatch only: affected range, document order
    NodeId end = 0;
    EpochManager::Epoch epoch = 0;  ///< the epoch this commit published
  };

  /// Registers a commit hook. Hooks fire on every commit *while the
  /// snapshot-publication lock is held*, after the epoch advances and the
  /// internal caches are maintained but before any new SnapshotPin can
  /// observe the new epoch — so a hook that invalidates an external cache
  /// closes the stale window airtight. Hooks must be fast, must not throw,
  /// and must not call back into this store. Hooks are never removed; the
  /// callee must outlive the store.
  void AddCommitHook(std::function<void(const CommitEvent&)> hook);

  /// Content fingerprint of `subject`'s codebook column under the calling
  /// thread's snapshot (see ColumnFingerprint) — the class half of a
  /// cross-request cache key. Served from the epoch-stamped column cache
  /// when current; fails closed to the all-denied column's fingerprint for
  /// an unknown subject, exactly like Codebook::Column.
  ColumnFingerprint SubjectColumnFingerprint(SubjectId subject);

  /// Update-path counters (all monotonically increasing; readable from any
  /// thread while updates run).
  struct UpdateStats {
    uint64_t updates_applied = 0;   ///< committed updates (live, not replay)
    uint64_t updates_replayed = 0;  ///< updates re-executed from the WAL
    uint64_t epochs_advanced = 0;
    uint64_t views_patched = 0;     ///< cached views maintained incrementally
    uint64_t views_dropped = 0;     ///< cached views discarded (recompile)
    uint64_t columns_patched = 0;   ///< cached codebook columns extended
    uint64_t checkpoints = 0;
  };

  /// RAII epoch pin: while alive, every read made *on this thread* against
  /// this store — codebook(), Accessible, page verdicts, View,
  /// HiddenSubtreeIntervals, GroupSubjects, and all NokStore reads — resolves
  /// against the snapshot that was committed when the pin was taken,
  /// regardless of concurrent update commits. Pins nest: an inner pin on the
  /// same store adopts the outer pin's epoch, so helper code can pin
  /// defensively without ever straddling two snapshots. Queries take one pin
  /// for their whole evaluation (QueryEvaluator/BatchEvaluator do this).
  class SnapshotPin {
   public:
    explicit SnapshotPin(SecureStore* store);
    ~SnapshotPin();
    SnapshotPin(const SnapshotPin&) = delete;
    SnapshotPin& operator=(const SnapshotPin&) = delete;

    EpochManager::Epoch epoch() const { return epoch_; }

   private:
    friend class SecureStore;
    SecureStore* store_;
    EpochManager::Epoch epoch_ = 0;
    std::shared_ptr<const Codebook> codebook_;
    std::optional<NokStore::ReadPin> nok_pin_;
    SnapshotPin* next_ = nullptr;  ///< previous head of the thread's chain
  };

  /// Builds the physical store from a document and its logical DOL in one
  /// document-order pass (structure and access codes are laid out together,
  /// Section 3.2). The labeling's codebook is copied in.
  static Status Build(const Document& doc, const DolLabeling& labeling,
                      PagedFile* file, const NokStoreOptions& options,
                      std::unique_ptr<SecureStore>* out);

  /// Reopens a store previously saved with Persist() (structure, embedded
  /// codes, and codebook all restored). No write-ahead log is attached.
  static Status Open(PagedFile* file, const NokStoreOptions& options,
                     std::unique_ptr<SecureStore>* out);

  /// Build() plus an attached write-ahead log on `wal_file`, sealed with an
  /// initial checkpoint, so every later update is crash-recoverable.
  static Status BuildWithWal(const Document& doc, const DolLabeling& labeling,
                             PagedFile* data_file, PagedFile* wal_file,
                             const NokStoreOptions& options,
                             std::unique_ptr<SecureStore>* out);

  /// Crash-recovering open: restores the most recent durable checkpoint from
  /// `data_file` (backward superblock scan; shadow paging guarantees the
  /// checkpoint's pages are intact even when later update pages landed after
  /// it), then replays every WAL record past the checkpoint's LSN. Updates
  /// that never reached the log (crash before the append synced) are rolled
  /// back by omission — exactly the fail-closed contract of the update path.
  /// With `replay_log` false the checkpoint is restored and the WAL opened
  /// (records scanned into memory) but nothing is replayed — the sharded
  /// coordinator recovers this way on every shard, then replays the merged,
  /// LSN-ordered record stream of ALL shard logs through ApplyReplicated so
  /// cross-shard update ordering survives recovery (DESIGN.md §13).
  static Status OpenWithWal(PagedFile* data_file, PagedFile* wal_file,
                            const NokStoreOptions& options,
                            std::unique_ptr<SecureStore>* out,
                            RecoveryStats* recovery = nullptr,
                            bool replay_log = true);

  /// Persists the current snapshot: NoK superblock plus a checkpoint blob
  /// (codebook + the LSN of the last applied update) in the superblock's
  /// user area. Requires no update in flight; queries may continue.
  Status Persist();

  /// Persist() followed by WAL truncation: the log's records are now
  /// redundant with the durable checkpoint. A crash between the two steps is
  /// safe — replay skips records at or below the checkpoint LSN.
  Status Checkpoint();

  /// Truncates the attached WAL without persisting first — the second phase
  /// of the sharded coordinator's two-phase checkpoint (every shard is
  /// Persist()ed before ANY shard's log drops a record, because a record
  /// owned by this shard's log may still be the only durable copy of an
  /// update the other replicas need — DESIGN.md §13). No-op without a WAL.
  /// Single-store callers should use Checkpoint() instead.
  Status TruncateWal();

  // --- Replication hooks (sharded serving, src/serve) -------------------

  /// Re-executes one WAL record that another replica of this store logged
  /// (the owning shard appends, every peer applies). The record is not
  /// re-logged here; the update publishes a new snapshot and advances the
  /// epoch exactly as a live update does, and applied_lsn() lands on
  /// record.lsn. Replicas stay byte-identical because every update body is
  /// deterministic. The caller must serialize this with all other mutators
  /// across the replica set (the coordinator's update fence does).
  Status ApplyReplicated(const WriteAheadLog::Record& record);

  /// Raises the attached WAL's next LSN to `lsn` so the coordinator can
  /// keep one global LSN order across many shard logs. No-op without a WAL.
  Status AlignWalLsn(uint64_t lsn);

  SecureStore(const SecureStore&) = delete;
  SecureStore& operator=(const SecureStore&) = delete;
  ~SecureStore();

  NokStore* nok() { return nok_.get(); }

  /// The codebook of the calling thread's snapshot: the pinned epoch's
  /// codebook under a SnapshotPin, the staged working copy on the writer
  /// thread mid-update, else the latest committed one. The reference is
  /// valid for the pin's lifetime (pinned) or until the next commit
  /// (unpinned — the historical single-threaded contract).
  const Codebook& codebook() const;

  NodeId num_nodes() const { return nok_->num_nodes(); }

  /// Accessibility check for one node (Section 3.3). Costs at most one
  /// buffer-pool fetch of the node's own page, and zero I/O when the page's
  /// change bit is clear (answered from the in-memory header table).
  /// Safe for concurrent callers.
  Result<bool> Accessible(SubjectId subject, NodeId node);

  /// True if, judging from the in-memory page header alone, every node in
  /// the page is inaccessible to `subject` — the page-skipping test of
  /// Section 3.3. Never performs I/O; false means "must look inside".
  /// Classification is shared with the compiled SubjectView verdict table
  /// (SubjectView::ClassifyPage), so the two paths agree by construction.
  bool PageWhollyInaccessible(size_t page_ordinal, SubjectId subject) const {
    const NokStore::PageInfo& info = nok_->page_infos()[page_ordinal];
    return SubjectView::ClassifyPage(
               info, codebook().Accessible(info.first_code, subject)) ==
           SubjectView::PageVerdict::kDead;
  }

  /// Likewise, true if the header alone proves every node accessible.
  bool PageWhollyAccessible(size_t page_ordinal, SubjectId subject) const {
    const NokStore::PageInfo& info = nok_->page_infos()[page_ordinal];
    return SubjectView::ClassifyPage(
               info, codebook().Accessible(info.first_code, subject)) ==
           SubjectView::PageVerdict::kLive;
  }

  // --- Updates (paper Section 3.4) -------------------------------------
  //
  // Every mutator is one atomic transaction: it stages against private
  // copies (shadow-paged pages, a working codebook), appends one WAL record
  // (when a log is attached), and only then publishes the new snapshot and
  // advances the epoch. Any failure — staging error, WAL append error —
  // aborts the whole update and leaves the committed snapshot untouched.
  // Cached SubjectViews and codebook columns are maintained *incrementally*
  // at commit from the update's page delta (Proposition 1 keeps the delta
  // small); only subject removal and codebook compaction, which renumber
  // codes or subjects, drop caches for recompilation.

  /// Sets `subject`'s accessibility for a single node. Touches only the
  /// node's page (read + write).
  Status SetNodeAccess(NodeId node, SubjectId subject, bool accessible) {
    return SetRangeAccess(node, node + 1, subject, accessible);
  }

  /// Sets `subject`'s accessibility for the whole subtree rooted at `root`.
  /// Touches the ceil(N/B) consecutive pages covering the subtree.
  Status SetSubtreeAccess(NodeId root, SubjectId subject, bool accessible);

  /// Range form over document-order interval [begin, end).
  Status SetRangeAccess(NodeId begin, NodeId end, SubjectId subject,
                        bool accessible);

  /// Structural deletion (Section 3.4): removes the subtree rooted at
  /// `root` together with its embedded labels; later nodes renumber
  /// implicitly and keep their access codes.
  Status DeleteSubtree(NodeId root);

  /// Structural insertion (Section 3.4): splices `fragment` (whose nodes
  /// already carry access controls via `fragment_labeling`, over the same
  /// subject set) in as a child of `parent` after child `after`
  /// (kInvalidNode = first child). Fragment ACLs are interned into this
  /// store's codebook. Returns the fragment root's new document id.
  Result<NodeId> InsertSubtree(NodeId parent, NodeId after,
                               const Document& fragment,
                               const DolLabeling& fragment_labeling);

  /// Adds a subject with uniform `default_access`; codebook-only (no page
  /// I/O), per Section 3.4. Fails only when the WAL append fails (the
  /// update is then not applied).
  Result<SubjectId> AddSubject(bool default_access);

  /// Adds a subject whose rights mirror an existing subject's; codebook-only.
  /// Fails with InvalidArgument if `like` does not exist.
  Result<SubjectId> AddSubjectLike(SubjectId like);

  /// Removes a subject; codebook-only. Embedded codes stay valid; duplicate
  /// codebook entries are tolerated and cleaned lazily.
  Status RemoveSubject(SubjectId subject);

  /// The lazy maintenance pass of Section 3.4: deduplicates the codebook
  /// (duplicates accumulate after subject removals) and rewrites every
  /// page's embedded codes through the remapping, merging transitions that
  /// became redundant. One sequential pass; pages whose codes are already
  /// canonical and merged are left untouched. Runs as one update
  /// transaction: concurrent pinned queries keep reading the pre-compaction
  /// snapshot until it commits.
  Status CompactCodebook();

  /// Offline visibility-clustered reorganization, the "secure VACUUM"
  /// (DESIGN.md §12). Re-cuts page boundaries at access-code run
  /// boundaries (document order and node ids untouched) so pages become
  /// code-homogeneous wherever runs reach min_run_records — per-class page
  /// verdicts turn decisive and batch page skipping fires for mixed
  /// batches. Runs as one WAL-logged update transaction (kWalVacuum;
  /// replay re-runs the deterministic planner), followed by a checkpoint
  /// by default so the wholesale page rewrite does not linger in the log.
  /// Answers are byte-identical before and after: codes, node ids, and
  /// document order are all preserved.
  struct VacuumOptions {
    /// Passed to the layout planner: a page is cut at a code-run boundary
    /// only once it holds this many records (see VacuumPlanOptions).
    uint32_t min_run_records = 16;
    /// Checkpoint (persist + WAL truncate) after the reorganization.
    bool checkpoint_after = true;
  };
  struct VacuumStats {
    size_t pages_before = 0;
    size_t pages_after = 0;
    size_t homogeneous_pages_before = 0;
    size_t homogeneous_pages_after = 0;
    size_t transitions_after = 0;
  };
  Status Vacuum(const VacuumOptions& options, VacuumStats* stats = nullptr);

  // --- Support for the stricter view semantics (Section 4.2) -----------

  /// Computes the maximal document-order intervals hidden from `subject`
  /// under the Gabillon-Bruno semantics (a non-accessible node hides its
  /// entire subtree). One sequential pass; every page is loaded at most
  /// once, and pages whose in-memory header proves them wholly accessible
  /// and not under a hidden subtree are not loaded at all.
  ///
  /// Results are cached per subject for the current epoch; any
  /// accessibility or structural update moves the cache to the new epoch
  /// (dropping entries the update could have changed), so repeated
  /// view-semantics queries by one subject pay the sweep once per epoch.
  /// Safe for concurrent callers; a pinned caller at an older epoch
  /// computes from its snapshot without polluting the cache.
  ///
  /// With a non-null `stats`, a cache miss's sweep counts its work there
  /// (nodes_scanned per probed slot, codes_checked per ACCESS probe,
  /// fetch_waits and pages_prefetched for its page I/O); a cache hit counts
  /// nothing. The sweep never counts pages_skipped: skipped-page accounting
  /// belongs to the matcher's cursor, keeping EvalResult.exec.pages_skipped
  /// equal to the IoStats::pages_skipped delta of the evaluation.
  Result<std::vector<NodeInterval>> HiddenSubtreeIntervals(
      SubjectId subject, ExecStats* stats = nullptr);

  /// The compiled access view for `subject` (flat code->accessible table,
  /// per-page verdicts, dead-run skip index — see SubjectView). Compiled on
  /// first use and cached per epoch. At commit, an update patches the
  /// cached views incrementally from its page delta (SubjectView::Patched)
  /// instead of dropping them, so the next query pays O(delta) maintenance,
  /// not a recompile; a view compiled for one epoch is never served at
  /// another. Safe for concurrent callers; the returned shared_ptr keeps
  /// the snapshot alive for the caller across later commits.
  Result<std::shared_ptr<const SubjectView>> View(SubjectId subject);

  /// Partitions `subjects` into visibility equivalence classes (equal
  /// codebook columns — see GroupSubjectsByColumn), serving columns from an
  /// epoch-stamped cache that updates patch incrementally (ACL updates only
  /// append codebook entries, so a cached column is extended, not
  /// recomputed). The batch evaluator's entry point.
  std::vector<SubjectClass> GroupSubjects(
      const std::vector<SubjectId>& subjects);

  /// Drops the cached hidden intervals, compiled views, and codebook
  /// columns. Benchmarks and tests use this to measure cold recomputation.
  void DropVisibilityCaches();

  /// Rebuilds the logical DolLabeling from the physical pages (for tests
  /// and for re-deriving statistics after updates).
  Result<DolLabeling> ExtractLabeling();

  const IoStats& io_stats() const { return nok_->io_stats(); }

  /// The epoch manager (pin accounting; tests assert zero leaked pins).
  EpochManager* epochs() { return &epochs_; }

  /// The attached write-ahead log, or nullptr when none.
  const WriteAheadLog* wal() const { return wal_.get(); }

  /// LSN of the last update applied to the in-memory state (0 = none /
  /// checkpoint only).
  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_relaxed);
  }

  UpdateStats update_stats() const;

 private:
  /// How a committed update affects the epoch-stamped visibility caches.
  enum class CacheEffect {
    /// Pages and/or codebook entries changed; patch views and columns from
    /// the delta, drop hidden intervals.
    kPatch,
    /// A subject column was appended; existing subjects' views, columns,
    /// and hidden intervals all stay valid — restamp only.
    kSubjectAdded,
    /// Codes or subjects renumbered; everything recompiles lazily.
    kDropAll,
  };

  SecureStore(std::unique_ptr<NokStore> nok, Codebook codebook);

  /// The calling thread's pinned epoch for this store, or 0 when unpinned.
  EpochManager::Epoch PinnedEpoch() const;

  /// Opens the staged side of an update: a NokStore transaction plus a
  /// private working codebook (codebook() resolves to it on this thread).
  Status BeginStaged();
  /// Discards the staged side; the committed snapshot never changed.
  void AbortStaged();
  /// Seals an update: appends its WAL record (unless replaying), publishes
  /// the staged NokStore state and codebook, advances the epoch, maintains
  /// the visibility caches per `effect`, fires the registered commit hooks
  /// with `event` (kind/range filled by the caller; epoch filled here), and
  /// retires the superseded codebook into the epoch manager.
  Status CommitStaged(uint32_t wal_type, const std::string& payload,
                      CacheEffect effect, CommitEvent event);

  /// Cache maintenance at commit; caller holds snapshot_mu_. `pages` is the
  /// just-committed page directory (passed in rather than re-read so a pin
  /// held by the calling thread cannot alias an older snapshot);
  /// `old_codebook_size` is the entry count before the update (cached
  /// columns are extended from there — ACL updates only append entries).
  void MaintainCaches(CacheEffect effect, const NokStore::UpdateDelta& delta,
                      const std::vector<NokStore::PageInfo>& pages,
                      const std::shared_ptr<const Codebook>& codebook,
                      EpochManager::Epoch new_epoch, size_t old_codebook_size);

  // Update bodies running under update_mu_ (shared by the public mutators
  // and WAL replay; replay passes through with recovering_ set so no new
  // records are logged).
  Status SetRangeAccessLocked(NodeId begin, NodeId end, SubjectId subject,
                              bool accessible);
  Status DeleteSubtreeLocked(NodeId root);
  Result<NodeId> InsertSubtreeLocked(NodeId parent, NodeId after,
                                     const Document& fragment,
                                     const DolLabeling& fragment_labeling);
  Result<SubjectId> AddSubjectLocked(bool default_access);
  Result<SubjectId> AddSubjectLikeLocked(SubjectId like);
  Status RemoveSubjectLocked(SubjectId subject);
  Status CompactCodebookLocked();

  /// The page-rewriting body of SetRangeAccess, already inside a staged
  /// transaction.
  Status SetRangeAccessStaged(NodeId begin, NodeId end, SubjectId subject,
                              bool accessible);

  /// Re-executes one WAL record through the update bodies above.
  Status ReplayRecord(const WriteAheadLog::Record& record);

  /// Persist body; caller holds update_mu_.
  Status PersistLocked();

  Status VacuumLocked(const VacuumOptions& options, VacuumStats* stats);

  /// Computes hidden intervals without consulting the cache, counting the
  /// sweep's work into `stats` when non-null.
  Result<std::vector<NodeInterval>> ComputeHiddenSubtreeIntervals(
      SubjectId subject, ExecStats* stats);

  std::unique_ptr<NokStore> nok_;
  std::unique_ptr<WriteAheadLog> wal_;
  EpochManager epochs_;

  /// Serializes all mutators, Persist, and Checkpoint (the single-writer
  /// contract). Never held by readers.
  std::mutex update_mu_;

  /// Guards snapshot publication against pin acquisition: a commit holds it
  /// while swapping in the new NokStore state, codebook, and epoch, so a
  /// pin taken concurrently sees either all of an update or none of it.
  /// Also guards commit_hooks_ (registration and firing).
  mutable std::mutex snapshot_mu_;
  std::vector<std::function<void(const CommitEvent&)>> commit_hooks_;
  std::shared_ptr<const Codebook> codebook_;
  /// Lock-free mirror of codebook_.get() for unpinned readers.
  std::atomic<const Codebook*> codebook_raw_{nullptr};

  /// Staged working codebook of the open update (writer thread only).
  std::unique_ptr<Codebook> wcodebook_;
  std::atomic<std::thread::id> writer_tid_{};

  /// True while OpenWithWal replays the log (suppresses re-logging).
  bool recovering_ = false;
  /// LSN of the record currently being replayed.
  uint64_t replay_lsn_ = 0;
  std::atomic<uint64_t> applied_lsn_{0};

  // Epoch-stamped visibility caches. Each cache's stamp names the epoch its
  // entries were computed (or patched) for; a lookup only hits when the
  // caller's epoch equals the stamp, so a view compiled for one epoch is
  // never served at another. Lock order: hidden before view before column
  // (MaintainCaches and the hidden-miss path, which compiles a view while
  // holding the hidden mutex).
  std::mutex hidden_cache_mu_;
  EpochManager::Epoch hidden_cache_epoch_ = 1;
  std::unordered_map<SubjectId, std::vector<NodeInterval>> hidden_cache_;
  std::mutex view_cache_mu_;
  EpochManager::Epoch view_cache_epoch_ = 1;
  std::unordered_map<SubjectId, std::shared_ptr<const SubjectView>>
      view_cache_;
  std::mutex column_cache_mu_;
  EpochManager::Epoch column_cache_epoch_ = 1;
  std::unordered_map<SubjectId, BitVector> column_cache_;

  struct Counters {
    std::atomic<uint64_t> updates_applied{0};
    std::atomic<uint64_t> updates_replayed{0};
    std::atomic<uint64_t> epochs_advanced{0};
    std::atomic<uint64_t> views_patched{0};
    std::atomic<uint64_t> views_dropped{0};
    std::atomic<uint64_t> columns_patched{0};
    std::atomic<uint64_t> checkpoints{0};
  };
  Counters counters_;
};

}  // namespace secxml

#endif  // SECXML_CORE_SECURE_STORE_H_
