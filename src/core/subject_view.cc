#include "core/subject_view.h"

#include "exec/secure_cursor.h"

namespace secxml {

SubjectView SubjectView::Compile(const Codebook& codebook,
                                 const std::vector<NokStore::PageInfo>& pages,
                                 SubjectId subject, NokStore* nok) {
  SECXML_DCHECK(subject < codebook.num_subjects());
  SubjectView view;
  view.subject_ = subject;
  view.num_pages_ = pages.size();

  view.code_accessible_.resize(codebook.size());
  for (size_t code = 0; code < codebook.size(); ++code) {
    view.code_accessible_[code] =
        codebook.Accessible(static_cast<AccessCodeId>(code), subject) ? 1 : 0;
  }

  view.verdicts_.assign((pages.size() + 3) / 4, 0);
  for (size_t i = 0; i < pages.size(); ++i) {
    PageVerdict v =
        ClassifyPage(pages[i], view.code_accessible_[pages[i].first_code] != 0);
    view.verdicts_[i >> 2] |= static_cast<uint8_t>(static_cast<uint8_t>(v)
                                                   << ((i & 3) * 2));
  }

  view.next_live_.resize(pages.size());
  uint32_t next = static_cast<uint32_t>(pages.size());
  for (size_t i = pages.size(); i-- > 0;) {
    if (!view.PageWhollyDead(i)) next = static_cast<uint32_t>(i);
    view.next_live_[i] = next;
  }

  // Check-free bits. Header-provable wholly-live pages qualify outright;
  // changed pages qualify only if a scan of their transition list (one
  // page read, streamed through PageSweep's readahead when the store has
  // one) finds no inaccessible code. Scan failures just leave the bit
  // conservative.
  view.check_free_.assign((pages.size() + 7) / 8, 0);
  std::unique_ptr<PageSweep> sweep;
  if (nok != nullptr) {
    // Unchanged pages are decided from the header alone; only changed pages
    // are worth streaming in.
    sweep = std::make_unique<PageSweep>(
        nok, [&pages](size_t ord) { return !pages[ord].change_bit; },
        /*stats=*/nullptr);
  }
  for (size_t i = 0; i < pages.size(); ++i) {
    bool free = false;
    if (!pages[i].change_bit) {
      free = view.code_accessible_[pages[i].first_code] != 0;
    } else if (nok != nullptr &&
               view.code_accessible_[pages[i].first_code] != 0) {
      sweep->PrefetchFrom(i);
      Result<PageHandle> handle = sweep->Fetch(i);
      if (handle.ok()) {
        NokPageHeader header = handle->page().ReadAt<NokPageHeader>(0);
        if (CheckOnDiskHeader(header, pages[i].page_id).ok()) {
          PageCodeWalker walker(handle->page(), header);
          free = true;
          for (uint32_t t = 0; t < walker.num_transitions(); ++t) {
            if (view.code_accessible_[walker.TransitionAt(t).code] == 0) {
              free = false;
              break;
            }
          }
        }
      }
    }
    if (free) {
      view.check_free_[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
    }
  }
  return view;
}

}  // namespace secxml
