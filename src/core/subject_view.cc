#include "core/subject_view.h"

#include "exec/secure_cursor.h"

namespace secxml {

SubjectView SubjectView::Compile(const Codebook& codebook,
                                 const std::vector<NokStore::PageInfo>& pages,
                                 SubjectId subject, NokStore* nok) {
  SECXML_DCHECK(subject < codebook.num_subjects());
  SubjectView view;
  view.subject_ = subject;
  view.num_pages_ = pages.size();

  view.code_accessible_.resize(codebook.size());
  for (size_t code = 0; code < codebook.size(); ++code) {
    view.code_accessible_[code] =
        codebook.Accessible(static_cast<AccessCodeId>(code), subject) ? 1 : 0;
  }

  view.verdicts_.assign((pages.size() + 3) / 4, 0);
  for (size_t i = 0; i < pages.size(); ++i) {
    PageVerdict v =
        ClassifyPage(pages[i], view.code_accessible_[pages[i].first_code] != 0);
    view.verdicts_[i >> 2] |= static_cast<uint8_t>(static_cast<uint8_t>(v)
                                                   << ((i & 3) * 2));
  }

  view.next_live_.resize(pages.size());
  uint32_t next = static_cast<uint32_t>(pages.size());
  for (size_t i = pages.size(); i-- > 0;) {
    if (!view.PageWhollyDead(i)) next = static_cast<uint32_t>(i);
    view.next_live_[i] = next;
  }

  // Check-free bits. Header-provable wholly-live pages qualify outright;
  // changed pages qualify only if a scan of their transition list (one
  // page read, streamed through PageSweep's readahead when the store has
  // one) finds no inaccessible code. Scan failures just leave the bit
  // conservative.
  view.check_free_.assign((pages.size() + 7) / 8, 0);
  std::unique_ptr<PageSweep> sweep;
  if (nok != nullptr) {
    // Unchanged pages are decided from the header alone; only changed pages
    // are worth streaming in.
    sweep = std::make_unique<PageSweep>(
        nok, [&pages](size_t ord) { return !pages[ord].change_bit; },
        /*stats=*/nullptr);
  }
  for (size_t i = 0; i < pages.size(); ++i) {
    bool free = false;
    if (!pages[i].change_bit) {
      free = view.code_accessible_[pages[i].first_code] != 0;
    } else if (nok != nullptr &&
               view.code_accessible_[pages[i].first_code] != 0) {
      sweep->PrefetchFrom(i);
      Result<PageHandle> handle = sweep->Fetch(i);
      if (handle.ok()) {
        NokPageHeader header = handle->page().ReadAt<NokPageHeader>(0);
        if (CheckOnDiskHeader(header, pages[i].page_id).ok()) {
          PageCodeWalker walker(handle->page(), header);
          free = true;
          for (uint32_t t = 0; t < walker.num_transitions(); ++t) {
            if (view.code_accessible_[walker.TransitionAt(t).code] == 0) {
              free = false;
              break;
            }
          }
        }
      }
    }
    if (free) {
      view.check_free_[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
    }
  }
  return view;
}

SubjectView SubjectView::Patched(const SubjectView& old,
                                 const Codebook& codebook,
                                 const std::vector<NokStore::PageInfo>& pages,
                                 const NokStore::UpdateDelta& delta) {
  SECXML_DCHECK(old.subject_ < codebook.num_subjects());
  SubjectView view;
  view.subject_ = old.subject_;
  view.num_pages_ = pages.size();

  // ACL updates only append codebook entries; extend the byte table for the
  // new codes and keep the old prefix verbatim.
  view.code_accessible_ = old.code_accessible_;
  const size_t old_codes = view.code_accessible_.size();
  SECXML_DCHECK(old_codes <= codebook.size());
  view.code_accessible_.resize(codebook.size());
  for (size_t code = old_codes; code < codebook.size(); ++code) {
    view.code_accessible_[code] =
        codebook.Accessible(static_cast<AccessCodeId>(code), old.subject_)
            ? 1
            : 0;
  }

  view.verdicts_.assign((pages.size() + 3) / 4, 0);
  view.check_free_.assign((pages.size() + 7) / 8, 0);
  size_t fi = 0;  // cursor into delta.fresh (ordinal-ascending)
  for (size_t i = 0; i < pages.size(); ++i) {
    const int64_t old_ord =
        i < delta.old_ordinal_of.size() ? delta.old_ordinal_of[i] : -1;
    PageVerdict v;
    bool free;
    if (old_ord >= 0 && static_cast<size_t>(old_ord) < old.num_pages_) {
      // Untouched page: bytes identical, codes' accessibility unchanged.
      v = old.Verdict(static_cast<size_t>(old_ord));
      free = old.PageCheckFree(static_cast<size_t>(old_ord));
    } else {
      v = ClassifyPage(pages[i],
                       view.code_accessible_[pages[i].first_code] != 0);
      while (fi < delta.fresh.size() && delta.fresh[fi].ordinal < i) ++fi;
      if (fi < delta.fresh.size() && delta.fresh[fi].ordinal == i) {
        // The delta's run codes are exactly what Compile's check-free scan
        // would read off the page (first code, then each transition).
        free = true;
        for (uint32_t code : delta.fresh[fi].run_codes) {
          if (code >= view.code_accessible_.size() ||
              view.code_accessible_[code] == 0) {
            free = false;  // fail closed on any inaccessible / foreign code
            break;
          }
        }
      } else {
        // A fresh page without recorded runs should not happen; stay
        // conservative (forfeits the fast path, never lies).
        free = v == PageVerdict::kLive;
      }
    }
    view.verdicts_[i >> 2] |= static_cast<uint8_t>(static_cast<uint8_t>(v)
                                                   << ((i & 3) * 2));
    if (free) {
      view.check_free_[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
    }
  }

  view.next_live_.resize(pages.size());
  uint32_t next = static_cast<uint32_t>(pages.size());
  for (size_t i = pages.size(); i-- > 0;) {
    if (!view.PageWhollyDead(i)) next = static_cast<uint32_t>(i);
    view.next_live_[i] = next;
  }
  return view;
}

}  // namespace secxml
