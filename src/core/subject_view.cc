#include "core/subject_view.h"

#include "storage/readahead.h"

namespace secxml {

SubjectView SubjectView::Compile(const Codebook& codebook,
                                 const std::vector<NokStore::PageInfo>& pages,
                                 SubjectId subject, NokStore* nok) {
  SECXML_DCHECK(subject < codebook.num_subjects());
  SubjectView view;
  view.subject_ = subject;
  view.num_pages_ = pages.size();

  view.code_accessible_.resize(codebook.size());
  for (size_t code = 0; code < codebook.size(); ++code) {
    view.code_accessible_[code] =
        codebook.Accessible(static_cast<AccessCodeId>(code), subject) ? 1 : 0;
  }

  view.verdicts_.assign((pages.size() + 3) / 4, 0);
  for (size_t i = 0; i < pages.size(); ++i) {
    PageVerdict v;
    if (pages[i].change_bit) {
      v = PageVerdict::kMixed;
    } else if (view.code_accessible_[pages[i].first_code] != 0) {
      v = PageVerdict::kLive;
    } else {
      v = PageVerdict::kDead;
    }
    view.verdicts_[i >> 2] |= static_cast<uint8_t>(static_cast<uint8_t>(v)
                                                   << ((i & 3) * 2));
  }

  view.next_live_.resize(pages.size());
  uint32_t next = static_cast<uint32_t>(pages.size());
  for (size_t i = pages.size(); i-- > 0;) {
    if (!view.PageWhollyDead(i)) next = static_cast<uint32_t>(i);
    view.next_live_[i] = next;
  }

  // Check-free bits. Header-provable wholly-live pages qualify outright;
  // changed pages qualify only if a scan of their transition list (one
  // page read, prefetched when the store has readahead) finds no
  // inaccessible code. Scan failures just leave the bit conservative.
  view.check_free_.assign((pages.size() + 7) / 8, 0);
  Readahead* ra = nok != nullptr ? nok->readahead() : nullptr;
  size_t window = nok != nullptr ? nok->readahead_window() : 0;
  ReadaheadDrainGuard drain(ra);
  size_t prefetch_cursor = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    bool free = false;
    if (!pages[i].change_bit) {
      free = view.code_accessible_[pages[i].first_code] != 0;
    } else if (nok != nullptr &&
               view.code_accessible_[pages[i].first_code] != 0) {
      if (ra != nullptr && window > 0) {
        if (prefetch_cursor < i + 1) prefetch_cursor = i + 1;
        size_t issued = 0;
        while (issued < window && prefetch_cursor < pages.size()) {
          size_t ord = prefetch_cursor++;
          if (!pages[ord].change_bit) continue;
          ra->Request(pages[ord].page_id);
          ++issued;
        }
      }
      auto transitions = nok->PageTransitions(i);
      if (transitions.ok()) {
        free = true;
        for (const DolTransition& t : *transitions) {
          if (view.code_accessible_[t.code] == 0) {
            free = false;
            break;
          }
        }
      }
    }
    if (free) {
      view.check_free_[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
    }
  }
  return view;
}

}  // namespace secxml
