#ifndef SECXML_CORE_CODEBOOK_H_
#define SECXML_CORE_CODEBOOK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/dcheck.h"
#include "common/result.h"
#include "common/status.h"
#include "core/access_types.h"

namespace secxml {

/// The DOL codebook (paper Section 2.1): a dictionary of the distinct access
/// control lists occurring in a secured tree. Each entry is a bit vector with
/// one bit per subject; transition nodes embedded in the document store only
/// a small integer code referencing an entry here. The codebook lives in
/// memory during query processing (Section 3.2).
///
/// 128-bit content fingerprint of one subject's codebook column
/// (BitVector::Fingerprint128 of Codebook::Column). Two subjects with equal
/// columns — the visibility equivalence the batch evaluator exploits — have
/// equal fingerprints, so the fingerprint is a compact, copyable stand-in
/// for "this visibility class" that callers can key caches on: it survives
/// CompactCodebook only when the column *content* survives (compaction
/// renumbers codes, changing every column, which is exactly when cached
/// per-class state must be dropped), and it is never an identity comparison
/// of column indices, which renumbering would silently break.
struct ColumnFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  static ColumnFingerprint Of(const BitVector& column) {
    ColumnFingerprint fp;
    column.Fingerprint128(&fp.hi, &fp.lo);
    return fp;
  }

  bool operator==(const ColumnFingerprint& o) const {
    return hi == o.hi && lo == o.lo;
  }
  bool operator!=(const ColumnFingerprint& o) const { return !(*this == o); }
};

/// Codes are stable: once assigned, an entry's id never changes, because ids
/// are persisted inside document pages. Subject deletion therefore mutates
/// entries in place and may leave duplicate entries behind; per Section 3.4
/// such redundancy is tolerated and corrected lazily (CompactStats reports
/// the truly distinct count).
class Codebook {
 public:
  /// Creates a codebook for `num_subjects` subjects (may be 0 and grown via
  /// AddSubject).
  explicit Codebook(size_t num_subjects = 0) : num_subjects_(num_subjects) {}

  size_t num_subjects() const { return num_subjects_; }
  /// Number of entries, including any duplicates left by subject removal.
  size_t size() const { return entries_.size(); }

  /// Returns the code for `acl`, adding an entry if it is new. `acl` must
  /// have exactly num_subjects() bits.
  AccessCodeId Intern(const BitVector& acl);

  /// Looks up `acl` without interning; kInvalidAccessCode if absent.
  AccessCodeId Find(const BitVector& acl) const;

  const BitVector& Entry(AccessCodeId code) const { return entries_[code]; }

  /// True if the ACL behind `code` grants access to `subject`. This is the
  /// per-node check on the secure query hot path; it is a pure read, so any
  /// number of query threads may call it (and Entry/Find/num_subjects)
  /// concurrently as long as no thread mutates the codebook (Intern,
  /// Add/RemoveSubject) at the same time.
  ///
  /// Fails closed: an out-of-range code (corrupt page bytes, stale caller
  /// state) or subject denies access instead of reading out of bounds —
  /// this check runs against values decoded straight from disk pages, so
  /// it must stay total in release builds.
  bool Accessible(AccessCodeId code, SubjectId subject) const {
    if (code >= entries_.size() || subject >= num_subjects_) return false;
    return entries_[code].GetUnchecked(subject);
  }

  /// Appends a new subject column to every entry, initialized to
  /// `default_access`, and returns the new subject's id. Per Section 3.4
  /// this is a codebook-only operation: no embedded transition changes.
  SubjectId AddSubject(bool default_access);

  /// Appends a new subject whose rights are copied from `like`; also
  /// codebook-only. Fails with InvalidArgument if `like` is not an existing
  /// subject — subject ids arrive from administrative callers outside the
  /// store, so this path must reject bad ids instead of asserting.
  Result<SubjectId> AddSubjectLike(SubjectId like);

  /// Removes a subject column from every entry. Entries that become
  /// identical are left in place (ids must stay stable); the dictionary
  /// index re-points to the first of each duplicate family.
  Status RemoveSubject(SubjectId subject);

  /// One subject's codebook column: bit e of the result is this subject's
  /// accessibility under entry e, i.e. Accessible(e, subject) for every
  /// code. Two subjects with equal columns are indistinguishable to every
  /// secure-evaluation path (per-node checks, page verdicts, and hidden
  /// intervals all reduce to column bits), which is what the multi-subject
  /// batch evaluator's equivalence classes rely on.
  ///
  /// Fails closed like Accessible: an out-of-range subject yields the
  /// all-denied column rather than reading out of bounds.
  BitVector Column(SubjectId subject) const;

  /// Content fingerprint of Column(subject) — see ColumnFingerprint above.
  /// Same fail-closed rule as Column: an out-of-range subject fingerprints
  /// as the all-denied column.
  ColumnFingerprint ColumnFingerprintOf(SubjectId subject) const;

  /// Number of distinct entries (collapsing duplicates left by removal).
  size_t CountDistinct() const;

  /// Produces a deduplicated copy of this codebook plus the code remapping
  /// (old id -> new id) needed to rewrite embedded references. This is the
  /// "lazy correction" of Section 3.4: subject removal leaves duplicate
  /// entries in place (ids are persisted in pages), and a maintenance pass
  /// applies the mapping to the pages and swaps in the compact codebook —
  /// see SecureStore::CompactCodebook().
  Codebook Compacted(std::vector<AccessCodeId>* mapping) const;

  /// Total bytes of ACL payload across entries: size() * ceil(subjects/8).
  /// This is the codebook storage figure used in Section 5.1.1.
  size_t ByteSize() const {
    return entries_.size() * ((num_subjects_ + 7) / 8);
  }

  /// Exact serialization: entries in id order (duplicates included), so
  /// every persisted code stays valid after a round trip.
  std::vector<uint8_t> Serialize() const;

  /// Inverse of Serialize().
  static Result<Codebook> Deserialize(const std::vector<uint8_t>& data);

 private:
  void RebuildIndex();

  size_t num_subjects_;
  std::vector<BitVector> entries_;
  std::unordered_map<BitVector, AccessCodeId, BitVectorHash> index_;
};

/// One visibility equivalence class of a subject batch: subjects whose
/// codebook columns are bit-identical. Every secure evaluation answers
/// byte-identically for all members, so a batch evaluator computes each
/// class once and fans the result out (members keep the caller's order;
/// members.front() is the class representative).
struct SubjectClass {
  std::vector<SubjectId> members;
  /// Content fingerprint of the class's shared column, for keying
  /// cross-request caches on the class rather than any member id.
  ColumnFingerprint fingerprint;
  SubjectId representative() const { return members.front(); }
};

/// Partitions `subjects` into visibility equivalence classes by comparing
/// their codebook columns (hash + exact compare, no false merges).
/// Duplicate subject ids land in the same class. Classes appear in order of
/// first occurrence, so the partition is deterministic.
std::vector<SubjectClass> GroupSubjectsByColumn(
    const Codebook& codebook, const std::vector<SubjectId>& subjects);

}  // namespace secxml

#endif  // SECXML_CORE_CODEBOOK_H_
