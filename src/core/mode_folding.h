#ifndef SECXML_CORE_MODE_FOLDING_H_
#define SECXML_CORE_MODE_FOLDING_H_

#include <vector>

#include "common/result.h"
#include "core/accessibility_map.h"

namespace secxml {

/// Folds per-action-mode accessibility maps into one map over
/// (mode, subject) pseudo-subjects, exactly as paper Section 2 prescribes:
/// "The approach in this paper can be easily applied for multiple action
/// modes in a similar way for multiple users." A single DOL built from the
/// folded map then answers accessible(subject, mode, node) with one lookup,
/// and correlations *across modes* (e.g. write rights being subsets of read
/// rights) compress into shared codebook entries.
///
/// Pseudo-subject numbering: FoldedSubject(mode, subject, num_subjects).
/// All input maps must agree on node and subject counts.
Result<IntervalAccessMap> FoldModes(
    const std::vector<const IntervalAccessMap*>& modes);

/// The pseudo-subject id of (mode, subject) in a folded map.
inline SubjectId FoldedSubject(ModeId mode, SubjectId subject,
                               size_t num_subjects) {
  return static_cast<SubjectId>(mode * num_subjects + subject);
}

}  // namespace secxml

#endif  // SECXML_CORE_MODE_FOLDING_H_
