#ifndef SECXML_CORE_ACCESS_TYPES_H_
#define SECXML_CORE_ACCESS_TYPES_H_

#include <cstdint>

#include "xml/document.h"

namespace secxml {

/// An access control subject: a user or a user group (paper Section 2). The
/// subject hierarchy (group membership) is maintained by the workload layer;
/// the DOL itself sees a flat set of subjects, one bit each.
using SubjectId = uint32_t;

/// An access action mode (read, write, ...). The paper presents DOL for a
/// single mode and notes that multiple modes are handled exactly like
/// multiple subjects; our multi-mode workloads build one labeling per mode.
using ModeId = uint32_t;

/// Index into the DOL codebook identifying a distinct access control list.
using AccessCodeId = uint32_t;

inline constexpr AccessCodeId kInvalidAccessCode = 0xffffffffu;

}  // namespace secxml

#endif  // SECXML_CORE_ACCESS_TYPES_H_
