#ifndef SECXML_CORE_ACCESSIBILITY_MAP_H_
#define SECXML_CORE_ACCESSIBILITY_MAP_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "core/access_types.h"
#include "xml/document.h"

namespace secxml {

/// The accessibility function of paper Section 2: accessible(s, d) for one
/// action mode. Implementations capture the *net effect* of an access
/// control policy over a database instance; DOL is built from this map.
class AccessibilityMap {
 public:
  virtual ~AccessibilityMap() = default;

  virtual size_t num_subjects() const = 0;
  virtual NodeId num_nodes() const = 0;
  virtual bool Accessible(SubjectId subject, NodeId node) const = 0;

  /// Fills `out` with node's full ACL (bit per subject). The default loops
  /// over subjects; implementations override with bulk copies when possible.
  virtual void AclFor(NodeId node, BitVector* out) const;
};

/// Dense per-node ACL bit vectors. Suitable for small to medium subject
/// counts (tests, synthetic XMark workloads, the Unix surrogate).
class DenseAccessMap final : public AccessibilityMap {
 public:
  DenseAccessMap(NodeId num_nodes, size_t num_subjects,
                 bool default_access = false)
      : num_subjects_(num_subjects),
        rows_(num_nodes, BitVector(num_subjects, default_access)) {}

  size_t num_subjects() const override { return num_subjects_; }
  NodeId num_nodes() const override {
    return static_cast<NodeId>(rows_.size());
  }
  bool Accessible(SubjectId subject, NodeId node) const override {
    return rows_[node].Get(subject);
  }
  void AclFor(NodeId node, BitVector* out) const override {
    *out = rows_[node];
  }

  void Set(SubjectId subject, NodeId node, bool accessible) {
    rows_[node].Set(subject, accessible);
  }

  /// Sets accessibility of every node in the subtree rooted at `root`.
  void SetSubtree(const Document& doc, SubjectId subject, NodeId root,
                  bool accessible) {
    for (NodeId n = root; n < doc.SubtreeEnd(root); ++n) {
      rows_[n].Set(subject, accessible);
    }
  }

 private:
  size_t num_subjects_;
  std::vector<BitVector> rows_;
};

/// A contiguous document-order (preorder) range of nodes [begin, end).
struct NodeInterval {
  NodeId begin = 0;
  NodeId end = 0;
  bool operator==(const NodeInterval&) const = default;
};

/// A change of one subject's accessibility taking effect at `pos` (document
/// order) during a sweep.
struct AclEvent {
  NodeId pos = 0;
  SubjectId subject = 0;
  bool accessible = false;
};

/// Per-subject interval representation: each subject's accessible node set
/// is a union of disjoint preorder intervals. Structural locality of real
/// policies (rights propagated down subtrees) makes these interval lists
/// short, so this scales to thousands of subjects where a dense map cannot.
class IntervalAccessMap final : public AccessibilityMap {
 public:
  IntervalAccessMap(NodeId num_nodes, size_t num_subjects)
      : num_nodes_(num_nodes), per_subject_(num_subjects) {}

  size_t num_subjects() const override { return per_subject_.size(); }
  NodeId num_nodes() const override { return num_nodes_; }
  bool Accessible(SubjectId subject, NodeId node) const override;
  void AclFor(NodeId node, BitVector* out) const override;

  /// Installs a subject's accessible set. Intervals must be sorted,
  /// disjoint, non-empty, non-adjacent (i.e. maximal), and within range;
  /// violations are reported by Validate().
  void SetSubjectIntervals(SubjectId subject,
                           std::vector<NodeInterval> intervals) {
    per_subject_[subject] = std::move(intervals);
  }

  const std::vector<NodeInterval>& SubjectIntervals(SubjectId s) const {
    return per_subject_[s];
  }

  /// Checks the interval invariants for every subject.
  Status Validate() const;

  /// ACL of node 0 restricted to `subset` (or all subjects when null), with
  /// subjects renumbered to their subset positions.
  BitVector InitialAcl(const std::vector<SubjectId>* subset = nullptr) const;

  /// All accessibility change events for a document-order sweep, sorted by
  /// position, restricted to `subset` (renumbered) when non-null. Events at
  /// position 0 are folded into InitialAcl and not emitted.
  std::vector<AclEvent> CollectEvents(
      const std::vector<SubjectId>* subset = nullptr) const;

 private:
  NodeId num_nodes_;
  std::vector<std::vector<NodeInterval>> per_subject_;
};

/// Run-length representation: the document is a sequence of runs of nodes
/// sharing one ACL. Natural for workloads whose rights are assigned at
/// subtree granularity (e.g. filesystem ownership regions); DOL construction
/// from runs is O(#runs).
class RunAccessMap final : public AccessibilityMap {
 public:
  RunAccessMap(NodeId num_nodes, size_t num_subjects)
      : num_nodes_(num_nodes), num_subjects_(num_subjects) {}

  size_t num_subjects() const override { return num_subjects_; }
  NodeId num_nodes() const override { return num_nodes_; }
  bool Accessible(SubjectId subject, NodeId node) const override {
    return acls_[RunIndexOf(node)].Get(subject);
  }
  void AclFor(NodeId node, BitVector* out) const override {
    *out = acls_[RunIndexOf(node)];
  }

  /// Appends a run starting at `start` (must exceed the previous start; the
  /// first run must start at 0). The run extends to the next run's start or
  /// the end of the document.
  void AppendRun(NodeId start, BitVector acl) {
    starts_.push_back(start);
    acls_.push_back(std::move(acl));
  }

  size_t num_runs() const { return starts_.size(); }
  NodeId run_start(size_t i) const { return starts_[i]; }
  const BitVector& run_acl(size_t i) const { return acls_[i]; }

  /// Checks the run invariants.
  Status Validate() const;

  /// Projects onto a subject subset (subjects renumbered to subset order);
  /// adjacent runs that become equal are merged.
  RunAccessMap ProjectSubjects(const std::vector<SubjectId>& subset) const;

 private:
  size_t RunIndexOf(NodeId node) const;

  NodeId num_nodes_;
  size_t num_subjects_;
  std::vector<NodeId> starts_;
  std::vector<BitVector> acls_;
};

/// Union of several sorted disjoint interval lists (the effective rights of
/// a user who belongs to several groups, paper Section 4 footnote 4).
/// The result is sorted, disjoint, and maximal.
std::vector<NodeInterval> UnionIntervals(
    const std::vector<const std::vector<NodeInterval>*>& lists);

}  // namespace secxml

#endif  // SECXML_CORE_ACCESSIBILITY_MAP_H_
