#ifndef SECXML_STORAGE_SHARD_MAP_H_
#define SECXML_STORAGE_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace secxml {

/// One shard's contiguous slice of the document-order page space, expressed
/// both in page ordinals and in the node-id interval those pages begin
/// (node ids are plain uint32_t here — NodeId from xml/document.h — kept as
/// integers so storage stays below xml in the layering).
struct ShardRange {
  size_t first_page = 0;  ///< page ordinals [first_page, end_page)
  size_t end_page = 0;
  uint32_t first_node = 0;  ///< node ids [first_node, end_node)
  uint32_t end_node = 0;

  bool empty() const { return first_node >= end_node; }
  size_t num_pages() const { return end_page - first_page; }
};

/// Document-order page → shard directory (DESIGN.md §13). The page space is
/// cut into num_shards contiguous ranges of near-equal page count; because
/// pages are laid out in document order, each range is also a contiguous
/// node-id interval, and the intervals tile [0, num_nodes) exactly — every
/// node (hence every fragment-match candidate) has exactly one owner. With
/// fewer pages than shards the trailing shards own empty ranges.
///
/// The map is a pure value recomputed by the coordinator after any
/// structural update (page counts and first-node boundaries move); queries
/// read it under the coordinator's update fence.
class ShardMap {
 public:
  ShardMap() = default;

  /// Partitions `page_first_nodes.size()` pages (entry i = first node id
  /// stored on page i, ascending, [0] == 0) into `num_shards` ranges.
  static ShardMap Partition(const std::vector<uint32_t>& page_first_nodes,
                            uint32_t num_nodes, size_t num_shards);

  size_t num_shards() const { return ranges_.size(); }
  const ShardRange& range(size_t shard) const { return ranges_[shard]; }

  /// The shard owning `node` (nodes past the end belong to the last
  /// non-empty shard, so e.g. an append routes somewhere sensible).
  size_t ShardOfNode(uint32_t node) const;

  /// The shard owning page `ordinal`.
  size_t ShardOfPage(size_t ordinal) const;

 private:
  std::vector<ShardRange> ranges_;
};

}  // namespace secxml

#endif  // SECXML_STORAGE_SHARD_MAP_H_
