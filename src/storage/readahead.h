#ifndef SECXML_STORAGE_READAHEAD_H_
#define SECXML_STORAGE_READAHEAD_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "storage/buffer_pool.h"

namespace secxml {

/// Document-order readahead for sequential page sweeps: a small pool of
/// background workers that fetch requested pages into the shared BufferPool
/// and immediately unpin them, so a later synchronous Fetch by the sweep is
/// a cache hit. This overlaps device read latency (LatencyPagedFile, real
/// disks) with the computation between pages — the sweep stays simple and
/// synchronous while up to `num_workers` reads are in flight.
///
/// Thread safety: Request/Drain/stats may be called from any thread; the
/// workers only touch the BufferPool (itself fully thread-safe). Lock
/// ordering: the Readahead mutex sits above the buffer-pool shard latches
/// and is never taken underneath one.
///
/// Contract with the store's exclusive-update rule: a prefetch is a read, so
/// every code path that issues requests must Drain() before returning
/// (use ReadaheadDrainGuard). Then no background fetch can overlap a
/// subsequent store update.
class Readahead {
 public:
  /// Plain-value counters, taken at one instant.
  struct Stats {
    /// Requests accepted into the queue.
    uint64_t requested = 0;
    /// Requests rejected because the queue was full or the page was already
    /// queued.
    uint64_t dropped = 0;
    /// Background fetches finished (buffer-pool hit or physical read).
    uint64_t completed = 0;
    /// Background fetches that returned an error (e.g. shard exhausted, or
    /// an I/O fault); harmless for correctness — the sweep's own Fetch
    /// retries synchronously — but surfaced so callers can see a device
    /// going bad even when the foreground path later succeeds.
    uint64_t failed = 0;
    /// Status of the first failed background fetch (OK when failed == 0).
    Status first_error = Status::OK();
  };

  explicit Readahead(BufferPool* pool, size_t num_workers = 2,
                     size_t max_queue = 64);
  ~Readahead();

  Readahead(const Readahead&) = delete;
  Readahead& operator=(const Readahead&) = delete;

  /// Enqueues `id` for background fetching. Never blocks: the request is
  /// dropped if the queue is full or the page is already queued.
  void Request(PageId id);

  /// Blocks until every accepted request has completed (queue empty, no
  /// fetch in flight). Cheap when idle.
  void Drain();

  size_t num_workers() const { return workers_.size(); }
  Stats stats() const;

 private:
  void WorkerLoop();

  BufferPool* pool_;
  size_t max_queue_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signaled on new work / stop
  std::condition_variable drain_cv_;  // signaled when fully idle
  std::deque<PageId> queue_;
  std::unordered_set<PageId> queued_;  // mirror of queue_ for O(1) dedup
  size_t in_flight_ = 0;
  bool stop_ = false;
  Stats stats_;

  std::vector<std::thread> workers_;
};

/// Scope guard ensuring no background fetch outlives the read operation
/// that issued it. Tolerates a null Readahead (prefetching disabled).
class ReadaheadDrainGuard {
 public:
  explicit ReadaheadDrainGuard(Readahead* ra) : ra_(ra) {}
  ~ReadaheadDrainGuard() {
    if (ra_ != nullptr) ra_->Drain();
  }

  ReadaheadDrainGuard(const ReadaheadDrainGuard&) = delete;
  ReadaheadDrainGuard& operator=(const ReadaheadDrainGuard&) = delete;

 private:
  Readahead* ra_;
};

}  // namespace secxml

#endif  // SECXML_STORAGE_READAHEAD_H_
