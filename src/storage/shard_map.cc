#include "storage/shard_map.h"

#include <algorithm>

namespace secxml {

ShardMap ShardMap::Partition(const std::vector<uint32_t>& page_first_nodes,
                             uint32_t num_nodes, size_t num_shards) {
  ShardMap map;
  if (num_shards == 0) return map;
  map.ranges_.resize(num_shards);
  const size_t pages = page_first_nodes.size();
  for (size_t s = 0; s < num_shards; ++s) {
    ShardRange& r = map.ranges_[s];
    r.first_page = s * pages / num_shards;
    r.end_page = (s + 1) * pages / num_shards;
    r.first_node =
        r.first_page < pages ? page_first_nodes[r.first_page] : num_nodes;
  }
  for (size_t s = 0; s < num_shards; ++s) {
    map.ranges_[s].end_node =
        s + 1 < num_shards ? map.ranges_[s + 1].first_node : num_nodes;
  }
  return map;
}

size_t ShardMap::ShardOfNode(uint32_t node) const {
  // Last shard whose first_node <= node; empty shards share their
  // first_node with the next shard and lose the upper_bound tie, so a
  // boundary node always lands on the shard that actually owns it.
  size_t lo = 0;
  for (size_t s = 1; s < ranges_.size(); ++s) {
    if (ranges_[s].first_node <= node) lo = s;
  }
  // Nodes past every range (e.g. one past the end) fall to the last
  // non-empty shard.
  while (lo > 0 && ranges_[lo].empty()) --lo;
  return lo;
}

size_t ShardMap::ShardOfPage(size_t ordinal) const {
  size_t lo = 0;
  for (size_t s = 1; s < ranges_.size(); ++s) {
    if (ranges_[s].first_page <= ordinal) lo = s;
  }
  while (lo > 0 && ranges_[lo].num_pages() == 0) --lo;
  return lo;
}

}  // namespace secxml
