#ifndef SECXML_STORAGE_BUFFER_POOL_H_
#define SECXML_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/paged_file.h"

namespace secxml {

class BufferPool;

/// RAII pin on a buffered page. While alive, the frame will not be evicted
/// and the Page pointer stays valid. Mark the page dirty before dropping the
/// handle if it was modified.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  const Page& page() const { return *page_; }
  Page* mutable_page() { return page_; }

  /// Marks the page as modified; it will be written back on eviction/flush.
  void MarkDirty();

  /// Releases the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, Page* page, size_t frame)
      : pool_(pool), page_id_(id), page_(page), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  PageId page_id_ = kInvalidPage;
  Page* page_ = nullptr;
  size_t frame_ = 0;
};

/// Fixed-capacity LRU buffer pool over a PagedFile, with pin counting and
/// I/O statistics. Single-threaded by design: the reproduced experiments run
/// one query at a time, as the paper's do.
class BufferPool {
 public:
  /// `capacity` is the number of page frames held in memory.
  BufferPool(PagedFile* file, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins page `id`, reading it from the file on a miss. Fails if every
  /// frame is pinned or the read fails.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page in the file and pins it (zeroed, dirty).
  Result<PageHandle> Allocate();

  /// Writes back all dirty pages (keeps them cached).
  Status FlushAll();

  /// Drops every unpinned page from the cache, writing dirty ones back.
  /// Benchmarks use this to measure cold-cache behaviour.
  Status EvictAll();

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }

  size_t capacity() const { return frames_.size(); }
  size_t num_cached() const { return map_.size(); }
  size_t num_pinned() const;

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    PageId id = kInvalidPage;
    uint32_t pins = 0;
    bool dirty = false;
    /// Position in lru_ when pins == 0 and resident.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(size_t frame_index);
  Status EvictFrame(size_t frame_index);
  /// Finds a frame to (re)use: a free one, else the LRU unpinned victim.
  Result<size_t> GrabFrame();

  PagedFile* file_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> map_;
  std::list<size_t> lru_;  // front = least recently used
  IoStats stats_;
};

}  // namespace secxml

#endif  // SECXML_STORAGE_BUFFER_POOL_H_
