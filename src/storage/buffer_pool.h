#ifndef SECXML_STORAGE_BUFFER_POOL_H_
#define SECXML_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/paged_file.h"

namespace secxml {

class BufferPool;

/// RAII pin on a buffered page. While alive, the frame will not be evicted
/// and the Page pointer stays valid. Mark the page dirty before dropping the
/// handle if it was modified.
///
/// A PageHandle may be used (and destroyed) on any thread, but a single
/// handle must not be shared between threads without external
/// synchronization. Two handles on the same page see the same bytes:
/// concurrent readers are safe; a writer requires that no other thread
/// touches that page's content concurrently (see DESIGN.md, "Concurrency
/// model").
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  const Page& page() const { return *page_; }
  Page* mutable_page() { return page_; }

  /// Marks the page as modified; it will be written back on eviction/flush.
  void MarkDirty();

  /// Releases the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, Page* page, size_t frame)
      : pool_(pool), page_id_(id), page_(page), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  PageId page_id_ = kInvalidPage;
  Page* page_ = nullptr;
  size_t frame_ = 0;
};

/// Fixed-capacity LRU buffer pool over a PagedFile, with pin counting and
/// I/O statistics.
///
/// Thread-safe: the frame table is partitioned into shards, each guarded by
/// its own latch. A page belongs to the shard `page_id % num_shards`, and
/// every shard owns a disjoint subset of the frames, so Fetch/Allocate/
/// Unpin/eviction for pages in different shards never contend. Pin counts
/// and the dirty flag are atomics, so MarkDirty and handle release take no
/// latch on the hot path (release only latches when the pin count drops to
/// zero, to requeue the frame on its shard's LRU list).
///
/// Latch ordering (see DESIGN.md): a thread holds at most one shard latch at
/// a time, and may acquire the PagedFile's internal lock underneath it
/// (physical I/O happens while the owning shard latch is held). Shard
/// latches are never nested; whole-pool sweeps (FlushAll, EvictAll) visit
/// shards one at a time in ascending index order.
class BufferPool {
 public:
  /// `capacity` is the number of page frames held in memory. `num_shards`
  /// selects the latch sharding; 0 picks automatically (one shard per 32
  /// frames, rounded down to a power of two, at most 16 — so small pools,
  /// including every unit-test pool, behave exactly like the historical
  /// single-LRU pool). Capacity is partitioned across shards, so a shard
  /// can be exhausted while others have free frames; callers that fetch
  /// with high skew should use fewer shards.
  BufferPool(PagedFile* file, size_t capacity, size_t num_shards = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins page `id`, reading it from the file on a miss. Fails if every
  /// frame in the page's shard is pinned or the read fails. When `was_miss`
  /// is non-null it is set to whether this fetch had to wait on a physical
  /// read (cursors use it to attribute fetch waits to themselves; the shared
  /// IoStats counters cannot be attributed under concurrency).
  Result<PageHandle> Fetch(PageId id, bool* was_miss = nullptr);

  /// Allocates a fresh page in the file and pins it (zeroed, dirty).
  Result<PageHandle> Allocate();

  /// Writes back all dirty *unpinned* pages (keeps them cached). Pinned
  /// frames are skipped — their holder may be mid-modification, so flushing
  /// could persist a torn page and lose the holder's update; they are
  /// written back on eviction or a later flush once unpinned. On a write
  /// error the frame stays dirty (retryable), the sweep continues over the
  /// remaining frames, and the first error is returned at the end.
  Status FlushAll();

  /// Drops every unpinned page from the cache, writing dirty ones back.
  /// Benchmarks use this to measure cold-cache behaviour. Safe to run
  /// concurrently with fetches; pinned pages are left alone. A frame whose
  /// write-back fails stays resident and dirty; the sweep continues and the
  /// first error is returned at the end.
  Status EvictAll();

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  size_t num_cached() const;
  size_t num_pinned() const;

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    PageId id = kInvalidPage;
    std::atomic<uint32_t> pins{0};
    std::atomic<bool> dirty{false};
    /// Shard owning this frame; fixed at construction.
    uint32_t home_shard = 0;
    /// Position in the shard's lru list when pins == 0 and resident.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// One latch shard: a slice of the frame table with its own page map,
  /// LRU list, and free list. All three, plus the non-atomic Frame fields
  /// (id, lru_pos, in_lru) of the shard's frames, are guarded by `mu`.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PageId, size_t> map;  // page id -> frame index
    std::list<size_t> lru;                   // front = least recently used
    std::vector<size_t> free_frames;
  };

  static size_t AutoShards(size_t capacity);

  size_t ShardOf(PageId id) const { return id % shards_.size(); }

  void Unpin(size_t frame_index);
  /// Requires `shard.mu` held and frames_[frame_index].pins == 0.
  Status EvictFrameLocked(Shard* shard, size_t frame_index);
  /// Finds a frame to (re)use within `shard`: a free one, else the LRU
  /// unpinned victim. Requires `shard.mu` held.
  Result<size_t> GrabFrameLocked(Shard* shard);
  /// Shared tail of Fetch-miss and Allocate. Requires `shard.mu` held.
  Result<PageHandle> InstallLocked(Shard* shard, size_t frame_index,
                                   PageId id);

  PagedFile* file_;
  size_t capacity_;
  std::unique_ptr<Frame[]> frames_;
  std::vector<Shard> shards_;
  IoStats stats_;
};

}  // namespace secxml

#endif  // SECXML_STORAGE_BUFFER_POOL_H_
