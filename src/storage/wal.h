#ifndef SECXML_STORAGE_WAL_H_
#define SECXML_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/paged_file.h"

namespace secxml {

/// Redo-only write-ahead log over a PagedFile (DESIGN.md §11).
///
/// The log is a byte stream of self-validating records laid over pages 1..N
/// of its own paged file; page 0 holds a dual-slot header (two CRC-guarded
/// copies with a sequence number, written alternately) so a torn header
/// write during truncation can never lose both copies. Records are framed as
///
///   [magic u32][type u32][lsn u64][len u32][payload][crc32 u32]
///
/// with the CRC covering type|lsn|len|payload. Appends are strictly
/// append-only: bytes of committed records are never rewritten, so a torn
/// write of a tail page (half new / half old image) can only damage the
/// record being appended — the committed prefix of that page is bit-for-bit
/// identical in both images. Open() scans forward from the header's start
/// offset and stops at the first invalid frame, which cleanly drops a torn
/// or unsynced tail.
///
/// A failed append (write or sync error) is best-effort *invalidated* by
/// zeroing the record's magic word, making "the commit did not happen"
/// durable too; if the invalidation write itself also fails, the record's
/// fate is decided at recovery by whether its bytes reached the device —
/// either outcome is consistent because callers only publish state after a
/// successful append (see RecoveryStats in SecureStore).
///
/// Not internally synchronized: the secure store serializes all log access
/// under its writer mutex, and recovery is single-threaded by nature.
class WriteAheadLog {
 public:
  struct Record {
    uint32_t type = 0;
    uint64_t lsn = 0;
    std::string payload;
  };

  struct Stats {
    uint64_t records_appended = 0;
    uint64_t bytes_appended = 0;
    uint64_t syncs = 0;
    uint64_t records_recovered = 0;  ///< valid records found by Open()
    uint64_t torn_tail = 0;          ///< 1 if Open() dropped an invalid tail
    uint64_t truncations = 0;
    uint64_t append_failures = 0;
  };

  /// Opens (or initializes, when `file` is empty) a log on `file`, scanning
  /// any existing records into memory. Fails with Corruption only when both
  /// header slots are invalid — a torn *data* tail is expected after a crash
  /// and is silently dropped.
  static Result<std::unique_ptr<WriteAheadLog>> Open(PagedFile* file);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record and syncs it to durable storage; returns its LSN.
  /// On any error the record is not part of the log (and has been
  /// best-effort invalidated on the device).
  Result<uint64_t> Append(uint32_t type, std::string_view payload);

  /// Invokes `fn` over every record with lsn > `after_lsn`, in LSN order,
  /// stopping at the first error.
  Status Replay(uint64_t after_lsn,
                const std::function<Status(const Record&)>& fn) const;

  /// Logically discards every record: persists a new header whose start
  /// offset points past the current tail. Old record bytes stay on the
  /// device but are unreachable. Called after a checkpoint makes them
  /// redundant.
  Status Truncate();

  /// LSN the next Append will assign.
  uint64_t next_lsn() const { return next_lsn_; }

  /// Raises the LSN the next Append will assign (never lowers it). A
  /// sharded coordinator interleaves many shard logs into one global LSN
  /// order by aligning the owning shard's log before each append; recovery
  /// re-derives the global order from the records themselves, so this
  /// in-memory bump needs no durability of its own.
  void set_next_lsn(uint64_t lsn) {
    if (lsn > next_lsn_) next_lsn_ = lsn;
  }

  /// Records currently in the log (surviving Truncate() resets to 0).
  size_t num_records() const { return records_.size(); }

  const Stats& stats() const { return stats_; }

 private:
  explicit WriteAheadLog(PagedFile* file) : file_(file) {}

  /// Reads `len` bytes of the data region starting at byte `offset`.
  Status ReadBytes(uint64_t offset, size_t len, uint8_t* out) const;
  /// Writes `len` bytes at `offset`, allocating tail pages as needed.
  Status WriteBytes(uint64_t offset, const uint8_t* data, size_t len);
  /// Persists the header (start offset + next LSN) into the inactive slot.
  Status WriteHeader();
  /// Forward-scans records from start_offset_; fills records_ / tail_.
  void ScanExisting();

  PagedFile* file_;
  uint64_t start_offset_ = 0;  ///< data-region byte offset of first record
  uint64_t tail_offset_ = 0;   ///< data-region byte offset one past last record
  uint64_t next_lsn_ = 1;
  uint32_t header_seq_ = 0;    ///< sequence of the active header slot
  std::vector<Record> records_;
  Stats stats_;
};

}  // namespace secxml

#endif  // SECXML_STORAGE_WAL_H_
