#ifndef SECXML_STORAGE_PAGED_FILE_H_
#define SECXML_STORAGE_PAGED_FILE_H_

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace secxml {

/// Abstract page-granular storage device. Implementations must support random
/// page reads and writes plus appending new pages, and must be safe to call
/// from multiple threads concurrently (the shared buffer pool issues reads
/// and write-backs from every query thread).
class PagedFile {
 public:
  virtual ~PagedFile() = default;

  /// Number of allocated pages.
  virtual PageId NumPages() const = 0;

  /// Appends a zeroed page; returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Reads page `id` into `*out`. Fails with OutOfRange for unallocated ids.
  virtual Status ReadPage(PageId id, Page* out) = 0;

  /// Writes `page` to page `id`. Fails with OutOfRange for unallocated ids.
  virtual Status WritePage(PageId id, const Page& page) = 0;

  /// Flushes buffered writes to durable storage (no-op for memory files).
  virtual Status Sync() = 0;
};

/// Heap-backed paged file, used by unit tests and by benchmarks that model
/// I/O via counters rather than real disk latency (the paper reports ratios,
/// not absolute disk times). Internally synchronized.
class MemPagedFile final : public PagedFile {
 public:
  MemPagedFile() = default;

  PageId NumPages() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<PageId>(pages_.size());
  }
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Status Sync() override { return Status::OK(); }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Page>> pages_;
};

/// File-backed paged file over stdio with explicit error propagation.
/// Internally synchronized: the single FILE* position is shared, so every
/// seek+transfer pair happens under one lock.
class FilePagedFile final : public PagedFile {
 public:
  /// Creates (truncating) a new paged file at `path`.
  static Result<std::unique_ptr<FilePagedFile>> Create(const std::string& path);

  /// Opens an existing paged file. A trailing partial page (the footprint of
  /// an extend that died mid-write) is truncated away; the open fails only
  /// if that repair itself fails.
  static Result<std::unique_ptr<FilePagedFile>> Open(const std::string& path);

  ~FilePagedFile() override;

  FilePagedFile(const FilePagedFile&) = delete;
  FilePagedFile& operator=(const FilePagedFile&) = delete;

  PageId NumPages() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return num_pages_;
  }
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Status Sync() override;

 private:
  FilePagedFile(std::FILE* f, std::string path, PageId num_pages)
      : file_(f), path_(std::move(path)), num_pages_(num_pages) {}

  mutable std::mutex mu_;
  std::FILE* file_;
  std::string path_;
  PageId num_pages_;
};

/// Decorator that adds a fixed service delay to every physical page read,
/// modeling device read latency on top of any base file (typically a
/// MemPagedFile). The paper's evaluation abstracts disks as page-read
/// counts; this makes those counts cost wall-clock time, which is what a
/// concurrent query driver overlaps across threads. Delays are slept
/// *outside* the base file's lock, so reads issued from different buffer
/// pool shards overlap. Writes are not delayed (modeling a write-back cache
/// absorbing them).
class LatencyPagedFile final : public PagedFile {
 public:
  LatencyPagedFile(PagedFile* base, std::chrono::microseconds read_latency)
      : base_(base), read_latency_(read_latency) {}

  PageId NumPages() const override { return base_->NumPages(); }
  Result<PageId> AllocatePage() override { return base_->AllocatePage(); }
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override {
    return base_->WritePage(id, page);
  }
  Status Sync() override { return base_->Sync(); }

  /// Total simulated read delay incurred so far.
  std::chrono::microseconds total_delay() const {
    return std::chrono::microseconds(
        delay_micros_.load(std::memory_order_relaxed));
  }

 private:
  PagedFile* base_;
  std::chrono::microseconds read_latency_;
  std::atomic<uint64_t> delay_micros_{0};
};

}  // namespace secxml

#endif  // SECXML_STORAGE_PAGED_FILE_H_
