#ifndef SECXML_STORAGE_PAGED_FILE_H_
#define SECXML_STORAGE_PAGED_FILE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace secxml {

/// Abstract page-granular storage device. Implementations must support random
/// page reads and writes plus appending new pages.
class PagedFile {
 public:
  virtual ~PagedFile() = default;

  /// Number of allocated pages.
  virtual PageId NumPages() const = 0;

  /// Appends a zeroed page; returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Reads page `id` into `*out`. Fails with OutOfRange for unallocated ids.
  virtual Status ReadPage(PageId id, Page* out) = 0;

  /// Writes `page` to page `id`. Fails with OutOfRange for unallocated ids.
  virtual Status WritePage(PageId id, const Page& page) = 0;

  /// Flushes buffered writes to durable storage (no-op for memory files).
  virtual Status Sync() = 0;
};

/// Heap-backed paged file, used by unit tests and by benchmarks that model
/// I/O via counters rather than real disk latency (the paper reports ratios,
/// not absolute disk times).
class MemPagedFile final : public PagedFile {
 public:
  MemPagedFile() = default;

  PageId NumPages() const override {
    return static_cast<PageId>(pages_.size());
  }
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Status Sync() override { return Status::OK(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

/// File-backed paged file over stdio with explicit error propagation.
class FilePagedFile final : public PagedFile {
 public:
  /// Creates (truncating) a new paged file at `path`.
  static Result<std::unique_ptr<FilePagedFile>> Create(const std::string& path);

  /// Opens an existing paged file. Fails if the size is not page-aligned.
  static Result<std::unique_ptr<FilePagedFile>> Open(const std::string& path);

  ~FilePagedFile() override;

  FilePagedFile(const FilePagedFile&) = delete;
  FilePagedFile& operator=(const FilePagedFile&) = delete;

  PageId NumPages() const override { return num_pages_; }
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Status Sync() override;

 private:
  FilePagedFile(std::FILE* f, std::string path, PageId num_pages)
      : file_(f), path_(std::move(path)), num_pages_(num_pages) {}

  std::FILE* file_;
  std::string path_;
  PageId num_pages_;
};

}  // namespace secxml

#endif  // SECXML_STORAGE_PAGED_FILE_H_
