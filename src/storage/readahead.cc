#include "storage/readahead.h"

namespace secxml {

Readahead::Readahead(BufferPool* pool, size_t num_workers, size_t max_queue)
    : pool_(pool), max_queue_(max_queue) {
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Readahead::~Readahead() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Abandon queued work; in-flight fetches finish on their own.
    queue_.clear();
    queued_.clear();
  }
  work_cv_.notify_all();
  drain_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Readahead::Request(PageId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    if (queue_.size() >= max_queue_ || queued_.count(id) != 0) {
      ++stats_.dropped;
      return;
    }
    queue_.push_back(id);
    queued_.insert(id);
    ++stats_.requested;
  }
  work_cv_.notify_one();
}

void Readahead::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    return stop_ || (queue_.empty() && in_flight_ == 0);
  });
}

Readahead::Stats Readahead::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Readahead::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    PageId id = queue_.front();
    queue_.pop_front();
    queued_.erase(id);
    ++in_flight_;
    lock.unlock();
    Status fetch_status;
    {
      // Fetch, then immediately drop the pin: the page stays resident at
      // the MRU end of its shard's LRU list, so the sweep's synchronous
      // Fetch shortly after is a hit.
      Result<PageHandle> r = pool_->Fetch(id);
      if (!r.ok()) fetch_status = r.status();
    }
    lock.lock();
    --in_flight_;
    ++stats_.completed;
    if (!fetch_status.ok()) {
      ++stats_.failed;
      if (stats_.first_error.ok()) stats_.first_error = fetch_status;
    }
    if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
  }
}

}  // namespace secxml
