#include "storage/buffer_pool.h"

#include <cassert>

namespace secxml {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    page_id_ = other.page_id_;
    page_ = other.page_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  assert(valid());
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    page_ = nullptr;
  }
}

BufferPool::BufferPool(PagedFile* file, size_t capacity) : file_(file) {
  assert(capacity > 0);
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  for (size_t i = capacity; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::~BufferPool() {
  // Best-effort writeback; errors here cannot be reported.
  (void)FlushAll();
}

size_t BufferPool::num_pinned() const {
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.id != kInvalidPage && f.pins > 0) ++n;
  }
  return n;
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& f = frames_[frame_index];
  assert(f.pins > 0);
  if (--f.pins == 0) {
    lru_.push_back(frame_index);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Status BufferPool::EvictFrame(size_t frame_index) {
  Frame& f = frames_[frame_index];
  assert(f.pins == 0);
  if (f.dirty) {
    SECXML_RETURN_NOT_OK(file_->WritePage(f.id, f.page));
    ++stats_.page_writes;
    f.dirty = false;
  }
  map_.erase(f.id);
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  f.id = kInvalidPage;
  return Status::OK();
}

Result<size_t> BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::IOError("buffer pool exhausted: all frames pinned");
  }
  size_t victim = lru_.front();
  SECXML_RETURN_NOT_OK(EvictFrame(victim));
  return victim;
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    size_t idx = it->second;
    Frame& f = frames_[idx];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    ++stats_.cache_hits;
    return PageHandle(this, id, &f.page, idx);
  }
  SECXML_ASSIGN_OR_RETURN(size_t idx, GrabFrame());
  Frame& f = frames_[idx];
  Status read = file_->ReadPage(id, &f.page);
  if (!read.ok()) {
    free_frames_.push_back(idx);
    return read;
  }
  ++stats_.page_reads;
  f.id = id;
  f.pins = 1;
  f.dirty = false;
  f.in_lru = false;
  map_[id] = idx;
  return PageHandle(this, id, &f.page, idx);
}

Result<PageHandle> BufferPool::Allocate() {
  SECXML_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
  SECXML_ASSIGN_OR_RETURN(size_t idx, GrabFrame());
  Frame& f = frames_[idx];
  f.page.Zero();
  f.id = id;
  f.pins = 1;
  f.dirty = true;
  f.in_lru = false;
  map_[id] = idx;
  return PageHandle(this, id, &f.page, idx);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.id != kInvalidPage && f.dirty) {
      SECXML_RETURN_NOT_OK(file_->WritePage(f.id, f.page));
      ++stats_.page_writes;
      f.dirty = false;
    }
  }
  return file_->Sync();
}

Status BufferPool::EvictAll() {
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.id != kInvalidPage && f.pins == 0) {
      SECXML_RETURN_NOT_OK(EvictFrame(i));
      free_frames_.push_back(i);
    }
  }
  return Status::OK();
}

}  // namespace secxml
