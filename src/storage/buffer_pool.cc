#include "storage/buffer_pool.h"

#include <cassert>

namespace secxml {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    page_id_ = other.page_id_;
    page_ = other.page_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  assert(valid());
  pool_->frames_[frame_].dirty.store(true, std::memory_order_release);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    page_ = nullptr;
  }
}

size_t BufferPool::AutoShards(size_t capacity) {
  size_t shards = 1;
  while (shards < 16 && capacity / (shards * 2) >= 32) shards *= 2;
  return shards;
}

BufferPool::BufferPool(PagedFile* file, size_t capacity, size_t num_shards)
    : file_(file), capacity_(capacity) {
  assert(capacity > 0);
  if (num_shards == 0) num_shards = AutoShards(capacity);
  if (num_shards > capacity) num_shards = capacity;
  shards_ = std::vector<Shard>(num_shards);
  frames_ = std::make_unique<Frame[]>(capacity);
  // Frames are partitioned round-robin so every shard owns
  // floor(capacity/num_shards) or one more frames, permanently.
  for (size_t i = capacity; i > 0; --i) {
    size_t idx = i - 1;
    uint32_t home = static_cast<uint32_t>(idx % num_shards);
    frames_[idx].home_shard = home;
    shards_[home].free_frames.push_back(idx);
  }
}

BufferPool::~BufferPool() {
  // Best-effort writeback; errors here cannot be reported.
  (void)FlushAll();
}

size_t BufferPool::num_cached() const {
  size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    n += sh.map.size();
  }
  return n;
}

size_t BufferPool::num_pinned() const {
  // Exact while the pool is quiescent; a consistent approximation otherwise.
  size_t n = 0;
  for (size_t i = 0; i < capacity_; ++i) {
    const Frame& f = frames_[i];
    if (f.id != kInvalidPage && f.pins.load(std::memory_order_relaxed) > 0) {
      ++n;
    }
  }
  return n;
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& f = frames_[frame_index];
  // The home shard is fixed at construction, so it is safe to read without
  // the latch even though the frame may be concurrently re-pinned or
  // evicted once our pin is gone.
  Shard& sh = shards_[f.home_shard];
  uint32_t prev = f.pins.fetch_sub(1, std::memory_order_acq_rel);
  assert(prev > 0);
  if (prev != 1) return;
  // Last pin dropped: queue the frame for eviction. Re-check the frame's
  // state under the latch — between the decrement and the lock another
  // thread may have re-pinned, evicted, or already requeued it. The push is
  // guarded by the current state, so whichever unpinner gets the latch
  // first does the requeue and the others back off. The pin load must be
  // acquire: a stalled unpinner can requeue on behalf of a *later* holder
  // whose decrement it observes only through this load, and the requeue
  // makes the frame evictable — without the acquire edge that holder's
  // page reads would race with the evictor's read into the frame.
  std::lock_guard<std::mutex> lock(sh.mu);
  if (f.id != kInvalidPage && !f.in_lru &&
      f.pins.load(std::memory_order_acquire) == 0) {
    sh.lru.push_back(frame_index);
    f.lru_pos = std::prev(sh.lru.end());
    f.in_lru = true;
  }
}

Status BufferPool::EvictFrameLocked(Shard* shard, size_t frame_index) {
  Frame& f = frames_[frame_index];
  assert(f.pins.load(std::memory_order_relaxed) == 0);
  if (f.dirty.load(std::memory_order_acquire)) {
    SECXML_RETURN_NOT_OK(file_->WritePage(f.id, f.page));
    stats_.page_writes.fetch_add(1, std::memory_order_relaxed);
    f.dirty.store(false, std::memory_order_relaxed);
  }
  shard->map.erase(f.id);
  if (f.in_lru) {
    shard->lru.erase(f.lru_pos);
    f.in_lru = false;
  }
  f.id = kInvalidPage;
  return Status::OK();
}

Result<size_t> BufferPool::GrabFrameLocked(Shard* shard) {
  if (!shard->free_frames.empty()) {
    size_t idx = shard->free_frames.back();
    shard->free_frames.pop_back();
    return idx;
  }
  if (shard->lru.empty()) {
    return Status::IOError(
        "buffer pool shard exhausted: all frames pinned");
  }
  size_t victim = shard->lru.front();
  SECXML_RETURN_NOT_OK(EvictFrameLocked(shard, victim));
  return victim;
}

Result<PageHandle> BufferPool::InstallLocked(Shard* shard, size_t frame_index,
                                             PageId id) {
  Frame& f = frames_[frame_index];
  f.id = id;
  f.pins.store(1, std::memory_order_relaxed);
  f.in_lru = false;
  shard->map[id] = frame_index;
  return PageHandle(this, id, &f.page, frame_index);
}

Result<PageHandle> BufferPool::Fetch(PageId id, bool* was_miss) {
  if (was_miss != nullptr) *was_miss = false;
  Shard& sh = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.map.find(id);
  if (it != sh.map.end()) {
    size_t idx = it->second;
    Frame& f = frames_[idx];
    if (f.in_lru) {
      sh.lru.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.pins.fetch_add(1, std::memory_order_relaxed);
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return PageHandle(this, id, &f.page, idx);
  }
  SECXML_ASSIGN_OR_RETURN(size_t idx, GrabFrameLocked(&sh));
  Frame& f = frames_[idx];
  // The physical read happens under the shard latch: the frame is not yet
  // mapped, so no other thread can observe it, and misses for pages of
  // other shards proceed in parallel.
  Status read = file_->ReadPage(id, &f.page);
  if (!read.ok()) {
    sh.free_frames.push_back(idx);
    return read;
  }
  stats_.page_reads.fetch_add(1, std::memory_order_relaxed);
  if (was_miss != nullptr) *was_miss = true;
  f.dirty.store(false, std::memory_order_relaxed);
  return InstallLocked(&sh, idx, id);
}

Result<PageHandle> BufferPool::Allocate() {
  SECXML_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
  Shard& sh = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(sh.mu);
  SECXML_ASSIGN_OR_RETURN(size_t idx, GrabFrameLocked(&sh));
  Frame& f = frames_[idx];
  f.page.Zero();
  f.dirty.store(true, std::memory_order_relaxed);
  return InstallLocked(&sh, idx, id);
}

Status BufferPool::FlushAll() {
  Status first_error;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [id, idx] : sh.map) {
      Frame& f = frames_[idx];
      // A pinned frame may be mid-modification by its holder: writing it
      // now could persist a torn page, and clearing dirty afterwards would
      // silently drop the holder's update. Leave it dirty; it is written
      // back on eviction or a later flush, after the pin is gone. (Acquire
      // pairs with the unpinner's fetch_sub release, so a frame seen at
      // zero pins has all of its holder's page writes visible.)
      if (f.pins.load(std::memory_order_acquire) > 0) continue;
      if (f.dirty.load(std::memory_order_acquire)) {
        Status write = file_->WritePage(f.id, f.page);
        if (!write.ok()) {
          // Keep the frame dirty (no lost update — a later flush retries)
          // and keep flushing the rest: one bad page must not strand every
          // other dirty page in memory.
          if (first_error.ok()) first_error = write;
          continue;
        }
        stats_.page_writes.fetch_add(1, std::memory_order_relaxed);
        f.dirty.store(false, std::memory_order_relaxed);
      }
    }
  }
  SECXML_RETURN_NOT_OK(first_error);
  return file_->Sync();
}

Status BufferPool::EvictAll() {
  Status first_error;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    std::vector<size_t> victims;
    victims.reserve(sh.map.size());
    for (const auto& [id, idx] : sh.map) {
      // Acquire pairs with the unpinner's fetch_sub release: a frame seen
      // at zero pins here has all of its holder's page writes visible, so
      // the dirty flush below reads settled bytes. (Frames that reached
      // the LRU get this edge through sh.mu; this scan bypasses it.)
      if (frames_[idx].pins.load(std::memory_order_acquire) == 0) {
        victims.push_back(idx);
      }
    }
    for (size_t idx : victims) {
      Status evict = EvictFrameLocked(&sh, idx);
      if (!evict.ok()) {
        // Write-back failed: the frame stays resident and dirty (consistent,
        // retryable), and the sweep moves on to the other victims.
        if (first_error.ok()) first_error = evict;
        continue;
      }
      sh.free_frames.push_back(idx);
    }
  }
  return first_error;
}

}  // namespace secxml
