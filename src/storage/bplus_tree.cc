#include "storage/bplus_tree.h"

#include <algorithm>
#include <cassert>

namespace secxml {

namespace {

constexpr uint32_t kMagic = 0x53425854;  // "SBXT"
constexpr uint16_t kLeaf = 1;
constexpr uint16_t kInterior = 2;

// Node header, 8 bytes at offset 0 of every node page.
struct NodeHeader {
  uint16_t type = 0;
  uint16_t num_entries = 0;
  PageId next_leaf = kInvalidPage;  // leaves only
};
static_assert(sizeof(NodeHeader) == 8);

struct LeafEntry {
  uint64_t key;
  uint64_t value;
};
static_assert(sizeof(LeafEntry) == 16);

// Interior layout: header, child0 (u32), then num_entries * (key u64,
// child u32) packed at 12 bytes each.
constexpr size_t kLeafCap = (kPageSize - sizeof(NodeHeader)) / sizeof(LeafEntry);
constexpr size_t kInteriorCap =
    (kPageSize - sizeof(NodeHeader) - sizeof(PageId)) / 12;

size_t LeafEntryOffset(size_t i) {
  return sizeof(NodeHeader) + i * sizeof(LeafEntry);
}

PageId ReadChild(const Page& page, size_t i) {
  // child 0 sits right after the header; child i>0 follows separator i-1.
  if (i == 0) return page.ReadAt<PageId>(sizeof(NodeHeader));
  return page.ReadAt<PageId>(sizeof(NodeHeader) + sizeof(PageId) +
                             (i - 1) * 12 + 8);
}

uint64_t ReadSeparator(const Page& page, size_t i) {
  return page.ReadAt<uint64_t>(sizeof(NodeHeader) + sizeof(PageId) + i * 12);
}

void WriteInterior(Page* page, const std::vector<uint64_t>& seps,
                   const std::vector<PageId>& children) {
  assert(children.size() == seps.size() + 1);
  NodeHeader header;
  header.type = kInterior;
  header.num_entries = static_cast<uint16_t>(seps.size());
  page->Zero();
  page->WriteAt(0, header);
  page->WriteAt(sizeof(NodeHeader), children[0]);
  for (size_t i = 0; i < seps.size(); ++i) {
    page->WriteAt(sizeof(NodeHeader) + sizeof(PageId) + i * 12, seps[i]);
    page->WriteAt(sizeof(NodeHeader) + sizeof(PageId) + i * 12 + 8,
                  children[i + 1]);
  }
}

void ReadInterior(const Page& page, std::vector<uint64_t>* seps,
                  std::vector<PageId>* children) {
  NodeHeader header = page.ReadAt<NodeHeader>(0);
  seps->clear();
  children->clear();
  children->push_back(ReadChild(page, 0));
  for (size_t i = 0; i < header.num_entries; ++i) {
    seps->push_back(ReadSeparator(page, i));
    children->push_back(ReadChild(page, i + 1));
  }
}

void WriteLeaf(Page* page, const std::vector<LeafEntry>& entries,
               PageId next_leaf) {
  NodeHeader header;
  header.type = kLeaf;
  header.num_entries = static_cast<uint16_t>(entries.size());
  header.next_leaf = next_leaf;
  page->Zero();
  page->WriteAt(0, header);
  for (size_t i = 0; i < entries.size(); ++i) {
    page->WriteAt(LeafEntryOffset(i), entries[i]);
  }
}

void ReadLeaf(const Page& page, std::vector<LeafEntry>* entries,
              PageId* next_leaf) {
  NodeHeader header = page.ReadAt<NodeHeader>(0);
  entries->clear();
  for (size_t i = 0; i < header.num_entries; ++i) {
    entries->push_back(page.ReadAt<LeafEntry>(LeafEntryOffset(i)));
  }
  *next_leaf = header.next_leaf;
}

/// Child index to descend into: the number of separators <= key.
size_t DescentIndex(const std::vector<uint64_t>& seps, uint64_t key) {
  return static_cast<size_t>(
      std::upper_bound(seps.begin(), seps.end(), key) - seps.begin());
}

}  // namespace

Status BPlusTree::Create(PagedFile* file, size_t buffer_pool_pages,
                         std::unique_ptr<BPlusTree>* out) {
  if (file->NumPages() != 0) {
    return Status::InvalidArgument("Create requires an empty paged file");
  }
  std::unique_ptr<BPlusTree> tree(new BPlusTree(file, buffer_pool_pages));
  // Page 0: meta. Page 1: empty root leaf.
  SECXML_ASSIGN_OR_RETURN(PageHandle meta, tree->pool_.Allocate());
  (void)meta;
  SECXML_ASSIGN_OR_RETURN(PageHandle root, tree->pool_.Allocate());
  WriteLeaf(root.mutable_page(), {}, kInvalidPage);
  root.MarkDirty();
  tree->root_ = root.page_id();
  tree->height_ = 1;
  tree->num_entries_ = 0;
  SECXML_RETURN_NOT_OK(tree->WriteMeta());
  *out = std::move(tree);
  return Status::OK();
}

Status BPlusTree::Open(PagedFile* file, size_t buffer_pool_pages,
                       std::unique_ptr<BPlusTree>* out) {
  if (file->NumPages() < 2) {
    return Status::Corruption("not a B+-tree file");
  }
  std::unique_ptr<BPlusTree> tree(new BPlusTree(file, buffer_pool_pages));
  SECXML_ASSIGN_OR_RETURN(PageHandle meta, tree->pool_.Fetch(0));
  if (meta.page().ReadAt<uint32_t>(0) != kMagic) {
    return Status::Corruption("bad B+-tree magic");
  }
  tree->root_ = meta.page().ReadAt<PageId>(4);
  tree->height_ = meta.page().ReadAt<uint32_t>(8);
  tree->num_entries_ = meta.page().ReadAt<uint64_t>(16);
  *out = std::move(tree);
  return Status::OK();
}

Status BPlusTree::WriteMeta() {
  SECXML_ASSIGN_OR_RETURN(PageHandle meta, pool_.Fetch(0));
  meta.mutable_page()->Zero();
  meta.mutable_page()->WriteAt<uint32_t>(0, kMagic);
  meta.mutable_page()->WriteAt<PageId>(4, root_);
  meta.mutable_page()->WriteAt<uint32_t>(8, height_);
  meta.mutable_page()->WriteAt<uint64_t>(16, num_entries_);
  meta.MarkDirty();
  return Status::OK();
}

Status BPlusTree::FindLeaf(uint64_t key,
                           std::vector<std::pair<PageId, uint32_t>>* path,
                           PageId* leaf) {
  PageId current = root_;
  for (uint32_t level = 1; level < height_; ++level) {
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Fetch(current));
    std::vector<uint64_t> seps;
    std::vector<PageId> children;
    ReadInterior(handle.page(), &seps, &children);
    size_t idx = DescentIndex(seps, key);
    if (path != nullptr) {
      path->emplace_back(current, static_cast<uint32_t>(idx));
    }
    current = children[idx];
  }
  *leaf = current;
  return Status::OK();
}

Status BPlusTree::Insert(uint64_t key, uint64_t value) {
  std::vector<std::pair<PageId, uint32_t>> path;
  PageId leaf_id;
  SECXML_RETURN_NOT_OK(FindLeaf(key, &path, &leaf_id));

  std::vector<LeafEntry> entries;
  PageId next_leaf;
  {
    SECXML_ASSIGN_OR_RETURN(PageHandle leaf, pool_.Fetch(leaf_id));
    ReadLeaf(leaf.page(), &entries, &next_leaf);
  }
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const LeafEntry& e, uint64_t k) { return e.key < k; });
  if (it != entries.end() && it->key == key) {
    return Status::AlreadyExists("key " + std::to_string(key));
  }
  entries.insert(it, LeafEntry{key, value});
  ++num_entries_;

  if (entries.size() <= kLeafCap) {
    SECXML_ASSIGN_OR_RETURN(PageHandle leaf, pool_.Fetch(leaf_id));
    WriteLeaf(leaf.mutable_page(), entries, next_leaf);
    leaf.MarkDirty();
    return WriteMeta();
  }

  // Split: right half moves to a new leaf.
  size_t mid = entries.size() / 2;
  std::vector<LeafEntry> right_entries(entries.begin() + mid, entries.end());
  entries.resize(mid);
  uint64_t separator = right_entries.front().key;
  PageId right_id;
  {
    SECXML_ASSIGN_OR_RETURN(PageHandle right, pool_.Allocate());
    WriteLeaf(right.mutable_page(), right_entries, next_leaf);
    right.MarkDirty();
    right_id = right.page_id();
  }
  {
    SECXML_ASSIGN_OR_RETURN(PageHandle leaf, pool_.Fetch(leaf_id));
    WriteLeaf(leaf.mutable_page(), entries, right_id);
    leaf.MarkDirty();
  }
  SECXML_RETURN_NOT_OK(InsertIntoParent(std::move(path), separator, right_id));
  return WriteMeta();
}

Status BPlusTree::InsertIntoParent(
    std::vector<std::pair<PageId, uint32_t>> path, uint64_t separator,
    PageId new_child) {
  while (true) {
    if (path.empty()) {
      // Grow a new root.
      SECXML_ASSIGN_OR_RETURN(PageHandle root, pool_.Allocate());
      WriteInterior(root.mutable_page(), {separator}, {root_, new_child});
      root.MarkDirty();
      root_ = root.page_id();
      ++height_;
      return Status::OK();
    }
    auto [parent_id, child_idx] = path.back();
    path.pop_back();
    std::vector<uint64_t> seps;
    std::vector<PageId> children;
    {
      SECXML_ASSIGN_OR_RETURN(PageHandle parent, pool_.Fetch(parent_id));
      ReadInterior(parent.page(), &seps, &children);
    }
    seps.insert(seps.begin() + child_idx, separator);
    children.insert(children.begin() + child_idx + 1, new_child);
    if (seps.size() <= kInteriorCap) {
      SECXML_ASSIGN_OR_RETURN(PageHandle parent, pool_.Fetch(parent_id));
      WriteInterior(parent.mutable_page(), seps, children);
      parent.MarkDirty();
      return Status::OK();
    }
    // Split the interior node; the middle separator moves up.
    size_t mid = seps.size() / 2;
    uint64_t up = seps[mid];
    std::vector<uint64_t> right_seps(seps.begin() + mid + 1, seps.end());
    std::vector<PageId> right_children(children.begin() + mid + 1,
                                       children.end());
    seps.resize(mid);
    children.resize(mid + 1);
    PageId right_id;
    {
      SECXML_ASSIGN_OR_RETURN(PageHandle right, pool_.Allocate());
      WriteInterior(right.mutable_page(), right_seps, right_children);
      right.MarkDirty();
      right_id = right.page_id();
    }
    {
      SECXML_ASSIGN_OR_RETURN(PageHandle parent, pool_.Fetch(parent_id));
      WriteInterior(parent.mutable_page(), seps, children);
      parent.MarkDirty();
    }
    separator = up;
    new_child = right_id;
  }
}

Result<uint64_t> BPlusTree::Get(uint64_t key) {
  PageId leaf_id;
  SECXML_RETURN_NOT_OK(FindLeaf(key, nullptr, &leaf_id));
  SECXML_ASSIGN_OR_RETURN(PageHandle leaf, pool_.Fetch(leaf_id));
  NodeHeader header = leaf.page().ReadAt<NodeHeader>(0);
  // Binary search directly over the page.
  size_t lo = 0, hi = header.num_entries;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    LeafEntry e = leaf.page().ReadAt<LeafEntry>(LeafEntryOffset(mid));
    if (e.key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < header.num_entries) {
    LeafEntry e = leaf.page().ReadAt<LeafEntry>(LeafEntryOffset(lo));
    if (e.key == key) return e.value;
  }
  return Status::NotFound("key " + std::to_string(key));
}

Status BPlusTree::Delete(uint64_t key) {
  PageId leaf_id;
  SECXML_RETURN_NOT_OK(FindLeaf(key, nullptr, &leaf_id));
  std::vector<LeafEntry> entries;
  PageId next_leaf;
  SECXML_ASSIGN_OR_RETURN(PageHandle leaf, pool_.Fetch(leaf_id));
  ReadLeaf(leaf.page(), &entries, &next_leaf);
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const LeafEntry& e, uint64_t k) { return e.key < k; });
  if (it == entries.end() || it->key != key) {
    return Status::NotFound("key " + std::to_string(key));
  }
  entries.erase(it);
  WriteLeaf(leaf.mutable_page(), entries, next_leaf);
  leaf.MarkDirty();
  --num_entries_;
  return WriteMeta();
}

Status BPlusTree::Scan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, uint64_t)>& visit) {
  if (lo >= hi) return Status::OK();
  PageId leaf_id;
  SECXML_RETURN_NOT_OK(FindLeaf(lo, nullptr, &leaf_id));
  while (leaf_id != kInvalidPage) {
    SECXML_ASSIGN_OR_RETURN(PageHandle leaf, pool_.Fetch(leaf_id));
    NodeHeader header = leaf.page().ReadAt<NodeHeader>(0);
    for (size_t i = 0; i < header.num_entries; ++i) {
      LeafEntry e = leaf.page().ReadAt<LeafEntry>(LeafEntryOffset(i));
      if (e.key < lo) continue;
      if (e.key >= hi) return Status::OK();
      if (!visit(e.key, e.value)) return Status::OK();
    }
    leaf_id = header.next_leaf;
  }
  return Status::OK();
}

Status BPlusTree::ScanToVector(
    uint64_t lo, uint64_t hi,
    std::vector<std::pair<uint64_t, uint64_t>>* out) {
  out->clear();
  return Scan(lo, hi, [out](uint64_t k, uint64_t v) {
    out->emplace_back(k, v);
    return true;
  });
}

Status BPlusTree::Flush() { return pool_.FlushAll(); }

Status BPlusTree::CheckIntegrity() {
  // Iterative depth-first validation with (page, depth, key bounds).
  struct Frame {
    PageId page;
    uint32_t depth;
    uint64_t lo;
    bool has_lo;
    uint64_t hi;
    bool has_hi;
  };
  std::vector<Frame> stack = {{root_, 1, 0, false, 0, false}};
  uint64_t counted = 0;
  std::vector<PageId> leaves_in_order;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Fetch(f.page));
    NodeHeader header = handle.page().ReadAt<NodeHeader>(0);
    if (f.depth == height_) {
      if (header.type != kLeaf) {
        return Status::Corruption("expected leaf at bottom level");
      }
      uint64_t prev = 0;
      bool first = true;
      for (size_t i = 0; i < header.num_entries; ++i) {
        LeafEntry e = handle.page().ReadAt<LeafEntry>(LeafEntryOffset(i));
        if (!first && e.key <= prev) {
          return Status::Corruption("leaf keys not strictly ascending");
        }
        if ((f.has_lo && e.key < f.lo) || (f.has_hi && e.key >= f.hi)) {
          return Status::Corruption("leaf key outside separator bounds");
        }
        prev = e.key;
        first = false;
        ++counted;
      }
      leaves_in_order.push_back(f.page);
      continue;
    }
    if (header.type != kInterior) {
      return Status::Corruption("expected interior node");
    }
    std::vector<uint64_t> seps;
    std::vector<PageId> children;
    ReadInterior(handle.page(), &seps, &children);
    for (size_t i = 1; i < seps.size(); ++i) {
      if (seps[i] <= seps[i - 1]) {
        return Status::Corruption("separators not ascending");
      }
    }
    // Push children in reverse so they are visited left-to-right.
    for (size_t i = children.size(); i-- > 0;) {
      Frame child;
      child.page = children[i];
      child.depth = f.depth + 1;
      child.has_lo = i > 0 || f.has_lo;
      child.lo = i > 0 ? seps[i - 1] : f.lo;
      child.has_hi = i < seps.size() || f.has_hi;
      child.hi = i < seps.size() ? seps[i] : f.hi;
      stack.push_back(child);
    }
  }
  if (counted != num_entries_) {
    return Status::Corruption("entry count mismatch");
  }
  // Leaf chain must visit the leaves in left-to-right order.
  for (size_t i = 0; i + 1 < leaves_in_order.size(); ++i) {
    SECXML_ASSIGN_OR_RETURN(PageHandle leaf, pool_.Fetch(leaves_in_order[i]));
    if (leaf.page().ReadAt<NodeHeader>(0).next_leaf != leaves_in_order[i + 1]) {
      return Status::Corruption("broken leaf chain");
    }
  }
  if (!leaves_in_order.empty()) {
    SECXML_ASSIGN_OR_RETURN(PageHandle last,
                            pool_.Fetch(leaves_in_order.back()));
    if (last.page().ReadAt<NodeHeader>(0).next_leaf != kInvalidPage) {
      return Status::Corruption("last leaf must end the chain");
    }
  }
  return Status::OK();
}

}  // namespace secxml
