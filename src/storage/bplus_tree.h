#ifndef SECXML_STORAGE_BPLUS_TREE_H_
#define SECXML_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace secxml {

/// Disk-based B+-tree mapping uint64 keys to uint64 values, unique keys.
/// NoK query processing starts pattern matching from "B+ trees on the
/// subtree root's value or tag names" (paper Section 4.1); DiskTagIndex
/// builds its tag postings on this structure.
///
/// Layout: page 0 is the meta page (root id, height, entry count); interior
/// pages hold separator keys and child ids; leaf pages hold sorted
/// (key, value) entries and are forward-chained for range scans. All access
/// goes through a BufferPool, so lookups and scans are measurable in page
/// reads like the rest of the system.
class BPlusTree {
 public:
  /// Creates a new tree on an empty paged file.
  static Status Create(PagedFile* file, size_t buffer_pool_pages,
                       std::unique_ptr<BPlusTree>* out);

  /// Opens an existing tree.
  static Status Open(PagedFile* file, size_t buffer_pool_pages,
                     std::unique_ptr<BPlusTree>* out);

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts a new key. Fails with AlreadyExists if the key is present.
  Status Insert(uint64_t key, uint64_t value);

  /// Point lookup; NotFound if absent.
  Result<uint64_t> Get(uint64_t key);

  /// Removes a key; NotFound if absent. Leaves may become underfull (lazy
  /// deletion; pages are reclaimed only on rebuild).
  Status Delete(uint64_t key);

  /// Visits all entries with lo <= key < hi in ascending key order. The
  /// visitor returns false to stop early.
  Status Scan(uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t key, uint64_t value)>& visit);

  /// Collects a range scan into vectors (convenience).
  Status ScanToVector(uint64_t lo, uint64_t hi,
                      std::vector<std::pair<uint64_t, uint64_t>>* out);

  uint64_t num_entries() const { return num_entries_; }
  uint32_t height() const { return height_; }

  /// Writes back dirty pages (including the meta page).
  Status Flush();

  const IoStats& io_stats() const { return pool_.stats(); }
  BufferPool* buffer_pool() { return &pool_; }

  /// Validates tree invariants: sorted keys, separator consistency, uniform
  /// leaf depth, correct leaf chaining and entry count.
  Status CheckIntegrity();

 private:
  BPlusTree(PagedFile* file, size_t pool_pages) : pool_(file, pool_pages) {}

  Status WriteMeta();
  /// Descends to the leaf that should hold `key`, recording the path of
  /// (page id, child index) through interior pages.
  Status FindLeaf(uint64_t key, std::vector<std::pair<PageId, uint32_t>>* path,
                  PageId* leaf);
  Status SplitLeaf(PageId leaf_id,
                   const std::vector<std::pair<PageId, uint32_t>>& path);
  Status InsertIntoParent(std::vector<std::pair<PageId, uint32_t>> path,
                          uint64_t separator, PageId new_child);

  BufferPool pool_;
  PageId root_ = kInvalidPage;
  uint32_t height_ = 1;  // 1 = root is a leaf
  uint64_t num_entries_ = 0;
};

}  // namespace secxml

#endif  // SECXML_STORAGE_BPLUS_TREE_H_
