#ifndef SECXML_STORAGE_PAGE_H_
#define SECXML_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace secxml {

/// Disk page size in bytes. The paper's evaluation (Section 5.2) stores the
/// document with 4 KB pages.
inline constexpr size_t kPageSize = 4096;

/// Identifier of a physical page within a paged file.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPage = 0xffffffffu;

/// A fixed-size page buffer. Typed reads/writes go through ReadAt/WriteAt to
/// keep aliasing well-defined.
struct Page {
  std::array<uint8_t, kPageSize> data;

  void Zero() { data.fill(0); }

  /// Copies a trivially-copyable T out of the page at byte `offset`.
  template <typename T>
  T ReadAt(size_t offset) const {
    T value;
    std::memcpy(&value, data.data() + offset, sizeof(T));
    return value;
  }

  /// Copies a trivially-copyable T into the page at byte `offset`.
  template <typename T>
  void WriteAt(size_t offset, const T& value) {
    std::memcpy(data.data() + offset, &value, sizeof(T));
  }
};

}  // namespace secxml

#endif  // SECXML_STORAGE_PAGE_H_
