#ifndef SECXML_STORAGE_MMAP_FILE_H_
#define SECXML_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/paged_file.h"

namespace secxml {

/// Read-only memory-mapped paged file: serves a persisted store without a
/// FILE* lock or a read syscall per page (the mmap read-path item from the
/// PR 7 roadmap). Page reads are one memcpy out of the mapping into the
/// buffer-pool frame; the kernel's page cache backs the mapping, so
/// repeated cold reads of one store share physical memory across processes.
///
/// Fail-closed contract (exercised by the fault suite):
///  - every access is bounds-checked against the size captured at Open(),
///    so a caller can never be walked into a SIGBUS — out-of-range reads
///    return OutOfRange, and a trailing partial page is excluded from
///    NumPages() entirely;
///  - WritePage/AllocatePage/Sync-with-effect are denied with
///    InvalidArgument (the mapping is PROT_READ; nothing can dirty it).
///
/// Concurrency: the mapping is immutable after Open(), so reads need no
/// synchronization at all.
class MmapPagedFile final : public PagedFile {
 public:
  /// Maps `path` read-only. Fails if the file cannot be opened or mapped.
  /// An empty file maps to a valid 0-page store.
  static Result<std::unique_ptr<MmapPagedFile>> Open(const std::string& path);

  ~MmapPagedFile() override;

  MmapPagedFile(const MmapPagedFile&) = delete;
  MmapPagedFile& operator=(const MmapPagedFile&) = delete;

  PageId NumPages() const override { return num_pages_; }
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Status Sync() override;

 private:
  MmapPagedFile(const uint8_t* data, size_t mapped_len, PageId num_pages)
      : data_(data), mapped_len_(mapped_len), num_pages_(num_pages) {}

  const uint8_t* data_;  ///< nullptr for an empty (0-page) file
  size_t mapped_len_;
  PageId num_pages_;
};

}  // namespace secxml

#endif  // SECXML_STORAGE_MMAP_FILE_H_
