#include "storage/wal.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "storage/page.h"

namespace secxml {
namespace {

constexpr uint32_t kHeaderMagic = 0x53584c57u;  // "SXLW"
constexpr uint32_t kRecordMagic = 0x57524543u;  // "WREC"
constexpr uint32_t kVersion = 1;

// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0) {
  const auto& table = CrcTable();
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// One header slot: two live in page 0, at byte offsets 0 and kPageSize/2.
// The slot with the higher valid seq wins; updates go to the loser, so a
// torn rewrite of page 0 can never destroy the last durable header.
struct HeaderSlot {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t seq = 0;
  uint32_t pad = 0;
  uint64_t start_offset = 0;
  uint64_t next_lsn = 0;
  uint32_t crc = 0;

  uint32_t ComputeCrc() const {
    return Crc32(reinterpret_cast<const uint8_t*>(this),
                 offsetof(HeaderSlot, crc));
  }
  bool Valid() const {
    return magic == kHeaderMagic && version == kVersion && crc == ComputeCrc();
  }
};
static_assert(sizeof(HeaderSlot) <= kPageSize / 2);

// Record frame preceding the payload. The CRC trails the payload and covers
// everything after the magic word.
struct RecordHeader {
  uint32_t magic = 0;
  uint32_t type = 0;
  uint64_t lsn = 0;
  uint32_t payload_len = 0;
};
static_assert(sizeof(RecordHeader) == 24);

constexpr size_t kSlotOffsets[2] = {0, kPageSize / 2};

// Data-region byte `offset` lives in page 1 + offset / kPageSize.
PageId DataPage(uint64_t offset) {
  return static_cast<PageId>(1 + offset / kPageSize);
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(PagedFile* file) {
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(file));
  if (file->NumPages() == 0) {
    // Fresh log: allocate the header page and persist slot 0.
    SECXML_ASSIGN_OR_RETURN(PageId id, file->AllocatePage());
    (void)id;
    Status st = wal->WriteHeader();
    if (!st.ok()) return st;
    return wal;
  }
  Page header_page;
  Status st = file->ReadPage(0, &header_page);
  if (!st.ok()) return st;
  const HeaderSlot* best = nullptr;
  for (size_t off : kSlotOffsets) {
    const auto* slot =
        reinterpret_cast<const HeaderSlot*>(header_page.data.data() + off);
    if (slot->Valid() && (best == nullptr || slot->seq > best->seq)) {
      best = slot;
    }
  }
  if (best == nullptr) {
    return Status::Corruption("WAL header page has no valid slot");
  }
  wal->start_offset_ = best->start_offset;
  wal->next_lsn_ = best->next_lsn;
  wal->header_seq_ = best->seq;
  wal->ScanExisting();
  return wal;
}

void WriteAheadLog::ScanExisting() {
  // Last possible data byte, bounded by what was actually allocated.
  const uint64_t data_bytes =
      file_->NumPages() <= 1
          ? 0
          : static_cast<uint64_t>(file_->NumPages() - 1) * kPageSize;
  uint64_t offset = start_offset_;
  tail_offset_ = offset;
  while (offset + sizeof(RecordHeader) + sizeof(uint32_t) <= data_bytes) {
    RecordHeader rh;
    if (!ReadBytes(offset, sizeof(rh), reinterpret_cast<uint8_t*>(&rh)).ok()) {
      break;
    }
    if (rh.magic != kRecordMagic) break;
    uint64_t total = sizeof(rh) + rh.payload_len + sizeof(uint32_t);
    if (offset + total > data_bytes) break;  // truncated frame
    std::vector<uint8_t> body(rh.payload_len + sizeof(uint32_t));
    if (!ReadBytes(offset + sizeof(rh), body.size(), body.data()).ok()) break;
    uint32_t stored_crc;
    std::memcpy(&stored_crc, body.data() + rh.payload_len, sizeof(stored_crc));
    uint32_t crc = Crc32(reinterpret_cast<const uint8_t*>(&rh.type),
                         sizeof(rh) - offsetof(RecordHeader, type));
    crc = Crc32(body.data(), rh.payload_len, crc);
    if (crc != stored_crc) break;  // torn or unsynced tail
    Record rec;
    rec.type = rh.type;
    rec.lsn = rh.lsn;
    rec.payload.assign(reinterpret_cast<const char*>(body.data()),
                       rh.payload_len);
    records_.push_back(std::move(rec));
    ++stats_.records_recovered;
    offset += total;
    tail_offset_ = offset;
  }
  // Anything between tail_offset_ and the end of allocated pages is a torn
  // or invalidated tail; note it for the recovery stats.
  if (tail_offset_ < data_bytes) {
    RecordHeader probe{};
    if (ReadBytes(tail_offset_, std::min<uint64_t>(sizeof(probe),
                                                   data_bytes - tail_offset_),
                  reinterpret_cast<uint8_t*>(&probe))
            .ok() &&
        probe.magic != 0) {
      stats_.torn_tail = 1;
    }
  }
  for (const Record& r : records_) {
    next_lsn_ = std::max(next_lsn_, r.lsn + 1);
  }
}

Status WriteAheadLog::ReadBytes(uint64_t offset, size_t len,
                                uint8_t* out) const {
  size_t done = 0;
  while (done < len) {
    PageId id = DataPage(offset + done);
    size_t in_page = (offset + done) % kPageSize;
    size_t take = std::min(len - done, kPageSize - in_page);
    Page page;
    Status st = file_->ReadPage(id, &page);
    if (!st.ok()) return st;
    std::memcpy(out + done, page.data.data() + in_page, take);
    done += take;
  }
  return Status::OK();
}

Status WriteAheadLog::WriteBytes(uint64_t offset, const uint8_t* data,
                                 size_t len) {
  size_t done = 0;
  while (done < len) {
    PageId id = DataPage(offset + done);
    while (file_->NumPages() <= id) {
      SECXML_ASSIGN_OR_RETURN(PageId fresh, file_->AllocatePage());
      (void)fresh;
    }
    size_t in_page = (offset + done) % kPageSize;
    size_t take = std::min(len - done, kPageSize - in_page);
    Page page;
    if (in_page != 0 || take != kPageSize) {
      Status st = file_->ReadPage(id, &page);
      if (!st.ok()) return st;
    } else {
      page.Zero();
    }
    std::memcpy(page.data.data() + in_page, data, take);
    Status st = file_->WritePage(id, page);
    if (!st.ok()) return st;
    data += take;
    done += take;
  }
  return Status::OK();
}

Status WriteAheadLog::WriteHeader() {
  HeaderSlot slot;
  slot.magic = kHeaderMagic;
  slot.version = kVersion;
  slot.seq = header_seq_ + 1;
  slot.start_offset = start_offset_;
  slot.next_lsn = next_lsn_;
  slot.crc = slot.ComputeCrc();
  Page page;
  Status st = file_->ReadPage(0, &page);
  if (!st.ok()) return st;
  // Alternate slots by seq parity so the previous durable header survives
  // even a torn rewrite of this page.
  size_t off = kSlotOffsets[slot.seq % 2];
  std::memcpy(page.data.data() + off, &slot, sizeof(slot));
  st = file_->WritePage(0, page);
  if (!st.ok()) return st;
  st = file_->Sync();
  if (!st.ok()) return st;
  ++stats_.syncs;
  header_seq_ = slot.seq;
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Append(uint32_t type,
                                       std::string_view payload) {
  RecordHeader rh;
  rh.magic = kRecordMagic;
  rh.type = type;
  rh.lsn = next_lsn_;
  rh.payload_len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32(reinterpret_cast<const uint8_t*>(&rh.type),
                       sizeof(rh) - offsetof(RecordHeader, type));
  crc = Crc32(reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
              crc);
  std::vector<uint8_t> frame(sizeof(rh) + payload.size() + sizeof(crc));
  std::memcpy(frame.data(), &rh, sizeof(rh));
  std::memcpy(frame.data() + sizeof(rh), payload.data(), payload.size());
  std::memcpy(frame.data() + sizeof(rh) + payload.size(), &crc, sizeof(crc));

  Status st = WriteBytes(tail_offset_, frame.data(), frame.size());
  if (st.ok()) {
    st = file_->Sync();
    if (st.ok()) ++stats_.syncs;
  }
  if (!st.ok()) {
    ++stats_.append_failures;
    // The record must not count as committed: best-effort durably zero its
    // magic word so recovery cannot resurrect a half-landed frame. If even
    // this fails the frame's fate rests on which bytes reached the device;
    // recovery handles both outcomes (see class comment).
    uint32_t zero = 0;
    if (WriteBytes(tail_offset_, reinterpret_cast<const uint8_t*>(&zero),
                   sizeof(zero))
            .ok()) {
      (void)file_->Sync();
    }
    return st;
  }
  Record rec;
  rec.type = type;
  rec.lsn = rh.lsn;
  rec.payload.assign(payload.data(), payload.size());
  records_.push_back(std::move(rec));
  tail_offset_ += frame.size();
  next_lsn_ = rh.lsn + 1;
  ++stats_.records_appended;
  stats_.bytes_appended += frame.size();
  return rh.lsn;
}

Status WriteAheadLog::Replay(
    uint64_t after_lsn, const std::function<Status(const Record&)>& fn) const {
  for (const Record& rec : records_) {
    if (rec.lsn <= after_lsn) continue;
    Status st = fn(rec);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  uint64_t old_start = start_offset_;
  start_offset_ = tail_offset_;
  Status st = WriteHeader();
  if (!st.ok()) {
    // The durable header still carries the old start: keep the in-memory
    // view consistent with it so a later retry (or crash) sees one truth.
    start_offset_ = old_start;
    return st;
  }
  records_.clear();
  ++stats_.truncations;
  return Status::OK();
}

}  // namespace secxml
