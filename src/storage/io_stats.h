#ifndef SECXML_STORAGE_IO_STATS_H_
#define SECXML_STORAGE_IO_STATS_H_

#include <cstdint>

namespace secxml {

/// Counters for physical page traffic. The paper's central performance claim
/// is that DOL accessibility checks add no I/O to NoK query evaluation, so
/// the benchmarks observe these counters rather than (only) wall-clock time.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  /// Buffer-pool hits that avoided a physical read.
  uint64_t cache_hits = 0;
  /// Page loads avoided entirely via the in-memory DOL page headers
  /// (Section 3.3's "skip fully inaccessible page" optimization).
  uint64_t pages_skipped = 0;

  void Reset() { *this = IoStats{}; }
};

}  // namespace secxml

#endif  // SECXML_STORAGE_IO_STATS_H_
