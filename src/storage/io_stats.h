#ifndef SECXML_STORAGE_IO_STATS_H_
#define SECXML_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace secxml {

/// A plain-value copy of the IoStats counters, taken at one instant. Used to
/// compute deltas over a batch of work and to report aggregates from code
/// that must not hold references into a live (still-changing) counter set.
struct IoStatsSnapshot {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t cache_hits = 0;
  uint64_t pages_skipped = 0;

  IoStatsSnapshot operator-(const IoStatsSnapshot& rhs) const {
    return {page_reads - rhs.page_reads, page_writes - rhs.page_writes,
            cache_hits - rhs.cache_hits, pages_skipped - rhs.pages_skipped};
  }
};

/// Counters for physical page traffic. The paper's central performance claim
/// is that DOL accessibility checks add no I/O to NoK query evaluation, so
/// the benchmarks observe these counters rather than (only) wall-clock time.
///
/// The counters are atomic so that concurrent queries sharing one buffer
/// pool account their traffic without torn or dropped increments. Updates
/// need no ordering guarantees (they are statistics, not synchronization),
/// so writers may use relaxed operations; the implicit conversions used by
/// existing call sites (`++stats.page_reads`, `uint64_t r = stats.cache_hits`)
/// remain valid on the atomic fields.
struct IoStats {
  std::atomic<uint64_t> page_reads{0};
  std::atomic<uint64_t> page_writes{0};
  /// Buffer-pool hits that avoided a physical read.
  std::atomic<uint64_t> cache_hits{0};
  /// Page loads avoided entirely via the in-memory DOL page headers
  /// (Section 3.3's "skip fully inaccessible page" optimization).
  std::atomic<uint64_t> pages_skipped{0};

  void Reset() {
    page_reads.store(0, std::memory_order_relaxed);
    page_writes.store(0, std::memory_order_relaxed);
    cache_hits.store(0, std::memory_order_relaxed);
    pages_skipped.store(0, std::memory_order_relaxed);
  }

  IoStatsSnapshot Snapshot() const {
    return {page_reads.load(std::memory_order_relaxed),
            page_writes.load(std::memory_order_relaxed),
            cache_hits.load(std::memory_order_relaxed),
            pages_skipped.load(std::memory_order_relaxed)};
  }
};

}  // namespace secxml

#endif  // SECXML_STORAGE_IO_STATS_H_
