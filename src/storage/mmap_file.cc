#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace secxml {

Result<std::unique_ptr<MmapPagedFile>> MmapPagedFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("mmap open failed: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err = Status::IOError("mmap fstat failed: " + path + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return err;
  }
  const size_t len = static_cast<size_t>(st.st_size);
  // Only whole pages are served; a trailing partial page (an extend that
  // died mid-write) is invisible rather than a SIGBUS waiting to happen.
  const PageId pages = static_cast<PageId>(len / kPageSize);
  const uint8_t* data = nullptr;
  if (pages > 0) {
    void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      Status err = Status::IOError("mmap failed: " + path + ": " +
                                   std::strerror(errno));
      ::close(fd);
      return err;
    }
    data = static_cast<const uint8_t*>(map);
  }
  ::close(fd);  // the mapping keeps the file referenced
  return std::unique_ptr<MmapPagedFile>(new MmapPagedFile(data, len, pages));
}

MmapPagedFile::~MmapPagedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), mapped_len_);
  }
}

Result<PageId> MmapPagedFile::AllocatePage() {
  return Status::InvalidArgument("MmapPagedFile is read-only: AllocatePage");
}

Status MmapPagedFile::ReadPage(PageId id, Page* out) {
  if (id >= num_pages_) {
    return Status::OutOfRange("mmap read past end of file");
  }
  std::memcpy(out->data.data(), data_ + static_cast<size_t>(id) * kPageSize,
              kPageSize);
  return Status::OK();
}

Status MmapPagedFile::WritePage(PageId id, const Page& page) {
  (void)id;
  (void)page;
  return Status::InvalidArgument("MmapPagedFile is read-only: WritePage");
}

Status MmapPagedFile::Sync() {
  // Nothing can be dirty; succeeding keeps read-only pipelines (which sync
  // defensively) working unchanged.
  return Status::OK();
}

}  // namespace secxml
