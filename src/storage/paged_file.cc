#include "storage/paged_file.h"

#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace secxml {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

/// Seeks to the byte offset of page `id`. off_t arithmetic, so files beyond
/// 2 GB don't overflow the long used by plain fseek on 32-bit off_t ABIs.
int SeekToPage(std::FILE* f, PageId id) {
  return ::fseeko(f, static_cast<off_t>(id) * static_cast<off_t>(kPageSize),
                  SEEK_SET);
}

}  // namespace

Result<PageId> MemPagedFile::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.push_back(std::make_unique<Page>());
  pages_.back()->Zero();
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemPagedFile::ReadPage(PageId id, Page* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("read of unallocated page " + std::to_string(id));
  }
  *out = *pages_[id];
  return Status::OK();
}

Status MemPagedFile::WritePage(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  *pages_[id] = page;
  return Status::OK();
}

Result<std::unique_ptr<FilePagedFile>> FilePagedFile::Create(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) return Errno("cannot create", path);
  return std::unique_ptr<FilePagedFile>(new FilePagedFile(f, path, 0));
}

Result<std::unique_ptr<FilePagedFile>> FilePagedFile::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return Errno("cannot open", path);
  if (::fseeko(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Errno("cannot seek", path);
  }
  off_t size = ::ftello(f);
  if (size < 0) {
    std::fclose(f);
    return Errno("cannot tell size of", path);
  }
  if (size % static_cast<off_t>(kPageSize) != 0) {
    // A trailing partial page is the signature of an extend that died
    // between growing the file and completing the page write (power loss,
    // full disk). The allocation was never acknowledged, so discarding the
    // fragment restores the last consistent state.
    off_t aligned = size - size % static_cast<off_t>(kPageSize);
    if (std::fflush(f) != 0 || ::ftruncate(::fileno(f), aligned) != 0) {
      std::fclose(f);
      return Status::Corruption(
          "file size of '" + path +
          "' is not a multiple of the page size and the partial tail "
          "could not be truncated away");
    }
    size = aligned;
  }
  PageId pages = static_cast<PageId>(size / static_cast<off_t>(kPageSize));
  return std::unique_ptr<FilePagedFile>(new FilePagedFile(f, path, pages));
}

FilePagedFile::~FilePagedFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<PageId> FilePagedFile::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  Page zero;
  zero.Zero();
  PageId id = num_pages_;
  if (SeekToPage(file_, id) != 0) {
    std::clearerr(file_);
    return Errno("cannot seek", path_);
  }
  errno = 0;
  if (std::fwrite(zero.data.data(), kPageSize, 1, file_) != 1) {
    Status failure = Errno("cannot extend", path_);
    // A short fwrite may have grown the file by a fraction of a page. Left
    // in place it makes the size non-page-aligned, so every later Open()
    // would reject the store; truncate back so the failed allocate leaves
    // no trace. clearerr first: the sticky stdio error flag would otherwise
    // fail every subsequent call on this FILE*.
    std::clearerr(file_);
    (void)std::fflush(file_);
    (void)::ftruncate(::fileno(file_),
                      static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
    return failure;
  }
  ++num_pages_;
  return id;
}

Status FilePagedFile::ReadPage(PageId id, Page* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= num_pages_) {
    return Status::OutOfRange("read of unallocated page " + std::to_string(id));
  }
  if (SeekToPage(file_, id) != 0) {
    std::clearerr(file_);
    return Errno("cannot seek", path_);
  }
  errno = 0;
  if (std::fread(out->data.data(), kPageSize, 1, file_) != 1) {
    // EOF means the file is shorter than the directory says (truncated
    // underneath us) — that is corruption, not a device error, and errno is
    // stale there, so don't report strerror noise. Either way clear the
    // sticky stdio flags so one failed read doesn't poison every later
    // operation on this shared FILE*.
    bool eof = std::feof(file_) != 0;
    Status failure =
        eof ? Status::Corruption("page " + std::to_string(id) + " of '" +
                                 path_ + "' lies beyond end of file")
            : Errno("cannot read page " + std::to_string(id) + " from", path_);
    std::clearerr(file_);
    return failure;
  }
  return Status::OK();
}

Status FilePagedFile::WritePage(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= num_pages_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  if (SeekToPage(file_, id) != 0) {
    std::clearerr(file_);
    return Errno("cannot seek", path_);
  }
  errno = 0;
  if (std::fwrite(page.data.data(), kPageSize, 1, file_) != 1) {
    Status failure =
        Errno("cannot write page " + std::to_string(id) + " to", path_);
    std::clearerr(file_);
    return failure;
  }
  return Status::OK();
}

Status FilePagedFile::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  errno = 0;
  if (std::fflush(file_) != 0) {
    Status failure = Errno("cannot flush", path_);
    std::clearerr(file_);
    return failure;
  }
  return Status::OK();
}

Status LatencyPagedFile::ReadPage(PageId id, Page* out) {
  if (read_latency_.count() > 0) {
    std::this_thread::sleep_for(read_latency_);
    delay_micros_.fetch_add(static_cast<uint64_t>(read_latency_.count()),
                            std::memory_order_relaxed);
  }
  return base_->ReadPage(id, out);
}

}  // namespace secxml
