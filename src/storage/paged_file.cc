#include "storage/paged_file.h"

#include <cerrno>
#include <cstring>
#include <thread>

namespace secxml {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Result<PageId> MemPagedFile::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.push_back(std::make_unique<Page>());
  pages_.back()->Zero();
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemPagedFile::ReadPage(PageId id, Page* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("read of unallocated page " + std::to_string(id));
  }
  *out = *pages_[id];
  return Status::OK();
}

Status MemPagedFile::WritePage(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  *pages_[id] = page;
  return Status::OK();
}

Result<std::unique_ptr<FilePagedFile>> FilePagedFile::Create(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) return Errno("cannot create", path);
  return std::unique_ptr<FilePagedFile>(new FilePagedFile(f, path, 0));
}

Result<std::unique_ptr<FilePagedFile>> FilePagedFile::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return Errno("cannot open", path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Errno("cannot seek", path);
  }
  long size = std::ftell(f);
  if (size < 0 || size % static_cast<long>(kPageSize) != 0) {
    std::fclose(f);
    return Status::Corruption("file size of '" + path +
                              "' is not a multiple of the page size");
  }
  PageId pages = static_cast<PageId>(size / static_cast<long>(kPageSize));
  return std::unique_ptr<FilePagedFile>(new FilePagedFile(f, path, pages));
}

FilePagedFile::~FilePagedFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<PageId> FilePagedFile::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  Page zero;
  zero.Zero();
  PageId id = num_pages_;
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Errno("cannot seek", path_);
  }
  if (std::fwrite(zero.data.data(), kPageSize, 1, file_) != 1) {
    return Errno("cannot extend", path_);
  }
  ++num_pages_;
  return id;
}

Status FilePagedFile::ReadPage(PageId id, Page* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= num_pages_) {
    return Status::OutOfRange("read of unallocated page " + std::to_string(id));
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Errno("cannot seek", path_);
  }
  if (std::fread(out->data.data(), kPageSize, 1, file_) != 1) {
    return Errno("short read from", path_);
  }
  return Status::OK();
}

Status FilePagedFile::WritePage(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= num_pages_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Errno("cannot seek", path_);
  }
  if (std::fwrite(page.data.data(), kPageSize, 1, file_) != 1) {
    return Errno("short write to", path_);
  }
  return Status::OK();
}

Status FilePagedFile::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fflush(file_) != 0) return Errno("cannot flush", path_);
  return Status::OK();
}

Status LatencyPagedFile::ReadPage(PageId id, Page* out) {
  if (read_latency_.count() > 0) {
    std::this_thread::sleep_for(read_latency_);
    delay_micros_.fetch_add(static_cast<uint64_t>(read_latency_.count()),
                            std::memory_order_relaxed);
  }
  return base_->ReadPage(id, out);
}

}  // namespace secxml
