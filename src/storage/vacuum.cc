#include "storage/vacuum.h"

#include <algorithm>

namespace secxml {

VacuumPlan PlanVisibilityClusteredLayout(std::span<const uint32_t> codes,
                                         const PageGeometry& geometry,
                                         const VacuumPlanOptions& options) {
  VacuumPlan plan;
  if (codes.empty()) return plan;

  const size_t geometric_max =
      geometry.record_bytes == 0 || geometry.page_bytes <= geometry.header_bytes
          ? 0
          : (geometry.page_bytes - geometry.header_bytes) /
                geometry.record_bytes;
  const size_t max_records = options.max_records_per_page == 0
                                 ? geometric_max
                                 : std::min(options.max_records_per_page,
                                            geometric_max);

  // Records + transitions grow toward each other; a page holding `records`
  // records and `transitions` embedded transitions (plus the update slack)
  // fits when both ends stay inside the page.
  auto fits = [&](size_t records, size_t transitions) {
    return geometry.header_bytes + records * geometry.record_bytes +
               (transitions + options.transition_slack) *
                   geometry.transition_bytes <=
           geometry.page_bytes;
  };

  // Length of the code run starting at each record (one backward scan), so
  // the greedy pass can isolate a long run BEFORE entering it rather than
  // discovering it too late inside a mixed page.
  std::vector<size_t> run_len(codes.size());
  run_len[codes.size() - 1] = 1;
  for (size_t i = codes.size() - 1; i-- > 0;) {
    run_len[i] = codes[i] == codes[i + 1] ? run_len[i + 1] + 1 : 1;
  }

  // One greedy left-to-right pass. The current page is cut when it is full,
  // or at a code-run boundary where cutting preserves or creates
  // homogeneity: either the page so far is one clean run worth keeping
  // (>= min_run_records, so closing it leaves a change-bit-clear page), or
  // the run about to start is long enough to deserve fresh pages of its
  // own. Boundaries between short runs never cut — noise coalesces into
  // capacity-packed mixed pages instead of fragmenting the page count.
  size_t page_start = 0;
  size_t page_transitions = 0;
  plan.page_starts.push_back(0);
  for (size_t i = 1; i < codes.size(); ++i) {
    const bool run_boundary = codes[i] != codes[i - 1];
    const size_t count = i - page_start;
    const bool full = count >= max_records ||
                      !fits(count + 1, page_transitions + (run_boundary ? 1 : 0));
    const bool cluster_cut =
        run_boundary &&
        ((page_transitions == 0 && count >= options.min_run_records) ||
         run_len[i] >= options.min_run_records);
    if (full || cluster_cut) {
      plan.transitions += page_transitions;
      if (page_transitions == 0) {
        ++plan.homogeneous_pages;
      } else {
        ++plan.mixed_pages;
      }
      plan.page_starts.push_back(i);
      page_start = i;
      page_transitions = 0;
    } else if (run_boundary) {
      ++page_transitions;
    }
  }
  plan.transitions += page_transitions;
  if (page_transitions == 0) {
    ++plan.homogeneous_pages;
  } else {
    ++plan.mixed_pages;
  }
  return plan;
}

}  // namespace secxml
