#ifndef SECXML_STORAGE_FAULT_FILE_H_
#define SECXML_STORAGE_FAULT_FILE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/paged_file.h"

namespace secxml {

/// Which PagedFile operation a fault targets.
enum class FaultOp : uint8_t { kRead = 0, kWrite = 1, kSync = 2, kAllocate = 3 };

/// Configuration of a FaultInjectingPagedFile. All probabilities are drawn
/// from one seeded deterministic RNG, so a given (seed, operation sequence)
/// pair injects exactly the same faults on every run.
struct FaultOptions {
  uint64_t seed = 1;
  /// Independent per-call fault probabilities (0 disables that class).
  double read_fault_prob = 0.0;
  double write_fault_prob = 0.0;
  double sync_fault_prob = 0.0;
  double allocate_fault_prob = 0.0;
  /// Persistent faults: a page that draws a read/write fault is remembered
  /// and every later read/write of it fails too (a bad-sector model, which
  /// no amount of retrying cures). Transient (false): every call draws
  /// independently, so a retry usually succeeds.
  bool persistent = false;
  /// Torn writes: an injected write fault first pushes a half-new/half-old
  /// page image into the base file before reporting failure, modeling a
  /// sector-granular torn write.
  bool torn_writes = false;
  /// Short extends: an injected allocate fault lets the base allocation
  /// happen before reporting failure, so the file grew but the caller
  /// believes it did not — a partially applied extend.
  bool short_extends = false;
};

/// Decorator that injects deterministic, seeded faults into a base
/// PagedFile. Stackable anywhere a PagedFile goes (under a BufferPool, under
/// a RetryingPagedFile, over a LatencyPagedFile). Internally synchronized,
/// like every PagedFile.
///
/// Besides the probabilistic chaos mode configured by FaultOptions, tests
/// can arm exact one-shot faults (FailNext) and per-page persistent faults
/// (SetPageFault) for precise error-path coverage. Injected faults always
/// surface as Status::IOError with an "injected" message, so tests can tell
/// them from real failures of the base file.
class FaultInjectingPagedFile final : public PagedFile {
 public:
  /// Plain-value counters of injected faults, taken at one instant.
  struct Stats {
    uint64_t injected_reads = 0;
    uint64_t injected_writes = 0;
    uint64_t injected_syncs = 0;
    uint64_t injected_allocates = 0;
    /// Subset of injected_writes that also tore the page in the base file.
    uint64_t torn_writes = 0;
    /// Subset of injected_allocates where the base file silently grew.
    uint64_t short_extends = 0;

    uint64_t total_injected() const {
      return injected_reads + injected_writes + injected_syncs +
             injected_allocates;
    }
  };

  explicit FaultInjectingPagedFile(PagedFile* base,
                                   const FaultOptions& options = {});

  PageId NumPages() const override { return base_->NumPages(); }
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Status Sync() override;

  /// Swaps in a new fault configuration (and reseeds the RNG). Lets a test
  /// build a store fault-free through this file, then turn faults on for
  /// the query phase.
  void SetOptions(const FaultOptions& options);

  /// Master switch: while disabled, every call passes straight through
  /// (armed and per-page faults included). Enabled by construction.
  void set_enabled(bool enabled);

  /// Arms `count` one-shot faults on `op`: the next `count` calls of that
  /// kind fail deterministically, regardless of probabilities.
  void FailNext(FaultOp op, int count = 1);

  /// Marks page `id` persistently faulty for reads and/or writes until
  /// ClearPageFaults(). Passing false for both clears that page.
  void SetPageFault(PageId id, bool fail_reads, bool fail_writes);

  /// Clears all per-page persistent faults (explicit and drawn).
  void ClearPageFaults();

  Stats stats() const;

 private:
  /// Draws whether this call faults; updates persistent sets and counters.
  /// Requires mu_ held.
  bool DrawLocked(FaultOp op, PageId id);

  static Status Injected(FaultOp op, PageId id);

  PagedFile* base_;
  mutable std::mutex mu_;
  FaultOptions options_;
  Rng rng_;
  bool enabled_ = true;
  int armed_[4] = {0, 0, 0, 0};
  std::unordered_set<PageId> bad_read_pages_;
  std::unordered_set<PageId> bad_write_pages_;
  Stats stats_;
};

/// Retry policy of a RetryingPagedFile.
struct RetryOptions {
  /// Total attempts per operation (first try included). Must be >= 1.
  int max_attempts = 3;
  /// Sleep before the first retry; doubles after each failed retry. Zero
  /// disables sleeping (unit tests).
  std::chrono::microseconds initial_backoff{0};
};

/// Decorator that retries transient failures of a base PagedFile with
/// bounded attempts and exponential backoff. Only Status::IOError is
/// considered transient (a flaky device or injected transient fault);
/// OutOfRange, Corruption, and every other code describe the *request*, not
/// the device, and propagate immediately. Stack it between a BufferPool and
/// a flaky base so that one transient fault degrades nothing.
class RetryingPagedFile final : public PagedFile {
 public:
  struct Stats {
    /// Individual retry attempts issued (beyond each operation's first try).
    uint64_t retries = 0;
    /// Operations that failed once but succeeded within the budget.
    uint64_t recovered = 0;
    /// Operations that exhausted max_attempts and propagated the error.
    uint64_t gave_up = 0;
  };

  explicit RetryingPagedFile(PagedFile* base, const RetryOptions& options = {});

  PageId NumPages() const override { return base_->NumPages(); }
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Status Sync() override;

  Stats stats() const;

 private:
  /// Runs `op` (returning Status) under the retry budget.
  template <typename Op>
  Status WithRetry(Op&& op);

  PagedFile* base_;
  RetryOptions options_;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace secxml

#endif  // SECXML_STORAGE_FAULT_FILE_H_
