#include "storage/fault_file.h"

#include <algorithm>
#include <string>
#include <thread>

namespace secxml {

namespace {

const char* OpName(FaultOp op) {
  switch (op) {
    case FaultOp::kRead:
      return "read";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kSync:
      return "sync";
    case FaultOp::kAllocate:
      return "allocate";
  }
  return "?";
}

}  // namespace

FaultInjectingPagedFile::FaultInjectingPagedFile(PagedFile* base,
                                                 const FaultOptions& options)
    : base_(base), options_(options), rng_(options.seed) {}

void FaultInjectingPagedFile::SetOptions(const FaultOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  rng_.Seed(options.seed);
}

void FaultInjectingPagedFile::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

void FaultInjectingPagedFile::FailNext(FaultOp op, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[static_cast<size_t>(op)] += count;
}

void FaultInjectingPagedFile::SetPageFault(PageId id, bool fail_reads,
                                           bool fail_writes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fail_reads) {
    bad_read_pages_.insert(id);
  } else {
    bad_read_pages_.erase(id);
  }
  if (fail_writes) {
    bad_write_pages_.insert(id);
  } else {
    bad_write_pages_.erase(id);
  }
}

void FaultInjectingPagedFile::ClearPageFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  bad_read_pages_.clear();
  bad_write_pages_.clear();
}

FaultInjectingPagedFile::Stats FaultInjectingPagedFile::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status FaultInjectingPagedFile::Injected(FaultOp op, PageId id) {
  std::string msg = std::string("injected ") + OpName(op) + " fault";
  if (op == FaultOp::kRead || op == FaultOp::kWrite) {
    msg += " on page " + std::to_string(id);
  }
  return Status::IOError(std::move(msg));
}

bool FaultInjectingPagedFile::DrawLocked(FaultOp op, PageId id) {
  if (!enabled_) return false;
  int& armed = armed_[static_cast<size_t>(op)];
  if (armed > 0) {
    --armed;
    return true;
  }
  if (op == FaultOp::kRead && bad_read_pages_.count(id) != 0) return true;
  if (op == FaultOp::kWrite && bad_write_pages_.count(id) != 0) return true;
  double prob = 0;
  switch (op) {
    case FaultOp::kRead:
      prob = options_.read_fault_prob;
      break;
    case FaultOp::kWrite:
      prob = options_.write_fault_prob;
      break;
    case FaultOp::kSync:
      prob = options_.sync_fault_prob;
      break;
    case FaultOp::kAllocate:
      prob = options_.allocate_fault_prob;
      break;
  }
  if (prob <= 0 || !rng_.Bernoulli(prob)) return false;
  if (options_.persistent) {
    // The page has gone bad for good; remember it so retries keep failing.
    if (op == FaultOp::kRead) bad_read_pages_.insert(id);
    if (op == FaultOp::kWrite) bad_write_pages_.insert(id);
  }
  return true;
}

Result<PageId> FaultInjectingPagedFile::AllocatePage() {
  bool fault, short_extend;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fault = DrawLocked(FaultOp::kAllocate, kInvalidPage);
    short_extend = fault && options_.short_extends;
    if (fault) {
      ++stats_.injected_allocates;
      if (short_extend) ++stats_.short_extends;
    }
  }
  if (!fault) return base_->AllocatePage();
  if (short_extend) {
    // The extend reaches the device but the completion is lost: the base
    // file grows while the caller sees a failure.
    (void)base_->AllocatePage();
  }
  return Injected(FaultOp::kAllocate, kInvalidPage);
}

Status FaultInjectingPagedFile::ReadPage(PageId id, Page* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (DrawLocked(FaultOp::kRead, id)) {
      ++stats_.injected_reads;
      return Injected(FaultOp::kRead, id);
    }
  }
  return base_->ReadPage(id, out);
}

Status FaultInjectingPagedFile::WritePage(PageId id, const Page& page) {
  bool fault, torn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fault = DrawLocked(FaultOp::kWrite, id);
    torn = fault && options_.torn_writes;
    if (fault) {
      ++stats_.injected_writes;
      if (torn) ++stats_.torn_writes;
    }
  }
  if (!fault) return base_->WritePage(id, page);
  if (torn) {
    // First half of the new image lands, the rest keeps the old bytes —
    // the classic torn sector write. Ignore base errors here: the caller
    // is told the write failed either way.
    Page old;
    if (base_->ReadPage(id, &old).ok()) {
      Page mixed = old;
      std::copy(page.data.begin(), page.data.begin() + kPageSize / 2,
                mixed.data.begin());
      (void)base_->WritePage(id, mixed);
    }
  }
  return Injected(FaultOp::kWrite, id);
}

Status FaultInjectingPagedFile::Sync() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (DrawLocked(FaultOp::kSync, kInvalidPage)) {
      ++stats_.injected_syncs;
      return Injected(FaultOp::kSync, kInvalidPage);
    }
  }
  return base_->Sync();
}

RetryingPagedFile::RetryingPagedFile(PagedFile* base,
                                     const RetryOptions& options)
    : base_(base), options_(options) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

RetryingPagedFile::Stats RetryingPagedFile::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

template <typename Op>
Status RetryingPagedFile::WithRetry(Op&& op) {
  std::chrono::microseconds backoff = options_.initial_backoff;
  uint64_t attempts_used = 0;
  Status st;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++attempts_used;
      if (backoff.count() > 0) {
        std::this_thread::sleep_for(backoff);
        backoff *= 2;
      }
    }
    st = op();
    // Only an I/O error is plausibly transient; every other code describes
    // the request itself and retrying would just repeat it.
    if (st.ok() || st.code() != StatusCode::kIOError) break;
  }
  if (attempts_used > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.retries += attempts_used;
    if (st.ok()) {
      ++stats_.recovered;
    } else {
      ++stats_.gave_up;
    }
  }
  return st;
}

Result<PageId> RetryingPagedFile::AllocatePage() {
  PageId id = kInvalidPage;
  Status st = WithRetry([&]() -> Status {
    Result<PageId> r = base_->AllocatePage();
    if (!r.ok()) return r.status();
    id = *r;
    return Status::OK();
  });
  if (!st.ok()) return st;
  return id;
}

Status RetryingPagedFile::ReadPage(PageId id, Page* out) {
  return WithRetry([&] { return base_->ReadPage(id, out); });
}

Status RetryingPagedFile::WritePage(PageId id, const Page& page) {
  return WithRetry([&] { return base_->WritePage(id, page); });
}

Status RetryingPagedFile::Sync() {
  return WithRetry([&] { return base_->Sync(); });
}

}  // namespace secxml
