#ifndef SECXML_STORAGE_VACUUM_H_
#define SECXML_STORAGE_VACUUM_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace secxml {

/// Visibility-clustered page layout planning — the storage half of the
/// "secure VACUUM" (DESIGN.md §12). Node ids are document-order positions,
/// so a reorganization may never reorder records; what it may move are the
/// *page boundaries*. The planner cuts pages at access-code run boundaries
/// so that pages come out code-homogeneous wherever runs are long enough: a
/// homogeneous page has no embedded transitions, its change bit stays
/// clear, and every per-class page verdict (SubjectView::ClassifyPage, the
/// batch dead-mask) becomes decisive — dead pages are skipped, not loaded.
///
/// This header is a pure algorithm over the per-record code sequence; the
/// record store supplies its page geometry explicitly (src/storage must not
/// include NoK headers — the same layering the fetch lint enforces).

/// Byte layout of one page of the record store: fixed header, fixed-size
/// records from the front, fixed-size code-transition entries from the tail.
struct PageGeometry {
  size_t page_bytes = 0;
  size_t header_bytes = 0;
  size_t record_bytes = 0;
  size_t transition_bytes = 0;
};

struct VacuumPlanOptions {
  /// Hard cap on records per page (slot numbering); 0 means the geometric
  /// maximum (header + records filling the whole page).
  size_t max_records_per_page = 0;
  /// Transition slots reserved per page for future in-place ACL updates,
  /// mirroring the store's packing slack so vacuumed pages keep the same
  /// update headroom as freshly built ones.
  size_t transition_slack = 0;
  /// A code run must reach this many records to earn clean pages of its
  /// own: the planner cuts at a run boundary only when the page so far is
  /// one clean run of at least this length, or when the run about to start
  /// is at least this long. Boundaries between shorter runs never cut, so
  /// noisy regions coalesce into capacity-packed mixed pages instead of
  /// fragmenting the page count. 0 cuts at every boundary — maximal
  /// homogeneity, maximal page count.
  size_t min_run_records = 16;
};

/// The planned layout plus the numbers the bench and tests assert on.
struct VacuumPlan {
  /// Record index at which each new page starts; page_starts[0] == 0, and
  /// page i holds records [page_starts[i], page_starts[i+1]).
  std::vector<uint64_t> page_starts;
  /// Pages whose records all carry one code (no embedded transitions).
  size_t homogeneous_pages = 0;
  size_t mixed_pages = 0;
  /// Embedded transitions summed across all planned pages.
  size_t transitions = 0;
};

/// Plans the clustered layout for `codes` (one access code per record, in
/// document order). Deterministic: WAL replay of a vacuum re-runs the
/// planner on identical input and must produce the identical layout.
VacuumPlan PlanVisibilityClusteredLayout(std::span<const uint32_t> codes,
                                         const PageGeometry& geometry,
                                         const VacuumPlanOptions& options);

}  // namespace secxml

#endif  // SECXML_STORAGE_VACUUM_H_
