#ifndef SECXML_NOK_TAG_INDEX_H_
#define SECXML_NOK_TAG_INDEX_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "nok/nok_store.h"
#include "storage/bplus_tree.h"

namespace secxml {

/// Disk-resident tag index: a B+-tree keyed by (tag id, node id) whose
/// values are subtree sizes. This is the "B+-tree on tag names" the NoK
/// query processor uses to seed pattern matching (paper Section 4.1); the
/// in-memory posting lists in NokStore are its cache-resident equivalent,
/// and bench/tag_index_ablation compares the two.
///
/// Storing the subtree size as the value lets structural-join inputs
/// (JoinItem = node + subtree end) be produced straight from an index range
/// scan with no document page reads.
class DiskTagIndex {
 public:
  /// An index entry: a document node with its subtree size.
  struct Entry {
    NodeId node = 0;
    uint32_t subtree_size = 0;
  };

  /// Builds the index for every node of `store` into an empty paged file.
  static Status Build(NokStore* store, PagedFile* file,
                      size_t buffer_pool_pages,
                      std::unique_ptr<DiskTagIndex>* out);

  /// Opens an existing index file.
  static Status Open(PagedFile* file, size_t buffer_pool_pages,
                     std::unique_ptr<DiskTagIndex>* out);

  /// All nodes with tag `tag`, in document order.
  Result<std::vector<Entry>> Postings(TagId tag);

  /// Registers a single node (used after structural inserts).
  Status Add(TagId tag, NodeId node, uint32_t subtree_size);

  /// Unregisters a node.
  Status Remove(TagId tag, NodeId node);

  uint64_t num_entries() const { return tree_->num_entries(); }
  Status Flush() { return tree_->Flush(); }
  const IoStats& io_stats() const { return tree_->io_stats(); }
  BPlusTree* tree() { return tree_.get(); }

 private:
  explicit DiskTagIndex(std::unique_ptr<BPlusTree> tree)
      : tree_(std::move(tree)) {}

  static uint64_t Key(TagId tag, NodeId node) {
    return (static_cast<uint64_t>(tag) << 32) | node;
  }

  std::unique_ptr<BPlusTree> tree_;
};

}  // namespace secxml

#endif  // SECXML_NOK_TAG_INDEX_H_
