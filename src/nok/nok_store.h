#ifndef SECXML_NOK_NOK_STORE_H_
#define SECXML_NOK_NOK_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "nok/nok_format.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"
#include "storage/readahead.h"
#include "storage/vacuum.h"
#include "xml/document.h"
#include "xml/tag_dictionary.h"

namespace secxml {

/// Build-time options for a NokStore.
struct NokStoreOptions {
  /// Buffer pool capacity in pages.
  size_t buffer_pool_pages = 256;

  /// Buffer pool latch shards (0 = automatic; see BufferPool). Raise this
  /// when many threads serve queries over one store so that concurrent page
  /// fetches latch different shards.
  size_t buffer_pool_shards = 0;

  /// Transition slots reserved per page at build time beyond those the page
  /// initially needs, so in-place accessibility updates (which add at most 2
  /// transitions each, Proposition 1) rarely force a page split.
  uint32_t transition_slack = 4;

  /// Cap on records per page; lowering it below the physical maximum models
  /// smaller pages without changing kPageSize. 0 = physical maximum.
  uint32_t max_records_per_page = 0;

  /// Document-order readahead window in pages (0 = no prefetching). When
  /// positive, the store owns a background Readahead over its buffer pool
  /// and the sequential sweeps (hidden-interval computation, codebook
  /// compaction) keep up to this many upcoming pages in flight, overlapping
  /// device read latency with computation.
  size_t readahead_window = 0;

  /// Background prefetch worker threads (only used when readahead_window
  /// is positive). More workers keep more physical reads in flight.
  size_t readahead_workers = 2;

  /// Crash-recovery open: instead of requiring the superblock to sit in the
  /// file's last page, scan backward for the most recent valid one. Updates
  /// after a checkpoint allocate fresh pages past the superblock (shadow
  /// paging), so after a crash the last durable checkpoint is *not* the last
  /// page — but its pages are never overwritten, so it is always intact.
  /// With this flag an Open without any superblock fails (recovery requires
  /// a checkpoint) instead of falling back to the legacy physical-order scan.
  bool recover_superblock = false;
};

/// Block-oriented NoK storage of an XML document's structure with embedded
/// DOL access-control codes (paper Sections 3.1-3.3).
///
/// The store owns:
///  - the paged structural data (via a BufferPool over a PagedFile),
///  - the in-memory per-page header table (the paper keeps these headers in
///    memory to enable page skipping without I/O),
///  - the in-memory text-value table (the paper stores values separately
///    from structure; queries in the reproduced experiments are structural),
///  - an in-memory tag index (tag -> document-order posting list) used to
///    seed NoK pattern matching.
///
/// Access-control *codes* here are opaque 32-bit values; their meaning (which
/// subjects may access) is defined by the DOL codebook in src/core.
///
/// Thread safety (DESIGN.md §11): all in-memory tables (page directory,
/// node count, tag dictionary, value pool, postings) live in an immutable
/// snapshot `State` published via shared_ptr. Updates run as transactions
/// (BeginUpdate / mutate / CommitUpdate) on a private copy with shadow-paged
/// page writes — a modified page always gets a fresh page id, committed
/// pages are never rewritten — so one writer may run concurrently with any
/// number of readers. A reader that must observe one consistent snapshot
/// across many calls holds a ReadPin; unpinned reads see the latest
/// committed state and are only safe when no writer runs concurrently (the
/// historical contract). The read API — Record, RecordAndCode, AccessCode,
/// FirstAtDepthInPage, PageTransitions, Postings, PageOrdinalOf, page_infos,
/// tags, Value, num_nodes/num_pages — is safe from many threads. Updates
/// themselves are single-writer: Begin/Commit and the mutators must be
/// externally serialized (SecureStore holds its update mutex across them).
class NokStore {
  /// (Private) one immutable snapshot of every in-memory table; defined in
  /// the private section below, forward-declared so ReadPin can hold one.
  struct State;

 public:
  /// In-memory mirror of a page's header plus its position in document
  /// order. first_node is the document-order id of the page's first record.
  struct PageInfo {
    PageId page_id = kInvalidPage;
    NodeId first_node = 0;
    uint16_t num_records = 0;
    uint16_t first_depth = 0;
    uint32_t first_code = 0;
    bool change_bit = false;
  };

  /// What one committed update transaction changed, in terms a visibility
  /// cache can patch incrementally (SubjectView::Patched): for every page
  /// ordinal of the *new* directory, either the old ordinal it came from
  /// unchanged, or its fresh access-code runs.
  struct UpdateDelta {
    struct PageCodePatch {
      size_t ordinal = 0;  ///< ordinal in the new directory
      /// The page's code runs in slot order: first_code followed by each
      /// embedded transition's code — exactly what SubjectView::Compile
      /// would read off the page.
      std::vector<uint32_t> run_codes;
    };
    /// Pages rewritten (shadow-copied) by this transaction, ordinal-ascending.
    std::vector<PageCodePatch> fresh;
    /// old_ordinal_of[i] = ordinal the new directory's page i had in the old
    /// directory, or -1 if the page is fresh. Untouched pages keep their
    /// bytes, so per-page verdict/check-free bits carry over verbatim.
    std::vector<int64_t> old_ordinal_of;
    /// True when the directory or any page changed at all.
    bool pages_changed = false;
  };

  /// Builds a store from `doc`, embedding access codes supplied by `code_of`
  /// in the same single document-order pass that lays out the structure.
  /// `code_of` may be null, in which case every node gets code 0.
  static Status Build(const Document& doc, PagedFile* file,
                      const NokStoreOptions& options,
                      const std::function<uint32_t(NodeId)>& code_of,
                      std::unique_ptr<NokStore>* out);

  /// Opens an existing store. If the file ends with a superblock written by
  /// Persist(), the page directory, tag dictionary, and value pool are
  /// restored from it (correct even after page splits and structural
  /// updates); otherwise the pages are scanned in physical order, which
  /// equals document order for a freshly built store that was never
  /// persisted — in that legacy case values are unavailable.
  /// `user_blob`, when non-null, receives the opaque bytes stored by the
  /// matching Persist() call (empty for legacy files) — SecureStore keeps
  /// its codebook there. With options.recover_superblock the superblock is
  /// searched backward from the end (see NokStoreOptions).
  static Status Open(PagedFile* file, const NokStoreOptions& options,
                     std::unique_ptr<NokStore>* out,
                     std::vector<uint8_t>* user_blob = nullptr);

  /// Flushes dirty pages and appends a superblock (page directory, tag
  /// dictionary, value pool, plus the caller's opaque `user_blob`) so a
  /// later Open() restores this exact store. May be called repeatedly; each
  /// call appends a fresh snapshot and Open() uses the last one. Obsolete
  /// snapshots and orphaned pages are reclaimed only by CompactTo().
  /// Persists the *committed* state; must not run inside a transaction.
  Status Persist(const std::vector<uint8_t>& user_blob = {});

  /// Rewrites the store densely into an empty `dest` file (document order,
  /// freshly packed pages, no orphaned space), carrying tags, values, and
  /// embedded access codes over. The compacted store is persisted.
  Status CompactTo(PagedFile* dest, const NokStoreOptions& options,
                   std::unique_ptr<NokStore>* out);

  NokStore(const NokStore&) = delete;
  NokStore& operator=(const NokStore&) = delete;

  // --- Snapshots and update transactions (DESIGN.md §11) ----------------

  /// RAII snapshot pin. While alive, every read API call made *on this
  /// thread* against the pinned store resolves against the state that was
  /// committed when the pin was taken, regardless of concurrent commits,
  /// and the snapshot's tables stay alive. Pins nest: an inner pin on the
  /// same store adopts the outer pin's snapshot, so a query's helper code
  /// can pin defensively without ever straddling two states.
  class ReadPin {
   public:
    explicit ReadPin(const NokStore* store);
    ~ReadPin();
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;

   private:
    friend class NokStore;
    const NokStore* store_;
    std::shared_ptr<const State> state_;
    ReadPin* next_;  ///< previous head of this thread's pin chain
  };

  /// Starts an update transaction: mutators stage into a private copy of
  /// the directory and shadow-paged page copies, invisible to readers (but
  /// visible to further reads *on the writer thread*, so staged mutations
  /// compose). Fails if a transaction is already open. Mutators called
  /// outside a transaction wrap themselves in one automatically.
  Status BeginUpdate();

  /// Atomically publishes the staged state to readers. When `delta` is
  /// non-null it receives the page-level difference for incremental
  /// visibility-cache maintenance.
  Status CommitUpdate(UpdateDelta* delta = nullptr);

  /// Discards the staged state; readers never saw any of it. Shadow page
  /// copies leak in the file until CompactTo, like replaced pages do.
  void AbortUpdate();

  /// True between BeginUpdate and Commit/Abort. Writer thread only.
  bool InUpdate() const { return work_ != nullptr; }

  /// Total document nodes.
  NodeId num_nodes() const;
  /// Number of document-order pages.
  size_t num_pages() const;

  /// Reads the structural record of node `n` (one buffer-pool fetch).
  Result<NokRecord> Record(NodeId n);

  /// Reads the record *and* resolves the access code of node `n` with a
  /// single buffer-pool fetch — the hot path of ε-NoK (Section 3.3: the
  /// code is found on the same page as the node, so checking accessibility
  /// right after loading the record costs no additional I/O or lookup).
  Status RecordAndCode(NodeId n, NokRecord* record, uint32_t* code);

  /// Record / RecordAndCode for a caller that already knows n's page
  /// ordinal (the secure matcher tracks it for page-verdict checks),
  /// skipping the ordinal binary search.
  Result<NokRecord> RecordInPage(size_t ordinal, NodeId n);
  Status RecordAndCodeInPage(size_t ordinal, NodeId n, NokRecord* record,
                             uint32_t* code);

  /// First child of `n`, or kInvalidNode if `n` is a leaf. `rec` must be the
  /// record of `n`.
  static NodeId FirstChild(NodeId n, const NokRecord& rec) {
    return rec.subtree_size > 1 ? n + 1 : kInvalidNode;
  }

  /// Following sibling of `n` within a parent whose subtree ends (exclusive)
  /// at `parent_end`, or kInvalidNode. `rec` must be the record of `n`.
  static NodeId FollowingSibling(NodeId n, const NokRecord& rec,
                                 NodeId parent_end) {
    NodeId cand = n + rec.subtree_size;
    return cand < parent_end ? cand : kInvalidNode;
  }

  /// Access-control code in effect for node `n`, resolved entirely within
  /// n's page (Section 3.3): the nearest embedded transition at or before n,
  /// falling back to the page's initial code.
  Result<uint32_t> AccessCode(NodeId n);

  /// Text value of a record, or empty. Valid only for stores created with
  /// Build().
  std::string_view Value(const NokRecord& rec) const;

  /// Document-order posting list for a tag (empty if the tag is absent).
  const std::vector<NodeId>& Postings(TagId tag) const;

  /// Tag dictionary shared with the source document.
  const TagDictionary& tags() const;

  /// In-memory page header table, in document order. The reference is valid
  /// while the snapshot it came from lives (hold a ReadPin across uses that
  /// must survive a concurrent commit).
  const std::vector<PageInfo>& page_infos() const;

  /// Ordinal (index into page_infos) of the page containing node `n`.
  size_t PageOrdinalOf(NodeId n) const;

  /// Scans the page at `ordinal` for the first node with exactly `depth`,
  /// at or after `from_node` and strictly below `limit`. Returns
  /// kInvalidNode if the page holds no such node. One buffer-pool fetch.
  /// Used by the secure matcher to find the next sibling at a target depth
  /// after skipping wholly inaccessible pages (Section 3.3).
  Result<NodeId> FirstAtDepthInPage(size_t ordinal, uint16_t depth,
                                    NodeId from_node, NodeId limit);

  /// Reads the embedded transition list of the page at `ordinal`
  /// (slots ascending).
  Result<std::vector<DolTransition>> PageTransitions(size_t ordinal);

  /// Rewrites the access-control region of the page at `ordinal`: its
  /// initial code and its embedded transition list (slots must be ascending,
  /// in (0, num_records)). If the transitions no longer fit beside the
  /// page's records, the page is split: a fresh page is appended to the file
  /// and the tail half of the records moves there; the in-memory header
  /// table is updated (later pages keep their ids and first_node values).
  Status SetPageAcl(size_t ordinal, uint32_t first_code,
                    std::vector<DolTransition> transitions);

  /// Physically reorganizes the whole store into the visibility-clustered
  /// layout (the storage half of the "secure VACUUM"): page boundaries are
  /// re-cut at access-code run boundaries — document order is untouched,
  /// node ids ARE positions — so pages come out code-homogeneous wherever
  /// runs reach `min_run_records`, making per-class page verdicts decisive
  /// and batch page skipping effective. Every page is freshly composed
  /// (shadow paging; old pages leak until CompactTo) and the directory is
  /// rebuilt; node ids, tag postings and per-record codes are unchanged.
  /// `plan` (optional) receives the planned layout and homogeneity stats.
  Status Repack(size_t min_run_records, VacuumPlan* plan = nullptr);

  // --- Structural updates (paper Section 3.4) --------------------------
  //
  // Node ids are document-order positions, so deleting or inserting a
  // subtree implicitly renumbers all later nodes; only the pages covering
  // the changed range and the ancestors' size fields are rewritten (update
  // locality), and the in-memory page directory and tag postings are
  // maintained. Access codes of surviving nodes are preserved, including
  // across the splice boundaries.

  /// Deletes the subtree rooted at `root` (the root itself included).
  /// Deleting the document root is rejected.
  Status DeleteSubtree(NodeId root);

  /// Inserts `fragment` as a new child of `parent`, right after the
  /// existing child `after` (kInvalidNode = as first child). Fragment tags
  /// are interned into this store's dictionary; `code_of` supplies the
  /// access code of each fragment node (fragment-relative ids; null = all
  /// zero). Returns the document id where the fragment root landed.
  Result<NodeId> InsertSubtree(NodeId parent, NodeId after,
                               const Document& fragment,
                               const std::function<uint32_t(NodeId)>& code_of);

  /// The proper ancestors of `target`, topmost first, found by descending
  /// from the document root (O(depth * fanout) record reads).
  Status AncestorChain(NodeId target, std::vector<NodeId>* chain);

  /// Total embedded transition entries across all pages (excludes the
  /// implicit per-page initial codes); for storage accounting.
  Result<uint64_t> CountEmbeddedTransitions();

  BufferPool* buffer_pool() { return &pool_; }
  const IoStats& io_stats() const { return pool_.stats(); }

  /// The background prefetcher, or nullptr when readahead is disabled
  /// (readahead_window == 0). Issuers must Drain() before returning (see
  /// ReadaheadDrainGuard) so no background fetch overlaps a later update.
  Readahead* readahead() { return readahead_.get(); }

  /// Configured readahead window in pages (0 = disabled).
  size_t readahead_window() const { return options_.readahead_window; }

  /// Reconfigures readahead (0 window disables it). Requires exclusive
  /// access, like updates: the old prefetcher is torn down and no reader
  /// may be issuing requests concurrently. Benchmarks use this to A/B the
  /// same store with prefetching off and on.
  void SetReadahead(size_t window, size_t workers = 2);

  /// Verifies structural invariants (subtree sizes, depths, page headers);
  /// used by tests and after updates.
  Status CheckIntegrity();

 private:
  /// The heavyweight tables are shared between consecutive snapshots and
  /// cloned only on first mutation in a transaction (most ACL updates touch
  /// none of them).
  struct State {
    std::vector<PageInfo> pages;
    NodeId num_nodes = 0;
    std::shared_ptr<const TagDictionary> tags;
    std::shared_ptr<const std::vector<std::string>> values;
    std::shared_ptr<const std::vector<std::vector<NodeId>>> postings;

    State()
        : tags(std::make_shared<TagDictionary>()),
          values(std::make_shared<std::vector<std::string>>()),
          postings(std::make_shared<std::vector<std::vector<NodeId>>>()) {}
  };

  NokStore(PagedFile* file, const NokStoreOptions& options);

  /// The snapshot this call should read: the staged state on the writer
  /// thread mid-transaction, the thread's pinned snapshot if any, else the
  /// latest committed state.
  const State& read_state() const;

  /// The staged state; transaction must be open, writer thread only.
  State& wip() { return *work_; }
  const State& wip() const { return *work_; }

  /// Clone-on-first-touch accessors for the staged shared tables.
  TagDictionary& wip_tags();
  std::vector<std::string>& wip_values();
  std::vector<std::vector<NodeId>>& wip_postings();

  /// Fetches the staged page at `ordinal` for modification, shadow-copying
  /// it to a fresh page id the first time a transaction touches it (so the
  /// committed image survives for pinned readers and crash recovery) and
  /// recording its code runs in fresh_codes_.
  Result<PageHandle> CowFetch(size_t ordinal);

  /// Registers a page freshly composed by this transaction (split targets,
  /// repacked pages) with its code runs.
  void NoteFreshPage(PageId id, uint32_t first_code,
                     const std::vector<DolTransition>& transitions);

  // Transaction-internal bodies of the public mutators (the public entry
  // points add the auto-wrapping transaction).
  Status RepackStaged(size_t min_run_records, VacuumPlan* plan);

  Status SetPageAclStaged(size_t ordinal, uint32_t first_code,
                          std::vector<DolTransition> transitions);
  Status DeleteSubtreeStaged(NodeId root);
  Result<NodeId> InsertSubtreeStaged(
      NodeId parent, NodeId after, const Document& fragment,
      const std::function<uint32_t(NodeId)>& code_of);

  /// Splits page `ordinal`, moving its tail records to a new page so that
  /// `needed_transitions` entries fit somewhere. Transition lists for both
  /// halves are derived from `transitions` (the full intended list).
  Status SplitAndSet(size_t ordinal, uint32_t first_code,
                     const std::vector<DolTransition>& transitions);

  /// Reads all records of a page together with each record's resolved
  /// access code.
  Status ReadPageContents(size_t ordinal, std::vector<NokRecord>* records,
                          std::vector<uint32_t>* codes);

  /// Replaces directory entries [begin_ord, end_ord) with freshly packed
  /// pages holding `records`/`codes` (headers and transition lists derived
  /// from code runs; packing respects max_records_per_page and transition
  /// slack), then renumbers the directory's first_node fields. Old pages
  /// leak in the file until a rebuild; num_nodes and postings are the
  /// caller's responsibility.
  Status ReplacePageRange(size_t begin_ord, size_t end_ord,
                          const std::vector<NokRecord>& records,
                          const std::vector<uint32_t>& codes);

  /// Recomputes the cumulative first_node of every staged directory entry.
  void RebuildFirstNodes();

  /// Adds `delta` to the subtree_size of each node in `chain`.
  Status AdjustSubtreeSizes(const std::vector<NodeId>& chain, int64_t delta);

  /// Renumbers postings for a splice at `pos`: ids >= pos + removed shift by
  /// (added - removed); ids in [pos, pos + removed) are dropped.
  void SplicePostings(NodeId pos, NodeId removed, NodeId added);

  NokStoreOptions options_;
  BufferPool pool_;

  /// Latest committed snapshot. Guards publication only; readers resolve
  /// through their pin or the raw pointer below.
  mutable std::mutex state_mu_;
  std::shared_ptr<const State> state_;
  /// Lock-free mirror of state_.get() for unpinned readers.
  std::atomic<const State*> state_raw_{nullptr};

  /// Open transaction (writer thread only), plus its clone-on-touch shared
  /// tables and the code runs of every page it shadow-copied or composed.
  std::unique_ptr<State> work_;
  std::shared_ptr<TagDictionary> wtags_;
  std::shared_ptr<std::vector<std::string>> wvalues_;
  std::shared_ptr<std::vector<std::vector<NodeId>>> wpostings_;
  std::unordered_map<PageId, std::vector<uint32_t>> fresh_codes_;
  std::atomic<std::thread::id> writer_tid_{};

  static const std::vector<NodeId> empty_postings_;
  // Declared last: destroyed (joined and drained) before the pool it reads.
  std::unique_ptr<Readahead> readahead_;
};

}  // namespace secxml

#endif  // SECXML_NOK_NOK_STORE_H_
