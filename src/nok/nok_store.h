#ifndef SECXML_NOK_NOK_STORE_H_
#define SECXML_NOK_NOK_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "nok/nok_format.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"
#include "storage/readahead.h"
#include "xml/document.h"

namespace secxml {

/// Build-time options for a NokStore.
struct NokStoreOptions {
  /// Buffer pool capacity in pages.
  size_t buffer_pool_pages = 256;

  /// Buffer pool latch shards (0 = automatic; see BufferPool). Raise this
  /// when many threads serve queries over one store so that concurrent page
  /// fetches latch different shards.
  size_t buffer_pool_shards = 0;

  /// Transition slots reserved per page at build time beyond those the page
  /// initially needs, so in-place accessibility updates (which add at most 2
  /// transitions each, Proposition 1) rarely force a page split.
  uint32_t transition_slack = 4;

  /// Cap on records per page; lowering it below the physical maximum models
  /// smaller pages without changing kPageSize. 0 = physical maximum.
  uint32_t max_records_per_page = 0;

  /// Document-order readahead window in pages (0 = no prefetching). When
  /// positive, the store owns a background Readahead over its buffer pool
  /// and the sequential sweeps (hidden-interval computation, codebook
  /// compaction) keep up to this many upcoming pages in flight, overlapping
  /// device read latency with computation.
  size_t readahead_window = 0;

  /// Background prefetch worker threads (only used when readahead_window
  /// is positive). More workers keep more physical reads in flight.
  size_t readahead_workers = 2;
};

/// Block-oriented NoK storage of an XML document's structure with embedded
/// DOL access-control codes (paper Sections 3.1-3.3).
///
/// The store owns:
///  - the paged structural data (via a BufferPool over a PagedFile),
///  - the in-memory per-page header table (the paper keeps these headers in
///    memory to enable page skipping without I/O),
///  - the in-memory text-value table (the paper stores values separately
///    from structure; queries in the reproduced experiments are structural),
///  - an in-memory tag index (tag -> document-order posting list) used to
///    seed NoK pattern matching.
///
/// Access-control *codes* here are opaque 32-bit values; their meaning (which
/// subjects may access) is defined by the DOL codebook in src/core.
///
/// Thread safety: the read API — Record, RecordAndCode, AccessCode,
/// FirstAtDepthInPage, PageTransitions, Postings, PageOrdinalOf, page_infos,
/// tags, Value, num_nodes/num_pages — is safe to call from many threads
/// concurrently: it reads only immutable-after-build in-memory tables (page
/// directory, tag postings, value pool) plus the internally synchronized
/// buffer pool. Updates (SetPageAcl, DeleteSubtree, InsertSubtree, Persist,
/// CompactTo) mutate those tables and require exclusive access: no reader or
/// other writer may run concurrently with them (see DESIGN.md, "Concurrency
/// model").
class NokStore {
 public:
  /// In-memory mirror of a page's header plus its position in document
  /// order. first_node is the document-order id of the page's first record.
  struct PageInfo {
    PageId page_id = kInvalidPage;
    NodeId first_node = 0;
    uint16_t num_records = 0;
    uint16_t first_depth = 0;
    uint32_t first_code = 0;
    bool change_bit = false;
  };

  /// Builds a store from `doc`, embedding access codes supplied by `code_of`
  /// in the same single document-order pass that lays out the structure.
  /// `code_of` may be null, in which case every node gets code 0.
  static Status Build(const Document& doc, PagedFile* file,
                      const NokStoreOptions& options,
                      const std::function<uint32_t(NodeId)>& code_of,
                      std::unique_ptr<NokStore>* out);

  /// Opens an existing store. If the file ends with a superblock written by
  /// Persist(), the page directory, tag dictionary, and value pool are
  /// restored from it (correct even after page splits and structural
  /// updates); otherwise the pages are scanned in physical order, which
  /// equals document order for a freshly built store that was never
  /// persisted — in that legacy case values are unavailable.
  /// `user_blob`, when non-null, receives the opaque bytes stored by the
  /// matching Persist() call (empty for legacy files) — SecureStore keeps
  /// its codebook there.
  static Status Open(PagedFile* file, const NokStoreOptions& options,
                     std::unique_ptr<NokStore>* out,
                     std::vector<uint8_t>* user_blob = nullptr);

  /// Flushes dirty pages and appends a superblock (page directory, tag
  /// dictionary, value pool, plus the caller's opaque `user_blob`) so a
  /// later Open() restores this exact store. May be called repeatedly; each
  /// call appends a fresh snapshot and Open() uses the last one. Obsolete
  /// snapshots and orphaned pages are reclaimed only by CompactTo().
  Status Persist(const std::vector<uint8_t>& user_blob = {});

  /// Rewrites the store densely into an empty `dest` file (document order,
  /// freshly packed pages, no orphaned space), carrying tags, values, and
  /// embedded access codes over. The compacted store is persisted.
  Status CompactTo(PagedFile* dest, const NokStoreOptions& options,
                   std::unique_ptr<NokStore>* out);

  NokStore(const NokStore&) = delete;
  NokStore& operator=(const NokStore&) = delete;

  /// Total document nodes.
  NodeId num_nodes() const { return num_nodes_; }
  /// Number of document-order pages.
  size_t num_pages() const { return pages_.size(); }

  /// Reads the structural record of node `n` (one buffer-pool fetch).
  Result<NokRecord> Record(NodeId n);

  /// Reads the record *and* resolves the access code of node `n` with a
  /// single buffer-pool fetch — the hot path of ε-NoK (Section 3.3: the
  /// code is found on the same page as the node, so checking accessibility
  /// right after loading the record costs no additional I/O or lookup).
  Status RecordAndCode(NodeId n, NokRecord* record, uint32_t* code);

  /// Record / RecordAndCode for a caller that already knows n's page
  /// ordinal (the secure matcher tracks it for page-verdict checks),
  /// skipping the ordinal binary search.
  Result<NokRecord> RecordInPage(size_t ordinal, NodeId n);
  Status RecordAndCodeInPage(size_t ordinal, NodeId n, NokRecord* record,
                             uint32_t* code);

  /// First child of `n`, or kInvalidNode if `n` is a leaf. `rec` must be the
  /// record of `n`.
  static NodeId FirstChild(NodeId n, const NokRecord& rec) {
    return rec.subtree_size > 1 ? n + 1 : kInvalidNode;
  }

  /// Following sibling of `n` within a parent whose subtree ends (exclusive)
  /// at `parent_end`, or kInvalidNode. `rec` must be the record of `n`.
  static NodeId FollowingSibling(NodeId n, const NokRecord& rec,
                                 NodeId parent_end) {
    NodeId cand = n + rec.subtree_size;
    return cand < parent_end ? cand : kInvalidNode;
  }

  /// Access-control code in effect for node `n`, resolved entirely within
  /// n's page (Section 3.3): the nearest embedded transition at or before n,
  /// falling back to the page's initial code.
  Result<uint32_t> AccessCode(NodeId n);

  /// Text value of a record, or empty. Valid only for stores created with
  /// Build().
  std::string_view Value(const NokRecord& rec) const {
    return rec.value_ref == kNoValueRef
               ? std::string_view()
               : std::string_view(values_[rec.value_ref]);
  }

  /// Document-order posting list for a tag (empty if the tag is absent).
  const std::vector<NodeId>& Postings(TagId tag) const;

  /// Tag dictionary shared with the source document.
  const TagDictionary& tags() const { return tags_; }

  /// In-memory page header table, in document order.
  const std::vector<PageInfo>& page_infos() const { return pages_; }

  /// Ordinal (index into page_infos) of the page containing node `n`.
  size_t PageOrdinalOf(NodeId n) const;

  /// Scans the page at `ordinal` for the first node with exactly `depth`,
  /// at or after `from_node` and strictly below `limit`. Returns
  /// kInvalidNode if the page holds no such node. One buffer-pool fetch.
  /// Used by the secure matcher to find the next sibling at a target depth
  /// after skipping wholly inaccessible pages (Section 3.3).
  Result<NodeId> FirstAtDepthInPage(size_t ordinal, uint16_t depth,
                                    NodeId from_node, NodeId limit);

  /// Reads the embedded transition list of the page at `ordinal`
  /// (slots ascending).
  Result<std::vector<DolTransition>> PageTransitions(size_t ordinal);

  /// Rewrites the access-control region of the page at `ordinal`: its
  /// initial code and its embedded transition list (slots must be ascending,
  /// in (0, num_records)). If the transitions no longer fit beside the
  /// page's records, the page is split: a fresh page is appended to the file
  /// and the tail half of the records moves there; the in-memory header
  /// table is updated (later pages keep their ids and first_node values).
  Status SetPageAcl(size_t ordinal, uint32_t first_code,
                    std::vector<DolTransition> transitions);

  // --- Structural updates (paper Section 3.4) --------------------------
  //
  // Node ids are document-order positions, so deleting or inserting a
  // subtree implicitly renumbers all later nodes; only the pages covering
  // the changed range and the ancestors' size fields are rewritten (update
  // locality), and the in-memory page directory and tag postings are
  // maintained. Access codes of surviving nodes are preserved, including
  // across the splice boundaries.

  /// Deletes the subtree rooted at `root` (the root itself included).
  /// Deleting the document root is rejected.
  Status DeleteSubtree(NodeId root);

  /// Inserts `fragment` as a new child of `parent`, right after the
  /// existing child `after` (kInvalidNode = as first child). Fragment tags
  /// are interned into this store's dictionary; `code_of` supplies the
  /// access code of each fragment node (fragment-relative ids; null = all
  /// zero). Returns the document id where the fragment root landed.
  Result<NodeId> InsertSubtree(NodeId parent, NodeId after,
                               const Document& fragment,
                               const std::function<uint32_t(NodeId)>& code_of);

  /// The proper ancestors of `target`, topmost first, found by descending
  /// from the document root (O(depth * fanout) record reads).
  Status AncestorChain(NodeId target, std::vector<NodeId>* chain);

  /// Total embedded transition entries across all pages (excludes the
  /// implicit per-page initial codes); for storage accounting.
  Result<uint64_t> CountEmbeddedTransitions();

  BufferPool* buffer_pool() { return &pool_; }
  const IoStats& io_stats() const { return pool_.stats(); }

  /// The background prefetcher, or nullptr when readahead is disabled
  /// (readahead_window == 0). Issuers must Drain() before returning (see
  /// ReadaheadDrainGuard) so no background fetch overlaps a later update.
  Readahead* readahead() { return readahead_.get(); }

  /// Configured readahead window in pages (0 = disabled).
  size_t readahead_window() const { return options_.readahead_window; }

  /// Reconfigures readahead (0 window disables it). Requires exclusive
  /// access, like updates: the old prefetcher is torn down and no reader
  /// may be issuing requests concurrently. Benchmarks use this to A/B the
  /// same store with prefetching off and on.
  void SetReadahead(size_t window, size_t workers = 2);

  /// Verifies structural invariants (subtree sizes, depths, page headers);
  /// used by tests and after updates.
  Status CheckIntegrity();

 private:
  NokStore(PagedFile* file, const NokStoreOptions& options)
      : options_(options),
        pool_(file, options.buffer_pool_pages, options.buffer_pool_shards) {
    if (options_.readahead_window > 0) {
      readahead_ = std::make_unique<Readahead>(&pool_,
                                               options_.readahead_workers);
    }
  }

  /// Splits page `ordinal`, moving its tail records to a new page so that
  /// `needed_transitions` entries fit somewhere. Transition lists for both
  /// halves are derived from `transitions` (the full intended list).
  Status SplitAndSet(size_t ordinal, uint32_t first_code,
                     const std::vector<DolTransition>& transitions);

  /// Reads all records of a page together with each record's resolved
  /// access code.
  Status ReadPageContents(size_t ordinal, std::vector<NokRecord>* records,
                          std::vector<uint32_t>* codes);

  /// Replaces directory entries [begin_ord, end_ord) with freshly packed
  /// pages holding `records`/`codes` (headers and transition lists derived
  /// from code runs; packing respects max_records_per_page and transition
  /// slack), then renumbers the directory's first_node fields. Old pages
  /// leak in the file until a rebuild; num_nodes_ and postings are the
  /// caller's responsibility.
  Status ReplacePageRange(size_t begin_ord, size_t end_ord,
                          const std::vector<NokRecord>& records,
                          const std::vector<uint32_t>& codes);

  /// Recomputes the cumulative first_node of every directory entry.
  void RebuildFirstNodes();

  /// Adds `delta` to the subtree_size of each node in `chain`.
  Status AdjustSubtreeSizes(const std::vector<NodeId>& chain, int64_t delta);

  /// Renumbers postings for a splice at `pos`: ids >= pos + removed shift by
  /// (added - removed); ids in [pos, pos + removed) are dropped.
  void SplicePostings(NodeId pos, NodeId removed, NodeId added);

  NokStoreOptions options_;
  BufferPool pool_;
  NodeId num_nodes_ = 0;
  std::vector<PageInfo> pages_;
  TagDictionary tags_;
  std::vector<std::string> values_;
  std::vector<std::vector<NodeId>> postings_;  // indexed by TagId
  std::vector<NodeId> empty_postings_;
  // Declared last: destroyed (joined and drained) before the pool it reads.
  std::unique_ptr<Readahead> readahead_;
};

}  // namespace secxml

#endif  // SECXML_NOK_NOK_STORE_H_
