#ifndef SECXML_NOK_NOK_FORMAT_H_
#define SECXML_NOK_NOK_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/page.h"
#include "xml/document.h"

namespace secxml {

/// On-disk layout of the NoK succinct document-order storage with embedded
/// DOL access-control data (paper Sections 3.1-3.2, Figure 3).
///
/// A page holds, in order:
///   [NokPageHeader][NokRecord x num_records] ... [DolTransition x T]
/// Records grow from the front, DOL transition entries grow from the back
/// (like slotted-page layouts). The structural records of a document are laid
/// out strictly in document order across pages; a node's id is its document
/// order (preorder) rank, so page k holds the contiguous id range
/// [first_node(k), first_node(k) + num_records(k)).
///
/// The paper's encoding stores nodes in document order with closing
/// parentheses; we store each node's subtree size instead. Subtree size is
/// the prefix-sum form of the same parenthesis string and supports O(1)
/// following-sibling jumps (next sibling id = id + subtree_size).

/// Sentinel for a record with no text value.
inline constexpr uint32_t kNoValueRef = 0xffffffffu;

/// One document node, 16 bytes.
struct NokRecord {
  TagId tag = 0;
  uint32_t subtree_size = 0;
  uint32_t value_ref = kNoValueRef;
  uint16_t depth = 0;
  uint16_t reserved = 0;
};
static_assert(sizeof(NokRecord) == 16);

/// One embedded DOL transition: document node `first_node + slot` begins a
/// run of nodes sharing access-control code `code`. 8 bytes.
struct DolTransition {
  uint16_t slot = 0;
  uint16_t reserved = 0;
  uint32_t code = 0;
};
static_assert(sizeof(DolTransition) == 8);

/// Page header, 16 bytes at offset 0.
struct NokPageHeader {
  uint16_t num_records = 0;
  /// Depth of the first record (root = 0); used to seed in-page navigation.
  uint16_t first_depth = 0;
  /// Number of embedded DolTransition entries at the page tail, NOT counting
  /// the implicit transition formed by the first record.
  uint16_t num_transitions = 0;
  uint16_t flags = 0;
  /// Access-control code in effect for the first record of the page. The
  /// paper treats every page's first node as a transition node so any node's
  /// code can be resolved within its own page.
  uint32_t first_code = 0;
  uint32_t reserved = 0;

  /// flags bit 0: the paper's "change bit" — set iff the page contains at
  /// least one transition beyond the implicit initial one.
  static constexpr uint16_t kChangeBit = 1;

  bool change_bit() const { return (flags & kChangeBit) != 0; }
  void set_change_bit(bool value) {
    flags = value ? (flags | kChangeBit) : (flags & ~kChangeBit);
  }
};
static_assert(sizeof(NokPageHeader) == 16);

/// Maximum records that fit in a page with no transitions at all.
inline constexpr uint32_t kMaxRecordsPerPage =
    static_cast<uint32_t>((kPageSize - sizeof(NokPageHeader)) /
                          sizeof(NokRecord));

/// Byte offset of record `slot` within a page.
inline constexpr size_t RecordOffset(uint32_t slot) {
  return sizeof(NokPageHeader) + static_cast<size_t>(slot) * sizeof(NokRecord);
}

/// Byte offset of transition entry `i` (0 = last in the page, growing toward
/// the front).
inline constexpr size_t TransitionOffset(uint32_t i) {
  return kPageSize - static_cast<size_t>(i + 1) * sizeof(DolTransition);
}

/// True if a page can hold `records` records plus `transitions` transition
/// entries.
inline constexpr bool PageFits(uint32_t records, uint32_t transitions) {
  return sizeof(NokPageHeader) + static_cast<size_t>(records) * sizeof(NokRecord) +
             static_cast<size_t>(transitions) * sizeof(DolTransition) <=
         kPageSize;
}

/// Validates a header freshly read from page bytes before its counts are
/// used to index into the page. Pages can arrive corrupt (bit rot, torn
/// write, truncated file); trusting num_records/num_transitions from disk
/// would turn such corruption into out-of-bounds page accesses in release
/// builds, where asserts are compiled out.
inline Status CheckOnDiskHeader(const NokPageHeader& header, PageId page_id) {
  if (header.num_records == 0 ||
      !PageFits(header.num_records, header.num_transitions)) {
    return Status::Corruption(
        "corrupt header on page " + std::to_string(page_id) + ": " +
        std::to_string(header.num_records) + " records / " +
        std::to_string(header.num_transitions) +
        " transitions cannot fit one page");
  }
  return Status::OK();
}

}  // namespace secxml

#endif  // SECXML_NOK_NOK_FORMAT_H_
