#include "nok/tag_index.h"

namespace secxml {

Status DiskTagIndex::Build(NokStore* store, PagedFile* file,
                           size_t buffer_pool_pages,
                           std::unique_ptr<DiskTagIndex>* out) {
  std::unique_ptr<BPlusTree> tree;
  SECXML_RETURN_NOT_OK(BPlusTree::Create(file, buffer_pool_pages, &tree));
  // One pass over the document pages in order; inserts arrive sorted by
  // node id within each tag, which keeps leaf splits cheap.
  for (size_t ordinal = 0; ordinal < store->num_pages(); ++ordinal) {
    const NokStore::PageInfo& info = store->page_infos()[ordinal];
    for (uint32_t slot = 0; slot < info.num_records; ++slot) {
      NodeId n = info.first_node + slot;
      SECXML_ASSIGN_OR_RETURN(NokRecord rec, store->Record(n));
      SECXML_RETURN_NOT_OK(
          tree->Insert(Key(rec.tag, n), rec.subtree_size));
    }
  }
  SECXML_RETURN_NOT_OK(tree->Flush());
  out->reset(new DiskTagIndex(std::move(tree)));
  return Status::OK();
}

Status DiskTagIndex::Open(PagedFile* file, size_t buffer_pool_pages,
                          std::unique_ptr<DiskTagIndex>* out) {
  std::unique_ptr<BPlusTree> tree;
  SECXML_RETURN_NOT_OK(BPlusTree::Open(file, buffer_pool_pages, &tree));
  out->reset(new DiskTagIndex(std::move(tree)));
  return Status::OK();
}

Result<std::vector<DiskTagIndex::Entry>> DiskTagIndex::Postings(TagId tag) {
  std::vector<Entry> result;
  SECXML_RETURN_NOT_OK(tree_->Scan(
      Key(tag, 0), Key(tag + 1, 0), [&result](uint64_t key, uint64_t value) {
        result.push_back(Entry{static_cast<NodeId>(key & 0xffffffffu),
                               static_cast<uint32_t>(value)});
        return true;
      }));
  return result;
}

Status DiskTagIndex::Add(TagId tag, NodeId node, uint32_t subtree_size) {
  return tree_->Insert(Key(tag, node), subtree_size);
}

Status DiskTagIndex::Remove(TagId tag, NodeId node) {
  return tree_->Delete(Key(tag, node));
}

}  // namespace secxml
