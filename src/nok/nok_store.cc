#include "nok/nok_store.h"

#include <algorithm>
#include <cassert>

#include "common/dcheck.h"

namespace secxml {

namespace {

// Superblock magic ("SXNK") marking a Persist() snapshot in a file's last
// page. The superblock stores counts plus the id range of the blob pages
// holding the serialized page directory and tag dictionary.
constexpr uint32_t kSuperMagic = 0x53584e4bu;

struct Superblock {
  uint32_t magic = kSuperMagic;
  uint32_t version = 1;
  uint32_t num_nodes = 0;
  uint32_t dir_entries = 0;
  uint32_t blob_start = 0;
  uint32_t blob_pages = 0;
  uint64_t payload_bytes = 0;
};
static_assert(sizeof(Superblock) == 32);

void AppendU32(std::vector<uint8_t>* blob, uint32_t v) {
  blob->insert(blob->end(), reinterpret_cast<const uint8_t*>(&v),
               reinterpret_cast<const uint8_t*>(&v) + sizeof(v));
}

uint32_t ReadU32(const std::vector<uint8_t>& blob, size_t* pos) {
  uint32_t v;
  std::memcpy(&v, blob.data() + *pos, sizeof(v));
  *pos += sizeof(v);
  return v;
}

/// Writes a page image from parts. `transitions` must be slot-ascending.
void ComposePage(const NokPageHeader& header,
                 const NokRecord* records,
                 const std::vector<DolTransition>& transitions, Page* page) {
  page->Zero();
  page->WriteAt(0, header);
  for (uint32_t i = 0; i < header.num_records; ++i) {
    page->WriteAt(RecordOffset(i), records[i]);
  }
  for (uint32_t i = 0; i < transitions.size(); ++i) {
    page->WriteAt(TransitionOffset(i), transitions[i]);
  }
}

/// Everything a superblock restores, parsed into temporaries so a recovery
/// scan can discard a torn candidate and keep looking.
struct ParsedSuper {
  std::vector<PageId> directory;
  TagDictionary tags;
  std::vector<std::string> values;
  std::vector<uint8_t> user_blob;
};

/// Validates `super` (already read from a candidate page) and parses its
/// blob pages. Returns Corruption for any inconsistency.
Status ParseSuperblock(BufferPool* pool, PagedFile* file,
                       const Superblock& super, ParsedSuper* out) {
  if (super.version != 1 ||
      super.blob_start + super.blob_pages > file->NumPages() ||
      super.payload_bytes >
          static_cast<uint64_t>(super.blob_pages) * kPageSize) {
    return Status::Corruption("invalid superblock");
  }
  std::vector<uint8_t> blob(super.payload_bytes);
  size_t read = 0;
  for (uint32_t i = 0; i < super.blob_pages; ++i) {
    SECXML_ASSIGN_OR_RETURN(PageHandle page, pool->Fetch(super.blob_start + i));
    size_t chunk = std::min(kPageSize, blob.size() - read);
    std::memcpy(blob.data() + read, page.page().data.data(), chunk);
    read += chunk;
  }
  size_t pos = 0;
  if (blob.size() < static_cast<size_t>(super.dir_entries) * 4 + 4) {
    return Status::Corruption("truncated superblock payload");
  }
  for (uint32_t i = 0; i < super.dir_entries; ++i) {
    out->directory.push_back(ReadU32(blob, &pos));
  }
  uint32_t tag_count = ReadU32(blob, &pos);
  for (uint32_t t = 0; t < tag_count; ++t) {
    if (pos + 4 > blob.size()) {
      return Status::Corruption("truncated tag dictionary");
    }
    uint32_t len = ReadU32(blob, &pos);
    if (pos + len > blob.size()) {
      return Status::Corruption("truncated tag dictionary");
    }
    out->tags.Intern(std::string_view(
        reinterpret_cast<const char*>(blob.data() + pos), len));
    pos += len;
  }
  if (pos + 4 > blob.size()) {
    return Status::Corruption("truncated value pool");
  }
  uint32_t value_count = ReadU32(blob, &pos);
  out->values.reserve(value_count);
  for (uint32_t v = 0; v < value_count; ++v) {
    if (pos + 4 > blob.size()) {
      return Status::Corruption("truncated value pool");
    }
    uint32_t len = ReadU32(blob, &pos);
    if (pos + len > blob.size()) {
      return Status::Corruption("truncated value pool");
    }
    out->values.emplace_back(reinterpret_cast<const char*>(blob.data() + pos),
                             len);
    pos += len;
  }
  if (pos + 4 > blob.size()) {
    return Status::Corruption("truncated user blob");
  }
  uint32_t user_len = ReadU32(blob, &pos);
  if (pos + user_len > blob.size()) {
    return Status::Corruption("truncated user blob");
  }
  out->user_blob.assign(blob.begin() + static_cast<long>(pos),
                        blob.begin() + static_cast<long>(pos + user_len));
  return Status::OK();
}

/// The thread's innermost-first chain of snapshot pins (across all stores;
/// read_state walks it looking for this store).
thread_local NokStore::ReadPin* tl_pins = nullptr;

}  // namespace

const std::vector<NodeId> NokStore::empty_postings_;

NokStore::NokStore(PagedFile* file, const NokStoreOptions& options)
    : options_(options),
      pool_(file, options.buffer_pool_pages, options.buffer_pool_shards),
      state_(std::make_shared<const State>()) {
  state_raw_.store(state_.get(), std::memory_order_release);
  if (options_.readahead_window > 0) {
    readahead_ =
        std::make_unique<Readahead>(&pool_, options_.readahead_workers);
  }
}

NokStore::ReadPin::ReadPin(const NokStore* store)
    : store_(store), next_(tl_pins) {
  // Adopt an enclosing pin's snapshot on this thread so nested pins can
  // never straddle a commit; otherwise latch the latest committed state.
  for (ReadPin* p = next_; p != nullptr; p = p->next_) {
    if (p->store_ == store) {
      state_ = p->state_;
      break;
    }
  }
  if (state_ == nullptr) {
    std::lock_guard<std::mutex> lock(store->state_mu_);
    state_ = store->state_;
  }
  tl_pins = this;
}

NokStore::ReadPin::~ReadPin() {
  assert(tl_pins == this);
  tl_pins = next_;
}

const NokStore::State& NokStore::read_state() const {
  // The writer thread sees its own staged state mid-transaction, so staged
  // mutations compose (e.g. the multi-page run rewrite of a range update).
  // Other threads never dereference work_: they fail the tid test first.
  if (writer_tid_.load(std::memory_order_relaxed) ==
          std::this_thread::get_id() &&
      work_ != nullptr) {
    return *work_;
  }
  for (ReadPin* p = tl_pins; p != nullptr; p = p->next_) {
    if (p->store_ == this) return *p->state_;
  }
  return *state_raw_.load(std::memory_order_acquire);
}

Status NokStore::BeginUpdate() {
  if (work_ != nullptr) {
    return Status::InvalidArgument("update transaction already open");
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    work_ = std::make_unique<State>(*state_);
  }
  fresh_codes_.clear();
  writer_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  return Status::OK();
}

Status NokStore::CommitUpdate(UpdateDelta* delta) {
  if (work_ == nullptr) {
    return Status::InvalidArgument("no open update transaction");
  }
  if (delta != nullptr) {
    delta->fresh.clear();
    delta->old_ordinal_of.assign(work_->pages.size(), -1);
    std::unordered_map<PageId, size_t> old_ordinals;
    old_ordinals.reserve(state_->pages.size());
    for (size_t i = 0; i < state_->pages.size(); ++i) {
      old_ordinals.emplace(state_->pages[i].page_id, i);
    }
    for (size_t i = 0; i < work_->pages.size(); ++i) {
      PageId id = work_->pages[i].page_id;
      auto fresh = fresh_codes_.find(id);
      if (fresh != fresh_codes_.end()) {
        delta->fresh.push_back(UpdateDelta::PageCodePatch{i, fresh->second});
        continue;
      }
      auto old = old_ordinals.find(id);
      if (old != old_ordinals.end()) {
        delta->old_ordinal_of[i] = static_cast<int64_t>(old->second);
      }
    }
    delta->pages_changed = !delta->fresh.empty() ||
                           work_->pages.size() != state_->pages.size() ||
                           work_->num_nodes != state_->num_nodes;
  }
  auto next = std::make_shared<const State>(std::move(*work_));
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    state_ = std::move(next);
    state_raw_.store(state_.get(), std::memory_order_release);
  }
  work_.reset();
  wtags_.reset();
  wvalues_.reset();
  wpostings_.reset();
  fresh_codes_.clear();
  writer_tid_.store(std::thread::id(), std::memory_order_relaxed);
  return Status::OK();
}

void NokStore::AbortUpdate() {
  work_.reset();
  wtags_.reset();
  wvalues_.reset();
  wpostings_.reset();
  fresh_codes_.clear();
  writer_tid_.store(std::thread::id(), std::memory_order_relaxed);
}

TagDictionary& NokStore::wip_tags() {
  if (wtags_ == nullptr) {
    wtags_ = std::make_shared<TagDictionary>(*work_->tags);
    work_->tags = wtags_;
  }
  return *wtags_;
}

std::vector<std::string>& NokStore::wip_values() {
  if (wvalues_ == nullptr) {
    wvalues_ = std::make_shared<std::vector<std::string>>(*work_->values);
    work_->values = wvalues_;
  }
  return *wvalues_;
}

std::vector<std::vector<NodeId>>& NokStore::wip_postings() {
  if (wpostings_ == nullptr) {
    wpostings_ =
        std::make_shared<std::vector<std::vector<NodeId>>>(*work_->postings);
    work_->postings = wpostings_;
  }
  return *wpostings_;
}

void NokStore::NoteFreshPage(PageId id, uint32_t first_code,
                             const std::vector<DolTransition>& transitions) {
  std::vector<uint32_t> runs;
  runs.reserve(transitions.size() + 1);
  runs.push_back(first_code);
  for (const DolTransition& t : transitions) runs.push_back(t.code);
  fresh_codes_[id] = std::move(runs);
}

Result<PageHandle> NokStore::CowFetch(size_t ordinal) {
  PageInfo& info = wip().pages[ordinal];
  if (fresh_codes_.count(info.page_id) != 0) {
    // Already shadow-copied (or composed) by this transaction.
    return pool_.Fetch(info.page_id);
  }
  SECXML_ASSIGN_OR_RETURN(PageHandle old, pool_.Fetch(info.page_id));
  SECXML_ASSIGN_OR_RETURN(PageHandle fresh, pool_.Allocate());
  fresh.mutable_page()->data = old.page().data;
  fresh.MarkDirty();
  NokPageHeader header = fresh.page().ReadAt<NokPageHeader>(0);
  SECXML_RETURN_NOT_OK(CheckOnDiskHeader(header, info.page_id));
  std::vector<uint32_t> runs;
  runs.reserve(header.num_transitions + 1u);
  runs.push_back(header.first_code);
  for (uint32_t i = 0; i < header.num_transitions; ++i) {
    runs.push_back(
        fresh.page().ReadAt<DolTransition>(TransitionOffset(i)).code);
  }
  fresh_codes_.emplace(fresh.page_id(), std::move(runs));
  info.page_id = fresh.page_id();
  return fresh;
}

Status NokStore::Build(const Document& doc, PagedFile* file,
                       const NokStoreOptions& options,
                       const std::function<uint32_t(NodeId)>& code_of,
                       std::unique_ptr<NokStore>* out) {
  if (doc.empty()) return Status::InvalidArgument("cannot build empty store");
  if (file->NumPages() != 0) {
    return Status::InvalidArgument("Build requires an empty paged file");
  }
  std::unique_ptr<NokStore> store(new NokStore(file, options));
  SECXML_RETURN_NOT_OK(store->BeginUpdate());
  store->wip().num_nodes = static_cast<NodeId>(doc.NumNodes());
  store->wip_tags() = doc.tags();
  std::vector<std::string>& values = store->wip_values();
  std::vector<std::vector<NodeId>>& postings = store->wip_postings();
  postings.resize(store->wip().tags->size());

  const uint32_t max_records =
      options.max_records_per_page == 0
          ? kMaxRecordsPerPage
          : std::min(options.max_records_per_page, kMaxRecordsPerPage);

  std::vector<NokRecord> records;
  std::vector<DolTransition> transitions;
  NodeId page_first_node = 0;
  uint32_t page_first_code = 0;
  uint32_t prev_code = 0;

  auto flush_page = [&]() -> Status {
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, store->pool_.Allocate());
    NokPageHeader header;
    header.num_records = static_cast<uint16_t>(records.size());
    header.first_depth = records.empty() ? 0 : records[0].depth;
    header.num_transitions = static_cast<uint16_t>(transitions.size());
    header.first_code = page_first_code;
    header.set_change_bit(!transitions.empty());
    ComposePage(header, records.data(), transitions, handle.mutable_page());
    handle.MarkDirty();
    PageInfo info;
    info.page_id = handle.page_id();
    info.first_node = page_first_node;
    info.num_records = header.num_records;
    info.first_depth = header.first_depth;
    info.first_code = header.first_code;
    info.change_bit = header.change_bit();
    store->wip().pages.push_back(info);
    records.clear();
    transitions.clear();
    return Status::OK();
  };

  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    uint32_t code = code_of ? code_of(n) : 0;
    bool starts_page = records.empty();
    bool is_transition = !starts_page && code != prev_code;
    // Will this record (plus its transition entry, plus the reserved update
    // slack) still fit?
    uint32_t needed_transitions = static_cast<uint32_t>(transitions.size()) +
                                  (is_transition ? 1 : 0) +
                                  options.transition_slack;
    if (!starts_page &&
        (records.size() >= max_records ||
         !PageFits(static_cast<uint32_t>(records.size()) + 1,
                   needed_transitions))) {
      SECXML_RETURN_NOT_OK(flush_page());
      starts_page = true;
      is_transition = false;
    }
    if (starts_page) {
      page_first_node = n;
      page_first_code = code;
    }
    if (is_transition) {
      transitions.push_back(DolTransition{
          static_cast<uint16_t>(records.size()), 0, code});
    }
    NokRecord rec;
    rec.tag = doc.Tag(n);
    rec.subtree_size = doc.SubtreeSize(n);
    rec.depth = doc.Depth(n);
    if (doc.HasValue(n)) {
      rec.value_ref = static_cast<uint32_t>(values.size());
      values.emplace_back(doc.Value(n));
    }
    records.push_back(rec);
    postings[rec.tag].push_back(n);
    prev_code = code;
  }
  if (!records.empty()) {
    SECXML_RETURN_NOT_OK(flush_page());
  }
  SECXML_RETURN_NOT_OK(store->CommitUpdate());
  SECXML_RETURN_NOT_OK(store->pool_.FlushAll());
  *out = std::move(store);
  return Status::OK();
}

Status NokStore::Persist(const std::vector<uint8_t>& user_blob) {
  if (work_ != nullptr) {
    return Status::InvalidArgument("Persist inside an update transaction");
  }
  SECXML_RETURN_NOT_OK(pool_.FlushAll());
  const State& st = read_state();
  // Serialize the directory (ordered page ids) and the tag dictionary.
  std::vector<uint8_t> blob;
  for (const PageInfo& info : st.pages) AppendU32(&blob, info.page_id);
  AppendU32(&blob, static_cast<uint32_t>(st.tags->size()));
  for (TagId t = 0; t < st.tags->size(); ++t) {
    const std::string& name = st.tags->Name(t);
    AppendU32(&blob, static_cast<uint32_t>(name.size()));
    blob.insert(blob.end(), name.begin(), name.end());
  }
  AppendU32(&blob, static_cast<uint32_t>(st.values->size()));
  for (const std::string& v : *st.values) {
    AppendU32(&blob, static_cast<uint32_t>(v.size()));
    blob.insert(blob.end(), v.begin(), v.end());
  }
  AppendU32(&blob, static_cast<uint32_t>(user_blob.size()));
  blob.insert(blob.end(), user_blob.begin(), user_blob.end());

  Superblock super;
  super.num_nodes = st.num_nodes;
  super.dir_entries = static_cast<uint32_t>(st.pages.size());
  super.payload_bytes = blob.size();
  super.blob_pages =
      static_cast<uint32_t>((blob.size() + kPageSize - 1) / kPageSize);

  size_t written = 0;
  for (uint32_t i = 0; i < super.blob_pages; ++i) {
    SECXML_ASSIGN_OR_RETURN(PageHandle page, pool_.Allocate());
    if (i == 0) super.blob_start = page.page_id();
    size_t chunk = std::min(kPageSize, blob.size() - written);
    std::memcpy(page.mutable_page()->data.data(), blob.data() + written,
                chunk);
    written += chunk;
    page.MarkDirty();
  }
  SECXML_ASSIGN_OR_RETURN(PageHandle sb, pool_.Allocate());
  sb.mutable_page()->Zero();
  sb.mutable_page()->WriteAt(0, super);
  sb.MarkDirty();
  sb.Release();
  return pool_.FlushAll();
}

Status NokStore::Open(PagedFile* file, const NokStoreOptions& options,
                      std::unique_ptr<NokStore>* out,
                      std::vector<uint8_t>* user_blob) {
  if (user_blob != nullptr) user_blob->clear();
  if (file->NumPages() == 0) {
    return Status::InvalidArgument("cannot open an empty paged file");
  }
  std::unique_ptr<NokStore> store(new NokStore(file, options));

  ParsedSuper parsed;
  bool have_snapshot = false;
  if (options.recover_superblock) {
    // Crash recovery: updates after the last checkpoint appended pages past
    // its superblock, and a torn Persist may have left garbage at the end.
    // Shadow paging never overwrites a checkpoint's pages, so scanning
    // backward for the first fully parseable superblock always lands on the
    // latest durable checkpoint.
    for (PageId p = file->NumPages(); p-- > 0;) {
      Page raw;
      SECXML_RETURN_NOT_OK(file->ReadPage(p, &raw));
      Superblock super = raw.ReadAt<Superblock>(0);
      if (super.magic != kSuperMagic) continue;
      parsed = ParsedSuper();
      Status st = ParseSuperblock(&store->pool_, file, super, &parsed);
      if (st.ok()) {
        have_snapshot = true;
        break;
      }
      if (st.code() != StatusCode::kCorruption) return st;
    }
    if (!have_snapshot) {
      return Status::Corruption(
          "recovery found no valid superblock (no checkpoint on device)");
    }
  } else {
    // A Persist() snapshot? The last page carries the superblock.
    SECXML_ASSIGN_OR_RETURN(PageHandle last,
                            store->pool_.Fetch(file->NumPages() - 1));
    Superblock super = last.page().ReadAt<Superblock>(0);
    if (super.magic == kSuperMagic) {
      SECXML_RETURN_NOT_OK(
          ParseSuperblock(&store->pool_, file, super, &parsed));
      have_snapshot = true;
    }
  }
  if (!have_snapshot) {
    // Legacy layout: pages in physical order equal document order (true for
    // freshly built stores; splits and structural updates require Persist).
    parsed.directory.resize(file->NumPages());
    for (PageId id = 0; id < file->NumPages(); ++id) parsed.directory[id] = id;
  }
  if (user_blob != nullptr) *user_blob = std::move(parsed.user_blob);

  SECXML_RETURN_NOT_OK(store->BeginUpdate());
  store->wip_tags() = std::move(parsed.tags);
  store->wip_values() = std::move(parsed.values);
  std::vector<std::vector<NodeId>>& postings = store->wip_postings();

  NodeId next_node = 0;
  for (PageId id : parsed.directory) {
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, store->pool_.Fetch(id));
    NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
    if (header.num_records == 0 ||
        !PageFits(header.num_records, header.num_transitions)) {
      return Status::Corruption("invalid page header on page " +
                                std::to_string(id));
    }
    PageInfo info;
    info.page_id = id;
    info.first_node = next_node;
    info.num_records = header.num_records;
    info.first_depth = header.first_depth;
    info.first_code = header.first_code;
    info.change_bit = header.change_bit();
    store->wip().pages.push_back(info);

    // Rebuild the tag index while the page is resident.
    for (uint32_t slot = 0; slot < header.num_records; ++slot) {
      NokRecord rec = handle.page().ReadAt<NokRecord>(RecordOffset(slot));
      while (postings.size() <= rec.tag) {
        postings.emplace_back();
      }
      postings[rec.tag].push_back(next_node + slot);
    }
    next_node += header.num_records;
  }
  store->wip().num_nodes = next_node;
  SECXML_RETURN_NOT_OK(store->CommitUpdate());
  *out = std::move(store);
  return Status::OK();
}

void NokStore::SetReadahead(size_t window, size_t workers) {
  readahead_.reset();
  options_.readahead_window = window;
  options_.readahead_workers = workers;
  if (window > 0) {
    readahead_ = std::make_unique<Readahead>(&pool_, workers);
  }
}

namespace {

/// Validates that node `n` lies inside the page described by `info`; the
/// directory entry is trusted (in-memory, validated at open), the node id
/// is not — corrupt subtree_size fields can aim navigation anywhere.
Status CheckNodeInPage(const NokStore::PageInfo& info, NodeId n) {
  if (n < info.first_node || n - info.first_node >= info.num_records) {
    return Status::Corruption("node " + std::to_string(n) +
                              " lies outside page " +
                              std::to_string(info.page_id) +
                              " (corrupt node id or directory)");
  }
  return Status::OK();
}

}  // namespace

NodeId NokStore::num_nodes() const { return read_state().num_nodes; }

size_t NokStore::num_pages() const { return read_state().pages.size(); }

const std::vector<NokStore::PageInfo>& NokStore::page_infos() const {
  return read_state().pages;
}

const TagDictionary& NokStore::tags() const { return *read_state().tags; }

std::string_view NokStore::Value(const NokRecord& rec) const {
  return rec.value_ref == kNoValueRef
             ? std::string_view()
             : std::string_view((*read_state().values)[rec.value_ref]);
}

size_t NokStore::PageOrdinalOf(NodeId n) const {
  // Largest ordinal with first_node <= n. Total for any n (a corrupt or
  // out-of-range id maps to the last page and is rejected downstream by
  // CheckNodeInPage) so release builds never index out of bounds here.
  const std::vector<PageInfo>& pages = read_state().pages;
  if (pages.empty()) return 0;
  size_t lo = 0, hi = pages.size();
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (pages[mid].first_node <= n) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<NokRecord> NokStore::Record(NodeId n) {
  if (n >= read_state().num_nodes) {
    return Status::OutOfRange("node id " + std::to_string(n) +
                              " out of range");
  }
  return RecordInPage(PageOrdinalOf(n), n);
}

Result<NokRecord> NokStore::RecordInPage(size_t ordinal, NodeId n) {
  const std::vector<PageInfo>& pages = read_state().pages;
  if (ordinal >= pages.size()) {
    return Status::Corruption("page ordinal " + std::to_string(ordinal) +
                              " out of range");
  }
  const PageInfo& info = pages[ordinal];
  SECXML_RETURN_NOT_OK(CheckNodeInPage(info, n));
  SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Fetch(info.page_id));
  uint32_t slot = n - info.first_node;
  return handle.page().ReadAt<NokRecord>(RecordOffset(slot));
}

Status NokStore::RecordAndCode(NodeId n, NokRecord* record, uint32_t* code) {
  if (n >= read_state().num_nodes) {
    return Status::OutOfRange("node id " + std::to_string(n) +
                              " out of range");
  }
  return RecordAndCodeInPage(PageOrdinalOf(n), n, record, code);
}

Status NokStore::RecordAndCodeInPage(size_t ordinal, NodeId n,
                                     NokRecord* record, uint32_t* code) {
  const std::vector<PageInfo>& pages = read_state().pages;
  if (ordinal >= pages.size()) {
    return Status::Corruption("page ordinal " + std::to_string(ordinal) +
                              " out of range");
  }
  const PageInfo& info = pages[ordinal];
  SECXML_RETURN_NOT_OK(CheckNodeInPage(info, n));
  SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Fetch(info.page_id));
  uint32_t slot = n - info.first_node;
  *record = handle.page().ReadAt<NokRecord>(RecordOffset(slot));
  *code = info.first_code;
  if (info.change_bit && slot > 0) {
    NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
    SECXML_RETURN_NOT_OK(CheckOnDiskHeader(header, info.page_id));
    for (uint32_t i = 0; i < header.num_transitions; ++i) {
      DolTransition t =
          handle.page().ReadAt<DolTransition>(TransitionOffset(i));
      if (t.slot > slot) break;
      *code = t.code;
    }
  }
  return Status::OK();
}

Result<uint32_t> NokStore::AccessCode(NodeId n) {
  const State& st = read_state();
  if (n >= st.num_nodes) {
    return Status::OutOfRange("node id " + std::to_string(n) +
                              " out of range");
  }
  size_t ordinal = PageOrdinalOf(n);
  const PageInfo& info = st.pages[ordinal];
  uint32_t slot = n - info.first_node;
  // Without the change bit, every node in the page shares the initial code;
  // this is the in-memory-header fast path of Section 3.3.
  if (!info.change_bit || slot == 0) return info.first_code;
  SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Fetch(info.page_id));
  NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
  SECXML_RETURN_NOT_OK(CheckOnDiskHeader(header, info.page_id));
  uint32_t code = header.first_code;
  // Transitions are slot-ascending; take the last one at or before `slot`.
  for (uint32_t i = 0; i < header.num_transitions; ++i) {
    DolTransition t = handle.page().ReadAt<DolTransition>(TransitionOffset(i));
    if (t.slot > slot) break;
    code = t.code;
  }
  return code;
}

const std::vector<NodeId>& NokStore::Postings(TagId tag) const {
  const std::vector<std::vector<NodeId>>& postings = *read_state().postings;
  if (tag >= postings.size()) return empty_postings_;
  return postings[tag];
}

Result<NodeId> NokStore::FirstAtDepthInPage(size_t ordinal, uint16_t depth,
                                            NodeId from_node, NodeId limit) {
  const std::vector<PageInfo>& pages = read_state().pages;
  if (ordinal >= pages.size()) {
    return Status::OutOfRange("page ordinal out of range");
  }
  const PageInfo& info = pages[ordinal];
  SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Fetch(info.page_id));
  uint32_t first_slot =
      from_node > info.first_node ? from_node - info.first_node : 0;
  for (uint32_t slot = first_slot; slot < info.num_records; ++slot) {
    NodeId n = info.first_node + slot;
    if (n >= limit) break;
    NokRecord rec = handle.page().ReadAt<NokRecord>(RecordOffset(slot));
    if (rec.depth == depth) return n;
  }
  return kInvalidNode;
}

Result<std::vector<DolTransition>> NokStore::PageTransitions(size_t ordinal) {
  const std::vector<PageInfo>& pages = read_state().pages;
  if (ordinal >= pages.size()) {
    return Status::OutOfRange("page ordinal out of range");
  }
  SECXML_ASSIGN_OR_RETURN(PageHandle handle,
                          pool_.Fetch(pages[ordinal].page_id));
  NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
  SECXML_RETURN_NOT_OK(CheckOnDiskHeader(header, pages[ordinal].page_id));
  std::vector<DolTransition> result;
  result.reserve(header.num_transitions);
  for (uint32_t i = 0; i < header.num_transitions; ++i) {
    result.push_back(handle.page().ReadAt<DolTransition>(TransitionOffset(i)));
  }
  return result;
}

Status NokStore::SetPageAcl(size_t ordinal, uint32_t first_code,
                            std::vector<DolTransition> transitions) {
  bool auto_txn = !InUpdate();
  if (auto_txn) SECXML_RETURN_NOT_OK(BeginUpdate());
  Status st = SetPageAclStaged(ordinal, first_code, std::move(transitions));
  if (!auto_txn) return st;
  if (!st.ok()) {
    AbortUpdate();
    return st;
  }
  return CommitUpdate();
}

Status NokStore::SetPageAclStaged(size_t ordinal, uint32_t first_code,
                                  std::vector<DolTransition> transitions) {
  if (ordinal >= wip().pages.size()) {
    return Status::OutOfRange("page ordinal out of range");
  }
  PageInfo& info = wip().pages[ordinal];
  for (size_t i = 0; i < transitions.size(); ++i) {
    if (transitions[i].slot == 0 || transitions[i].slot >= info.num_records ||
        (i > 0 && transitions[i].slot <= transitions[i - 1].slot)) {
      return Status::InvalidArgument("transition slots must be ascending in "
                                     "(0, num_records)");
    }
  }
  if (!PageFits(info.num_records,
                static_cast<uint32_t>(transitions.size()))) {
    return SplitAndSet(ordinal, first_code, transitions);
  }
  SECXML_ASSIGN_OR_RETURN(PageHandle handle, CowFetch(ordinal));
  NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
  header.first_code = first_code;
  header.num_transitions = static_cast<uint16_t>(transitions.size());
  header.set_change_bit(!transitions.empty());
  handle.mutable_page()->WriteAt(0, header);
  for (uint32_t i = 0; i < transitions.size(); ++i) {
    handle.mutable_page()->WriteAt(TransitionOffset(i), transitions[i]);
  }
  handle.MarkDirty();
  // Re-read info: CowFetch may have repointed the entry's page_id.
  PageInfo& fresh_info = wip().pages[ordinal];
  fresh_info.first_code = first_code;
  fresh_info.change_bit = header.change_bit();
  NoteFreshPage(fresh_info.page_id, first_code, transitions);
  return Status::OK();
}

Status NokStore::SplitAndSet(size_t ordinal, uint32_t first_code,
                             const std::vector<DolTransition>& transitions) {
  if (wip().pages[ordinal].num_records < 2) {
    return Status::Corruption("cannot split a page with fewer than 2 records");
  }
  // Read all records of the overfull page (committed or staged image).
  std::vector<NokRecord> records(wip().pages[ordinal].num_records);
  {
    SECXML_ASSIGN_OR_RETURN(PageHandle handle,
                            pool_.Fetch(wip().pages[ordinal].page_id));
    for (uint32_t i = 0; i < records.size(); ++i) {
      records[i] = handle.page().ReadAt<NokRecord>(RecordOffset(i));
    }
  }
  uint32_t split = static_cast<uint32_t>(records.size()) / 2;

  // Partition the intended transitions; compute the code in effect at the
  // split point for the right page's header.
  std::vector<DolTransition> left_ts, right_ts;
  uint32_t right_first_code = first_code;
  for (const DolTransition& t : transitions) {
    if (t.slot < split) {
      left_ts.push_back(t);
      right_first_code = t.code;
    } else if (t.slot == split) {
      right_first_code = t.code;
    } else {
      right_ts.push_back(DolTransition{
          static_cast<uint16_t>(t.slot - split), 0, t.code});
    }
  }

  // Both halves are composed into fresh pages: the right one is new, and
  // the left one shadow-replaces the original so the committed image
  // survives for pinned readers and recovery.
  SECXML_ASSIGN_OR_RETURN(PageHandle right, pool_.Allocate());
  NokPageHeader right_header;
  right_header.num_records = static_cast<uint16_t>(records.size() - split);
  right_header.first_depth = records[split].depth;
  right_header.num_transitions = static_cast<uint16_t>(right_ts.size());
  right_header.first_code = right_first_code;
  right_header.set_change_bit(!right_ts.empty());
  ComposePage(right_header, records.data() + split, right_ts,
              right.mutable_page());
  right.MarkDirty();
  NoteFreshPage(right.page_id(), right_first_code, right_ts);

  {
    PageInfo& left_info = wip().pages[ordinal];
    PageHandle left;
    if (fresh_codes_.count(left_info.page_id) != 0) {
      SECXML_ASSIGN_OR_RETURN(left, pool_.Fetch(left_info.page_id));
    } else {
      SECXML_ASSIGN_OR_RETURN(left, pool_.Allocate());
      left_info.page_id = left.page_id();
    }
    NokPageHeader left_header;
    left_header.num_records = static_cast<uint16_t>(split);
    left_header.first_depth = records[0].depth;
    left_header.num_transitions = static_cast<uint16_t>(left_ts.size());
    left_header.first_code = first_code;
    left_header.set_change_bit(!left_ts.empty());
    ComposePage(left_header, records.data(), left_ts, left.mutable_page());
    left.MarkDirty();
    NoteFreshPage(left_info.page_id, first_code, left_ts);
  }

  PageInfo& left_info = wip().pages[ordinal];
  PageInfo right_info;
  right_info.page_id = right.page_id();
  right_info.first_node = left_info.first_node + split;
  right_info.num_records = right_header.num_records;
  right_info.first_depth = right_header.first_depth;
  right_info.first_code = right_header.first_code;
  right_info.change_bit = right_header.change_bit();

  left_info.num_records = static_cast<uint16_t>(split);
  left_info.first_code = first_code;
  left_info.change_bit = !left_ts.empty();

  wip().pages.insert(wip().pages.begin() + static_cast<long>(ordinal) + 1,
                     right_info);
  return Status::OK();
}

Status NokStore::ReadPageContents(size_t ordinal,
                                  std::vector<NokRecord>* records,
                                  std::vector<uint32_t>* codes) {
  const std::vector<PageInfo>& pages = read_state().pages;
  if (ordinal >= pages.size()) {
    return Status::OutOfRange("page ordinal out of range");
  }
  const PageInfo& info = pages[ordinal];
  SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Fetch(info.page_id));
  NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
  records->clear();
  codes->clear();
  uint32_t code = header.first_code;
  uint32_t next = 0;
  DolTransition trans{};
  if (next < header.num_transitions) {
    trans = handle.page().ReadAt<DolTransition>(TransitionOffset(next));
  }
  for (uint32_t slot = 0; slot < header.num_records; ++slot) {
    if (next < header.num_transitions && trans.slot == slot) {
      code = trans.code;
      ++next;
      if (next < header.num_transitions) {
        trans = handle.page().ReadAt<DolTransition>(TransitionOffset(next));
      }
    }
    records->push_back(handle.page().ReadAt<NokRecord>(RecordOffset(slot)));
    codes->push_back(code);
  }
  return Status::OK();
}

void NokStore::RebuildFirstNodes() {
  NodeId next = 0;
  for (PageInfo& info : wip().pages) {
    info.first_node = next;
    next += info.num_records;
  }
}

Status NokStore::ReplacePageRange(size_t begin_ord, size_t end_ord,
                                  const std::vector<NokRecord>& records,
                                  const std::vector<uint32_t>& codes) {
  assert(begin_ord <= end_ord && end_ord <= wip().pages.size());
  assert(records.size() == codes.size());
  const uint32_t max_records =
      options_.max_records_per_page == 0
          ? kMaxRecordsPerPage
          : std::min(options_.max_records_per_page, kMaxRecordsPerPage);

  // Pack records into fresh pages, greedily, honoring the update slack.
  std::vector<PageInfo> new_infos;
  size_t i = 0;
  while (i < records.size()) {
    uint32_t count = 1;
    uint32_t transitions = 0;
    while (i + count < records.size() && count < max_records) {
      uint32_t would_add = codes[i + count] != codes[i + count - 1] ? 1 : 0;
      if (!PageFits(count + 1,
                    transitions + would_add + options_.transition_slack)) {
        break;
      }
      transitions += would_add;
      ++count;
    }
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Allocate());
    NokPageHeader header;
    header.num_records = static_cast<uint16_t>(count);
    header.first_depth = records[i].depth;
    header.first_code = codes[i];
    std::vector<DolTransition> ts;
    for (uint32_t s = 1; s < count; ++s) {
      if (codes[i + s] != codes[i + s - 1]) {
        ts.push_back(DolTransition{static_cast<uint16_t>(s), 0, codes[i + s]});
      }
    }
    header.num_transitions = static_cast<uint16_t>(ts.size());
    header.set_change_bit(!ts.empty());
    ComposePage(header, records.data() + i, ts, handle.mutable_page());
    handle.MarkDirty();
    NoteFreshPage(handle.page_id(), header.first_code, ts);
    PageInfo info;
    info.page_id = handle.page_id();
    info.num_records = header.num_records;
    info.first_depth = header.first_depth;
    info.first_code = header.first_code;
    info.change_bit = header.change_bit();
    new_infos.push_back(info);
    i += count;
  }

  std::vector<PageInfo>& pages = wip().pages;
  pages.erase(pages.begin() + static_cast<long>(begin_ord),
              pages.begin() + static_cast<long>(end_ord));
  pages.insert(pages.begin() + static_cast<long>(begin_ord),
               new_infos.begin(), new_infos.end());
  RebuildFirstNodes();
  return Status::OK();
}

Status NokStore::Repack(size_t min_run_records, VacuumPlan* plan) {
  bool auto_txn = !InUpdate();
  if (auto_txn) SECXML_RETURN_NOT_OK(BeginUpdate());
  Status st = RepackStaged(min_run_records, plan);
  if (!auto_txn) return st;
  if (!st.ok()) {
    AbortUpdate();
    return st;
  }
  return CommitUpdate();
}

Status NokStore::RepackStaged(size_t min_run_records, VacuumPlan* plan_out) {
  // Gather the full record and code sequences in document order. Reads see
  // the staged state on the writer thread, so a vacuum composes with
  // earlier staged mutations of the same transaction.
  std::vector<NokRecord> records;
  std::vector<uint32_t> codes;
  std::vector<NokRecord> page_records;
  std::vector<uint32_t> page_codes;
  const size_t old_pages = wip().pages.size();
  for (size_t ordinal = 0; ordinal < old_pages; ++ordinal) {
    SECXML_RETURN_NOT_OK(ReadPageContents(ordinal, &page_records, &page_codes));
    records.insert(records.end(), page_records.begin(), page_records.end());
    codes.insert(codes.end(), page_codes.begin(), page_codes.end());
  }
  if (records.empty()) {
    if (plan_out != nullptr) *plan_out = VacuumPlan();
    return Status::OK();
  }

  PageGeometry geometry;
  geometry.page_bytes = kPageSize;
  geometry.header_bytes = sizeof(NokPageHeader);
  geometry.record_bytes = sizeof(NokRecord);
  geometry.transition_bytes = sizeof(DolTransition);
  VacuumPlanOptions popts;
  popts.max_records_per_page =
      options_.max_records_per_page == 0
          ? kMaxRecordsPerPage
          : std::min(options_.max_records_per_page, kMaxRecordsPerPage);
  popts.transition_slack = options_.transition_slack;
  popts.min_run_records = min_run_records;
  VacuumPlan plan = PlanVisibilityClusteredLayout(codes, geometry, popts);

  // Compose one fresh page per planned cut (shadow paging: old pages leak
  // in the file until CompactTo, like every page rewrite).
  std::vector<PageInfo> new_infos;
  new_infos.reserve(plan.page_starts.size());
  for (size_t p = 0; p < plan.page_starts.size(); ++p) {
    const size_t begin = plan.page_starts[p];
    const size_t end = p + 1 < plan.page_starts.size()
                           ? plan.page_starts[p + 1]
                           : records.size();
    const size_t count = end - begin;
    std::vector<DolTransition> ts;
    for (size_t s = begin + 1; s < end; ++s) {
      if (codes[s] != codes[s - 1]) {
        ts.push_back(
            DolTransition{static_cast<uint16_t>(s - begin), 0, codes[s]});
      }
    }
    // Fail closed on a malformed plan: committing an overfull page would
    // corrupt the store, so the hard fit is revalidated here.
    if (count == 0 || count > kMaxRecordsPerPage ||
        !PageFits(static_cast<uint32_t>(count),
                  static_cast<uint32_t>(ts.size()))) {
      return Status::Corruption("vacuum plan produced an unpackable page");
    }
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Allocate());
    NokPageHeader header;
    header.num_records = static_cast<uint16_t>(count);
    header.first_depth = records[begin].depth;
    header.first_code = codes[begin];
    header.num_transitions = static_cast<uint16_t>(ts.size());
    header.set_change_bit(!ts.empty());
    ComposePage(header, records.data() + begin, ts, handle.mutable_page());
    handle.MarkDirty();
    NoteFreshPage(handle.page_id(), header.first_code, ts);
    PageInfo info;
    info.page_id = handle.page_id();
    info.num_records = header.num_records;
    info.first_depth = header.first_depth;
    info.first_code = header.first_code;
    info.change_bit = header.change_bit();
    new_infos.push_back(info);
  }
  wip().pages = std::move(new_infos);
  RebuildFirstNodes();
  if (plan_out != nullptr) *plan_out = std::move(plan);
  return Status::OK();
}

Status NokStore::AncestorChain(NodeId target, std::vector<NodeId>* chain) {
  chain->clear();
  if (target >= read_state().num_nodes) {
    return Status::OutOfRange("node id out of range");
  }
  NodeId x = 0;
  while (x != target) {
    chain->push_back(x);
    NodeId c = x + 1;  // x has children because target lies inside it
    while (true) {
      SECXML_ASSIGN_OR_RETURN(NokRecord crec, Record(c));
      if (target < c + crec.subtree_size) break;
      c += crec.subtree_size;
    }
    x = c;
  }
  return Status::OK();
}

Status NokStore::AdjustSubtreeSizes(const std::vector<NodeId>& chain,
                                    int64_t delta) {
  for (NodeId n : chain) {
    size_t ordinal = PageOrdinalOf(n);
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, CowFetch(ordinal));
    const PageInfo& info = wip().pages[ordinal];
    uint32_t slot = n - info.first_node;
    NokRecord rec = handle.page().ReadAt<NokRecord>(RecordOffset(slot));
    rec.subtree_size = static_cast<uint32_t>(
        static_cast<int64_t>(rec.subtree_size) + delta);
    handle.mutable_page()->WriteAt(RecordOffset(slot), rec);
    handle.MarkDirty();
  }
  return Status::OK();
}

void NokStore::SplicePostings(NodeId pos, NodeId removed, NodeId added) {
  for (std::vector<NodeId>& list : wip_postings()) {
    size_t out = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      NodeId id = list[i];
      if (id < pos) {
        list[out++] = id;
      } else if (id >= pos + removed) {
        list[out++] = id - removed + added;
      }
      // ids inside [pos, pos + removed) are dropped.
    }
    list.resize(out);
  }
}

Status NokStore::DeleteSubtree(NodeId root) {
  bool auto_txn = !InUpdate();
  if (auto_txn) SECXML_RETURN_NOT_OK(BeginUpdate());
  Status st = DeleteSubtreeStaged(root);
  if (!auto_txn) return st;
  if (!st.ok()) {
    AbortUpdate();
    return st;
  }
  return CommitUpdate();
}

Status NokStore::DeleteSubtreeStaged(NodeId root) {
  if (root == 0) {
    return Status::InvalidArgument("cannot delete the document root");
  }
  SECXML_ASSIGN_OR_RETURN(NokRecord rec, Record(root));
  NodeId count = rec.subtree_size;
  NodeId end = root + count;

  std::vector<NodeId> chain;
  SECXML_RETURN_NOT_OK(AncestorChain(root, &chain));
  SECXML_RETURN_NOT_OK(AdjustSubtreeSizes(chain, -static_cast<int64_t>(count)));

  size_t first_ord = PageOrdinalOf(root);
  size_t last_ord = PageOrdinalOf(end - 1);
  std::vector<NokRecord> kept;
  std::vector<uint32_t> kept_codes;
  {
    std::vector<NokRecord> recs;
    std::vector<uint32_t> codes;
    SECXML_RETURN_NOT_OK(ReadPageContents(first_ord, &recs, &codes));
    uint32_t cut = root - wip().pages[first_ord].first_node;
    kept.assign(recs.begin(), recs.begin() + cut);
    kept_codes.assign(codes.begin(), codes.begin() + cut);
  }
  {
    std::vector<NokRecord> recs;
    std::vector<uint32_t> codes;
    SECXML_RETURN_NOT_OK(ReadPageContents(last_ord, &recs, &codes));
    uint32_t cut = end - wip().pages[last_ord].first_node;
    kept.insert(kept.end(), recs.begin() + cut, recs.end());
    kept_codes.insert(kept_codes.end(), codes.begin() + cut, codes.end());
  }
  SECXML_RETURN_NOT_OK(
      ReplacePageRange(first_ord, last_ord + 1, kept, kept_codes));
  wip().num_nodes -= count;
  SplicePostings(root, count, 0);
  return Status::OK();
}

Result<NodeId> NokStore::InsertSubtree(
    NodeId parent, NodeId after, const Document& fragment,
    const std::function<uint32_t(NodeId)>& code_of) {
  bool auto_txn = !InUpdate();
  if (auto_txn) {
    Status st = BeginUpdate();
    if (!st.ok()) return st;
  }
  Result<NodeId> r = InsertSubtreeStaged(parent, after, fragment, code_of);
  if (!auto_txn) return r;
  if (!r.ok()) {
    AbortUpdate();
    return r;
  }
  Status st = CommitUpdate();
  if (!st.ok()) return st;
  return r;
}

Result<NodeId> NokStore::InsertSubtreeStaged(
    NodeId parent, NodeId after, const Document& fragment,
    const std::function<uint32_t(NodeId)>& code_of) {
  if (fragment.empty()) {
    return Status::InvalidArgument("empty fragment");
  }
  SECXML_ASSIGN_OR_RETURN(NokRecord prec, Record(parent));
  NodeId parent_end = parent + prec.subtree_size;
  NodeId p;
  if (after == kInvalidNode) {
    p = parent + 1;
  } else {
    if (after <= parent || after >= parent_end) {
      return Status::InvalidArgument("'after' is not a child of 'parent'");
    }
    SECXML_ASSIGN_OR_RETURN(NokRecord arec, Record(after));
    if (arec.depth != prec.depth + 1) {
      return Status::InvalidArgument("'after' is not a child of 'parent'");
    }
    p = after + arec.subtree_size;
  }
  NodeId count = static_cast<NodeId>(fragment.NumNodes());

  std::vector<NodeId> chain;
  SECXML_RETURN_NOT_OK(AncestorChain(parent, &chain));
  chain.push_back(parent);
  SECXML_RETURN_NOT_OK(AdjustSubtreeSizes(chain, static_cast<int64_t>(count)));

  // Materialize the fragment's records in this store's tag/value spaces.
  std::vector<NokRecord> frag_recs(count);
  std::vector<uint32_t> frag_codes(count);
  uint16_t base_depth = static_cast<uint16_t>(prec.depth + 1);
  for (NodeId f = 0; f < count; ++f) {
    NokRecord r;
    r.tag = wip_tags().Intern(fragment.TagName(f));
    while (wip_postings().size() <= r.tag) wip_postings().emplace_back();
    r.subtree_size = fragment.SubtreeSize(f);
    r.depth = static_cast<uint16_t>(base_depth + fragment.Depth(f));
    if (fragment.HasValue(f)) {
      r.value_ref = static_cast<uint32_t>(wip_values().size());
      wip_values().emplace_back(fragment.Value(f));
    }
    frag_recs[f] = r;
    frag_codes[f] = code_of ? code_of(f) : 0;
  }

  if (p == wip().num_nodes) {
    SECXML_RETURN_NOT_OK(ReplacePageRange(wip().pages.size(),
                                          wip().pages.size(), frag_recs,
                                          frag_codes));
  } else {
    size_t ord = PageOrdinalOf(p);
    std::vector<NokRecord> recs;
    std::vector<uint32_t> codes;
    SECXML_RETURN_NOT_OK(ReadPageContents(ord, &recs, &codes));
    uint32_t cut = p - wip().pages[ord].first_node;
    std::vector<NokRecord> combined(recs.begin(), recs.begin() + cut);
    std::vector<uint32_t> combined_codes(codes.begin(), codes.begin() + cut);
    combined.insert(combined.end(), frag_recs.begin(), frag_recs.end());
    combined_codes.insert(combined_codes.end(), frag_codes.begin(),
                          frag_codes.end());
    combined.insert(combined.end(), recs.begin() + cut, recs.end());
    combined_codes.insert(combined_codes.end(), codes.begin() + cut,
                          codes.end());
    SECXML_RETURN_NOT_OK(
        ReplacePageRange(ord, ord + 1, combined, combined_codes));
  }
  wip().num_nodes += count;
  SplicePostings(p, 0, count);
  for (NodeId f = 0; f < count; ++f) {
    std::vector<NodeId>& list = wip_postings()[frag_recs[f].tag];
    NodeId id = p + f;
    list.insert(std::lower_bound(list.begin(), list.end(), id), id);
  }
  return p;
}

Status NokStore::CompactTo(PagedFile* dest, const NokStoreOptions& options,
                           std::unique_ptr<NokStore>* out) {
  if (dest->NumPages() != 0) {
    return Status::InvalidArgument("CompactTo requires an empty paged file");
  }
  const State& src = read_state();
  std::unique_ptr<NokStore> compacted(new NokStore(dest, options));
  SECXML_RETURN_NOT_OK(compacted->BeginUpdate());
  compacted->wip().num_nodes = src.num_nodes;
  compacted->wip().tags = src.tags;
  compacted->wip().values = src.values;
  compacted->wip().postings = src.postings;

  // Collect records and codes in document order (16 bytes per node), then
  // repack them densely.
  std::vector<NokRecord> records;
  std::vector<uint32_t> codes;
  records.reserve(src.num_nodes);
  codes.reserve(src.num_nodes);
  for (size_t ordinal = 0; ordinal < src.pages.size(); ++ordinal) {
    std::vector<NokRecord> page_records;
    std::vector<uint32_t> page_codes;
    SECXML_RETURN_NOT_OK(ReadPageContents(ordinal, &page_records, &page_codes));
    records.insert(records.end(), page_records.begin(), page_records.end());
    codes.insert(codes.end(), page_codes.begin(), page_codes.end());
  }
  SECXML_RETURN_NOT_OK(compacted->ReplacePageRange(0, 0, records, codes));
  SECXML_RETURN_NOT_OK(compacted->CommitUpdate());
  SECXML_RETURN_NOT_OK(compacted->Persist());
  *out = std::move(compacted);
  return Status::OK();
}

Result<uint64_t> NokStore::CountEmbeddedTransitions() {
  uint64_t total = 0;
  for (const PageInfo& info : read_state().pages) {
    if (!info.change_bit) continue;
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Fetch(info.page_id));
    total += handle.page().ReadAt<NokPageHeader>(0).num_transitions;
  }
  return total;
}

Status NokStore::CheckIntegrity() {
  const State& st = read_state();
  NodeId expected_first = 0;
  // Stack of subtree end positions; depth = stack size.
  std::vector<NodeId> ends;
  for (size_t ordinal = 0; ordinal < st.pages.size(); ++ordinal) {
    const PageInfo& info = st.pages[ordinal];
    if (info.first_node != expected_first) {
      return Status::Corruption("page first_node mismatch at ordinal " +
                                std::to_string(ordinal));
    }
    SECXML_ASSIGN_OR_RETURN(PageHandle handle, pool_.Fetch(info.page_id));
    NokPageHeader header = handle.page().ReadAt<NokPageHeader>(0);
    if (header.num_records != info.num_records ||
        header.first_depth != info.first_depth ||
        header.first_code != info.first_code ||
        header.change_bit() != info.change_bit) {
      return Status::Corruption("in-memory header out of sync at ordinal " +
                                std::to_string(ordinal));
    }
    for (uint32_t slot = 0; slot < header.num_records; ++slot) {
      NodeId n = info.first_node + slot;
      NokRecord rec = handle.page().ReadAt<NokRecord>(RecordOffset(slot));
      while (!ends.empty() && ends.back() <= n) ends.pop_back();
      if (rec.depth != ends.size()) {
        return Status::Corruption("depth mismatch at node " +
                                  std::to_string(n));
      }
      if (slot == 0 && rec.depth != header.first_depth) {
        return Status::Corruption("first_depth mismatch at ordinal " +
                                  std::to_string(ordinal));
      }
      if (rec.subtree_size == 0 ||
          n + rec.subtree_size > st.num_nodes ||
          (!ends.empty() && n + rec.subtree_size > ends.back())) {
        return Status::Corruption("subtree size out of bounds at node " +
                                  std::to_string(n));
      }
      ends.push_back(n + rec.subtree_size);
    }
    expected_first += header.num_records;
  }
  if (expected_first != st.num_nodes) {
    return Status::Corruption("node count mismatch");
  }
  return Status::OK();
}

}  // namespace secxml
