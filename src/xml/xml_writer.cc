#include "xml/xml_writer.h"

namespace secxml {

namespace {

void AppendEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '&':
        out->append("&amp;");
        break;
      case '"':
        out->append("&quot;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendIndent(int depth, std::string* out) {
  out->push_back('\n');
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

/// Recursive serializer. `visible` may be null (everything visible).
void WriteNode(const Document& doc, NodeId n,
               const std::function<bool(NodeId)>* visible, bool pretty,
               int depth, std::string* out) {
  const std::string& tag = doc.TagName(n);
  if (pretty && depth > 0) AppendIndent(depth, out);
  out->push_back('<');
  out->append(tag);

  // Attribute children first (they are always emitted immediately after the
  // element in document order by the parser).
  NodeId child = doc.FirstChild(n);
  std::vector<NodeId> element_children;
  while (child != kInvalidNode) {
    if (visible == nullptr || (*visible)(child)) {
      const std::string& ctag = doc.TagName(child);
      if (!ctag.empty() && ctag[0] == '@') {
        out->push_back(' ');
        out->append(ctag.substr(1));
        out->append("=\"");
        AppendEscaped(doc.Value(child), out);
        out->push_back('"');
      } else {
        element_children.push_back(child);
      }
    }
    child = doc.NextSibling(child);
  }

  std::string_view value = doc.Value(n);
  if (element_children.empty() && value.empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  AppendEscaped(value, out);
  for (NodeId ec : element_children) {
    WriteNode(doc, ec, visible, pretty, depth + 1, out);
  }
  if (pretty && !element_children.empty()) AppendIndent(depth, out);
  out->append("</");
  out->append(tag);
  out->push_back('>');
}

}  // namespace

std::string WriteXml(const Document& doc, NodeId root,
                     const XmlWriteOptions& options) {
  std::string out;
  if (root < doc.NumNodes()) {
    WriteNode(doc, root, nullptr, options.pretty, 0, &out);
  }
  return out;
}

std::string WriteXmlFiltered(const Document& doc,
                             const std::function<bool(NodeId)>& visible,
                             NodeId root, const XmlWriteOptions& options) {
  std::string out;
  if (root < doc.NumNodes() && visible(root)) {
    WriteNode(doc, root, &visible, options.pretty, 0, &out);
  }
  return out;
}

}  // namespace secxml
