#ifndef SECXML_XML_DOCUMENT_H_
#define SECXML_XML_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/tag_dictionary.h"

namespace secxml {

/// Identifier of a document node: its preorder (document-order) rank,
/// starting at 0 for the root. Document order is the basis of both the NoK
/// physical layout and the DOL access-control labeling.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// In-memory XML document modeled as an ordered tree of elements, stored as
/// a flat array in document order. Each node carries:
///   - tag id,
///   - subtree size (number of nodes in the subtree rooted here, self
///     included) — an equivalent encoding of the NoK parenthesis string that
///     allows O(1) next-sibling jumps,
///   - parent id,
///   - depth (root = 0),
///   - optional text value (concatenated character data of the element).
///
/// The flat preorder layout is deliberately identical in shape to the NoK
/// on-disk encoding so that NokStore construction is a single linear pass.
class Document {
 public:
  Document() = default;

  // Movable but not copyable: documents can be hundreds of MBs.
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  size_t NumNodes() const { return tags_.size(); }
  bool empty() const { return tags_.empty(); }

  TagId Tag(NodeId n) const { return tags_[n]; }
  const std::string& TagName(NodeId n) const { return tags2_.Name(tags_[n]); }
  uint32_t SubtreeSize(NodeId n) const { return sizes_[n]; }
  NodeId Parent(NodeId n) const { return parents_[n]; }
  uint16_t Depth(NodeId n) const { return depths_[n]; }

  /// Text value of the element, or empty if none.
  std::string_view Value(NodeId n) const {
    uint32_t v = values_[n];
    return v == kNoValue ? std::string_view() : std::string_view(text_pool_[v]);
  }
  bool HasValue(NodeId n) const { return values_[n] != kNoValue; }

  /// First child in document order, or kInvalidNode if `n` is a leaf.
  NodeId FirstChild(NodeId n) const {
    return sizes_[n] > 1 ? n + 1 : kInvalidNode;
  }

  /// Next sibling in document order, or kInvalidNode if none.
  NodeId NextSibling(NodeId n) const {
    NodeId p = parents_[n];
    if (p == kInvalidNode) return kInvalidNode;
    NodeId cand = n + sizes_[n];
    return cand < p + sizes_[p] ? cand : kInvalidNode;
  }

  /// One past the last node of n's subtree: [n, SubtreeEnd(n)) is exactly
  /// the preorder interval of the subtree.
  NodeId SubtreeEnd(NodeId n) const { return n + sizes_[n]; }

  /// True if `anc` is a proper ancestor of `desc`.
  bool IsAncestor(NodeId anc, NodeId desc) const {
    return anc < desc && desc < SubtreeEnd(anc);
  }

  const TagDictionary& tags() const { return tags2_; }
  TagDictionary* mutable_tags() { return &tags2_; }

  /// Maximum depth over all nodes (root = 0); 0 for an empty document.
  uint16_t MaxDepth() const;
  /// Mean depth over all nodes.
  double AvgDepth() const;

 private:
  friend class DocumentBuilder;

  static constexpr uint32_t kNoValue = 0xffffffffu;

  TagDictionary tags2_;
  std::vector<TagId> tags_;
  std::vector<uint32_t> sizes_;
  std::vector<NodeId> parents_;
  std::vector<uint16_t> depths_;
  std::vector<uint32_t> values_;       // index into text_pool_, or kNoValue
  std::vector<std::string> text_pool_;
};

/// Incremental document construction in document order, SAX-style:
///   BeginElement(tag) ... Text(...) ... EndElement()
/// This mirrors how DOL is constructed in a single pass over a labeled
/// document stream (Section 2 of the paper).
class DocumentBuilder {
 public:
  DocumentBuilder() : doc_(new Document()) {}

  /// Opens a new element as the child of the currently open element (or as
  /// the root if none is open). Returns the new node's id.
  NodeId BeginElement(std::string_view tag);

  /// Appends character data to the currently open element.
  Status Text(std::string_view data);

  /// Closes the most recently opened element.
  Status EndElement();

  /// Finalizes and returns the document. Fails if elements remain open or
  /// the document is empty.
  Status Finish(Document* out);

  /// Number of nodes emitted so far.
  size_t NumNodes() const { return doc_->tags_.size(); }

  /// Depth of the currently open element stack.
  size_t OpenDepth() const { return stack_.size(); }

 private:
  std::unique_ptr<Document> doc_;
  std::vector<NodeId> stack_;
  std::vector<std::string> pending_text_;  // parallel to stack_
};

}  // namespace secxml

#endif  // SECXML_XML_DOCUMENT_H_
