#include "xml/xml_parser.h"

#include <cctype>
#include <string>

#include "xml/sax.h"

namespace secxml {

namespace {

/// Cursor over the input with line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool StartsWith(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  /// Advances past `s` if the input starts with it; returns whether it did.
  bool Consume(std::string_view s) {
    if (!StartsWith(s)) return false;
    AdvanceBy(s.size());
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  size_t pos() const { return pos_; }
  size_t line() const { return line_; }
  std::string_view Slice(size_t from, size_t to) const {
    return input_.substr(from, to - from);
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

Status ErrorAt(const Cursor& c, const std::string& what) {
  return Status::Corruption("XML parse error at line " +
                            std::to_string(c.line()) + ": " + what);
}

/// Decodes an entity reference starting at '&'. Appends the decoded text.
Status DecodeEntity(Cursor* c, std::string* out) {
  // Cursor points at '&'.
  c->Advance();
  size_t start = c->pos();
  while (!c->AtEnd() && c->Peek() != ';') {
    if (c->pos() - start > 10) return ErrorAt(*c, "unterminated entity");
    c->Advance();
  }
  if (c->AtEnd()) return ErrorAt(*c, "unterminated entity");
  std::string_view name = c->Slice(start, c->pos());
  c->Advance();  // past ';'
  if (name == "lt") {
    out->push_back('<');
  } else if (name == "gt") {
    out->push_back('>');
  } else if (name == "amp") {
    out->push_back('&');
  } else if (name == "quot") {
    out->push_back('"');
  } else if (name == "apos") {
    out->push_back('\'');
  } else if (!name.empty() && name[0] == '#') {
    // Numeric character reference; emit as UTF-8 for code points < 128,
    // else substitute '?': values beyond ASCII are irrelevant to the
    // reproduced experiments.
    long code = 0;
    if (name.size() > 1 && (name[1] == 'x' || name[1] == 'X')) {
      code = std::strtol(std::string(name.substr(2)).c_str(), nullptr, 16);
    } else {
      code = std::strtol(std::string(name.substr(1)).c_str(), nullptr, 10);
    }
    out->push_back(code > 0 && code < 128 ? static_cast<char>(code) : '?');
  } else {
    return ErrorAt(*c, "unknown entity &" + std::string(name) + ";");
  }
  return Status::OK();
}

/// Parses a Name token.
Status ParseName(Cursor* c, std::string* out) {
  if (c->AtEnd() || !IsNameStartChar(c->Peek())) {
    return ErrorAt(*c, "expected name");
  }
  size_t start = c->pos();
  while (!c->AtEnd() && IsNameChar(c->Peek())) c->Advance();
  *out = std::string(c->Slice(start, c->pos()));
  return Status::OK();
}

/// Parses a quoted attribute value with entity decoding.
Status ParseAttrValue(Cursor* c, std::string* out) {
  if (c->AtEnd() || (c->Peek() != '"' && c->Peek() != '\'')) {
    return ErrorAt(*c, "expected quoted attribute value");
  }
  char quote = c->Peek();
  c->Advance();
  out->clear();
  while (!c->AtEnd() && c->Peek() != quote) {
    if (c->Peek() == '&') {
      SECXML_RETURN_NOT_OK(DecodeEntity(c, out));
    } else {
      out->push_back(c->Peek());
      c->Advance();
    }
  }
  if (c->AtEnd()) return ErrorAt(*c, "unterminated attribute value");
  c->Advance();  // past closing quote
  return Status::OK();
}

/// Skips <!-- ... -->, <? ... ?>, and bare <!DOCTYPE name ...> markup.
Status SkipMisc(Cursor* c) {
  if (c->Consume("<!--")) {
    while (!c->AtEnd() && !c->StartsWith("-->")) c->Advance();
    if (!c->Consume("-->")) return ErrorAt(*c, "unterminated comment");
    return Status::OK();
  }
  if (c->Consume("<?")) {
    while (!c->AtEnd() && !c->StartsWith("?>")) c->Advance();
    if (!c->Consume("?>")) {
      return ErrorAt(*c, "unterminated processing instruction");
    }
    return Status::OK();
  }
  if (c->Consume("<!DOCTYPE")) {
    // Skip to matching '>' (no internal subset support).
    int depth = 1;
    while (!c->AtEnd() && depth > 0) {
      if (c->Peek() == '<') ++depth;
      if (c->Peek() == '>') --depth;
      c->Advance();
    }
    if (depth != 0) return ErrorAt(*c, "unterminated DOCTYPE");
    return Status::OK();
  }
  return ErrorAt(*c, "unexpected markup");
}

}  // namespace

Status ParseXmlStream(std::string_view input, XmlContentHandler* handler) {
  Cursor c(input);
  std::vector<std::string> open_tags;
  int open_elements = 0;
  bool seen_root = false;

  while (!c.AtEnd()) {
    if (c.Peek() == '<') {
      if (c.PeekAt(1) == '/') {
        // End tag.
        c.AdvanceBy(2);
        std::string name;
        SECXML_RETURN_NOT_OK(ParseName(&c, &name));
        c.SkipWhitespace();
        if (!c.Consume(">")) return ErrorAt(c, "expected '>' in end tag");
        if (open_tags.empty() || open_tags.back() != name) {
          return ErrorAt(c, "mismatched end tag </" + name + ">");
        }
        open_tags.pop_back();
        SECXML_RETURN_NOT_OK(handler->EndElement(name));
        --open_elements;
      } else if (c.PeekAt(1) == '!' || c.PeekAt(1) == '?') {
        if (c.StartsWith("<![CDATA[")) {
          c.AdvanceBy(9);
          size_t start = c.pos();
          while (!c.AtEnd() && !c.StartsWith("]]>")) c.Advance();
          if (c.AtEnd()) return ErrorAt(c, "unterminated CDATA");
          if (open_elements == 0) {
            return ErrorAt(c, "character data outside root element");
          }
          SECXML_RETURN_NOT_OK(handler->Characters(c.Slice(start, c.pos())));
          c.AdvanceBy(3);
        } else {
          SECXML_RETURN_NOT_OK(SkipMisc(&c));
        }
      } else {
        // Start tag.
        if (seen_root && open_elements == 0) {
          return ErrorAt(c, "multiple root elements");
        }
        c.Advance();  // past '<'
        std::string name;
        SECXML_RETURN_NOT_OK(ParseName(&c, &name));
        SECXML_RETURN_NOT_OK(handler->StartElement(name));
        open_tags.push_back(name);
        seen_root = true;
        ++open_elements;
        // Attributes.
        bool self_closing = false;
        while (true) {
          c.SkipWhitespace();
          if (c.AtEnd()) return ErrorAt(c, "unterminated start tag");
          if (c.Consume("/>")) {
            self_closing = true;
            break;
          }
          if (c.Consume(">")) break;
          std::string attr;
          SECXML_RETURN_NOT_OK(ParseName(&c, &attr));
          c.SkipWhitespace();
          if (!c.Consume("=")) return ErrorAt(c, "expected '=' after attribute");
          c.SkipWhitespace();
          std::string value;
          SECXML_RETURN_NOT_OK(ParseAttrValue(&c, &value));
          std::string attr_tag = "@" + attr;
          SECXML_RETURN_NOT_OK(handler->StartElement(attr_tag));
          SECXML_RETURN_NOT_OK(handler->Characters(value));
          SECXML_RETURN_NOT_OK(handler->EndElement(attr_tag));
        }
        if (self_closing) {
          open_tags.pop_back();
          SECXML_RETURN_NOT_OK(handler->EndElement(name));
          --open_elements;
        }
      }
    } else {
      // Character data.
      std::string text;
      while (!c.AtEnd() && c.Peek() != '<') {
        if (c.Peek() == '&') {
          SECXML_RETURN_NOT_OK(DecodeEntity(&c, &text));
        } else {
          text.push_back(c.Peek());
          c.Advance();
        }
      }
      // Whitespace between elements that is all blank is insignificant for
      // our tree model.
      bool all_space = true;
      for (char ch : text) {
        if (!std::isspace(static_cast<unsigned char>(ch))) {
          all_space = false;
          break;
        }
      }
      if (!all_space) {
        if (open_elements == 0) {
          return ErrorAt(c, "character data outside root element");
        }
        SECXML_RETURN_NOT_OK(handler->Characters(text));
      }
    }
  }

  if (open_elements != 0) {
    return Status::Corruption("XML parse error: " +
                              std::to_string(open_elements) +
                              " unclosed element(s) at end of input");
  }
  return Status::OK();
}

namespace {

/// Adapter delivering stream events into a DocumentBuilder.
class BuilderHandler final : public XmlContentHandler {
 public:
  Status StartElement(std::string_view name) override {
    builder_.BeginElement(name);
    return Status::OK();
  }
  Status Characters(std::string_view text) override {
    return builder_.Text(text);
  }
  Status EndElement(std::string_view) override {
    return builder_.EndElement();
  }
  Status Finish(Document* out) { return builder_.Finish(out); }

 private:
  DocumentBuilder builder_;
};

}  // namespace

Status ParseXml(std::string_view input, Document* out) {
  BuilderHandler handler;
  SECXML_RETURN_NOT_OK(ParseXmlStream(input, &handler));
  return handler.Finish(out);
}

}  // namespace secxml
