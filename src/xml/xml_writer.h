#ifndef SECXML_XML_XML_WRITER_H_
#define SECXML_XML_XML_WRITER_H_

#include <functional>
#include <string>

#include "xml/document.h"

namespace secxml {

/// Options controlling XML serialization.
struct XmlWriteOptions {
  /// Indent children by two spaces per depth level and put each element on
  /// its own line. Off by default (canonical compact form).
  bool pretty = false;
};

/// Serializes `doc` (or the subtree rooted at `root`) to XML text.
/// Attribute-children (tags beginning with '@') are rendered back as
/// attributes of their parent element.
std::string WriteXml(const Document& doc, NodeId root = 0,
                     const XmlWriteOptions& options = {});

/// Serializes only the nodes for which `visible(node)` returns true, under
/// prune semantics: if a node is filtered out, its entire subtree is omitted.
/// This is the "secure view" serialization used for selective dissemination
/// (Section 7 of the paper notes DOL supports streaming dissemination).
std::string WriteXmlFiltered(const Document& doc,
                             const std::function<bool(NodeId)>& visible,
                             NodeId root = 0,
                             const XmlWriteOptions& options = {});

}  // namespace secxml

#endif  // SECXML_XML_XML_WRITER_H_
