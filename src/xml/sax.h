#ifndef SECXML_XML_SAX_H_
#define SECXML_XML_SAX_H_

#include <string_view>

#include "common/status.h"

namespace secxml {

/// Streaming (SAX-style) XML content handler. ParseXmlStream drives one of
/// these; DocumentBuilder-backed parsing and the one-pass secure stream
/// filter are both implemented on top of it.
///
/// Attribute handling: the parser surfaces attributes as child elements
/// whose name is "@" + the attribute name, delivered as
/// StartElement("@x") / Characters(value) / EndElement("@x") immediately
/// after their owner's StartElement — matching the tree model in which
/// every addressable item is a node.
class XmlContentHandler {
 public:
  virtual ~XmlContentHandler() = default;

  /// A new element opens. `name` is valid only for the duration of the call.
  virtual Status StartElement(std::string_view name) = 0;

  /// Character data inside the current element (entity references already
  /// decoded). May be called multiple times per element.
  virtual Status Characters(std::string_view text) = 0;

  /// The current element closes.
  virtual Status EndElement(std::string_view name) = 0;
};

/// Parses XML text, delivering events to `handler` in document order.
/// Grammar support matches ParseXml (xml_parser.h).
Status ParseXmlStream(std::string_view input, XmlContentHandler* handler);

}  // namespace secxml

#endif  // SECXML_XML_SAX_H_
