#include "xml/document.h"

#include <algorithm>

namespace secxml {

uint16_t Document::MaxDepth() const {
  uint16_t m = 0;
  for (uint16_t d : depths_) m = std::max(m, d);
  return m;
}

double Document::AvgDepth() const {
  if (depths_.empty()) return 0.0;
  double sum = 0;
  for (uint16_t d : depths_) sum += d;
  return sum / static_cast<double>(depths_.size());
}

NodeId DocumentBuilder::BeginElement(std::string_view tag) {
  NodeId id = static_cast<NodeId>(doc_->tags_.size());
  doc_->tags_.push_back(doc_->tags2_.Intern(tag));
  doc_->sizes_.push_back(1);
  doc_->parents_.push_back(stack_.empty() ? kInvalidNode : stack_.back());
  doc_->depths_.push_back(static_cast<uint16_t>(stack_.size()));
  doc_->values_.push_back(Document::kNoValue);
  stack_.push_back(id);
  pending_text_.emplace_back();
  return id;
}

Status DocumentBuilder::Text(std::string_view data) {
  if (stack_.empty()) {
    return Status::InvalidArgument("Text() outside of any open element");
  }
  pending_text_.back().append(data);
  return Status::OK();
}

Status DocumentBuilder::EndElement() {
  if (stack_.empty()) {
    return Status::InvalidArgument("EndElement() with no open element");
  }
  NodeId id = stack_.back();
  stack_.pop_back();
  std::string text = std::move(pending_text_.back());
  pending_text_.pop_back();
  if (!text.empty()) {
    doc_->values_[id] = static_cast<uint32_t>(doc_->text_pool_.size());
    doc_->text_pool_.push_back(std::move(text));
  }
  doc_->sizes_[id] = static_cast<NodeId>(doc_->tags_.size()) - id;
  return Status::OK();
}

Status DocumentBuilder::Finish(Document* out) {
  if (!stack_.empty()) {
    return Status::InvalidArgument("Finish() with unclosed elements");
  }
  if (doc_->tags_.empty()) {
    return Status::InvalidArgument("Finish() on an empty document");
  }
  // A well-formed document has exactly one root covering everything.
  if (doc_->sizes_[0] != doc_->tags_.size()) {
    return Status::InvalidArgument(
        "document has multiple top-level elements");
  }
  *out = std::move(*doc_);
  doc_.reset(new Document());
  return Status::OK();
}

}  // namespace secxml
