#ifndef SECXML_XML_XML_PARSER_H_
#define SECXML_XML_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace secxml {

/// Parses XML text into a Document.
///
/// Supported: elements, character data, CDATA sections, comments,
/// processing instructions / XML declarations (skipped), the five predefined
/// entities and numeric character references, and attributes. Attributes are
/// materialized as leaf child elements whose tag is "@" + attribute name and
/// whose value is the attribute value — this matches the tree model used by
/// the paper (every addressable item is a node).
///
/// Not supported (returns Status): DTDs with internal subsets beyond a
/// bare <!DOCTYPE name>, namespaces are treated as part of the tag name.
Status ParseXml(std::string_view input, Document* out);

}  // namespace secxml

#endif  // SECXML_XML_XML_PARSER_H_
