#ifndef SECXML_XML_TAG_DICTIONARY_H_
#define SECXML_XML_TAG_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace secxml {

/// Identifier of an element tag name. Tag ids are dense, starting at 0, in
/// order of first appearance.
using TagId = uint32_t;

/// Sentinel for "no tag".
inline constexpr TagId kInvalidTag = 0xffffffffu;

/// Bidirectional mapping between element tag names and dense integer ids.
/// NoK structural records store tag ids, not strings, so pages stay compact;
/// real XML vocabularies are tiny (XMark has 77 distinct tags).
class TagDictionary {
 public:
  TagDictionary() = default;

  /// Returns the id for `name`, interning it if previously unseen.
  TagId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    TagId id = static_cast<TagId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name`, or kInvalidTag if never interned.
  TagId Lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidTag : it->second;
  }

  /// Returns the name for a valid id.
  const std::string& Name(TagId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> ids_;
};

}  // namespace secxml

#endif  // SECXML_XML_TAG_DICTIONARY_H_
