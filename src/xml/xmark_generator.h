#ifndef SECXML_XML_XMARK_GENERATOR_H_
#define SECXML_XML_XMARK_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "xml/document.h"

namespace secxml {

/// Options for the synthetic XMark-like document generator.
///
/// The paper's evaluation (Section 5) uses documents produced by the XMark
/// benchmark's xmlgen tool, which is not redistributable here. This generator
/// reproduces the XMark element vocabulary and tree shape — auction site with
/// regional items, categories, people, open/closed auctions, and recursively
/// nested parlist/listitem description markup — which is all that DOL, NoK,
/// and the Table 1 queries (Q1–Q6) depend on. Generation is deterministic in
/// the seed.
struct XMarkOptions {
  /// PRNG seed; identical seeds produce identical documents.
  uint64_t seed = 42;

  /// Approximate number of element nodes to generate. The result is within
  /// a few percent of this (generation stops at natural subtree boundaries).
  uint32_t target_nodes = 100000;

  /// Maximum recursion depth of nested <parlist> markup. XMark produces
  /// parlists nested up to ~5 deep; Q4 (//parlist//parlist) requires >= 2.
  int max_parlist_depth = 4;
};

/// Generates an XMark-like document. Returns InvalidArgument for a zero
/// target size.
Status GenerateXMark(const XMarkOptions& options, Document* out);

}  // namespace secxml

#endif  // SECXML_XML_XMARK_GENERATOR_H_
