#include "xml/xmark_generator.h"

#include <array>
#include <string>

#include "common/rng.h"

namespace secxml {

namespace {

// Word pool for text values, drawn (like XMark's) from Shakespeare-flavoured
// vocabulary. Values only need to be plausible strings; queries in the
// reproduced experiments are structural.
constexpr std::array<const char*, 24> kWords = {
    "great",   "sorrow",  "golden", "honest",  "virtue", "daggers",
    "gentle",  "villain", "crown",  "tempest", "summer", "winter",
    "fortune", "noble",   "merry",  "forest",  "sword",  "castle",
    "shadow",  "promise", "silver", "garden",  "storm",  "harvest"};

constexpr std::array<const char*, 6> kRegions = {
    "africa", "asia", "australia", "europe", "namerica", "samerica"};

// Share of items per region, roughly following XMark's fixed proportions.
constexpr std::array<double, 6> kRegionShare = {0.025, 0.10, 0.10,
                                                0.30,  0.40, 0.075};

class Generator {
 public:
  Generator(const XMarkOptions& options, DocumentBuilder* b)
      : options_(options), rng_(options.seed), b_(b) {}

  Status Run() {
    b_->BeginElement("site");
    SECXML_RETURN_NOT_OK(Regions());
    SECXML_RETURN_NOT_OK(Categories());
    SECXML_RETURN_NOT_OK(People());
    SECXML_RETURN_NOT_OK(OpenAuctions());
    SECXML_RETURN_NOT_OK(ClosedAuctions());
    return b_->EndElement();
  }

 private:
  // Node-count budget thresholds per section, as fractions of the target.
  // Roughly mirrors XMark's document composition.
  static constexpr double kRegionsBudget = 0.40;
  static constexpr double kCategoriesBudget = 0.48;
  static constexpr double kPeopleBudget = 0.68;
  static constexpr double kOpenBudget = 0.88;

  bool Before(double fraction) const {
    return b_->NumNodes() <
           static_cast<size_t>(fraction * options_.target_nodes);
  }

  std::string Words(int min_count, int max_count) {
    int n = static_cast<int>(rng_.UniformInt(min_count, max_count));
    std::string out;
    for (int i = 0; i < n; ++i) {
      if (i > 0) out.push_back(' ');
      out += kWords[rng_.Uniform(kWords.size())];
    }
    return out;
  }

  Status Leaf(const char* tag, std::string value) {
    b_->BeginElement(tag);
    SECXML_RETURN_NOT_OK(b_->Text(value));
    return b_->EndElement();
  }

  /// <text> with inline markup children: bold / keyword / emph.
  Status TextElement() {
    b_->BeginElement("text");
    SECXML_RETURN_NOT_OK(b_->Text(Words(2, 8)));
    int inlines = static_cast<int>(rng_.UniformInt(0, 3));
    for (int i = 0; i < inlines; ++i) {
      switch (rng_.Uniform(3)) {
        case 0:
          SECXML_RETURN_NOT_OK(Leaf("bold", Words(1, 2)));
          break;
        case 1:
          SECXML_RETURN_NOT_OK(Leaf("keyword", Words(1, 2)));
          break;
        default:
          SECXML_RETURN_NOT_OK(Leaf("emph", Words(1, 2)));
          break;
      }
    }
    return b_->EndElement();
  }

  Status Parlist(int depth) {
    b_->BeginElement("parlist");
    int items = static_cast<int>(rng_.UniformInt(2, 4));
    for (int i = 0; i < items; ++i) {
      b_->BeginElement("listitem");
      if (depth < options_.max_parlist_depth && rng_.Bernoulli(0.35)) {
        SECXML_RETURN_NOT_OK(Parlist(depth + 1));
      } else {
        SECXML_RETURN_NOT_OK(TextElement());
      }
      SECXML_RETURN_NOT_OK(b_->EndElement());
    }
    return b_->EndElement();
  }

  Status Description() {
    b_->BeginElement("description");
    if (rng_.Bernoulli(0.3)) {
      SECXML_RETURN_NOT_OK(Parlist(1));
    } else {
      SECXML_RETURN_NOT_OK(TextElement());
    }
    return b_->EndElement();
  }

  Status Item(int region_index) {
    b_->BeginElement("item");
    // XMark elements carry id attributes; in this tree model attributes are
    // "@"-prefixed leaf children, exactly as the XML parser materializes
    // them.
    SECXML_RETURN_NOT_OK(Leaf("@id", "item" + std::to_string(item_id_++)));
    SECXML_RETURN_NOT_OK(Leaf("location", kRegions[region_index]));
    SECXML_RETURN_NOT_OK(
        Leaf("quantity", std::to_string(rng_.UniformInt(1, 10))));
    SECXML_RETURN_NOT_OK(Leaf("name", Words(1, 3)));
    SECXML_RETURN_NOT_OK(Leaf("payment", "Creditcard"));
    SECXML_RETURN_NOT_OK(Description());
    if (rng_.Bernoulli(0.6)) {
      b_->BeginElement("shipping");
      SECXML_RETURN_NOT_OK(b_->Text("Will ship internationally"));
      SECXML_RETURN_NOT_OK(b_->EndElement());
    }
    int cats = static_cast<int>(rng_.UniformInt(1, 3));
    for (int i = 0; i < cats; ++i) {
      SECXML_RETURN_NOT_OK(
          Leaf("incategory", "category" + std::to_string(rng_.Uniform(100))));
    }
    b_->BeginElement("mailbox");
    int mails = static_cast<int>(rng_.UniformInt(0, 2));
    for (int i = 0; i < mails; ++i) {
      b_->BeginElement("mail");
      SECXML_RETURN_NOT_OK(Leaf("from", Words(1, 2)));
      SECXML_RETURN_NOT_OK(Leaf("to", Words(1, 2)));
      SECXML_RETURN_NOT_OK(Leaf("date", "07/05/2004"));
      SECXML_RETURN_NOT_OK(TextElement());
      SECXML_RETURN_NOT_OK(b_->EndElement());
    }
    SECXML_RETURN_NOT_OK(b_->EndElement());  // mailbox
    return b_->EndElement();                 // item
  }

  Status Regions() {
    b_->BeginElement("regions");
    for (size_t r = 0; r < kRegions.size(); ++r) {
      b_->BeginElement(kRegions[r]);
      // Budget for this region: its share of the regions section.
      double section_end = kRegionsBudget * CumulativeShare(r + 1);
      while (Before(section_end)) {
        SECXML_RETURN_NOT_OK(Item(static_cast<int>(r)));
      }
      SECXML_RETURN_NOT_OK(b_->EndElement());
    }
    return b_->EndElement();
  }

  static double CumulativeShare(size_t upto) {
    double s = 0;
    for (size_t i = 0; i < upto; ++i) s += kRegionShare[i];
    return s;
  }

  Status Categories() {
    b_->BeginElement("categories");
    while (Before(kCategoriesBudget)) {
      b_->BeginElement("category");
      SECXML_RETURN_NOT_OK(
          Leaf("@id", "category" + std::to_string(category_id_++)));
      SECXML_RETURN_NOT_OK(Leaf("name", Words(1, 2)));
      SECXML_RETURN_NOT_OK(Description());
      SECXML_RETURN_NOT_OK(b_->EndElement());
    }
    return b_->EndElement();
  }

  Status People() {
    b_->BeginElement("people");
    int id = 0;
    while (Before(kPeopleBudget)) {
      b_->BeginElement("person");
      SECXML_RETURN_NOT_OK(Leaf("@id", "person" + std::to_string(id)));
      SECXML_RETURN_NOT_OK(Leaf("name", Words(2, 2)));
      SECXML_RETURN_NOT_OK(
          Leaf("emailaddress", "mailto:person" + std::to_string(id) + "@x"));
      if (rng_.Bernoulli(0.5)) {
        SECXML_RETURN_NOT_OK(Leaf("phone", "+1 555 " + std::to_string(id)));
      }
      if (rng_.Bernoulli(0.4)) {
        b_->BeginElement("address");
        SECXML_RETURN_NOT_OK(Leaf("street", Words(2, 3)));
        SECXML_RETURN_NOT_OK(Leaf("city", Words(1, 1)));
        SECXML_RETURN_NOT_OK(Leaf("country", "United States"));
        SECXML_RETURN_NOT_OK(Leaf("zipcode", std::to_string(10000 + id)));
        SECXML_RETURN_NOT_OK(b_->EndElement());
      }
      b_->BeginElement("profile");
      int interests = static_cast<int>(rng_.UniformInt(0, 3));
      for (int i = 0; i < interests; ++i) {
        SECXML_RETURN_NOT_OK(
            Leaf("interest", "category" + std::to_string(rng_.Uniform(100))));
      }
      SECXML_RETURN_NOT_OK(Leaf("business", rng_.Bernoulli(0.5) ? "Yes" : "No"));
      if (rng_.Bernoulli(0.6)) {
        SECXML_RETURN_NOT_OK(
            Leaf("age", std::to_string(rng_.UniformInt(18, 80))));
      }
      SECXML_RETURN_NOT_OK(b_->EndElement());  // profile
      SECXML_RETURN_NOT_OK(b_->EndElement());  // person
      ++id;
    }
    return b_->EndElement();
  }

  Status OpenAuctions() {
    b_->BeginElement("open_auctions");
    while (Before(kOpenBudget)) {
      b_->BeginElement("open_auction");
      SECXML_RETURN_NOT_OK(
          Leaf("@id", "open_auction" + std::to_string(auction_id_++)));
      SECXML_RETURN_NOT_OK(
          Leaf("initial", std::to_string(rng_.UniformInt(1, 200))));
      int bidders = static_cast<int>(rng_.UniformInt(0, 4));
      for (int i = 0; i < bidders; ++i) {
        b_->BeginElement("bidder");
        SECXML_RETURN_NOT_OK(Leaf("date", "07/05/2004"));
        SECXML_RETURN_NOT_OK(Leaf("time", "12:00:00"));
        SECXML_RETURN_NOT_OK(
            Leaf("increase", std::to_string(rng_.UniformInt(1, 20))));
        SECXML_RETURN_NOT_OK(b_->EndElement());
      }
      SECXML_RETURN_NOT_OK(
          Leaf("current", std::to_string(rng_.UniformInt(1, 400))));
      SECXML_RETURN_NOT_OK(
          Leaf("itemref", "item" + std::to_string(rng_.Uniform(10000))));
      SECXML_RETURN_NOT_OK(
          Leaf("seller", "person" + std::to_string(rng_.Uniform(10000))));
      b_->BeginElement("annotation");
      SECXML_RETURN_NOT_OK(Leaf("author", Words(2, 2)));
      SECXML_RETURN_NOT_OK(Description());
      SECXML_RETURN_NOT_OK(b_->EndElement());
      SECXML_RETURN_NOT_OK(
          Leaf("quantity", std::to_string(rng_.UniformInt(1, 10))));
      SECXML_RETURN_NOT_OK(Leaf("type", "Regular"));
      b_->BeginElement("interval");
      SECXML_RETURN_NOT_OK(Leaf("start", "01/01/2004"));
      SECXML_RETURN_NOT_OK(Leaf("end", "12/31/2004"));
      SECXML_RETURN_NOT_OK(b_->EndElement());
      SECXML_RETURN_NOT_OK(b_->EndElement());  // open_auction
    }
    return b_->EndElement();
  }

  Status ClosedAuctions() {
    b_->BeginElement("closed_auctions");
    while (Before(1.0)) {
      b_->BeginElement("closed_auction");
      SECXML_RETURN_NOT_OK(
          Leaf("seller", "person" + std::to_string(rng_.Uniform(10000))));
      SECXML_RETURN_NOT_OK(
          Leaf("buyer", "person" + std::to_string(rng_.Uniform(10000))));
      SECXML_RETURN_NOT_OK(
          Leaf("itemref", "item" + std::to_string(rng_.Uniform(10000))));
      SECXML_RETURN_NOT_OK(
          Leaf("price", std::to_string(rng_.UniformInt(1, 500))));
      SECXML_RETURN_NOT_OK(Leaf("date", "07/05/2004"));
      SECXML_RETURN_NOT_OK(
          Leaf("quantity", std::to_string(rng_.UniformInt(1, 10))));
      SECXML_RETURN_NOT_OK(Leaf("type", "Regular"));
      b_->BeginElement("annotation");
      SECXML_RETURN_NOT_OK(Description());
      SECXML_RETURN_NOT_OK(b_->EndElement());
      SECXML_RETURN_NOT_OK(b_->EndElement());  // closed_auction
    }
    return b_->EndElement();
  }

  const XMarkOptions& options_;
  Rng rng_;
  DocumentBuilder* b_;
  int item_id_ = 0;
  int category_id_ = 0;
  int auction_id_ = 0;
};

}  // namespace

Status GenerateXMark(const XMarkOptions& options, Document* out) {
  if (options.target_nodes == 0) {
    return Status::InvalidArgument("target_nodes must be > 0");
  }
  DocumentBuilder builder;
  Generator gen(options, &builder);
  SECXML_RETURN_NOT_OK(gen.Run());
  return builder.Finish(out);
}

}  // namespace secxml
