// Reproduces Figure 7(a)-(c) and Table 1 (Q1-Q3): processing-time ratio and
// answers-returned ratio between ε-NoK (secure) and NoK (non-secure) twig
// evaluation, as the percentage of accessible nodes varies 50%-80%.
//
// Paper shape: the secure/non-secure time ratio stays around 1.0x-1.02x
// independent of the accessibility ratio (accessibility checks need no extra
// I/O), while the answers-returned ratio tracks accessibility; at low
// accessibility the secure evaluator can beat the non-secure one thanks to
// in-memory page-header skipping.
//
// Note on Q3: the literal Table 1 string
// /site/categories/category/name[description/text/bold] matches nothing on
// XMark documents (description is a sibling of name, not its child); we run
// the evidently intended form with the predicate on category. See
// EXPERIMENTS.md.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr const char* kQueries[] = {
    "/site/regions/africa/item[location][name][quantity]",    // Q1
    "/site/categories/category[name]/description/text/bold",  // Q2
    "/site/categories/category[description/text/bold]/name",  // Q3 (see note)
};

struct Fixture {
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

std::unique_ptr<Fixture> Build(const Document& doc, double accessibility,
                               size_t extra_subjects, uint64_t acl_seed) {
  auto f = std::make_unique<Fixture>();
  // Subject 0 is the querying user at the requested accessibility ratio;
  // additional subjects give the codebook its multi-user structure (the
  // paper's evaluation is explicitly multi-user).
  SyntheticAclOptions aopts;
  aopts.propagation_ratio = 0.03;
  aopts.accessibility_ratio = accessibility;
  aopts.seed = acl_seed;
  IntervalAccessMap map =
      GenerateSyntheticAclMap(doc, 1 + extra_subjects, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  // Pool smaller than the document so evaluation exercises the I/O path.
  sopts.buffer_pool_pages = 64;
  Status st = SecureStore::Build(doc, labeling, &f->file, sopts, &f->store);
  if (!st.ok()) return nullptr;
  return f;
}

// Clustered-ACL fixture: every subject shares ONE synthetic ACL draw, so
// all accessibility transitions coincide across subjects and most pages
// keep a clear change bit — the regime where whole pages are provably dead
// from the in-memory header and the page skip actually fires. This models
// rights granted at subtree granularity to a uniform audience (one role).
std::unique_ptr<Fixture> BuildClustered(const Document& doc,
                                        double accessibility,
                                        size_t num_subjects,
                                        uint64_t acl_seed) {
  auto f = std::make_unique<Fixture>();
  SyntheticAclOptions aopts;
  aopts.propagation_ratio = 0.03;
  aopts.accessibility_ratio = accessibility;
  aopts.seed = acl_seed;
  std::vector<NodeInterval> intervals = GenerateSyntheticAcl(doc, aopts);
  IntervalAccessMap map(static_cast<NodeId>(doc.NumNodes()), num_subjects);
  for (SubjectId s = 0; s < num_subjects; ++s) {
    map.SetSubjectIntervals(s, intervals);
  }
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.buffer_pool_pages = 64;
  Status st = SecureStore::Build(doc, labeling, &f->file, sopts, &f->store);
  if (!st.ok()) return nullptr;
  return f;
}

struct RunResult {
  double seconds = 0;
  size_t answers = 0;
  uint64_t page_reads = 0;
  uint64_t pages_skipped = 0;
  /// Per-operator rollup of the last counted rep (counter values are
  /// rep-invariant: same query, same store state).
  ExecStats exec;
};

/// Times `query` under each option set with the rep loop OUTERMOST —
/// variants alternate within every rep, so slow machine-load drift hits
/// all of them equally instead of whichever variant ran last. Per-variant
/// time is the MINIMUM rep: for CPU-bound work all timing noise is
/// additive (preemption, cache pollution), so the floor is the stablest
/// estimator of true cost — a mean or median would let one preempted rep
/// wobble sub-millisecond ratios by several percent.
std::vector<RunResult> RunQuery(SecureStore* store, const std::string& query,
                                const std::vector<EvalOptions>& variants,
                                int repetitions) {
  QueryEvaluator eval(store);
  std::vector<RunResult> results(variants.size());
  std::vector<std::vector<double>> times(variants.size());
  Timer timer;
  for (int r = -1; r < repetitions; ++r) {  // rep -1 = untimed warm-up
    for (size_t v = 0; v < variants.size(); ++v) {
      (void)store->nok()->buffer_pool()->EvictAll();
      store->nok()->buffer_pool()->mutable_stats()->Reset();
      timer.Reset();
      auto got = eval.EvaluateXPath(query, variants[v]);
      double elapsed = timer.ElapsedSeconds();
      if (!got.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     got.status().ToString().c_str());
        continue;
      }
      if (r < 0) continue;
      times[v].push_back(elapsed);
      results[v].answers = got->answers.size();
      results[v].page_reads = store->io_stats().page_reads;
      results[v].pages_skipped = store->io_stats().pages_skipped;
      results[v].exec = got->exec;
    }
  }
  for (size_t v = 0; v < variants.size(); ++v) {
    if (times[v].empty()) continue;
    results[v].seconds = *std::min_element(times[v].begin(), times[v].end());
  }
  return results;
}

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 200000);
  bench::Banner("Figure 7 / Table 1 (Q1-Q3): e-NoK vs NoK as accessibility "
                "varies (" + std::to_string(nodes) + "-node XMark, 16 "
                "subjects, 4 KB pages, 64-page buffer pool)");

  XMarkOptions xopts;
  xopts.target_nodes = nodes;
  Document doc;
  if (!GenerateXMark(xopts, &doc).ok()) return 1;

  constexpr int kReps = 11;
  constexpr int kAclDraws = 5;  // average over independent ACL instances
  EvalOptions plain_opts;  // non-secure NoK
  EvalOptions noview_opts;  // e-NoK through codebook + header recomputation
  noview_opts.semantics = AccessSemantics::kBinding;
  noview_opts.use_view = false;
  EvalOptions view_opts;  // e-NoK through the subject-compiled access view
  view_opts.semantics = AccessSemantics::kBinding;
  view_opts.use_view = true;

  std::vector<bench::Json> points;
  // Summed over every secure run of the bench; the DOL layout makes this
  // structurally 0 (Section 3.3), and the artifact records it as measured.
  uint64_t extra_access_io = 0;
  for (int qi = 0; qi < 3; ++qi) {
    std::printf("\nQ%d: %s\n", qi + 1, kQueries[qi]);
    std::printf("%-6s %14s %14s %14s %10s %10s %10s %11s %11s\n", "acc%",
                "ratio(view)", "ratio(noview)", "answer ratio", "NoK ms",
                "eNoK ms", "eNoKv ms", "eNoK reads", "eNoK skips");
    // 50-80% is the published sweep; 90/100% isolate the pure overhead of
    // the accessibility checks (at 100% nothing is pruned, so the time
    // ratio is exactly the paper's "worst case ~2%" figure).
    for (int acc : {50, 60, 70, 80, 90, 100}) {
      double plain_s = 0, noview_s = 0, view_s = 0;
      double plain_ans = 0, secure_ans = 0;
      uint64_t reads = 0, skips = 0;
      ExecStats exec;  // summed over draws, view variant
      for (int draw = 0; draw < kAclDraws; ++draw) {
        auto f = Build(doc, acc / 100.0, /*extra_subjects=*/15,
                       4242 + static_cast<uint64_t>(draw));
        if (f == nullptr) return 1;
        std::vector<RunResult> runs = RunQuery(
            f->store.get(), kQueries[qi],
            {plain_opts, noview_opts, view_opts}, kReps);
        RunResult plain = runs[0], noview = runs[1], view = runs[2];
        plain_s += plain.seconds;
        noview_s += noview.seconds;
        view_s += view.seconds;
        plain_ans += static_cast<double>(plain.answers);
        secure_ans += static_cast<double>(view.answers);
        reads += view.page_reads;
        skips += view.pages_skipped;
        exec += view.exec;
        extra_access_io += view.exec.access_only_fetches +
                           noview.exec.access_only_fetches;
      }
      double ratio_view = plain_s > 0 ? view_s / plain_s : 0.0;
      double ratio_noview = plain_s > 0 ? noview_s / plain_s : 0.0;
      std::printf("%-6d %14.3f %14.3f %14.3f %10.2f %10.2f %10.2f %11.1f "
                  "%11.1f\n",
                  acc, ratio_view, ratio_noview,
                  plain_ans > 0 ? secure_ans / plain_ans : 0.0,
                  plain_s / kAclDraws * 1000, noview_s / kAclDraws * 1000,
                  view_s / kAclDraws * 1000,
                  static_cast<double>(reads) / kAclDraws,
                  static_cast<double>(skips) / kAclDraws);
      points.push_back(
          bench::Json()
              .Set("query", "Q" + std::to_string(qi + 1))
              .Set("accessibility_pct", acc)
              .Set("nok_ms", plain_s / kAclDraws * 1000)
              .Set("enok_noview_ms", noview_s / kAclDraws * 1000)
              .Set("enok_view_ms", view_s / kAclDraws * 1000)
              .Set("time_ratio_view", ratio_view)
              .Set("time_ratio_noview", ratio_noview)
              .Set("answer_ratio",
                   plain_ans > 0 ? secure_ans / plain_ans : 0.0)
              .Set("enok_page_reads",
                   static_cast<double>(reads) / kAclDraws)
              .Set("enok_pages_skipped",
                   static_cast<double>(skips) / kAclDraws)
              .Set("enok_exec", bench::ExecStatsJson(exec)));
    }
  }

  // The low-accessibility regime where page skipping lets e-NoK beat NoK.
  // An unanchored query is used so the tag-index candidates themselves can
  // be skipped via the in-memory headers.
  const std::string low_query = "//item[location][name][quantity]";
  std::printf("\nLow-accessibility regime (page-skipping), %s:\n",
              low_query.c_str());
  std::printf("The page-skip test needs a clear change bit, i.e. no other\n"
              "subject's transition in the page either; with many subjects\n"
              "sharing pages the skip rarely fires and the savings come from\n"
              "structural pruning instead — both variants are shown.\n");
  std::vector<bench::Json> low_points;
  for (size_t extra_subjects : {15u, 0u}) {
    std::printf("\n%zu subject(s):\n", extra_subjects + 1);
    std::printf("%-6s %14s %14s %12s %12s %12s %12s\n", "acc%", "ratio(view)",
                "ratio(noview)", "NoK reads", "eNoK reads", "eNoK skips",
                "answers");
    for (int acc : {5, 10, 20}) {
      double plain_s = 0, noview_s = 0, view_s = 0;
      uint64_t plain_reads = 0, secure_reads = 0, skips = 0;
      size_t answers = 0;
      ExecStats exec;
      for (int draw = 0; draw < kAclDraws; ++draw) {
        auto f = Build(doc, acc / 100.0, extra_subjects,
                       1000 + static_cast<uint64_t>(draw));
        if (f == nullptr) return 1;
        std::vector<RunResult> runs = RunQuery(
            f->store.get(), low_query, {plain_opts, noview_opts, view_opts},
            kReps);
        RunResult plain = runs[0], noview = runs[1], view = runs[2];
        plain_s += plain.seconds;
        noview_s += noview.seconds;
        view_s += view.seconds;
        plain_reads += plain.page_reads;
        secure_reads += view.page_reads;
        skips += view.pages_skipped;
        answers += view.answers;
        exec += view.exec;
        extra_access_io += view.exec.access_only_fetches +
                           noview.exec.access_only_fetches;
      }
      double ratio_view = plain_s > 0 ? view_s / plain_s : 0.0;
      double ratio_noview = plain_s > 0 ? noview_s / plain_s : 0.0;
      std::printf("%-6d %14.3f %14.3f %12.1f %12.1f %12.1f %12.1f\n", acc,
                  ratio_view, ratio_noview,
                  static_cast<double>(plain_reads) / kAclDraws,
                  static_cast<double>(secure_reads) / kAclDraws,
                  static_cast<double>(skips) / kAclDraws,
                  static_cast<double>(answers) / kAclDraws);
      low_points.push_back(
          bench::Json()
              .Set("query", low_query)
              .Set("subjects", static_cast<uint64_t>(extra_subjects + 1))
              .Set("accessibility_pct", acc)
              .Set("nok_ms", plain_s / kAclDraws * 1000)
              .Set("enok_noview_ms", noview_s / kAclDraws * 1000)
              .Set("enok_view_ms", view_s / kAclDraws * 1000)
              .Set("time_ratio_view", ratio_view)
              .Set("time_ratio_noview", ratio_noview)
              .Set("nok_page_reads",
                   static_cast<double>(plain_reads) / kAclDraws)
              .Set("enok_page_reads",
                   static_cast<double>(secure_reads) / kAclDraws)
              .Set("enok_pages_skipped",
                   static_cast<double>(skips) / kAclDraws)
              .Set("enok_exec", bench::ExecStatsJson(exec)));
    }
  }
  // Clustered-ACL sweep point: 16 subjects, one shared ACL draw. Aligned
  // transitions leave most pages with a clear change bit, producing wholly
  // inaccessible pages at low accessibility; pages_skipped > 0 here is an
  // asserted artifact property (exit code), where the independent-subject
  // sweep above legitimately reports 0 skips.
  std::printf("\nClustered ACLs (16 subjects, one shared draw), %s:\n",
              low_query.c_str());
  std::printf("%-6s %14s %12s %12s %12s\n", "acc%", "ratio(view)",
              "eNoK reads", "eNoK skips", "answers");
  std::vector<bench::Json> clustered_points;
  uint64_t clustered_skips = 0;
  for (int acc : {5, 10, 20}) {
    double plain_s = 0, view_s = 0;
    uint64_t secure_reads = 0, skips = 0;
    size_t answers = 0;
    ExecStats exec;
    for (int draw = 0; draw < kAclDraws; ++draw) {
      auto f = BuildClustered(doc, acc / 100.0, /*num_subjects=*/16,
                              2000 + static_cast<uint64_t>(draw));
      if (f == nullptr) return 1;
      std::vector<RunResult> runs = RunQuery(
          f->store.get(), low_query, {plain_opts, view_opts}, kReps);
      RunResult plain = runs[0], view = runs[1];
      plain_s += plain.seconds;
      view_s += view.seconds;
      secure_reads += view.page_reads;
      skips += view.pages_skipped;
      answers += view.answers;
      exec += view.exec;
      extra_access_io += view.exec.access_only_fetches;
    }
    clustered_skips += skips;
    std::printf("%-6d %14.3f %12.1f %12.1f %12.1f\n", acc,
                plain_s > 0 ? view_s / plain_s : 0.0,
                static_cast<double>(secure_reads) / kAclDraws,
                static_cast<double>(skips) / kAclDraws,
                static_cast<double>(answers) / kAclDraws);
    clustered_points.push_back(
        bench::Json()
            .Set("query", low_query)
            .Set("subjects", 16)
            .Set("accessibility_pct", acc)
            .Set("nok_ms", plain_s / kAclDraws * 1000)
            .Set("enok_view_ms", view_s / kAclDraws * 1000)
            .Set("time_ratio_view", plain_s > 0 ? view_s / plain_s : 0.0)
            .Set("enok_page_reads",
                 static_cast<double>(secure_reads) / kAclDraws)
            .Set("enok_pages_skipped",
                 static_cast<double>(skips) / kAclDraws)
            .Set("enok_exec", bench::ExecStatsJson(exec)));
  }
  if (clustered_skips == 0) {
    std::printf("ERROR: clustered-ACL sweep skipped no pages — the "
                "page-skip path did not fire\n");
  }

  std::printf("\n(paper: secure evaluation costs <= ~2%% extra in the worst "
              "case, independent of accessibility ratio)\n");
  std::printf("extra access I/O across all secure runs: %llu (paper claim: "
              "0)\n", static_cast<unsigned long long>(extra_access_io));

  bench::WriteBenchJson(
      "fig7_secure_nok",
      bench::Json()
          .Set("bench", "fig7_secure_nok")
          .Set("nodes", nodes)
          .Set("repetitions", kReps)
          .Set("acl_draws", kAclDraws)
          .Set("extra_access_io", extra_access_io)
          .Set("sweep", points)
          .Set("low_accessibility", low_points)
          .Set("clustered_acl", clustered_points)
          .Set("clustered_pages_skipped", clustered_skips));
  return extra_access_io == 0 && clustered_skips > 0 ? 0 : 1;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
