// Wide-mask kernel micro-benchmark: scalar vs AVX2 vs AVX-512 throughput of
// the dispatched bulk mask kernels (broadcast-AND, strided broadcast-AND,
// AND/OR reduction, popcount) over arrays of 512-bit class masks, swept
// across active mask widths 64..512 bits.
//
// The width axis populates only the first W class bits (the shape a W-class
// batch produces); every kernel still touches the full 8-word mask, so the
// curve documents that lifting the 64-class cap to 512 costs a constant
// per-mask, not 8x — and how much of that constant each ISA tier recovers.
//
// argv: [rows] [--smoke]. Cross-ISA bit-identity of every kernel result is
// hard-asserted (non-zero exit) in both modes; throughput is recorded, not
// gated. Artifact: BENCH_mask_micro.json.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "exec/mask_ops.h"

namespace secxml {
namespace {

// Mirrors MaskedBinding's 80-byte layout (mask at offset 16) so the strided
// kernel is measured on the exact stride the batch matcher uses.
struct StridedRow {
  uint64_t pad0 = 0;
  uint64_t pad1 = 0;
  WideClassMask mask;
};
static_assert(sizeof(StridedRow) == 80);

std::vector<WideClassMask> RandomRows(size_t n, size_t width, uint64_t seed) {
  Rng rng(seed);
  const WideClassMask clip = WideClassMask::FirstN(width);
  std::vector<WideClassMask> rows(n);
  for (auto& r : rows) {
    for (size_t w = 0; w < kClassMaskWords; ++w) r.words()[w] = rng.Next();
    r &= clip;
  }
  return rows;
}

struct OpTimes {
  double and_bcast_ns = 0;
  double and_strided_ns = 0;
  double reduce_and_ns = 0;
  double reduce_or_ns = 0;
  double popcount_ns = 0;
};

/// Min-of-reps per-row times for every kernel of `isa` over `base` (copied
/// fresh for the mutating ops each rep so every rep does identical work).
OpTimes Measure(MaskIsa isa, const std::vector<WideClassMask>& base,
                const WideClassMask& m, int reps, int inner) {
  const MaskKernels& k = MaskKernelsFor(isa);
  const size_t n = base.size();
  std::vector<WideClassMask> rows = base;
  std::vector<StridedRow> srows(n);
  OpTimes best;
  best.and_bcast_ns = best.and_strided_ns = best.reduce_and_ns =
      best.reduce_or_ns = best.popcount_ns = 1e18;
  Timer timer;
  volatile uint64_t sink = 0;
  for (int r = 0; r < reps; ++r) {
    rows = base;
    timer.Reset();
    for (int i = 0; i < inner; ++i) k.and_broadcast(rows.data(), n, m);
    best.and_bcast_ns = std::min(
        best.and_bcast_ns, timer.ElapsedSeconds() * 1e9 / (n * inner));

    for (size_t i = 0; i < n; ++i) srows[i].mask = base[i];
    timer.Reset();
    for (int i = 0; i < inner; ++i) {
      k.and_broadcast_strided(&srows[0].mask, sizeof(StridedRow), n, m);
    }
    best.and_strided_ns = std::min(
        best.and_strided_ns, timer.ElapsedSeconds() * 1e9 / (n * inner));

    WideClassMask out;
    timer.Reset();
    for (int i = 0; i < inner; ++i) {
      k.reduce_and(base.data(), n, &out);
      sink += out.word(0);
    }
    best.reduce_and_ns = std::min(
        best.reduce_and_ns, timer.ElapsedSeconds() * 1e9 / (n * inner));

    timer.Reset();
    for (int i = 0; i < inner; ++i) {
      k.reduce_or(base.data(), n, &out);
      sink += out.word(0);
    }
    best.reduce_or_ns = std::min(
        best.reduce_or_ns, timer.ElapsedSeconds() * 1e9 / (n * inner));

    timer.Reset();
    for (int i = 0; i < inner; ++i) sink += k.popcount_rows(base.data(), n);
    best.popcount_ns = std::min(
        best.popcount_ns, timer.ElapsedSeconds() * 1e9 / (n * inner));
  }
  (void)sink;
  return best;
}

/// Every kernel of `isa` must agree bit-for-bit with the scalar tier.
bool CheckIdentical(MaskIsa isa, const std::vector<WideClassMask>& base,
                    const WideClassMask& m) {
  const MaskKernels& s = MaskKernelsFor(MaskIsa::kScalar);
  const MaskKernels& k = MaskKernelsFor(isa);
  const size_t n = base.size();
  std::vector<WideClassMask> a = base, b = base;
  s.and_broadcast(a.data(), n, m);
  k.and_broadcast(b.data(), n, m);
  if (a != b) return false;
  std::vector<StridedRow> sa(n), sb(n);
  for (size_t i = 0; i < n; ++i) sa[i].mask = sb[i].mask = base[i];
  s.and_broadcast_strided(&sa[0].mask, sizeof(StridedRow), n, m);
  k.and_broadcast_strided(&sb[0].mask, sizeof(StridedRow), n, m);
  for (size_t i = 0; i < n; ++i) {
    if (!(sa[i].mask == sb[i].mask)) return false;
  }
  WideClassMask ra, rb;
  s.reduce_and(base.data(), n, &ra);
  k.reduce_and(base.data(), n, &rb);
  if (!(ra == rb)) return false;
  s.reduce_or(base.data(), n, &ra);
  k.reduce_or(base.data(), n, &rb);
  if (!(ra == rb)) return false;
  return s.popcount_rows(base.data(), n) == k.popcount_rows(base.data(), n);
}

int Run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t rows = bench::ScaleArg(argc, argv, smoke ? 1024 : 65536);
  const int reps = smoke ? 3 : 7;
  const int inner = smoke ? 4 : 16;

  std::vector<MaskIsa> isas = {MaskIsa::kScalar};
  if (MaskIsaSupported(MaskIsa::kAvx2)) isas.push_back(MaskIsa::kAvx2);
  if (MaskIsaSupported(MaskIsa::kAvx512)) isas.push_back(MaskIsa::kAvx512);

  bench::Banner(
      "Wide-mask kernel micro: scalar vs SIMD over " + std::to_string(rows) +
      " masks/op (active ISA: " + MaskIsaName(ActiveMaskIsa()) + ")");

  const size_t widths[] = {64, 128, 256, 512};
  bool all_identical = true;
  std::vector<bench::Json> points;

  std::printf("%-7s %6s %12s %13s %12s %12s %12s\n", "isa", "width",
              "and ns/row", "strided ns", "rand ns", "ror ns", "pop ns");
  for (size_t width : widths) {
    std::vector<WideClassMask> base =
        RandomRows(rows, width, 0xC0FFEE + width);
    const WideClassMask m = RandomRows(1, width, 0xBEEF + width)[0];
    for (MaskIsa isa : isas) {
      if (!CheckIdentical(isa, base, m)) {
        std::fprintf(stderr, "FATAL: %s kernels diverge from scalar at "
                             "width %zu\n",
                     MaskIsaName(isa), width);
        all_identical = false;
        continue;
      }
      OpTimes t = Measure(isa, base, m, reps, inner);
      std::printf("%-7s %6zu %12.2f %13.2f %12.2f %12.2f %12.2f\n",
                  MaskIsaName(isa), width, t.and_bcast_ns, t.and_strided_ns,
                  t.reduce_and_ns, t.reduce_or_ns, t.popcount_ns);
      points.push_back(
          bench::Json()
              .Set("isa", MaskIsaName(isa))
              .Set("width_bits", static_cast<uint64_t>(width))
              .Set("and_broadcast_ns_per_row", t.and_bcast_ns)
              .Set("and_broadcast_strided_ns_per_row", t.and_strided_ns)
              .Set("reduce_and_ns_per_row", t.reduce_and_ns)
              .Set("reduce_or_ns_per_row", t.reduce_or_ns)
              .Set("popcount_rows_ns_per_row", t.popcount_ns));
    }
  }

  std::printf("\nsummary: %zu ISA tiers, results %s\n", isas.size(),
              all_identical ? "bit-identical across tiers" : "DIVERGED");

  bench::WriteBenchJson(
      "mask_micro",
      bench::Json()
          .Set("bench", "mask_micro")
          .Set("rows_per_op", static_cast<uint64_t>(rows))
          .Set("repetitions", reps)
          .Set("best_isa", MaskIsaName(ActiveMaskIsa()))
          .Set("avx2_supported", MaskIsaSupported(MaskIsa::kAvx2))
          .Set("avx512_supported", MaskIsaSupported(MaskIsa::kAvx512))
          .Set("all_identical", all_identical)
          .Set("sweep", points));

  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
