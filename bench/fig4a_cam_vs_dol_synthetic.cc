// Reproduces Figure 4(a): ratio of CAM labels to DOL transition nodes for a
// single subject on an XMark document with synthetic access controls, as the
// accessibility ratio sweeps 10%-90% for propagation ratios 1%, 3%, 5%.
//
// Paper shape: the ratio is ~0.5 at low accessibility (CAM about half the
// size of DOL) and approaches 1 as accessibility rises; CAM size is
// asymmetric in the accessibility ratio (closed-world default), DOL is
// symmetric with its maximum at 50%.

#include <cstdio>
#include <vector>

#include "baseline/cam.h"
#include "bench_util.h"
#include "core/dol_labeling.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 100000);
  bench::Banner("Figure 4(a): CAM labels / DOL transition nodes, "
                "single subject, synthetic ACLs on XMark (" +
                std::to_string(nodes) + " nodes)");

  XMarkOptions xopts;
  xopts.target_nodes = nodes;
  Document doc;
  Status st = GenerateXMark(xopts, &doc);
  if (!st.ok()) {
    std::fprintf(stderr, "xmark generation failed: %s\n", st.ToString().c_str());
    return 1;
  }
  NodeId n = static_cast<NodeId>(doc.NumNodes());
  constexpr int kSeeds = 3;  // average over random draws

  std::printf("%-8s", "acc%");
  for (double prop : {0.01, 0.03, 0.05}) {
    std::printf("  prop=%.0f%%: ratio  (CAM, DOL)    ", prop * 100);
  }
  std::printf("\n");

  for (int acc = 10; acc <= 90; acc += 10) {
    std::printf("%-8d", acc);
    for (double prop : {0.01, 0.03, 0.05}) {
      double cam_total = 0, dol_total = 0;
      for (int s = 0; s < kSeeds; ++s) {
        SyntheticAclOptions aopts;
        aopts.propagation_ratio = prop;
        aopts.accessibility_ratio = acc / 100.0;
        aopts.seed = 1000 + static_cast<uint64_t>(s);
        std::vector<NodeInterval> ivs = GenerateSyntheticAcl(doc, aopts);
        IntervalAccessMap map(n, 1);
        map.SetSubjectIntervals(0, ivs);
        DolLabeling dol = DolLabeling::BuildFromEvents(n, map.InitialAcl(),
                                                       map.CollectEvents());
        Cam cam = Cam::Build(
            doc, [&map](NodeId x) { return map.Accessible(0, x); });
        cam_total += static_cast<double>(cam.num_labels());
        dol_total += static_cast<double>(dol.num_transitions());
      }
      double cam_avg = cam_total / kSeeds;
      double dol_avg = dol_total / kSeeds;
      std::printf("  %14.3f (%6.0f, %6.0f)", cam_avg / dol_avg, cam_avg,
                  dol_avg);
    }
    std::printf("\n");
  }

  // The asymmetry observation from Section 5.1: CAM at 10% vs 90%, DOL
  // symmetric around 50%.
  std::printf("\nShape checks (prop=3%%, averaged):\n");
  auto sizes_at = [&](double ratio) {
    double cam_total = 0, dol_total = 0;
    for (int s = 0; s < kSeeds; ++s) {
      SyntheticAclOptions aopts;
      aopts.propagation_ratio = 0.03;
      aopts.accessibility_ratio = ratio;
      aopts.seed = 2000 + static_cast<uint64_t>(s);
      IntervalAccessMap map(n, 1);
      map.SetSubjectIntervals(0, GenerateSyntheticAcl(doc, aopts));
      DolLabeling dol = DolLabeling::BuildFromEvents(n, map.InitialAcl(),
                                                     map.CollectEvents());
      Cam cam =
          Cam::Build(doc, [&map](NodeId x) { return map.Accessible(0, x); });
      cam_total += static_cast<double>(cam.num_labels());
      dol_total += static_cast<double>(dol.num_transitions());
    }
    return std::make_pair(cam_total / kSeeds, dol_total / kSeeds);
  };
  auto [cam10, dol10] = sizes_at(0.10);
  auto [cam50, dol50] = sizes_at(0.50);
  auto [cam90, dol90] = sizes_at(0.90);
  std::printf("  CAM:  10%% -> %.0f   50%% -> %.0f   90%% -> %.0f\n", cam10,
              cam50, cam90);
  std::printf("  DOL:  10%% -> %.0f   50%% -> %.0f   90%% -> %.0f "
              "(symmetric, max near 50%%)\n", dol10, dol50, dol90);

  // Ablation: the positive-cover CAM variant (labels can only grant).
  // Its size is strongly asymmetric in the accessibility ratio — the
  // asymmetry the paper remarks on — at the cost of losing to DOL outright.
  std::printf("\nAblation: positive-cover CAM variant (prop=3%%):\n");
  std::printf("%-8s %12s %12s %12s\n", "acc%", "PositiveCAM", "CAM", "DOL");
  for (int acc : {10, 30, 50, 60, 70, 90}) {
    double pos_total = 0, cam_total = 0, dol_total = 0;
    for (int s = 0; s < kSeeds; ++s) {
      SyntheticAclOptions aopts;
      aopts.propagation_ratio = 0.03;
      aopts.accessibility_ratio = acc / 100.0;
      aopts.seed = 3000 + static_cast<uint64_t>(s);
      IntervalAccessMap map(n, 1);
      map.SetSubjectIntervals(0, GenerateSyntheticAcl(doc, aopts));
      auto acc_fn = [&map](NodeId x) { return map.Accessible(0, x); };
      pos_total += static_cast<double>(PositiveCam::Build(doc, acc_fn).num_labels());
      cam_total += static_cast<double>(Cam::Build(doc, acc_fn).num_labels());
      DolLabeling dol = DolLabeling::BuildFromEvents(n, map.InitialAcl(),
                                                     map.CollectEvents());
      dol_total += static_cast<double>(dol.num_transitions());
    }
    std::printf("%-8d %12.0f %12.0f %12.0f\n", acc, pos_total / kSeeds,
                cam_total / kSeeds, dol_total / kSeeds);
  }
  return 0;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
