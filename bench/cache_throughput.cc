// Cross-request result & plan caching over a Zipf traffic stream
// (DESIGN.md §14): the same twig queries recur from a fixed subject pool,
// subjects collapse into visibility classes by codebook-column fingerprint,
// and a class-keyed ResultCache turns every recurrence into an O(1) serve of
// the materialized answer — zero scan, zero I/O.
//
// Phases:
//   1. cache-off baseline: the stream through QueryDriver as-is;
//   2. cache-on: one cold pass populates, then steady-state passes measure
//      the amortized serve cost; speedup = off / steady-on;
//   3. update storm: ACL range toggles, subject additions, and periodic
//      codebook compactions interleave with served queries, every one of
//      which is differentially checked against a fresh uncached evaluation.
//
// Hard-asserted (non-zero exit, both modes unless noted):
//   * cache-on answers byte-identical to cache-off across the stream;
//   * ZERO stale serves across the update storm (cached == uncached after
//     every commit, binding and view semantics);
//   * extra_access_io == 0 (hits do no I/O; live fills keep the paper's
//     no-access-only-I/O invariant);
//   * steady-state hit rate > 0;
//   * >= kSpeedupFloor steady-state amortized speedup (full runs only;
//     smoke records the measured value).
//
// argv: [nodes] [--smoke].

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/query_cache.h"
#include "query/query_driver.h"
#include "query/xpath_parser.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kSubjectPool = 256;
constexpr size_t kProfiles = 16;  // subject s draws profile s % 16
constexpr double kZipfS = 1.0;
constexpr double kSpeedupFloor = 3.0;

struct Fixture {
  Document doc;
  DolLabeling labeling;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

// Every subject holds one of kProfiles role profiles, so the 256-subject
// pool folds into ~16 visibility classes — the recurrence structure the
// class-keyed cache exploits (two subjects of one role share every key).
std::unique_ptr<Fixture> Build(uint32_t nodes) {
  auto f = std::make_unique<Fixture>();
  XMarkOptions xopts;
  xopts.seed = 31;
  xopts.target_nodes = nodes;
  if (!GenerateXMark(xopts, &f->doc).ok()) return nullptr;
  IntervalAccessMap map(static_cast<NodeId>(f->doc.NumNodes()), kSubjectPool);
  for (SubjectId s = 0; s < kSubjectPool; ++s) {
    SyntheticAclOptions aopts;
    aopts.seed = 7000 + s % kProfiles;
    aopts.accessibility_ratio = 0.6;
    map.SetSubjectIntervals(s, GenerateSyntheticAcl(f->doc, aopts));
  }
  f->labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.buffer_pool_pages = 64;  // smaller than the document: real I/O path
  if (!SecureStore::Build(f->doc, f->labeling, &f->file, sopts, &f->store)
           .ok()) {
    return nullptr;
  }
  return f;
}

/// Zipf(s) sampler over [0, n): rank r drawn with weight 1/(r+1)^s — the
/// head queries dominate the stream the way hot dashboards dominate real
/// traffic, which is what gives a result cache its steady state.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }
  size_t Draw(Rng* rng) const {
    const double u = rng->NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

QueryDriverOptions DriverOptions(AccessSemantics sem, QueryCaches caches) {
  QueryDriverOptions dopts;
  dopts.num_threads = 4;
  dopts.semantics = sem;
  dopts.caches = caches;
  return dopts;
}

int Run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  uint32_t nodes = bench::ScaleArg(argc, argv, smoke ? 8000 : 60000);
  const int reps = smoke ? 2 : 5;
  const size_t stream_len = smoke ? 400 : 4000;
  const size_t storm_rounds = smoke ? 40 : 200;

  bench::Banner("Class-keyed result caching across the traffic stream (" +
                std::to_string(nodes) + "-node XMark, " +
                std::to_string(kSubjectPool) + "-subject pool / " +
                std::to_string(kProfiles) + " roles, Zipf s=" +
                std::to_string(kZipfS).substr(0, 3) + " over the query mix)");

  // Caches are declared before the fixture: AttachResultCacheInvalidation
  // registers a permanent commit hook, so the cache must outlive the store.
  cache::ResultCacheOptions ropts;
  cache::ResultCache rcache(ropts);
  QueryPlanCache pcache;

  auto f = Build(nodes);
  if (f == nullptr) {
    std::fprintf(stderr, "fixture build failed\n");
    return 1;
  }
  AttachResultCacheInvalidation(f->store.get(), &rcache);

  // Query mix: the first two Table 1 twigs plus 30 generated along real
  // document paths — ~32 distinct normalized patterns, Zipf-ranked.
  std::vector<PatternTree> queries;
  for (int qi : {0, 1}) {
    PatternTree p;
    if (!ParseXPath(kTable1Queries[qi], &p).ok()) return 1;
    queries.push_back(std::move(p));
  }
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    QueryGenOptions qopts;
    qopts.seed = seed;
    qopts.max_nodes = 4;
    queries.push_back(GenerateTwigQuery(f->doc, qopts));
  }

  // The stream: (Zipf query, uniform subject) pairs, fixed up front so the
  // off/cold/steady passes all replay identical traffic.
  ZipfSampler zipf(queries.size(), kZipfS);
  Rng rng(0xCAFE);
  std::vector<QueryJob> jobs;
  jobs.reserve(stream_len);
  for (size_t i = 0; i < stream_len; ++i) {
    QueryJob job;
    job.subject = static_cast<SubjectId>(rng.Uniform(kSubjectPool));
    job.pattern = queries[zipf.Draw(&rng)];
    jobs.push_back(std::move(job));
  }

  // --- Phase 1+2: cache-off baseline vs cache-on steady state -----------
  QueryDriver off_driver(
      f->store.get(), DriverOptions(AccessSemantics::kBinding, QueryCaches{}));
  QueryCaches caches;
  caches.results = &rcache;
  caches.plans = &pcache;
  QueryDriver on_driver(f->store.get(),
                        DriverOptions(AccessSemantics::kBinding, caches));

  uint64_t extra_access_io = 0;
  double off_s = 0;
  BatchResult off_batch;
  for (int r = -1; r < reps; ++r) {  // rep -1 = untimed warm-up
    (void)f->store->nok()->buffer_pool()->EvictAll();
    Timer timer;
    off_batch = off_driver.Run(jobs);
    const double elapsed = timer.ElapsedSeconds();
    if (off_batch.stats.failed != 0) {
      std::fprintf(stderr, "cache-off stream failed: %s\n",
                   off_batch.stats.first_error.ToString().c_str());
      return 1;
    }
    if (r >= 0 && (off_s == 0 || elapsed < off_s)) off_s = elapsed;
    extra_access_io += off_batch.stats.exec.access_only_fetches;
  }

  Timer cold_timer;
  BatchResult cold_batch = on_driver.Run(jobs);
  const double cold_s = cold_timer.ElapsedSeconds();
  if (cold_batch.stats.failed != 0) {
    std::fprintf(stderr, "cache-on cold stream failed: %s\n",
                 cold_batch.stats.first_error.ToString().c_str());
    return 1;
  }
  extra_access_io += cold_batch.stats.exec.access_only_fetches;

  double steady_s = 0;
  BatchResult steady_batch;
  for (int r = 0; r < reps; ++r) {
    (void)f->store->nok()->buffer_pool()->EvictAll();
    Timer timer;
    steady_batch = on_driver.Run(jobs);
    const double elapsed = timer.ElapsedSeconds();
    if (steady_batch.stats.failed != 0) {
      std::fprintf(stderr, "cache-on steady stream failed: %s\n",
                   steady_batch.stats.first_error.ToString().c_str());
      return 1;
    }
    if (steady_s == 0 || elapsed < steady_s) steady_s = elapsed;
    extra_access_io += steady_batch.stats.exec.access_only_fetches;
  }

  bool identical = true;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (steady_batch.outcomes[i].result.answers !=
            off_batch.outcomes[i].result.answers ||
        cold_batch.outcomes[i].result.answers !=
            off_batch.outcomes[i].result.answers) {
      identical = false;
    }
  }

  const ExecStats& steady_exec = steady_batch.stats.exec;
  const double hit_rate =
      static_cast<double>(steady_exec.result_cache_hits) /
      static_cast<double>(jobs.size());
  const double speedup = steady_s > 0 ? off_s / steady_s : 0.0;
  std::printf("stream: %zu requests, %zu distinct queries\n", jobs.size(),
              queries.size());
  std::printf("%-14s %11s\n", "phase", "ms");
  std::printf("%-14s %11.2f\n", "cache-off", off_s * 1000);
  std::printf("%-14s %11.2f   (fills the cache)\n", "cache-on cold",
              cold_s * 1000);
  std::printf("%-14s %11.2f   (%.2fx, hit rate %.3f)\n", "cache-on steady",
              steady_s * 1000, speedup, hit_rate);
  std::printf("answers: %s across off/cold/steady\n",
              identical ? "byte-identical" : "DIVERGED");

  // --- Phase 3: update storm, differentially checked ---------------------
  // Each round commits one update (ACL range toggle / subject addition /
  // codebook compaction), then serves a handful of stream draws through the
  // caching driver AND a fresh uncached one; any byte difference is a stale
  // serve. Both semantics run so the view footprint ([0, hull_end)) faces
  // the storm too.
  QueryDriver off_view(f->store.get(),
                       DriverOptions(AccessSemantics::kView, QueryCaches{}));
  QueryDriver on_view(f->store.get(),
                      DriverOptions(AccessSemantics::kView, caches));
  const NodeId n = f->store->num_nodes();
  size_t stale_serves = 0;
  size_t storm_checks = 0;
  uint64_t storm_hits = 0;
  for (size_t round = 0; round < storm_rounds; ++round) {
    if (round % 16 == 15) {
      if (!f->store->CompactCodebook().ok()) {
        std::fprintf(stderr, "compact failed\n");
        return 1;
      }
    } else if (round % 8 == 7) {
      auto added = f->store->AddSubjectLike(
          static_cast<SubjectId>(rng.Uniform(kProfiles)));
      if (!added.ok()) {
        std::fprintf(stderr, "add subject failed\n");
        return 1;
      }
    } else {
      const NodeId begin = static_cast<NodeId>(rng.Uniform(n));
      const NodeId end = std::min<NodeId>(
          n, begin + 1 + static_cast<NodeId>(rng.Uniform(64)));
      const SubjectId s = static_cast<SubjectId>(rng.Uniform(kSubjectPool));
      if (!f->store->SetRangeAccess(begin, end, s, (round & 1) != 0).ok()) {
        std::fprintf(stderr, "range toggle failed\n");
        return 1;
      }
    }
    std::vector<QueryJob> probe_jobs;
    for (int i = 0; i < 4; ++i) {
      QueryJob job;
      job.subject = static_cast<SubjectId>(rng.Uniform(kSubjectPool));
      job.pattern = queries[zipf.Draw(&rng)];
      probe_jobs.push_back(std::move(job));
    }
    const bool view = (round & 2) != 0;
    // Two cached passes: the first fills (or hits what survived the
    // commit), the second is guaranteed to serve from cache — so the
    // differential check below covers genuinely cached answers every round,
    // not just live fills.
    BatchResult cached = (view ? on_view : on_driver).Run(probe_jobs);
    BatchResult served = (view ? on_view : on_driver).Run(probe_jobs);
    BatchResult live = (view ? off_view : off_driver).Run(probe_jobs);
    if (cached.stats.failed != 0 || served.stats.failed != 0 ||
        live.stats.failed != 0) {
      std::fprintf(stderr, "storm round %zu failed\n", round);
      return 1;
    }
    for (size_t i = 0; i < probe_jobs.size(); ++i) {
      ++storm_checks;
      if (cached.outcomes[i].result.answers !=
              live.outcomes[i].result.answers ||
          served.outcomes[i].result.answers !=
              live.outcomes[i].result.answers) {
        ++stale_serves;
      }
    }
    storm_hits += cached.stats.exec.result_cache_hits +
                  served.stats.exec.result_cache_hits;
    extra_access_io += cached.stats.exec.access_only_fetches +
                       served.stats.exec.access_only_fetches +
                       live.stats.exec.access_only_fetches;
  }
  const cache::ResultCache::Stats cstats = rcache.stats();
  std::printf("storm: %zu rounds, %zu differential checks, %zu STALE, "
              "%llu hits served mid-storm\n",
              storm_rounds, storm_checks, stale_serves,
              static_cast<unsigned long long>(storm_hits));
  std::printf("cache: %llu hits / %llu misses, %llu inserts (%llu rejected), "
              "%llu invalidated, %llu flushes, %llu evictions, "
              "%llu entries / %llu bytes resident\n",
              static_cast<unsigned long long>(cstats.hits),
              static_cast<unsigned long long>(cstats.misses),
              static_cast<unsigned long long>(cstats.inserts),
              static_cast<unsigned long long>(cstats.rejected_inserts),
              static_cast<unsigned long long>(cstats.invalidated),
              static_cast<unsigned long long>(cstats.flushes),
              static_cast<unsigned long long>(cstats.evictions),
              static_cast<unsigned long long>(cstats.entries),
              static_cast<unsigned long long>(cstats.bytes));
  std::printf("plan cache: %llu hits / %llu misses, %zu plans resident\n",
              static_cast<unsigned long long>(pcache.hits()),
              static_cast<unsigned long long>(pcache.misses()),
              pcache.entries());
  std::printf("\nsummary: %.2fx steady-state amortized speedup (floor %.1fx "
              "in full runs), hit rate %.3f, extra access I/O %llu\n",
              speedup, kSpeedupFloor, hit_rate,
              static_cast<unsigned long long>(extra_access_io));

  bench::WriteBenchJson(
      "cache_throughput",
      bench::Json()
          .Set("bench", "cache_throughput")
          .Set("nodes", nodes)
          .Set("smoke", smoke)
          .Set("repetitions", reps)
          .Set("stream_len", static_cast<uint64_t>(stream_len))
          .Set("distinct_queries", static_cast<uint64_t>(queries.size()))
          .Set("subject_pool", static_cast<uint64_t>(kSubjectPool))
          .Set("role_profiles", static_cast<uint64_t>(kProfiles))
          .Set("zipf_s", kZipfS)
          .Set("cache_off_ms", off_s * 1000)
          .Set("cache_on_cold_ms", cold_s * 1000)
          .Set("cache_on_steady_ms", steady_s * 1000)
          .Set("steady_speedup", speedup)
          .Set("steady_hit_rate", hit_rate)
          .Set("speedup_floor", kSpeedupFloor)
          .Set("identical", identical)
          .Set("extra_access_io", extra_access_io)
          .Set("steady_exec", bench::ExecStatsJson(steady_exec))
          .Set("result_cache",
               bench::Json()
                   .Set("hits", cstats.hits)
                   .Set("misses", cstats.misses)
                   .Set("inserts", cstats.inserts)
                   .Set("rejected_inserts", cstats.rejected_inserts)
                   .Set("evictions", cstats.evictions)
                   .Set("invalidated", cstats.invalidated)
                   .Set("flushes", cstats.flushes)
                   .Set("entries", cstats.entries)
                   .Set("bytes", cstats.bytes))
          .Set("plan_cache", bench::Json()
                                 .Set("hits", pcache.hits())
                                 .Set("misses", pcache.misses())
                                 .Set("entries",
                                      static_cast<uint64_t>(pcache.entries())))
          .Set("update_storm",
               bench::Json()
                   .Set("rounds", static_cast<uint64_t>(storm_rounds))
                   .Set("differential_checks",
                        static_cast<uint64_t>(storm_checks))
                   .Set("stale_serves", static_cast<uint64_t>(stale_serves))
                   .Set("hits_served_mid_storm", storm_hits)));

  int exit_code = 0;
  if (!identical) {
    std::printf("FAIL: cache-on stream answers diverged from cache-off\n");
    exit_code = 1;
  }
  if (stale_serves != 0) {
    std::printf("FAIL: %zu stale serves across the update storm\n",
                stale_serves);
    exit_code = 1;
  }
  if (extra_access_io != 0) {
    std::printf("FAIL: extra access I/O %llu != 0\n",
                static_cast<unsigned long long>(extra_access_io));
    exit_code = 1;
  }
  if (hit_rate <= 0.0) {
    std::printf("FAIL: steady-state hit rate is zero\n");
    exit_code = 1;
  }
  if (storm_hits == 0) {
    std::printf("FAIL: no cached answer was ever served mid-storm (the "
                "stale-serve check never fired against a real hit)\n");
    exit_code = 1;
  }
  if (!smoke && speedup < kSpeedupFloor) {
    std::printf("FAIL: steady-state speedup %.2fx below the %.1fx floor\n",
                speedup, kSpeedupFloor);
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
