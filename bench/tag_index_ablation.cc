// Ablation: seeding pattern matching from the disk-resident B+-tree tag
// index (the paper's "B+-trees on tag names", Section 4.1) versus the
// in-memory posting lists. Reports index size, build cost, and per-tag scan
// cost in page reads.

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "nok/tag_index.h"
#include "storage/paged_file.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 200000);
  bench::Banner("Ablation: disk B+-tree tag index vs in-memory postings (" +
                std::to_string(nodes) + "-node XMark)");

  XMarkOptions xopts;
  xopts.target_nodes = nodes;
  Document doc;
  if (!GenerateXMark(xopts, &doc).ok()) return 1;
  MemPagedFile store_file;
  std::unique_ptr<NokStore> store;
  if (!NokStore::Build(doc, &store_file, {}, nullptr, &store).ok()) return 1;

  MemPagedFile index_file;
  std::unique_ptr<DiskTagIndex> index;
  Timer timer;
  Status st = DiskTagIndex::Build(store.get(), &index_file, 256, &index);
  if (!st.ok()) {
    std::fprintf(stderr, "index build: %s\n", st.ToString().c_str());
    return 1;
  }
  double build_s = timer.ElapsedSeconds();
  std::printf("index: %llu entries over %u pages (%.1f MB), built in %.2f s "
              "(tree height %u)\n",
              static_cast<unsigned long long>(index->num_entries()),
              index_file.NumPages(),
              static_cast<double>(index_file.NumPages()) * kPageSize /
                  (1 << 20),
              build_s, index->tree()->height());

  std::printf("\n%-12s %10s %14s %14s %12s\n", "tag", "postings",
              "disk scan us", "memory scan us", "page reads");
  for (const char* tag : {"item", "parlist", "listitem", "keyword", "emph",
                          "category", "person", "bold"}) {
    TagId id = store->tags().Lookup(tag);
    if (id == kInvalidTag) continue;

    (void)index->tree()->buffer_pool()->EvictAll();
    index->tree()->buffer_pool()->mutable_stats()->Reset();
    timer.Reset();
    auto disk = index->Postings(id);
    double disk_us = timer.ElapsedSeconds() * 1e6;
    if (!disk.ok()) return 1;
    uint64_t reads = index->io_stats().page_reads;

    timer.Reset();
    const std::vector<NodeId>& mem = store->Postings(id);
    double mem_us = timer.ElapsedSeconds() * 1e6;

    if (disk->size() != mem.size()) {
      std::fprintf(stderr, "postings mismatch for %s\n", tag);
      return 1;
    }
    std::printf("%-12s %10zu %14.1f %14.2f %12llu\n", tag, mem.size(),
                disk_us, mem_us, static_cast<unsigned long long>(reads));
  }
  std::printf("\n(a cold range scan costs ~height + postings/255 page reads; "
              "the in-memory lists are the warm-cache equivalent)\n");
  return 0;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
