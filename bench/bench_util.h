#ifndef SECXML_BENCH_BENCH_UTIL_H_
#define SECXML_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/exec_stats.h"

namespace secxml::bench {

/// Parses an optional positive-integer scale argument (argv[1]); benches use
/// it as the document node count so the harness can be run at paper scale
/// (e.g. 832911 nodes for the 50 MB XMark instance) or quickly in CI.
inline uint32_t ScaleArg(int argc, char** argv, uint32_t default_nodes) {
  if (argc > 1) {
    long v = std::strtol(argv[1], nullptr, 10);
    if (v > 0) return static_cast<uint32_t>(v);
  }
  return default_nodes;
}

/// Prints a banner naming the experiment being reproduced.
inline void Banner(const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================\n");
}

/// Minimal order-preserving JSON object builder for machine-readable bench
/// output. Keys render in insertion order; nesting and arrays of objects
/// are supported (enough for per-point measurement records — no parsing,
/// no escapes beyond quotes/backslashes).
class Json {
 public:
  Json& Set(const std::string& key, const std::string& v) {
    return Raw(key, Quote(v));
  }
  Json& Set(const std::string& key, const char* v) {
    return Raw(key, Quote(v));
  }
  template <typename T,
            typename std::enable_if<std::is_arithmetic<T>::value, int>::type = 0>
  Json& Set(const std::string& key, T v) {
    if constexpr (std::is_same<T, bool>::value) {
      return Raw(key, v ? "true" : "false");
    } else if constexpr (std::is_floating_point<T>::value) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", static_cast<double>(v));
      return Raw(key, buf);
    } else {
      return Raw(key, std::to_string(v));
    }
  }
  Json& Set(const std::string& key, const Json& v) {
    return Raw(key, v.Dump());
  }
  Json& Set(const std::string& key, const std::vector<Json>& arr) {
    std::string s = "[";
    for (size_t i = 0; i < arr.size(); ++i) {
      if (i) s += ", ";
      s += "\n  " + Indented(arr[i].Dump());
    }
    s += arr.empty() ? "]" : "\n]";
    return Raw(key, s);
  }

  std::string Dump() const {
    std::string s = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i) s += ",";
      s += "\n  " + Quote(fields_[i].first) + ": " +
           Indented(fields_[i].second);
    }
    s += fields_.empty() ? "}" : "\n}";
    return s;
  }

 private:
  Json& Raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }
  static std::string Quote(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') q += '\\';
      q += c;
    }
    q += '"';
    return q;
  }
  /// Re-indents an already-rendered multi-line value for embedding.
  static std::string Indented(const std::string& v) {
    std::string out;
    for (char c : v) {
      out += c;
      if (c == '\n') out += "  ";
    }
    return out;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Renders an ExecStats rollup (EvalResult::exec, BatchStats::exec) as one
/// JSON object, with `access_only_fetches` surfaced as `extra_access_io` —
/// the paper's "checks add no I/O" claim as a measured artifact field.
inline Json ExecStatsJson(const ExecStats& s) {
  return Json()
      .Set("nodes_scanned", s.nodes_scanned)
      .Set("codes_checked", s.codes_checked)
      .Set("checks_elided", s.checks_elided)
      .Set("pages_skipped", s.pages_skipped)
      .Set("pages_prefetched", s.pages_prefetched)
      .Set("fetch_waits", s.fetch_waits)
      .Set("extra_access_io", s.access_only_fetches)
      .Set("subjects_batched", s.subjects_batched)
      .Set("classes_evaluated", s.classes_evaluated)
      .Set("class_dedup_hits", s.class_dedup_hits)
      .Set("epoch_pins", s.epoch_pins)
      .Set("result_cache_hits", s.result_cache_hits)
      .Set("result_cache_misses", s.result_cache_misses)
      .Set("result_cache_invalidations", s.result_cache_invalidations)
      .Set("single_flight_waits", s.single_flight_waits);
}

/// Writes `doc` to BENCH_<name>.json in $SECXML_BENCH_DIR (or the current
/// directory) so bench results land as committed, diffable artifacts next
/// to the human-readable stdout tables.
inline void WriteBenchJson(const std::string& name, const Json& doc) {
  const char* dir = std::getenv("SECXML_BENCH_DIR");
  std::string path =
      (dir != nullptr && dir[0] != '\0' ? std::string(dir) : std::string("."))
      + "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::string body = doc.Dump();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\n[bench json] %s\n", path.c_str());
}

}  // namespace secxml::bench

#endif  // SECXML_BENCH_BENCH_UTIL_H_
