#ifndef SECXML_BENCH_BENCH_UTIL_H_
#define SECXML_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace secxml::bench {

/// Parses an optional positive-integer scale argument (argv[1]); benches use
/// it as the document node count so the harness can be run at paper scale
/// (e.g. 832911 nodes for the 50 MB XMark instance) or quickly in CI.
inline uint32_t ScaleArg(int argc, char** argv, uint32_t default_nodes) {
  if (argc > 1) {
    long v = std::strtol(argv[1], nullptr, 10);
    if (v > 0) return static_cast<uint32_t>(v);
  }
  return default_nodes;
}

/// Prints a banner naming the experiment being reproduced.
inline void Banner(const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================\n");
}

}  // namespace secxml::bench

#endif  // SECXML_BENCH_BENCH_UTIL_H_
