// Reproduces the Section 5.1.1 storage analysis: total storage cost of one
// multi-subject DOL (in-memory codebook + embedded transition codes) versus
// one CAM per subject, for both real-data surrogates.
//
// Paper numbers (LiveLink, mode 0): single subject needs ~600 DOL
// transitions vs ~450 CAM labels, but all 8639 subjects need ~18,800 DOL
// transitions vs ~10^7 CAM labels — three orders of magnitude — putting DOL
// at a ~4 MB codebook plus trivial embedded codes against ~46.6 MB of CAMs
// even under charitable CAM assumptions.

#include <cstdio>

#include "baseline/cam.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/dol_labeling.h"
#include "workload/livelink_surrogate.h"
#include "workload/unixfs_surrogate.h"

namespace secxml {
namespace {

struct CamEstimate {
  double total_labels = 0;
  size_t sampled = 0;
};

/// Average CAM size over `sample` subjects, extrapolated to all subjects.
template <typename AccessibleFn>
CamEstimate EstimateCamLabels(const Document& doc, size_t num_subjects,
                              size_t sample, const AccessibleFn& accessible) {
  CamEstimate est;
  Rng rng(17);
  est.sampled = std::min(sample, num_subjects);
  double total = 0;
  for (size_t i = 0; i < est.sampled; ++i) {
    SubjectId s = static_cast<SubjectId>(
        est.sampled == num_subjects ? i : rng.Uniform(num_subjects));
    Cam cam = Cam::Build(doc, [&](NodeId x) { return accessible(s, x); });
    total += static_cast<double>(cam.num_labels());
  }
  est.total_labels = total / static_cast<double>(est.sampled) *
                     static_cast<double>(num_subjects);
  return est;
}

void Report(const char* name, size_t num_nodes, size_t num_subjects,
            const DolLabeling& dol, const CamEstimate& cams) {
  DolLabeling::Stats stats = dol.ComputeStats(/*code_bytes=*/2);
  // CAM per-label cost: 2 access bits plus a node reference; the paper
  // charitably charges only 1 byte of pointer per label, and we also report
  // a realistic 8-byte variant.
  double cam_bytes_paper = cams.total_labels * (1.0 + 0.25);
  double cam_bytes_real = cams.total_labels * (8.0 + 1.0);

  std::printf("\n--- %s: %zu nodes, %zu subjects ---\n", name, num_nodes,
              num_subjects);
  std::printf("DOL transitions:            %10zu  (density 1 per %.0f nodes)\n",
              stats.num_transitions,
              static_cast<double>(num_nodes) /
                  static_cast<double>(stats.num_transitions));
  std::printf("DOL codebook entries:       %10zu\n", stats.codebook_entries);
  std::printf("DOL codebook bytes:         %10zu  (%.2f MB)\n",
              stats.codebook_bytes,
              static_cast<double>(stats.codebook_bytes) / (1 << 20));
  std::printf("DOL embedded code bytes:    %10zu  (2 B per transition)\n",
              stats.transition_bytes);
  std::printf("DOL total:                  %10zu  (%.2f MB)\n",
              stats.total_bytes,
              static_cast<double>(stats.total_bytes) / (1 << 20));
  std::printf("CAM labels (all subjects):  %10.0f  (extrapolated from %zu "
              "sampled subjects)\n", cams.total_labels, cams.sampled);
  std::printf("CAM bytes (paper's 1B ptr): %10.0f  (%.2f MB)\n",
              cam_bytes_paper, cam_bytes_paper / (1 << 20));
  std::printf("CAM bytes (8B pointers):    %10.0f  (%.2f MB)\n",
              cam_bytes_real, cam_bytes_real / (1 << 20));
  std::printf("label-count advantage:      %10.0fx fewer DOL transitions "
              "than CAM labels\n",
              cams.total_labels / static_cast<double>(stats.num_transitions));
}

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 120000);
  bench::Banner("Section 5.1.1: overall storage, multi-subject DOL vs "
                "per-subject CAMs");

  {
    LiveLinkOptions opts;
    opts.target_nodes = nodes;
    LiveLinkWorkload w;
    Status st = GenerateLiveLink(opts, &w);
    if (!st.ok()) {
      std::fprintf(stderr, "livelink: %s\n", st.ToString().c_str());
      return 1;
    }
    const IntervalAccessMap& map = w.modes[0];
    DolLabeling dol = DolLabeling::BuildFromEvents(
        map.num_nodes(), map.InitialAcl(), map.CollectEvents());
    // Single-subject comparison first (paper leads with it).
    std::vector<SubjectId> one = {42};
    DolLabeling single = DolLabeling::BuildFromEvents(
        map.num_nodes(), map.InitialAcl(&one), map.CollectEvents(&one));
    Cam single_cam = Cam::Build(
        w.doc, [&map](NodeId x) { return map.Accessible(42, x); });
    std::printf("single LiveLink subject:  DOL %zu transitions, CAM %zu "
                "labels\n", single.num_transitions(), single_cam.num_labels());
    CamEstimate cams = EstimateCamLabels(
        w.doc, w.num_subjects(), /*sample=*/40,
        [&map](SubjectId s, NodeId x) { return map.Accessible(s, x); });
    Report("LiveLink (mode 0)", w.doc.NumNodes(), w.num_subjects(), dol, cams);
  }
  {
    UnixFsOptions opts;
    opts.target_nodes = std::max(nodes, 100000u);
    UnixFsWorkload w;
    Status st = GenerateUnixFs(opts, &w);
    if (!st.ok()) {
      std::fprintf(stderr, "unixfs: %s\n", st.ToString().c_str());
      return 1;
    }
    DolLabeling dol = DolLabeling::BuildFromRuns(*w.read_map);
    CamEstimate cams = EstimateCamLabels(
        w.doc, w.num_subjects(), /*sample=*/w.num_subjects(),
        [&w](SubjectId s, NodeId x) { return w.read_map->Accessible(s, x); });
    Report("Unix filesystem (read)", w.doc.NumNodes(), w.num_subjects(), dol,
           cams);
  }
  return 0;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
