// Reproduces Figures 6(a) and 6(b): DOL transition node count as a function
// of the number of subjects, for the LiveLink and Unix filesystem
// surrogates.
//
// Paper shape: strongly sublinear growth — for LiveLink the transition
// count for all 8639 subjects is only a small multiple of the single-subject
// count, and transition density stays far below one per ten nodes.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/dol_labeling.h"
#include "workload/livelink_surrogate.h"
#include "workload/unixfs_surrogate.h"

namespace secxml {
namespace {

std::vector<SubjectId> SampleSubjects(size_t total, size_t count, Rng* rng) {
  std::vector<SubjectId> all(total);
  std::iota(all.begin(), all.end(), 0);
  for (size_t i = 0; i < count && i + 1 < total; ++i) {
    size_t j = i + rng->Uniform(total - i);
    std::swap(all[i], all[j]);
  }
  all.resize(std::min(count, total));
  std::sort(all.begin(), all.end());
  return all;
}

void Sweep(const char* name, const IntervalAccessMap* imap,
           const RunAccessMap* rmap, size_t num_subjects, size_t num_nodes,
           const std::vector<size_t>& sizes) {
  std::printf("\n%s\n%-10s %18s %16s\n", name, "subjects", "transition nodes",
              "density (1/n)");
  Rng rng(13);
  size_t single = 0, full = 0;
  for (size_t count : sizes) {
    std::vector<SubjectId> subset = SampleSubjects(num_subjects, count, &rng);
    DolLabeling dol;
    if (imap != nullptr) {
      dol = DolLabeling::BuildFromEvents(imap->num_nodes(),
                                         imap->InitialAcl(&subset),
                                         imap->CollectEvents(&subset));
    } else {
      dol = DolLabeling::BuildFromRuns(rmap->ProjectSubjects(subset));
    }
    if (count == 1) single = dol.num_transitions();
    full = dol.num_transitions();
    std::printf("%-10zu %18zu %16.0f\n", subset.size(), dol.num_transitions(),
                dol.num_transitions() > 0
                    ? static_cast<double>(num_nodes) /
                          static_cast<double>(dol.num_transitions())
                    : 0.0);
  }
  if (single > 0) {
    std::printf("growth: all-subject transitions = %.1fx the single-subject "
                "count (linear would be %zux)\n",
                static_cast<double>(full) / static_cast<double>(single),
                num_subjects);
  }
}

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 120000);
  bench::Banner("Figure 6: DOL transition nodes vs number of subjects");

  {
    LiveLinkOptions opts;
    opts.target_nodes = nodes;
    LiveLinkWorkload w;
    Status st = GenerateLiveLink(opts, &w);
    if (!st.ok()) {
      std::fprintf(stderr, "livelink: %s\n", st.ToString().c_str());
      return 1;
    }
    Sweep("Figure 6(a): LiveLink (mode 0)", &w.modes[0], nullptr,
          w.num_subjects(), w.doc.NumNodes(),
          {1, 10, 50, 100, 250, 500, 1000, 2000, 4000, 6000, 8639});
  }
  {
    UnixFsOptions opts;
    opts.target_nodes = std::max(nodes, 100000u);
    UnixFsWorkload w;
    Status st = GenerateUnixFs(opts, &w);
    if (!st.ok()) {
      std::fprintf(stderr, "unixfs: %s\n", st.ToString().c_str());
      return 1;
    }
    Sweep("Figure 6(b): Unix filesystem (read mode)", nullptr,
          w.read_map.get(), w.num_subjects(), w.doc.NumNodes(),
          {1, 5, 10, 25, 50, 100, 150, 200, 247});
  }
  std::printf("\n(paper: 247-subject Unix transitions ~= 2x the 5-subject "
              "count; transition density < 1/10 for both systems)\n");
  return 0;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
