// Reproduces Figures 5(a) and 5(b): DOL codebook entries as a function of
// the number of subjects, for the LiveLink surrogate and the Unix
// filesystem surrogate.
//
// Paper shape: growth is dramatically sublinear (nowhere near 2^subjects):
// ~4000 entries for all 8639 LiveLink subjects (~4 MB codebook at one bit
// per subject), ~855 entries for all 247 Unix subjects (~25 KB).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/dol_labeling.h"
#include "workload/livelink_surrogate.h"
#include "workload/unixfs_surrogate.h"

namespace secxml {
namespace {

std::vector<SubjectId> SampleSubjects(size_t total, size_t count, Rng* rng) {
  std::vector<SubjectId> all(total);
  std::iota(all.begin(), all.end(), 0);
  // Partial Fisher-Yates.
  for (size_t i = 0; i < count && i + 1 < total; ++i) {
    size_t j = i + rng->Uniform(total - i);
    std::swap(all[i], all[j]);
  }
  all.resize(std::min(count, total));
  std::sort(all.begin(), all.end());
  return all;
}

void Sweep(const char* name, const IntervalAccessMap* imap,
           const RunAccessMap* rmap, size_t num_subjects,
           const std::vector<size_t>& sizes) {
  std::printf("\n%s\n%-10s %16s %18s\n", name, "subjects", "codebook entries",
              "codebook bytes");
  Rng rng(7);
  for (size_t count : sizes) {
    std::vector<SubjectId> subset =
        SampleSubjects(num_subjects, count, &rng);
    DolLabeling dol;
    if (imap != nullptr) {
      dol = DolLabeling::BuildFromEvents(imap->num_nodes(),
                                         imap->InitialAcl(&subset),
                                         imap->CollectEvents(&subset));
    } else {
      dol = DolLabeling::BuildFromRuns(rmap->ProjectSubjects(subset));
    }
    std::printf("%-10zu %16zu %18zu\n", subset.size(), dol.codebook().size(),
                dol.codebook().ByteSize());
  }
}

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 120000);
  bench::Banner("Figure 5: DOL codebook entries vs number of subjects");

  {
    LiveLinkOptions opts;
    opts.target_nodes = nodes;
    LiveLinkWorkload w;
    Status st = GenerateLiveLink(opts, &w);
    if (!st.ok()) {
      std::fprintf(stderr, "livelink: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("LiveLink surrogate: %zu nodes, %zu subjects\n",
                w.doc.NumNodes(), w.num_subjects());
    Sweep("Figure 5(a): LiveLink (mode 0)", &w.modes[0], nullptr,
          w.num_subjects(),
          {1, 10, 50, 100, 250, 500, 1000, 2000, 4000, 6000, 8639});
  }
  {
    UnixFsOptions opts;
    opts.target_nodes = std::max(nodes, 100000u);
    UnixFsWorkload w;
    Status st = GenerateUnixFs(opts, &w);
    if (!st.ok()) {
      std::fprintf(stderr, "unixfs: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nUnix filesystem surrogate: %zu nodes, %zu subjects "
                "(%zu users, %zu groups)\n",
                w.doc.NumNodes(), w.num_subjects(), w.num_users,
                w.num_groups);
    Sweep("Figure 5(b): Unix filesystem (read mode)", nullptr,
          w.read_map.get(), w.num_subjects(),
          {1, 5, 10, 25, 50, 100, 150, 200, 247});
  }
  std::printf("\n(paper: ~4000 entries at 8639 LiveLink subjects ~= 4 MB; "
              "~855 entries at 247 Unix subjects ~= 25 KB)\n");
  return 0;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
