// Word-parallel multi-subject batch evaluation throughput: one twig query
// answered for N subjects at once (QueryDriver::EvaluateForSubjects) versus
// the one-query-per-subject serial QueryDriver baseline.
//
// Expected shape: per-subject amortized cost drops along two multiplicative
// axes — subjects drawn from a fixed pool of role profiles collapse into
// visibility equivalence classes (identical codebook columns => identical
// answers, computed once), and the remaining distinct classes share ONE
// structural NoK scan whose accessibility checks are single word-wide ANDs.
// Target: >= 4x amortized speedup at a 64-subject batch, with every
// subject's answers byte-identical to its per-subject evaluation and zero
// access-only I/O on both paths.
//
// argv: [nodes] [--smoke]. --smoke shrinks the document and rep count for
// CI, and exits non-zero on answer divergence or extra access I/O (the
// speedup itself is reported, not gated, in smoke mode — CI machines have
// noisy clocks; the committed artifact records the measured value).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/codebook.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/query_driver.h"
#include "query/xpath_parser.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kSubjectPool = 64;
constexpr size_t kProfiles = 12;

struct Fixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

// Subjects model users holding one of kProfiles roles: subject s draws the
// ACL stream of profile (s % kProfiles), so same-role subjects have
// identical codebook columns — the dedup structure real multi-tenant
// workloads have and the batch evaluator collapses.
std::unique_ptr<Fixture> Build(uint32_t nodes) {
  auto f = std::make_unique<Fixture>();
  XMarkOptions xopts;
  xopts.seed = 29;
  xopts.target_nodes = nodes;
  if (!GenerateXMark(xopts, &f->doc).ok()) return nullptr;
  IntervalAccessMap map(static_cast<NodeId>(f->doc.NumNodes()), kSubjectPool);
  for (SubjectId s = 0; s < kSubjectPool; ++s) {
    SyntheticAclOptions aopts;
    aopts.seed = 9000 + s % kProfiles;
    aopts.accessibility_ratio = 0.6;
    map.SetSubjectIntervals(s, GenerateSyntheticAcl(f->doc, aopts));
  }
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.buffer_pool_pages = 64;  // smaller than the document: real I/O path
  if (!SecureStore::Build(f->doc, labeling, &f->file, sopts, &f->store).ok()) {
    return nullptr;
  }
  return f;
}

/// Minimum-of-reps wall time (see fig7_secure_nok.cc for why the floor):
/// both variants run within every rep, cold pool each measurement.
struct Measured {
  double serial_s = 0;
  double batch_s = 0;
  bool identical = true;
  uint64_t extra_access_io = 0;
  ExecStats batch_exec;
  size_t classes = 0;
};

bool RunPoint(SecureStore* store, const PatternTree& pattern,
              const std::vector<SubjectId>& subjects, AccessSemantics sem,
              int reps, Measured* out) {
  QueryDriverOptions dopts;
  dopts.num_threads = 1;
  dopts.semantics = sem;
  QueryDriver driver(store, dopts);
  std::vector<QueryJob> jobs;
  for (SubjectId s : subjects) jobs.push_back({s, pattern});

  std::vector<double> serial_times, batch_times;
  BatchResult serial;
  SubjectBatchResult batch;
  Timer timer;
  for (int r = -1; r < reps; ++r) {  // rep -1 = untimed warm-up
    (void)store->nok()->buffer_pool()->EvictAll();
    timer.Reset();
    serial = driver.Run(jobs);
    double serial_elapsed = timer.ElapsedSeconds();
    if (serial.stats.failed != 0) {
      std::fprintf(stderr, "serial run failed: %s\n",
                   serial.stats.first_error.ToString().c_str());
      return false;
    }
    (void)store->nok()->buffer_pool()->EvictAll();
    timer.Reset();
    auto br = driver.EvaluateForSubjects(pattern, subjects);
    double batch_elapsed = timer.ElapsedSeconds();
    if (!br.ok()) {
      std::fprintf(stderr, "batch run failed: %s\n",
                   br.status().ToString().c_str());
      return false;
    }
    if (r < 0) continue;
    serial_times.push_back(serial_elapsed);
    batch_times.push_back(batch_elapsed);
    batch = std::move(*br);
  }
  for (size_t i = 0; i < subjects.size(); ++i) {
    if (batch.ResultFor(i).answers != serial.outcomes[i].result.answers) {
      out->identical = false;
    }
  }
  out->serial_s = *std::min_element(serial_times.begin(), serial_times.end());
  out->batch_s = *std::min_element(batch_times.begin(), batch_times.end());
  out->extra_access_io =
      serial.stats.exec.access_only_fetches + batch.exec.access_only_fetches;
  out->batch_exec = batch.exec;
  out->classes = batch.classes.size();
  return true;
}

int Run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  uint32_t nodes = bench::ScaleArg(argc, argv, smoke ? 8000 : 60000);
  const int reps = smoke ? 2 : 5;

  bench::Banner("Multi-subject batch evaluation: one scan, all subjects (" +
                std::to_string(nodes) + "-node XMark, " +
                std::to_string(kSubjectPool) + "-subject pool, " +
                std::to_string(kProfiles) + " role profiles)");

  auto f = Build(nodes);
  if (f == nullptr) {
    std::fprintf(stderr, "fixture build failed\n");
    return 1;
  }

  // Workload: two Table 1 queries plus two random twigs grown along real
  // document paths.
  std::vector<std::pair<std::string, PatternTree>> queries;
  for (int qi : {0, 1}) {
    PatternTree p;
    if (!ParseXPath(kTable1Queries[qi], &p).ok()) return 1;
    queries.emplace_back(kTable1Queries[qi], std::move(p));
  }
  for (uint64_t seed : {5u, 9u}) {
    QueryGenOptions qopts;
    qopts.seed = seed;
    qopts.max_nodes = 4;
    PatternTree p = GenerateTwigQuery(f->doc, qopts);
    queries.emplace_back(p.ToString(), std::move(p));
  }

  bool all_identical = true;
  uint64_t extra_access_io = 0;
  double speedup_at_64 = 0;
  size_t points_at_64 = 0;
  std::vector<bench::Json> points;

  std::printf("%-9s %-6s %7s %8s %11s %11s %9s\n", "semantics", "batch",
              "classes", "speedup", "serial ms", "batch ms", "identical");
  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    const char* sem_name = sem == AccessSemantics::kBinding ? "binding"
                                                            : "view";
    for (size_t batch_size : {4u, 16u, 64u}) {
      // Subjects 0..B-1: profiles repeat every kProfiles, so small batches
      // are mostly distinct classes and the 64-batch is ~12 classes.
      std::vector<SubjectId> subjects;
      for (SubjectId s = 0; s < batch_size; ++s) subjects.push_back(s);

      double serial_s = 0, batch_s = 0;
      bool identical = true;
      ExecStats exec;
      size_t classes = 0;
      for (const auto& [name, pattern] : queries) {
        Measured m;
        if (!RunPoint(f->store.get(), pattern, subjects, sem, reps, &m)) {
          return 1;
        }
        serial_s += m.serial_s;
        batch_s += m.batch_s;
        identical = identical && m.identical;
        extra_access_io += m.extra_access_io;
        exec += m.batch_exec;
        classes = m.classes;
      }
      all_identical = all_identical && identical;
      double speedup = batch_s > 0 ? serial_s / batch_s : 0.0;
      if (batch_size == 64 && sem == AccessSemantics::kBinding) {
        speedup_at_64 += speedup;
        ++points_at_64;
      }
      std::printf("%-9s %-6zu %7zu %7.2fx %11.2f %11.2f %9s\n", sem_name,
                  batch_size, classes, speedup, serial_s * 1000,
                  batch_s * 1000, identical ? "yes" : "NO");
      points.push_back(
          bench::Json()
              .Set("semantics", sem_name)
              .Set("batch_size", static_cast<uint64_t>(batch_size))
              .Set("classes", static_cast<uint64_t>(classes))
              .Set("serial_ms", serial_s * 1000)
              .Set("batch_ms", batch_s * 1000)
              .Set("amortized_speedup", speedup)
              .Set("identical", identical)
              .Set("batch_exec", bench::ExecStatsJson(exec)));
    }
  }
  if (points_at_64 > 0) speedup_at_64 /= static_cast<double>(points_at_64);

  std::printf("\nsummary: %.2fx amortized speedup at 64 subjects (binding), "
              "answers %s, extra access I/O %llu\n",
              speedup_at_64,
              all_identical ? "byte-identical to per-subject" : "DIVERGED",
              static_cast<unsigned long long>(extra_access_io));
  if (speedup_at_64 < 4.0) {
    std::printf("WARNING: speedup below the 4x acceptance threshold\n");
  }

  bench::WriteBenchJson(
      "multi_subject_throughput",
      bench::Json()
          .Set("bench", "multi_subject_throughput")
          .Set("nodes", nodes)
          .Set("repetitions", reps)
          .Set("subject_pool", static_cast<uint64_t>(kSubjectPool))
          .Set("role_profiles", static_cast<uint64_t>(kProfiles))
          .Set("all_identical", all_identical)
          .Set("extra_access_io", extra_access_io)
          .Set("speedup_at_64_subjects", speedup_at_64)
          .Set("sweep", points));

  int exit_code = 0;
  if (!all_identical) exit_code = 1;
  if (extra_access_io != 0) exit_code = 1;
  if (!smoke && speedup_at_64 < 4.0) exit_code = 1;
  return exit_code;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
