// Wide-mask multi-subject batch evaluation throughput: one twig query
// answered for N subjects at once (QueryDriver::EvaluateForSubjects) versus
// the one-query-per-subject serial QueryDriver baseline.
//
// Expected shape: per-subject amortized cost drops along two multiplicative
// axes — subjects drawn from a fixed pool of role profiles collapse into
// visibility equivalence classes (identical codebook columns => identical
// answers, computed once), and the remaining distinct classes share ONE
// structural NoK scan whose accessibility checks are 512-bit-wide mask ANDs
// (SIMD-dispatched, see src/exec/mask_ops.h). Batches are drawn at random
// from the pool, so small batches repeat profiles the way real request
// streams do and the class_dedup_hits counter measures real collapse.
//
// Four hard-asserted properties (non-zero exit on violation, both modes):
//   * every subject's batch answers byte-identical to its per-subject run;
//   * zero access-only I/O on either path;
//   * forced-scalar masks (ForceMaskIsa) produce byte-identical answers to
//     the SIMD tier;
//   * after the all-roles-denied stripe is written and the store is
//     vacuumed into visibility-clustered pages, the mixed 128-subject batch
//     skips pages (pages_skipped > 0) while answering identically;
//   * the shard sweep (1/2/4/8-shard ShardedStore under a ShardCoordinator,
//     simulated device read latency) answers byte-identically to the single
//     store, and at 4 shards beats the 1-shard coordinator by >= 1.5x
//     (gated in full runs, reported in smoke).
//
// argv: [nodes] [--smoke]. --smoke shrinks the document and rep count for
// CI; the speedup itself is reported, not gated, in smoke mode (CI clocks
// are noisy; the committed artifact records the measured value).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/codebook.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "exec/mask_ops.h"
#include "query/batch_evaluator.h"
#include "query/query_driver.h"
#include "query/xpath_parser.h"
#include "serve/shard_coordinator.h"
#include "serve/sharded_store.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kSubjectPool = 256;
constexpr size_t kRoleSubjects = 192;  // subjects 0..191 share 12 profiles
constexpr size_t kProfiles = 12;       // subjects 192..255 are all distinct
constexpr double kPr5SpeedupAt64 = 12.9232;  // previous PR's 64-subject value

// Shard sweep: simulated device read latency per physical page fetch and the
// acceptance floor for the 4-shard speedup over the 1-shard coordinator.
constexpr int kShardReadLatencyUs = 250;
constexpr double kShardSpeedupFloor = 1.5;

struct Fixture {
  Document doc;
  DolLabeling labeling;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

// Subjects model users holding one of kProfiles roles: subject s < 192
// draws the ACL stream of profile (s % kProfiles), so same-role subjects
// have identical codebook columns — the dedup structure real multi-tenant
// workloads have and the batch evaluator collapses. Subjects 192..255 each
// draw a distinct stream: mixing them in builds batches wider than the old
// 64-class cap, evaluated as one wide scan.
std::unique_ptr<Fixture> Build(uint32_t nodes) {
  auto f = std::make_unique<Fixture>();
  XMarkOptions xopts;
  xopts.seed = 29;
  xopts.target_nodes = nodes;
  if (!GenerateXMark(xopts, &f->doc).ok()) return nullptr;
  IntervalAccessMap map(static_cast<NodeId>(f->doc.NumNodes()), kSubjectPool);
  for (SubjectId s = 0; s < kSubjectPool; ++s) {
    SyntheticAclOptions aopts;
    aopts.seed = s < kRoleSubjects ? 9000 + s % kProfiles : 9100 + s;
    aopts.accessibility_ratio = 0.6;
    map.SetSubjectIntervals(s, GenerateSyntheticAcl(f->doc, aopts));
  }
  f->labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.buffer_pool_pages = 64;  // smaller than the document: real I/O path
  if (!SecureStore::Build(f->doc, f->labeling, &f->file, sopts, &f->store)
           .ok()) {
    return nullptr;
  }
  return f;
}

/// Minimum-of-reps wall time (see fig7_secure_nok.cc for why the floor):
/// both variants run within every rep, cold pool each measurement.
struct Measured {
  double serial_s = 0;
  double batch_s = 0;
  bool identical = true;
  uint64_t extra_access_io = 0;
  ExecStats batch_exec;
  size_t classes = 0;
  std::vector<std::vector<NodeId>> batch_answers;
};

bool RunPoint(SecureStore* store, const PatternTree& pattern,
              const std::vector<SubjectId>& subjects, AccessSemantics sem,
              int reps, Measured* out) {
  QueryDriverOptions dopts;
  dopts.num_threads = 1;
  dopts.semantics = sem;
  QueryDriver driver(store, dopts);
  std::vector<QueryJob> jobs;
  for (SubjectId s : subjects) jobs.push_back({s, pattern});

  std::vector<double> serial_times, batch_times;
  BatchResult serial;
  SubjectBatchResult batch;
  Timer timer;
  for (int r = -1; r < reps; ++r) {  // rep -1 = untimed warm-up
    (void)store->nok()->buffer_pool()->EvictAll();
    timer.Reset();
    serial = driver.Run(jobs);
    double serial_elapsed = timer.ElapsedSeconds();
    if (serial.stats.failed != 0) {
      std::fprintf(stderr, "serial run failed: %s\n",
                   serial.stats.first_error.ToString().c_str());
      return false;
    }
    (void)store->nok()->buffer_pool()->EvictAll();
    timer.Reset();
    auto br = driver.EvaluateForSubjects(pattern, subjects);
    double batch_elapsed = timer.ElapsedSeconds();
    if (!br.ok()) {
      std::fprintf(stderr, "batch run failed: %s\n",
                   br.status().ToString().c_str());
      return false;
    }
    if (r < 0) continue;
    serial_times.push_back(serial_elapsed);
    batch_times.push_back(batch_elapsed);
    batch = std::move(*br);
  }
  out->batch_answers.clear();
  for (size_t i = 0; i < subjects.size(); ++i) {
    if (batch.ResultFor(i).answers != serial.outcomes[i].result.answers) {
      out->identical = false;
    }
    out->batch_answers.push_back(batch.ResultFor(i).answers);
  }
  out->serial_s = *std::min_element(serial_times.begin(), serial_times.end());
  out->batch_s = *std::min_element(batch_times.begin(), batch_times.end());
  out->extra_access_io =
      serial.stats.exec.access_only_fetches + batch.exec.access_only_fetches;
  out->batch_exec = batch.exec;
  out->classes = batch.classes.size();
  return true;
}

/// Random draw (with repeats across draws) from the role-subject pool.
std::vector<SubjectId> DrawRoleSubjects(Rng* rng, size_t batch_size) {
  std::vector<SubjectId> subjects;
  subjects.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    subjects.push_back(static_cast<SubjectId>(rng->Uniform(kRoleSubjects)));
  }
  return subjects;
}

int Run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  uint32_t nodes = bench::ScaleArg(argc, argv, smoke ? 8000 : 60000);
  const int reps = smoke ? 2 : 5;

  bench::Banner("Multi-subject batch evaluation: one wide scan, all subjects ("
                + std::to_string(nodes) + "-node XMark, " +
                std::to_string(kSubjectPool) + "-subject pool, " +
                std::to_string(kProfiles) + " role profiles + " +
                std::to_string(kSubjectPool - kRoleSubjects) +
                " distinct; masks: " + MaskIsaName(ActiveMaskIsa()) + ")");

  auto f = Build(nodes);
  if (f == nullptr) {
    std::fprintf(stderr, "fixture build failed\n");
    return 1;
  }

  // Workload: two Table 1 queries plus two random twigs grown along real
  // document paths.
  std::vector<std::pair<std::string, PatternTree>> queries;
  for (int qi : {0, 1}) {
    PatternTree p;
    if (!ParseXPath(kTable1Queries[qi], &p).ok()) return 1;
    queries.emplace_back(kTable1Queries[qi], std::move(p));
  }
  for (uint64_t seed : {5u, 9u}) {
    QueryGenOptions qopts;
    qopts.seed = seed;
    qopts.max_nodes = 4;
    PatternTree p = GenerateTwigQuery(f->doc, qopts);
    queries.emplace_back(p.ToString(), std::move(p));
  }

  bool all_identical = true;
  uint64_t extra_access_io = 0;
  uint64_t dedup_hits_total = 0;
  double speedup_at_128 = 0;
  size_t points_at_128 = 0;
  std::vector<bench::Json> points;
  Rng draw_rng(0xD1CE);

  std::printf("%-9s %-6s %7s %6s %8s %11s %11s %9s\n", "semantics", "batch",
              "classes", "dedup", "speedup", "serial ms", "batch ms",
              "identical");
  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    const char* sem_name = sem == AccessSemantics::kBinding ? "binding"
                                                            : "view";
    for (size_t batch_size : {4u, 16u, 64u, 128u}) {
      // Random draws from the role pool: profiles repeat the way request
      // streams do, so classes ~ min(batch, 12) and dedup hits are real.
      std::vector<SubjectId> subjects =
          DrawRoleSubjects(&draw_rng, batch_size);

      double serial_s = 0, batch_s = 0;
      bool identical = true;
      ExecStats exec;
      size_t classes = 0;
      for (const auto& [name, pattern] : queries) {
        Measured m;
        if (!RunPoint(f->store.get(), pattern, subjects, sem, reps, &m)) {
          return 1;
        }
        serial_s += m.serial_s;
        batch_s += m.batch_s;
        identical = identical && m.identical;
        extra_access_io += m.extra_access_io;
        exec += m.batch_exec;
        classes = m.classes;
      }
      all_identical = all_identical && identical;
      dedup_hits_total += exec.class_dedup_hits;
      double speedup = batch_s > 0 ? serial_s / batch_s : 0.0;
      if (batch_size == 128 && sem == AccessSemantics::kBinding) {
        speedup_at_128 += speedup;
        ++points_at_128;
      }
      std::printf("%-9s %-6zu %7zu %6llu %7.2fx %11.2f %11.2f %9s\n",
                  sem_name, batch_size, classes,
                  static_cast<unsigned long long>(exec.class_dedup_hits),
                  speedup, serial_s * 1000, batch_s * 1000,
                  identical ? "yes" : "NO");
      points.push_back(
          bench::Json()
              .Set("semantics", sem_name)
              .Set("batch_size", static_cast<uint64_t>(batch_size))
              .Set("classes", static_cast<uint64_t>(classes))
              .Set("serial_ms", serial_s * 1000)
              .Set("batch_ms", batch_s * 1000)
              .Set("amortized_speedup", speedup)
              .Set("identical", identical)
              .Set("batch_exec", bench::ExecStatsJson(exec)));
    }
  }
  if (points_at_128 > 0) speedup_at_128 /= static_cast<double>(points_at_128);

  // --- Wide point: >64 distinct columns, one scan (no chunking) ----------
  // All 64 distinct-profile subjects plus 64 random role subjects: ~76
  // classes, which PR 5 would have split into two scans.
  std::vector<SubjectId> wide_subjects;
  for (SubjectId s = kRoleSubjects; s < kSubjectPool; ++s) {
    wide_subjects.push_back(s);
  }
  for (SubjectId s : DrawRoleSubjects(&draw_rng, 64)) {
    wide_subjects.push_back(s);
  }
  Measured wide;
  if (!RunPoint(f->store.get(), queries[0].second, wide_subjects,
                AccessSemantics::kBinding, reps, &wide)) {
    return 1;
  }
  all_identical = all_identical && wide.identical;
  extra_access_io += wide.extra_access_io;
  dedup_hits_total += wide.batch_exec.class_dedup_hits;
  const double wide_speedup =
      wide.batch_s > 0 ? wide.serial_s / wide.batch_s : 0.0;
  const bool wide_is_one_scan = wide.classes > 64;
  std::printf("\nwide point: %zu subjects, %zu classes (one wide scan: %s), "
              "%.2fx amortized, identical %s\n",
              wide_subjects.size(), wide.classes,
              wide_is_one_scan ? "yes" : "NO", wide_speedup,
              wide.identical ? "yes" : "NO");

  // --- Forced-scalar differential on the wide batch ----------------------
  const MaskIsa best_isa = ActiveMaskIsa();
  ForceMaskIsa(MaskIsa::kScalar);
  Measured wide_scalar;
  bool scalar_ok = RunPoint(f->store.get(), queries[0].second, wide_subjects,
                            AccessSemantics::kBinding, /*reps=*/1,
                            &wide_scalar);
  ForceMaskIsa(best_isa);
  if (!scalar_ok) return 1;
  const bool scalar_identical =
      wide_scalar.identical && wide_scalar.batch_answers == wide.batch_answers;
  extra_access_io += wide_scalar.extra_access_io;
  std::printf("forced-scalar masks: answers %s SIMD (%s)\n",
              scalar_identical ? "identical to" : "DIVERGED from",
              MaskIsaName(best_isa));

  // --- Shard sweep: scatter-gather serving over 1/2/4/8 shards -----------
  // Each shard scans its owned node-range window on its own replica and
  // buffer pool over a data file with simulated device read latency; the
  // coordinator's per-shard scatter threads overlap those physical reads,
  // so batch throughput scales with shard count even on one core. The
  // total cache budget is held constant across shard counts so the sweep
  // isolates read overlap, not aggregate pool size. Runs before the vacuum
  // point below mutates the fixture: the replicas must mirror the single
  // store the reference answers come from.
  //
  // The scan is `//*`: a tag query's candidates cluster inside one XMark
  // section (regions, people, ...) and with document-order range partitioning
  // that lands nearly all reads on one shard; the wildcard's candidates tile
  // the whole node space, so every shard owns an equal slice of the physical
  // reads — the serving shape sharding exists for.
  PatternTree shard_query;
  if (!ParseXPath("//*", &shard_query).ok()) return 1;
  const std::vector<SubjectId> shard_subjects =
      DrawRoleSubjects(&draw_rng, 128);
  std::vector<std::vector<NodeId>> shard_ref;
  {
    QueryDriverOptions dopts;
    dopts.num_threads = 1;
    dopts.semantics = AccessSemantics::kBinding;
    QueryDriver ref_driver(f->store.get(), dopts);
    auto ref = ref_driver.EvaluateForSubjects(shard_query, shard_subjects);
    if (!ref.ok()) {
      std::fprintf(stderr, "shard reference run failed: %s\n",
                   ref.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < shard_subjects.size(); ++i) {
      shard_ref.push_back(ref->ResultFor(i).answers);
    }
  }
  bool shard_identical = true;
  double shard_one_s = 0;
  double shard_speedup_at_4 = 0;
  std::vector<bench::Json> shard_points;
  std::printf("\nshard sweep: //* x 128-subject batch (binding), %dus "
              "simulated read latency, constant total cache\n",
              kShardReadLatencyUs);
  std::printf("%-7s %8s %11s %9s %11s\n", "shards", "classes", "batch ms",
              "speedup", "identical");
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    ShardFileSet files(shards,
                       std::chrono::microseconds(kShardReadLatencyUs));
    ShardedStoreOptions shopts;
    shopts.num_shards = shards;
    shopts.nok.buffer_pool_pages = std::max<size_t>(16, 128 / shards);
    shopts.attach_wal = false;
    std::unique_ptr<ShardedStore> sharded;
    if (!ShardedStore::Build(f->doc, f->labeling, shopts, files.provider(),
                             &sharded)
             .ok()) {
      std::fprintf(stderr, "shard build failed at %zu shards\n", shards);
      return 1;
    }
    ShardCoordinatorOptions copts;
    copts.semantics = AccessSemantics::kBinding;
    ShardCoordinator coord(sharded.get(), copts);
    double best_s = 0;
    size_t classes = 0;
    bool identical = true;
    Timer timer;
    for (int r = -1; r < reps; ++r) {  // rep -1 = untimed warm-up
      for (size_t s = 0; s < shards; ++s) {
        (void)sharded->shard_store(s)->nok()->buffer_pool()->EvictAll();
      }
      timer.Reset();
      auto br = coord.EvaluateForSubjects(shard_query, shard_subjects);
      double elapsed = timer.ElapsedSeconds();
      if (!br.ok()) {
        std::fprintf(stderr, "shard batch failed at %zu shards: %s\n",
                     shards, br.status().ToString().c_str());
        return 1;
      }
      if (r < 0) continue;
      if (best_s == 0 || elapsed < best_s) best_s = elapsed;
      classes = br->classes.size();
      extra_access_io += br->exec.access_only_fetches;
      for (size_t i = 0; i < shard_subjects.size(); ++i) {
        if (br->ResultFor(i).answers != shard_ref[i]) identical = false;
      }
    }
    shard_identical = shard_identical && identical;
    if (shards == 1) shard_one_s = best_s;
    const double speedup = best_s > 0 ? shard_one_s / best_s : 0.0;
    if (shards == 4) shard_speedup_at_4 = speedup;
    std::printf("%-7zu %8zu %11.2f %8.2fx %11s\n", shards, classes,
                best_s * 1000, speedup, identical ? "yes" : "NO");
    shard_points.push_back(
        bench::Json()
            .Set("shards", static_cast<uint64_t>(shards))
            .Set("classes", static_cast<uint64_t>(classes))
            .Set("batch_ms", best_s * 1000)
            .Set("speedup_vs_one_shard", speedup)
            .Set("identical", identical));
  }

  // --- Vacuum point: fragmented denied stripe, clustered, skipped --------
  // A contiguous third of the document is denied to every subject (the
  // "classified subtree" shape), then fragmented the way incremental
  // maintenance fragments real stores: small per-subject grant windows
  // punched into the stripe embed code transitions into its pages, setting
  // their change bits — the per-class page verdict turns indecisive and the
  // batch scan must load them. The visibility-clustered vacuum re-cuts the
  // layout so the long denied runs between windows get change-bit-clear
  // pages again; those are dead for every class in the batch and the wide
  // scan skips them wholesale.
  const NodeId n = f->store->num_nodes();
  for (SubjectId s = 0; s < kSubjectPool; ++s) {
    if (!f->store->SetRangeAccess(n / 3, 2 * n / 3, s, false).ok()) {
      std::fprintf(stderr, "stripe write failed\n");
      return 1;
    }
  }
  const NodeId stripe_len = 2 * n / 3 - n / 3;
  constexpr NodeId kIslands = 32;
  for (NodeId j = 0; j < kIslands; ++j) {
    const NodeId w = n / 3 + 3 + j * (stripe_len / kIslands);
    const SubjectId s = static_cast<SubjectId>(
        draw_rng.Uniform(kRoleSubjects));
    if (!f->store->SetRangeAccess(w, std::min<NodeId>(w + 5, 2 * n / 3), s,
                                  true).ok()) {
      std::fprintf(stderr, "island write failed\n");
      return 1;
    }
  }
  std::vector<SubjectId> mixed = DrawRoleSubjects(&draw_rng, 128);
  Measured pre_vac;
  if (!RunPoint(f->store.get(), queries[0].second, mixed,
                AccessSemantics::kBinding, reps, &pre_vac)) {
    return 1;
  }
  SecureStore::VacuumOptions vopts;
  vopts.checkpoint_after = false;  // no WAL attached to this store
  SecureStore::VacuumStats vstats;
  if (!f->store->Vacuum(vopts, &vstats).ok()) {
    std::fprintf(stderr, "vacuum failed\n");
    return 1;
  }
  Measured post_vac;
  if (!RunPoint(f->store.get(), queries[0].second, mixed,
                AccessSemantics::kBinding, reps, &post_vac)) {
    return 1;
  }
  all_identical = all_identical && pre_vac.identical && post_vac.identical;
  extra_access_io += pre_vac.extra_access_io + post_vac.extra_access_io;
  const bool vacuum_identical =
      pre_vac.batch_answers == post_vac.batch_answers;
  const uint64_t pre_skipped = pre_vac.batch_exec.pages_skipped;
  const uint64_t post_skipped = post_vac.batch_exec.pages_skipped;
  std::printf("vacuum point: pages %zu -> %zu (homogeneous %zu -> %zu), "
              "batch pages_skipped %llu -> %llu, answers %s\n",
              vstats.pages_before, vstats.pages_after,
              vstats.homogeneous_pages_before, vstats.homogeneous_pages_after,
              static_cast<unsigned long long>(pre_skipped),
              static_cast<unsigned long long>(post_skipped),
              vacuum_identical ? "identical across vacuum" : "DIVERGED");

  std::printf("\nsummary: %.2fx amortized speedup at 128 subjects (binding, "
              "PR-5 baseline %.4fx at 64), answers %s, extra access I/O "
              "%llu, dedup hits %llu\n",
              speedup_at_128, kPr5SpeedupAt64,
              all_identical ? "byte-identical to per-subject" : "DIVERGED",
              static_cast<unsigned long long>(extra_access_io),
              static_cast<unsigned long long>(dedup_hits_total));
  if (speedup_at_128 < kPr5SpeedupAt64) {
    std::printf("WARNING: 128-subject speedup below the PR-5 64-subject "
                "baseline\n");
  }

  bench::WriteBenchJson(
      "multi_subject_throughput",
      bench::Json()
          .Set("bench", "multi_subject_throughput")
          .Set("nodes", nodes)
          .Set("repetitions", reps)
          .Set("subject_pool", static_cast<uint64_t>(kSubjectPool))
          .Set("role_profiles", static_cast<uint64_t>(kProfiles))
          .Set("distinct_profile_subjects",
               static_cast<uint64_t>(kSubjectPool - kRoleSubjects))
          .Set("mask_isa", MaskIsaName(best_isa))
          .Set("all_identical", all_identical)
          .Set("extra_access_io", extra_access_io)
          .Set("class_dedup_hits_total", dedup_hits_total)
          .Set("speedup_at_128_subjects", speedup_at_128)
          .Set("pr5_speedup_at_64_subjects", kPr5SpeedupAt64)
          .Set("shard_query", "//*")
          .Set("shard_read_latency_us",
               static_cast<uint64_t>(kShardReadLatencyUs))
          .Set("shard_speedup_at_4", shard_speedup_at_4)
          .Set("shard_identical", shard_identical)
          .Set("shard_sweep", shard_points)
          .Set("wide_point",
               bench::Json()
                   .Set("subjects",
                        static_cast<uint64_t>(wide_subjects.size()))
                   .Set("classes", static_cast<uint64_t>(wide.classes))
                   .Set("one_wide_scan", wide_is_one_scan)
                   .Set("amortized_speedup", wide_speedup)
                   .Set("identical", wide.identical)
                   .Set("forced_scalar_identical", scalar_identical))
          .Set("vacuum_point",
               bench::Json()
                   .Set("subjects", static_cast<uint64_t>(mixed.size()))
                   .Set("pages_before",
                        static_cast<uint64_t>(vstats.pages_before))
                   .Set("pages_after",
                        static_cast<uint64_t>(vstats.pages_after))
                   .Set("homogeneous_pages_before",
                        static_cast<uint64_t>(vstats.homogeneous_pages_before))
                   .Set("homogeneous_pages_after",
                        static_cast<uint64_t>(vstats.homogeneous_pages_after))
                   .Set("batch_pages_skipped_pre_vacuum", pre_skipped)
                   .Set("batch_pages_skipped_post_vacuum", post_skipped)
                   .Set("identical_across_vacuum", vacuum_identical))
          .Set("sweep", points));

  int exit_code = 0;
  if (!all_identical) exit_code = 1;
  if (extra_access_io != 0) exit_code = 1;
  if (!scalar_identical) exit_code = 1;
  if (!vacuum_identical) exit_code = 1;
  if (post_skipped == 0) {
    std::printf("FAIL: post-vacuum mixed batch skipped no pages\n");
    exit_code = 1;
  }
  if (dedup_hits_total == 0) {
    std::printf("FAIL: class_dedup_hits never moved across the sweep\n");
    exit_code = 1;
  }
  if (!wide_is_one_scan) {
    std::printf("FAIL: wide point did not exceed 64 classes\n");
    exit_code = 1;
  }
  if (!smoke && speedup_at_128 < kPr5SpeedupAt64) exit_code = 1;
  if (!shard_identical) {
    std::printf("FAIL: shard sweep answers diverged from the single store\n");
    exit_code = 1;
  }
  if (!smoke && shard_speedup_at_4 < kShardSpeedupFloor) {
    std::printf("FAIL: 4-shard speedup %.2fx below the %.2fx floor\n",
                shard_speedup_at_4, kShardSpeedupFloor);
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
