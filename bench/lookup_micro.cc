// Microbenchmarks for the access-check hot path of Section 3.3: in-memory
// header fast path vs in-page transition search, logical CodeAt binary
// search, codebook interning, full secure vs non-secure NPM matching, and
// the subject-compiled view (SubjectView) against the direct codebook path.
//
// Two layers:
//  - a manual probe (runs first, also in --smoke mode) that times the
//    innermost per-node ACCESS check through the codebook bit probe vs the
//    compiled view's byte table and writes BENCH_lookup_micro.json,
//  - the google-benchmark suite for the surrounding machinery (skipped in
//    --smoke mode so the CI smoke target stays fast).

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "core/subject_view.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

struct Fixture {
  Document doc;
  DolLabeling labeling;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

Fixture* GetFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    XMarkOptions xopts;
    xopts.target_nodes = 100000;
    (void)GenerateXMark(xopts, &fx->doc);
    SyntheticAclOptions aopts;
    aopts.accessibility_ratio = 0.5;
    IntervalAccessMap map = GenerateSyntheticAclMap(fx->doc, 16, aopts);
    fx->labeling = DolLabeling::BuildFromEvents(
        map.num_nodes(), map.InitialAcl(), map.CollectEvents());
    NokStoreOptions sopts;
    sopts.buffer_pool_pages = 4096;  // fully cached: measure CPU path
    (void)SecureStore::Build(fx->doc, fx->labeling, &fx->file, sopts,
                             &fx->store);
    return fx;
  }();
  return f;
}

void BM_AccessCheckCached(benchmark::State& state) {
  Fixture* f = GetFixture();
  Rng rng(1);
  for (auto _ : state) {
    NodeId n = static_cast<NodeId>(rng.Uniform(f->store->num_nodes()));
    auto r = f->store->Accessible(7, n);
    benchmark::DoNotOptimize(r.ok() && *r);
  }
}
BENCHMARK(BM_AccessCheckCached);

void BM_LogicalCodeAt(benchmark::State& state) {
  Fixture* f = GetFixture();
  Rng rng(2);
  for (auto _ : state) {
    NodeId n = static_cast<NodeId>(rng.Uniform(f->labeling.num_nodes()));
    benchmark::DoNotOptimize(f->labeling.CodeAt(n));
  }
}
BENCHMARK(BM_LogicalCodeAt);

void BM_CodebookIntern(benchmark::State& state) {
  Codebook cb(static_cast<size_t>(state.range(0)));
  Rng rng(3);
  BitVector acl(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    acl.Set(rng.Uniform(acl.size()), rng.Bernoulli(0.5));
    benchmark::DoNotOptimize(cb.Intern(acl));
  }
}
BENCHMARK(BM_CodebookIntern)->Arg(64)->Arg(1024)->Arg(8639);

void BM_PageHeaderSkipTest(benchmark::State& state) {
  Fixture* f = GetFixture();
  Rng rng(4);
  size_t pages = f->store->nok()->num_pages();
  for (auto _ : state) {
    size_t p = rng.Uniform(pages);
    benchmark::DoNotOptimize(f->store->PageWhollyInaccessible(p, 7));
  }
}
BENCHMARK(BM_PageHeaderSkipTest);

void BM_PageVerdictView(benchmark::State& state) {
  Fixture* f = GetFixture();
  auto view = *f->store->View(7);
  Rng rng(4);
  size_t pages = view->num_pages();
  for (auto _ : state) {
    size_t p = rng.Uniform(pages);
    benchmark::DoNotOptimize(view->PageWhollyDead(p));
  }
}
BENCHMARK(BM_PageVerdictView);

void BM_TwigQuery(benchmark::State& state) {
  Fixture* f = GetFixture();
  QueryEvaluator eval(f->store.get());
  EvalOptions opts;
  opts.semantics = state.range(0) == 0 ? AccessSemantics::kNone
                                       : AccessSemantics::kBinding;
  opts.use_view = state.range(0) == 2;
  for (auto _ : state) {
    auto r = eval.EvaluateXPath(
        "/site/regions/africa/item[location][name][quantity]", opts);
    benchmark::DoNotOptimize(r.ok() ? r->answers.size() : 0);
  }
}
BENCHMARK(BM_TwigQuery)->Arg(0)->Arg(1)->Arg(2);

// --- Manual probe: per-node ACCESS check, codebook vs compiled view ------
//
// The production-shaped case: a multi-user store whose codebook has many
// distinct ACLs over many subjects (the paper's Livelink dataset interned
// 8639 ACLs). The codebook path chases two dependent pointers per check
// (entry vector -> per-entry ACL words), so at this size every probe
// misses cache; the compiled view's byte table stays resident.

struct ProbeResult {
  double codebook_ns = 0;
  double view_ns = 0;
  double speedup = 0;
  size_t entries = 0;
  size_t subjects = 0;
  uint64_t iterations = 0;
};

ProbeResult RunAccessCheckProbe(bool smoke) {
  constexpr size_t kSubjects = 1024;
  const size_t target_entries = smoke ? 1024 : 8639;
  Codebook cb(kSubjects);
  Rng rng(99);
  BitVector acl(kSubjects);
  while (cb.size() < target_entries) {
    for (int flips = 0; flips < 8; ++flips) {
      acl.Set(rng.Uniform(kSubjects), rng.Bernoulli(0.5));
    }
    (void)cb.Intern(acl);
  }
  const SubjectId subject = 7;
  SubjectView view =
      SubjectView::Compile(cb, std::vector<NokStore::PageInfo>(), subject);

  // Pre-drawn random code sequence, power-of-two length so the replay
  // costs one mask per lookup in both variants.
  constexpr size_t kSeqLen = 1 << 16;
  std::vector<uint32_t> codes(kSeqLen);
  for (uint32_t& c : codes) {
    c = static_cast<uint32_t>(rng.Uniform(cb.size()));
  }

  const uint64_t iters = smoke ? (1u << 21) : (1u << 25);
  // The next probed code depends on the previous check's result, so the
  // loop measures the check's latency chain (what Npm's serial
  // child-by-child ACCESS checks pay), not peak pipelined load throughput.
  auto run = [&](auto&& check) {
    uint64_t acc = 0;
    size_t idx = 0;
    Timer timer;
    for (uint64_t i = 0; i < iters; ++i) {
      uint64_t v = check(codes[idx]);
      acc += v;
      idx = (idx + 1 + v * 13) & (kSeqLen - 1);
    }
    double seconds = timer.ElapsedSeconds();
    benchmark::DoNotOptimize(acc);
    return seconds / static_cast<double>(iters) * 1e9;
  };

  ProbeResult r;
  r.entries = cb.size();
  r.subjects = kSubjects;
  r.iterations = iters;
  // Warm both paths once, then measure.
  (void)run([&](uint32_t c) { return cb.Accessible(c, subject) ? 1 : 0; });
  (void)run([&](uint32_t c) { return view.CodeAccessible(c) ? 1 : 0; });
  r.codebook_ns =
      run([&](uint32_t c) { return cb.Accessible(c, subject) ? 1 : 0; });
  r.view_ns = run([&](uint32_t c) { return view.CodeAccessible(c) ? 1 : 0; });
  r.speedup = r.view_ns > 0 ? r.codebook_ns / r.view_ns : 0;
  return r;
}

int RunManualProbes(bool smoke) {
  bench::Banner(std::string("Per-node ACCESS check: codebook bit probe vs "
                            "subject-compiled view") +
                (smoke ? " [smoke]" : ""));
  ProbeResult r = RunAccessCheckProbe(smoke);
  std::printf("codebook entries=%zu subjects=%zu iterations=%llu\n",
              r.entries, r.subjects,
              static_cast<unsigned long long>(r.iterations));
  std::printf("codebook path: %.2f ns/check\n", r.codebook_ns);
  std::printf("compiled view: %.2f ns/check\n", r.view_ns);
  std::printf("speedup:       %.2fx\n", r.speedup);
  if (r.speedup < 2.0) {
    std::printf("WARNING: below the 2x acceptance threshold\n");
  }
  bench::WriteBenchJson(
      "lookup_micro",
      bench::Json()
          .Set("bench", "lookup_micro")
          .Set("smoke", smoke)
          .Set("codebook_entries", static_cast<uint64_t>(r.entries))
          .Set("subjects", static_cast<uint64_t>(r.subjects))
          .Set("iterations", r.iterations)
          .Set("codebook_ns_per_check", r.codebook_ns)
          .Set("view_ns_per_check", r.view_ns)
          .Set("view_speedup", r.speedup));
  return 0;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip --smoke before google-benchmark sees the arguments.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  int rc = secxml::RunManualProbes(smoke);
  if (rc != 0 || smoke) return rc;  // smoke: manual probe only

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
