// Microbenchmarks (google-benchmark) for the access-check hot path of
// Section 3.3: in-memory header fast path vs in-page transition search,
// logical CodeAt binary search, codebook interning, and full secure vs
// non-secure NPM matching.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

struct Fixture {
  Document doc;
  DolLabeling labeling;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

Fixture* GetFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    XMarkOptions xopts;
    xopts.target_nodes = 100000;
    (void)GenerateXMark(xopts, &fx->doc);
    SyntheticAclOptions aopts;
    aopts.accessibility_ratio = 0.5;
    IntervalAccessMap map = GenerateSyntheticAclMap(fx->doc, 16, aopts);
    fx->labeling = DolLabeling::BuildFromEvents(
        map.num_nodes(), map.InitialAcl(), map.CollectEvents());
    NokStoreOptions sopts;
    sopts.buffer_pool_pages = 4096;  // fully cached: measure CPU path
    (void)SecureStore::Build(fx->doc, fx->labeling, &fx->file, sopts,
                             &fx->store);
    return fx;
  }();
  return f;
}

void BM_AccessCheckCached(benchmark::State& state) {
  Fixture* f = GetFixture();
  Rng rng(1);
  for (auto _ : state) {
    NodeId n = static_cast<NodeId>(rng.Uniform(f->store->num_nodes()));
    auto r = f->store->Accessible(7, n);
    benchmark::DoNotOptimize(r.ok() && *r);
  }
}
BENCHMARK(BM_AccessCheckCached);

void BM_LogicalCodeAt(benchmark::State& state) {
  Fixture* f = GetFixture();
  Rng rng(2);
  for (auto _ : state) {
    NodeId n = static_cast<NodeId>(rng.Uniform(f->labeling.num_nodes()));
    benchmark::DoNotOptimize(f->labeling.CodeAt(n));
  }
}
BENCHMARK(BM_LogicalCodeAt);

void BM_CodebookIntern(benchmark::State& state) {
  Codebook cb(static_cast<size_t>(state.range(0)));
  Rng rng(3);
  BitVector acl(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    acl.Set(rng.Uniform(acl.size()), rng.Bernoulli(0.5));
    benchmark::DoNotOptimize(cb.Intern(acl));
  }
}
BENCHMARK(BM_CodebookIntern)->Arg(64)->Arg(1024)->Arg(8639);

void BM_PageHeaderSkipTest(benchmark::State& state) {
  Fixture* f = GetFixture();
  Rng rng(4);
  size_t pages = f->store->nok()->num_pages();
  for (auto _ : state) {
    size_t p = rng.Uniform(pages);
    benchmark::DoNotOptimize(f->store->PageWhollyInaccessible(p, 7));
  }
}
BENCHMARK(BM_PageHeaderSkipTest);

void BM_TwigQuery(benchmark::State& state) {
  Fixture* f = GetFixture();
  QueryEvaluator eval(f->store.get());
  EvalOptions opts;
  opts.semantics = state.range(0) == 0 ? AccessSemantics::kNone
                                       : AccessSemantics::kBinding;
  for (auto _ : state) {
    auto r = eval.EvaluateXPath(
        "/site/regions/africa/item[location][name][quantity]", opts);
    benchmark::DoNotOptimize(r.ok() ? r->answers.size() : 0);
  }
}
BENCHMARK(BM_TwigQuery)->Arg(0)->Arg(1);

}  // namespace
}  // namespace secxml

BENCHMARK_MAIN();
