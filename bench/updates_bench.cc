// Ablation for Section 3.4: update costs of the physically embedded DOL.
//  - single-node accessibility update: one page read + one page write;
//  - subtree accessibility update of N nodes with B records per page:
//    ~ceil(N/B) page reads and writes (update locality);
//  - Proposition 1: each update adds at most 2 transition nodes;
//  - subject addition/removal: codebook-only, zero page I/O.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 150000);
  bench::Banner("Section 3.4 ablation: DOL update costs (" +
                std::to_string(nodes) + "-node XMark, 8 subjects)");

  XMarkOptions xopts;
  xopts.target_nodes = nodes;
  Document doc;
  if (!GenerateXMark(xopts, &doc).ok()) return 1;
  SyntheticAclOptions aopts;
  aopts.accessibility_ratio = 0.5;
  IntervalAccessMap map = GenerateSyntheticAclMap(doc, 8, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  if (!SecureStore::Build(doc, labeling, &file, {}, &store).ok()) return 1;
  const uint32_t records_per_page =
      store->nok()->page_infos()[0].num_records;
  std::printf("store: %zu pages, %u records/page\n",
              store->nok()->num_pages(), records_per_page);
  Rng rng(5);
  BufferPool* pool = store->nok()->buffer_pool();

  // Single-node updates.
  {
    uint64_t reads = 0, writes = 0;
    double total_ms = 0;
    constexpr int kOps = 200;
    Timer timer;
    for (int i = 0; i < kOps; ++i) {
      NodeId n = static_cast<NodeId>(rng.Uniform(store->num_nodes()));
      SubjectId s = static_cast<SubjectId>(rng.Uniform(8));
      (void)pool->EvictAll();
      pool->mutable_stats()->Reset();
      timer.Reset();
      Status st = store->SetNodeAccess(n, s, rng.Bernoulli(0.5));
      if (!st.ok()) return 1;
      if (!pool->FlushAll().ok()) return 1;
      total_ms += timer.ElapsedSeconds() * 1000;
      reads += store->io_stats().page_reads;
      writes += store->io_stats().page_writes;
    }
    std::printf("\nsingle-node update (avg over %d ops): %.2f page reads, "
                "%.2f page writes, %.3f ms\n", kOps,
                static_cast<double>(reads) / kOps,
                static_cast<double>(writes) / kOps, total_ms / kOps);
    std::printf("  (paper: one page read followed by one page write)\n");
  }

  // Subtree updates grouped by subtree size.
  std::printf("\nsubtree update cost vs ceil(N/B):\n");
  std::printf("%-14s %-12s %-12s %-12s %-10s\n", "subtree nodes", "ceil(N/B)",
              "page reads", "page writes", "ms");
  for (uint32_t want : {100u, 1000u, 5000u, 20000u}) {
    // Find a subtree of roughly the wanted size.
    NodeId root = kInvalidNode;
    for (NodeId x = 0; x < doc.NumNodes(); ++x) {
      if (doc.SubtreeSize(x) >= want && doc.SubtreeSize(x) < want * 2) {
        root = x;
        break;
      }
    }
    if (root == kInvalidNode) continue;
    uint32_t size = doc.SubtreeSize(root);
    (void)pool->EvictAll();
    pool->mutable_stats()->Reset();
    Timer timer;
    if (!store->SetSubtreeAccess(root, 3, false).ok()) return 1;
    if (!pool->FlushAll().ok()) return 1;
    double ms = timer.ElapsedSeconds() * 1000;
    std::printf("%-14u %-12u %-12llu %-12llu %-10.3f\n", size,
                (size + records_per_page - 1) / records_per_page,
                static_cast<unsigned long long>(store->io_stats().page_reads),
                static_cast<unsigned long long>(store->io_stats().page_writes),
                ms);
  }

  // Proposition 1 on the logical labeling.
  {
    DolLabeling logical = labeling;
    Rng prng(11);
    size_t max_delta = 0;
    constexpr int kOps = 2000;
    for (int i = 0; i < kOps; ++i) {
      size_t before = logical.num_transitions();
      NodeId begin = static_cast<NodeId>(prng.Uniform(logical.num_nodes()));
      NodeId len = 1 + static_cast<NodeId>(prng.Uniform(2000));
      NodeId end = std::min<NodeId>(begin + len, logical.num_nodes());
      Status st = logical.SetRangeAccess(
          begin, end, static_cast<SubjectId>(prng.Uniform(8)),
          prng.Bernoulli(0.5));
      if (!st.ok()) return 1;
      size_t after = logical.num_transitions();
      if (after > before) max_delta = std::max(max_delta, after - before);
    }
    std::printf("\nProposition 1: max transition-count increase over %d "
                "random range updates: %zu (bound: 2)\n", kOps, max_delta);
  }

  // Structural updates: delete and insert subtrees, measuring page traffic.
  {
    std::printf("\nstructural updates (page I/O per operation):\n");
    std::printf("%-26s %-12s %-12s %-12s %-10s\n", "operation", "nodes",
                "page reads", "page writes", "ms");
    // Delete a ~1000-node subtree.
    NodeId del_root = kInvalidNode;
    for (NodeId x = 1; x < store->num_nodes(); ++x) {
      auto rec = store->nok()->Record(x);
      if (rec.ok() && rec->subtree_size >= 300 && rec->subtree_size < 5000) {
        del_root = x;
        break;
      }
    }
    if (del_root != kInvalidNode) {
      uint32_t size = store->nok()->Record(del_root)->subtree_size;
      (void)pool->EvictAll();
      pool->mutable_stats()->Reset();
      Timer timer;
      if (!store->DeleteSubtree(del_root).ok()) return 1;
      if (!pool->FlushAll().ok()) return 1;
      std::printf("%-26s %-12u %-12llu %-12llu %-10.3f\n", "delete subtree",
                  size,
                  static_cast<unsigned long long>(store->io_stats().page_reads),
                  static_cast<unsigned long long>(
                      store->io_stats().page_writes),
                  timer.ElapsedSeconds() * 1000);
    }
    // Insert a ~200-node labeled fragment.
    XMarkOptions fopts;
    fopts.target_nodes = 200;
    fopts.seed = 9;
    Document frag;
    if (!GenerateXMark(fopts, &frag).ok()) return 1;
    DenseAccessMap fmap(static_cast<NodeId>(frag.NumNodes()), 8, true);
    DolLabeling flab = DolLabeling::Build(fmap);
    (void)pool->EvictAll();
    pool->mutable_stats()->Reset();
    Timer timer;
    auto pos = store->InsertSubtree(0, kInvalidNode, frag, flab);
    if (!pos.ok()) return 1;
    if (!pool->FlushAll().ok()) return 1;
    std::printf("%-26s %-12zu %-12llu %-12llu %-10.3f\n",
                "insert labeled fragment", frag.NumNodes(),
                static_cast<unsigned long long>(store->io_stats().page_reads),
                static_cast<unsigned long long>(store->io_stats().page_writes),
                timer.ElapsedSeconds() * 1000);
  }

  // Lazy codebook maintenance after subject churn (Section 3.4).
  {
    (void)store->AddSubjectLike(0);
    if (!store->RemoveSubject(1).ok()) return 1;
    size_t dups = store->codebook().size() - store->codebook().CountDistinct();
    (void)pool->EvictAll();
    pool->mutable_stats()->Reset();
    Timer timer;
    if (!store->CompactCodebook().ok()) return 1;
    if (!pool->FlushAll().ok()) return 1;
    std::printf("\ncodebook compaction: removed %zu duplicate entries in "
                "%.2f ms (%llu page reads, %llu page writes over %zu pages)\n",
                dups, timer.ElapsedSeconds() * 1000,
                static_cast<unsigned long long>(store->io_stats().page_reads),
                static_cast<unsigned long long>(store->io_stats().page_writes),
                store->nok()->num_pages());
  }

  // Subject management is codebook-only.
  {
    (void)pool->EvictAll();
    pool->mutable_stats()->Reset();
    Timer timer;
    auto added_or = store->AddSubject(false);
    if (!added_or.ok()) return 1;
    SubjectId added = *added_or;
    auto cloned_or = store->AddSubjectLike(0);
    if (!cloned_or.ok()) return 1;
    SubjectId cloned = *cloned_or;
    if (!store->RemoveSubject(added).ok()) return 1;
    double ms = timer.ElapsedSeconds() * 1000;
    std::printf("\nsubject add/clone/remove (ids %u, %u): %.3f ms, %llu page "
                "reads, %llu page writes (codebook-only)\n", added, cloned, ms,
                static_cast<unsigned long long>(store->io_stats().page_reads),
                static_cast<unsigned long long>(store->io_stats().page_writes));
  }
  return 0;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
