// Reproduces Figure 4(b): number of DOL transition nodes vs CAM labels for
// an average single user, per action mode, on the LiveLink surrogate.
//
// Paper shape: in the worst modes DOL carries 20-25% more nodes than CAM;
// in the remaining modes the two are about equal.

#include <cstdio>

#include "baseline/cam.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/dol_labeling.h"
#include "workload/livelink_surrogate.h"

namespace secxml {
namespace {

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 120000);
  bench::Banner("Figure 4(b): DOL vs CAM per action mode, average single "
                "LiveLink user (" + std::to_string(nodes) + " nodes)");

  LiveLinkOptions opts;
  opts.target_nodes = nodes;
  LiveLinkWorkload w;
  Status st = GenerateLiveLink(opts, &w);
  if (!st.ok()) {
    std::fprintf(stderr, "livelink generation failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("document: %zu nodes, %zu subjects (%zu users, %zu groups), "
              "avg depth %.1f, max depth %u\n",
              w.doc.NumNodes(), w.num_subjects(), w.num_users, w.num_groups,
              w.doc.AvgDepth(), w.doc.MaxDepth());

  constexpr int kSampledUsers = 15;
  Rng rng(99);
  std::printf("\n%-6s %12s %12s %14s\n", "mode", "DOL(avg)", "CAM(avg)",
              "DOL/CAM");
  for (uint32_t m = 0; m < w.modes.size(); ++m) {
    const IntervalAccessMap& map = w.modes[m];
    double dol_total = 0, cam_total = 0;
    for (int i = 0; i < kSampledUsers; ++i) {
      // Sample users who actually hold rights in this mode (a user with no
      // rights has a trivial one-transition DOL and an empty CAM, which
      // only adds noise to the average).
      SubjectId u = 0;
      for (int attempt = 0; attempt < 200; ++attempt) {
        u = static_cast<SubjectId>(rng.Uniform(w.num_users));
        if (!map.SubjectIntervals(u).empty()) break;
      }
      std::vector<SubjectId> one = {u};
      DolLabeling dol = DolLabeling::BuildFromEvents(
          map.num_nodes(), map.InitialAcl(&one), map.CollectEvents(&one));
      Cam cam = Cam::Build(
          w.doc, [&map, u](NodeId x) { return map.Accessible(u, x); });
      dol_total += static_cast<double>(dol.num_transitions());
      cam_total += static_cast<double>(cam.num_labels());
    }
    double dol_avg = dol_total / kSampledUsers;
    double cam_avg = cam_total / kSampledUsers;
    std::printf("%-6u %12.1f %12.1f %14.2f\n", m, dol_avg, cam_avg,
                cam_avg > 0 ? dol_avg / cam_avg : 0.0);
  }
  std::printf("\n(paper: DOL within 1.0x-1.25x of CAM across the ten modes)\n");
  return 0;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
