// Online-update throughput under the epoch-snapshot layer (DESIGN.md §11):
//
//  1. WAL-logged update throughput (updates/s) for subtree ACL toggles,
//     single-writer, no concurrent readers.
//  2. Reader latency (p50/p95) while a writer streams the same update storm
//     concurrently, against the idle-reader baseline — the price queries
//     pay for snapshot isolation instead of a stop-the-world lock.
//  3. Incremental view maintenance vs full recompilation: time to bring
//     every subject's cached SubjectView to the new epoch via the commit's
//     page-delta patch (Proposition 1 keeps the delta small) vs compiling
//     all views from scratch, reported as a speedup.
//
// The zero-extra-I/O invariant (`extra_access_io == 0`) is hard-asserted
// across every reader query, storm or no storm. argv: [nodes] [--smoke];
// --smoke shrinks the scale for CI (wired as the update_throughput_smoke
// ctest under -L perf).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kSubjects = 8;
constexpr int kReaderThreads = 2;

struct Fixture {
  Document doc;
  MemPagedFile data;
  MemPagedFile wal;
  std::unique_ptr<SecureStore> store;
  std::vector<NodeId> toggle_roots;
  std::vector<PatternTree> queries;
};

std::unique_ptr<Fixture> Build(uint32_t nodes) {
  auto f = std::make_unique<Fixture>();
  XMarkOptions xopts;
  xopts.seed = 20260808;
  xopts.target_nodes = nodes;
  if (!GenerateXMark(xopts, &f->doc).ok()) return nullptr;
  SyntheticAclOptions aopts;
  aopts.seed = 31337;
  aopts.accessibility_ratio = 0.65;
  IntervalAccessMap map = GenerateSyntheticAclMap(f->doc, kSubjects, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 64;
  if (!SecureStore::BuildWithWal(f->doc, labeling, &f->data, &f->wal, sopts,
                                 &f->store)
           .ok()) {
    return nullptr;
  }
  // Mid-size subtrees scattered through the document: each toggle touches a
  // handful of consecutive pages (the Proposition 1 regime).
  for (NodeId x = 1; x < f->doc.NumNodes(); ++x) {
    if (f->doc.SubtreeSize(x) >= 40 && f->doc.SubtreeSize(x) <= 200) {
      f->toggle_roots.push_back(x);
      x += f->doc.SubtreeSize(x);  // disjoint
    }
  }
  for (uint64_t seed : {3u, 11u, 27u}) {
    QueryGenOptions qopts;
    qopts.seed = seed;
    qopts.max_nodes = 3;
    f->queries.push_back(GenerateTwigQuery(f->doc, qopts));
  }
  return f;
}

Status ApplyToggle(Fixture* f, uint64_t i) {
  NodeId root = f->toggle_roots[i % f->toggle_roots.size()];
  return f->store->SetSubtreeAccess(
      root, static_cast<SubjectId>(i % kSubjects), i % 2 == 0);
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

int Run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  uint32_t nodes = bench::ScaleArg(argc, argv, smoke ? 6000 : 40000);
  const int updates = smoke ? 200 : 1500;
  const int reader_iters = smoke ? 60 : 400;

  bench::Banner("Online updates: epoch snapshots, WAL, incremental view "
                "maintenance (" + std::to_string(nodes) + "-node XMark, " +
                std::to_string(kSubjects) + " subjects)");

  auto f = Build(nodes);
  if (f == nullptr || f->toggle_roots.empty()) {
    std::fprintf(stderr, "fixture build failed\n");
    return 1;
  }

  std::atomic<uint64_t> extra_access_io{0};

  // --- 1. Update throughput, no readers -------------------------------
  double updates_per_sec = 0;
  {
    Timer timer;
    for (int i = 0; i < updates; ++i) {
      if (!ApplyToggle(f.get(), static_cast<uint64_t>(i)).ok()) return 1;
    }
    double s = timer.ElapsedSeconds();
    updates_per_sec = s > 0 ? updates / s : 0;
    std::printf("\nupdate throughput: %d WAL-logged subtree toggles in "
                "%.2f ms  ->  %.0f updates/s\n",
                updates, s * 1000, updates_per_sec);
  }

  // --- 2. Reader latency, idle vs under an update storm ----------------
  auto reader_pass = [&](std::atomic<bool>* stop,
                         std::vector<double>* latencies_ms) -> bool {
    QueryEvaluator eval(f->store.get());
    Rng rng(991);
    for (int i = 0; i < reader_iters; ++i) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
      EvalOptions opts;
      opts.semantics =
          i % 2 == 0 ? AccessSemantics::kBinding : AccessSemantics::kView;
      opts.subject = static_cast<SubjectId>(rng.Uniform(kSubjects));
      Timer t;
      auto r = eval.Evaluate(f->queries[i % f->queries.size()], opts);
      if (!r.ok()) return false;
      latencies_ms->push_back(t.ElapsedSeconds() * 1000);
      extra_access_io.fetch_add(r->exec.access_only_fetches,
                                std::memory_order_relaxed);
    }
    return true;
  };

  std::vector<double> idle_lat;
  if (!reader_pass(nullptr, &idle_lat)) return 1;
  double idle_p50 = Percentile(&idle_lat, 0.5);
  double idle_p95 = Percentile(&idle_lat, 0.95);

  std::vector<std::vector<double>> storm_lat(kReaderThreads);
  double storm_updates_per_sec = 0;
  {
    std::atomic<bool> stop{false};
    std::atomic<bool> reader_ok{true};
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaderThreads; ++t) {
      readers.emplace_back([&, t] {
        if (!reader_pass(&stop, &storm_lat[static_cast<size_t>(t)])) {
          reader_ok.store(false);
        }
      });
    }
    Timer timer;
    int storm_updates = 0;
    for (; storm_updates < updates; ++storm_updates) {
      if (!ApplyToggle(f.get(), static_cast<uint64_t>(storm_updates)).ok()) {
        stop.store(true);
        for (auto& th : readers) th.join();
        return 1;
      }
    }
    double s = timer.ElapsedSeconds();
    stop.store(true);
    for (auto& th : readers) th.join();
    if (!reader_ok.load()) return 1;
    storm_updates_per_sec = s > 0 ? storm_updates / s : 0;
  }
  std::vector<double> storm_all;
  for (auto& v : storm_lat) {
    storm_all.insert(storm_all.end(), v.begin(), v.end());
  }
  double storm_p50 = Percentile(&storm_all, 0.5);
  double storm_p95 = Percentile(&storm_all, 0.95);
  std::printf("reader latency   idle: p50 %.3f ms  p95 %.3f ms  (%zu queries)"
              "\n          under storm: p50 %.3f ms  p95 %.3f ms  (%zu "
              "queries, writer at %.0f updates/s)\n",
              idle_p50, idle_p95, idle_lat.size(), storm_p50, storm_p95,
              storm_all.size(), storm_updates_per_sec);

  // --- 3. Incremental patch vs full recompile --------------------------
  // Warm every subject's view, then measure per-update maintenance cost:
  // patched = update + first View() per subject at the new epoch (O(delta)
  // patch); recompiled = same, after dropping the caches (full compile with
  // changed-page I/O).
  const int maint_reps = smoke ? 30 : 200;
  auto views_ready = [&]() -> bool {
    for (SubjectId s = 0; s < kSubjects; ++s) {
      if (!f->store->View(s).ok()) return false;
    }
    return true;
  };
  if (!views_ready()) return 1;
  double patched_s = 0, recompiled_s = 0;
  {
    Timer timer;
    for (int i = 0; i < maint_reps; ++i) {
      if (!ApplyToggle(f.get(), static_cast<uint64_t>(i)).ok()) return 1;
      if (!views_ready()) return 1;  // served from the patched cache
    }
    patched_s = timer.ElapsedSeconds();
  }
  {
    Timer timer;
    for (int i = 0; i < maint_reps; ++i) {
      if (!ApplyToggle(f.get(), static_cast<uint64_t>(i)).ok()) return 1;
      f->store->DropVisibilityCaches();
      if (!views_ready()) return 1;  // full compile, every subject
    }
    recompiled_s = timer.ElapsedSeconds();
  }
  double patch_speedup = patched_s > 0 ? recompiled_s / patched_s : 0;
  SecureStore::UpdateStats us = f->store->update_stats();
  std::printf("view maintenance: %d updates x %zu subjects  patched %.2f ms"
              "  recompiled %.2f ms  ->  %.2fx\n",
              maint_reps, kSubjects, patched_s * 1000, recompiled_s * 1000,
              patch_speedup);
  std::printf("update stats: %llu applied, %llu epochs, %llu views patched, "
              "%llu dropped, %llu columns patched\n",
              static_cast<unsigned long long>(us.updates_applied),
              static_cast<unsigned long long>(us.epochs_advanced),
              static_cast<unsigned long long>(us.views_patched),
              static_cast<unsigned long long>(us.views_dropped),
              static_cast<unsigned long long>(us.columns_patched));
  uint64_t extra_io = extra_access_io.load();
  std::printf("extra access I/O across all reader queries: %llu\n",
              static_cast<unsigned long long>(extra_io));

  bench::WriteBenchJson(
      "update_throughput",
      bench::Json()
          .Set("bench", "update_throughput")
          .Set("nodes", nodes)
          .Set("subjects", static_cast<uint64_t>(kSubjects))
          .Set("updates", static_cast<uint64_t>(updates))
          .Set("updates_per_sec", updates_per_sec)
          .Set("updates_per_sec_under_readers", storm_updates_per_sec)
          .Set("reader_p50_ms_idle", idle_p50)
          .Set("reader_p95_ms_idle", idle_p95)
          .Set("reader_p50_ms_under_storm", storm_p50)
          .Set("reader_p95_ms_under_storm", storm_p95)
          .Set("view_patch_vs_recompile_speedup", patch_speedup)
          .Set("views_patched", us.views_patched)
          .Set("views_dropped", us.views_dropped)
          .Set("columns_patched", us.columns_patched)
          .Set("wal_records_appended", f->store->wal()->stats().records_appended)
          .Set("extra_access_io", extra_io)
          .Set("active_pins_at_exit",
               static_cast<uint64_t>(f->store->epochs()->active_pins())));

  // Hard gates: zero extra access I/O, zero leaked pins, and the patch
  // path must actually have run.
  int exit_code = 0;
  if (extra_io != 0) {
    std::fprintf(stderr, "FAIL: extra_access_io = %llu (must be 0)\n",
                 static_cast<unsigned long long>(extra_io));
    exit_code = 1;
  }
  if (f->store->epochs()->active_pins() != 0) {
    std::fprintf(stderr, "FAIL: leaked epoch pins\n");
    exit_code = 1;
  }
  if (us.views_patched == 0) {
    std::fprintf(stderr, "FAIL: incremental view patching never ran\n");
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
