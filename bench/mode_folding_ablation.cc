// Ablation for the paper's multi-mode remark (Section 2): action modes can
// be handled "in a similar way for multiple users" by folding (mode,
// subject) into pseudo-subjects of one DOL. Compares ten per-mode DOLs
// against one folded DOL on the LiveLink surrogate.

#include <cstdio>

#include "bench_util.h"
#include "core/dol_labeling.h"
#include "core/mode_folding.h"
#include "workload/livelink_surrogate.h"

namespace secxml {
namespace {

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 120000);
  bench::Banner("Ablation: per-mode DOLs vs one folded multi-mode DOL "
                "(LiveLink surrogate, " + std::to_string(nodes) + " nodes)");

  LiveLinkOptions opts;
  opts.target_nodes = nodes;
  LiveLinkWorkload w;
  if (!GenerateLiveLink(opts, &w).ok()) return 1;

  size_t total_transitions = 0, total_entries = 0, total_bytes = 0;
  std::printf("%-8s %14s %18s %14s\n", "mode", "transitions",
              "codebook entries", "total bytes");
  for (size_t m = 0; m < w.modes.size(); ++m) {
    DolLabeling dol = DolLabeling::BuildFromEvents(w.modes[m].num_nodes(),
                                                   w.modes[m].InitialAcl(),
                                                   w.modes[m].CollectEvents());
    DolLabeling::Stats s = dol.ComputeStats();
    std::printf("%-8zu %14zu %18zu %14zu\n", m, s.num_transitions,
                s.codebook_entries, s.total_bytes);
    total_transitions += s.num_transitions;
    total_entries += s.codebook_entries;
    total_bytes += s.total_bytes;
  }
  std::printf("%-8s %14zu %18zu %14zu\n", "sum", total_transitions,
              total_entries, total_bytes);

  std::vector<const IntervalAccessMap*> modes;
  for (const auto& m : w.modes) modes.push_back(&m);
  auto folded = FoldModes(modes);
  if (!folded.ok()) return 1;
  DolLabeling folded_dol = DolLabeling::BuildFromEvents(
      folded->num_nodes(), folded->InitialAcl(), folded->CollectEvents());
  DolLabeling::Stats fs = folded_dol.ComputeStats();
  std::printf("%-8s %14zu %18zu %14zu   (%zu pseudo-subjects)\n", "folded",
              fs.num_transitions, fs.codebook_entries, fs.total_bytes,
              folded->num_subjects());
  std::printf("\nfolding merges transitions at shared boundaries "
              "(%.1fx fewer transition nodes than the per-mode sum) and one\n"
              "lookup answers any (subject, mode) pair; the codebook rows "
              "grow %zux wider in exchange.\n",
              static_cast<double>(total_transitions) /
                  static_cast<double>(fs.num_transitions),
              w.modes.size());
  return 0;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
