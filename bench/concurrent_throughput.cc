// Concurrent multi-subject secure query serving: threads x subjects sweep
// over one shared SecureStore, driven by QueryDriver.
//
// The paper evaluates DOL by page-read counts; here those reads cost
// simulated device latency (LatencyPagedFile), which is exactly what
// concurrent serving overlaps: with the buffer pool's sharded latches,
// N worker threads keep up to N page reads in flight. Expected shape:
// aggregate throughput scales with threads until the pool or the single
// simulated device saturates, while per-query answers stay byte-identical
// to serial evaluation (the DOL read path is shared-read-safe).
//
// Output: one JSON line per (threads) configuration, plus a summary.
// argv[1] = document nodes (default 12000), argv[2] = read latency in
// microseconds (default 150), argv[3] = queries in the batch (default 192).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/query_driver.h"
#include "query/xpath_parser.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kNumSubjects = 8;

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 12000);
  uint32_t latency_us = 150;
  if (argc > 2) latency_us = static_cast<uint32_t>(std::atoi(argv[2]));
  size_t num_queries = 192;
  if (argc > 3) num_queries = static_cast<size_t>(std::atoi(argv[3]));

  bench::Banner("Concurrent multi-subject secure query throughput");
  std::printf("nodes=%u subjects=%zu queries=%zu read_latency_us=%u\n",
              nodes, kNumSubjects, num_queries, latency_us);

  XMarkOptions xopts;
  xopts.seed = 17;
  xopts.target_nodes = nodes;
  Document doc;
  Status st = GenerateXMark(xopts, &doc);
  if (!st.ok()) {
    std::fprintf(stderr, "xmark: %s\n", st.ToString().c_str());
    return 1;
  }
  SyntheticAclOptions aopts;
  aopts.seed = 23;
  aopts.accessibility_ratio = 0.7;
  IntervalAccessMap map = GenerateSyntheticAclMap(doc, kNumSubjects, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());

  MemPagedFile base;
  LatencyPagedFile file(&base, std::chrono::microseconds(latency_us));
  NokStoreOptions sopts;
  // Pool far smaller than the document so queries keep missing (cold I/O),
  // with enough latch shards that concurrent misses overlap their reads.
  sopts.buffer_pool_pages = 64;
  sopts.buffer_pool_shards = 16;
  sopts.max_records_per_page = 64;
  std::unique_ptr<SecureStore> store;
  st = SecureStore::Build(doc, labeling, &file, sopts, &store);
  if (!st.ok()) {
    std::fprintf(stderr, "build: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("store: %zu pages, pool %zu frames / %zu shards\n",
              store->nok()->num_pages(), sopts.buffer_pool_pages,
              sopts.buffer_pool_shards);

  // The batch: Table 1 pattern queries plus random twigs grown along real
  // document paths, round-robined over the subjects.
  std::vector<QueryJob> jobs;
  jobs.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    QueryJob job;
    job.subject = static_cast<SubjectId>(i % kNumSubjects);
    if (i % 4 == 0) {
      st = ParseXPath(kTable1Queries[(i / 4) % 6], &job.pattern);
      if (!st.ok()) {
        std::fprintf(stderr, "parse: %s\n", st.ToString().c_str());
        return 1;
      }
    } else {
      QueryGenOptions qopts;
      qopts.seed = 1000 + i;
      qopts.max_nodes = 2 + static_cast<int>(i % 5);
      job.pattern = GenerateTwigQuery(doc, qopts);
    }
    jobs.push_back(std::move(job));
  }

  // Serial baseline first; each configuration starts from a cold cache.
  BatchResult serial;
  double serial_qps = 0;
  bool all_identical = true;
  int exit_code = 0;
  double speedup_at_4 = 0;

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    st = store->nok()->buffer_pool()->EvictAll();
    if (!st.ok()) {
      std::fprintf(stderr, "evict: %s\n", st.ToString().c_str());
      return 1;
    }
    QueryDriverOptions dopts;
    dopts.num_threads = threads;
    dopts.semantics = AccessSemantics::kBinding;
    QueryDriver driver(store.get(), dopts);
    BatchResult batch = driver.Run(jobs);

    bool identical = true;
    if (threads == 1) {
      serial = batch;
      serial_qps = batch.stats.QueriesPerSecond(jobs.size());
    } else {
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (batch.outcomes[i].status.ok() != serial.outcomes[i].status.ok() ||
            batch.outcomes[i].result.answers !=
                serial.outcomes[i].result.answers) {
          identical = false;
        }
      }
      all_identical = all_identical && identical;
    }
    double qps = batch.stats.QueriesPerSecond(jobs.size());
    double speedup = serial_qps > 0 ? qps / serial_qps : 1.0;
    if (threads == 4) speedup_at_4 = speedup;
    std::printf(
        "{\"threads\":%zu,\"queries\":%zu,\"failed\":%zu,"
        "\"wall_ms\":%.1f,\"qps\":%.1f,\"speedup_vs_serial\":%.2f,"
        "\"mean_latency_us\":%.0f,\"p95_latency_us\":%lld,"
        "\"page_reads\":%llu,\"cache_hits\":%llu,\"pages_skipped\":%llu,"
        "\"identical_to_serial\":%s}\n",
        threads, jobs.size(), batch.stats.failed,
        batch.stats.wall_micros / 1000.0, qps, speedup,
        batch.stats.mean_latency_micros,
        static_cast<long long>(batch.stats.p95_latency_micros),
        static_cast<unsigned long long>(batch.stats.io.page_reads),
        static_cast<unsigned long long>(batch.stats.io.cache_hits),
        static_cast<unsigned long long>(batch.stats.io.pages_skipped),
        threads == 1 ? "true" : (identical ? "true" : "false"));
    if (batch.stats.failed != 0) exit_code = 1;
  }

  std::printf("\nsummary: speedup at 4 threads = %.2fx, results %s\n",
              speedup_at_4,
              all_identical ? "byte-identical to serial" : "DIVERGED");
  if (!all_identical) exit_code = 1;
  if (speedup_at_4 < 2.0) {
    std::printf("WARNING: speedup below the 2x acceptance threshold\n");
  }
  return exit_code;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
