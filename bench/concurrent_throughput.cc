// Concurrent multi-subject secure query serving: threads x subjects sweep
// over one shared SecureStore, driven by QueryDriver.
//
// The paper evaluates DOL by page-read counts; here those reads cost
// simulated device latency (LatencyPagedFile), which is exactly what
// concurrent serving overlaps: with the buffer pool's sharded latches,
// N worker threads keep up to N page reads in flight. Expected shape:
// aggregate throughput scales with threads until the pool or the single
// simulated device saturates, while per-query answers stay byte-identical
// to serial evaluation (the DOL read path is shared-read-safe).
//
// Output: one JSON line per (threads) configuration, plus a summary.
// argv[1] = document nodes (default 12000), argv[2] = read latency in
// microseconds (default 150), argv[3] = queries in the batch (default 192).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/query_driver.h"
#include "query/xpath_parser.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kNumSubjects = 8;

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 12000);
  uint32_t latency_us = 150;
  if (argc > 2) latency_us = static_cast<uint32_t>(std::atoi(argv[2]));
  size_t num_queries = 192;
  if (argc > 3) num_queries = static_cast<size_t>(std::atoi(argv[3]));

  bench::Banner("Concurrent multi-subject secure query throughput");
  std::printf("nodes=%u subjects=%zu queries=%zu read_latency_us=%u\n",
              nodes, kNumSubjects, num_queries, latency_us);

  XMarkOptions xopts;
  xopts.seed = 17;
  xopts.target_nodes = nodes;
  Document doc;
  Status st = GenerateXMark(xopts, &doc);
  if (!st.ok()) {
    std::fprintf(stderr, "xmark: %s\n", st.ToString().c_str());
    return 1;
  }
  SyntheticAclOptions aopts;
  aopts.seed = 23;
  aopts.accessibility_ratio = 0.7;
  IntervalAccessMap map = GenerateSyntheticAclMap(doc, kNumSubjects, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());

  MemPagedFile base;
  LatencyPagedFile file(&base, std::chrono::microseconds(latency_us));
  NokStoreOptions sopts;
  // Pool far smaller than the document so queries keep missing (cold I/O),
  // with enough latch shards that concurrent misses overlap their reads.
  sopts.buffer_pool_pages = 64;
  sopts.buffer_pool_shards = 16;
  sopts.max_records_per_page = 64;
  std::unique_ptr<SecureStore> store;
  st = SecureStore::Build(doc, labeling, &file, sopts, &store);
  if (!st.ok()) {
    std::fprintf(stderr, "build: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("store: %zu pages, pool %zu frames / %zu shards\n",
              store->nok()->num_pages(), sopts.buffer_pool_pages,
              sopts.buffer_pool_shards);

  // The batch: Table 1 pattern queries plus random twigs grown along real
  // document paths, round-robined over the subjects.
  std::vector<QueryJob> jobs;
  jobs.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    QueryJob job;
    job.subject = static_cast<SubjectId>(i % kNumSubjects);
    if (i % 4 == 0) {
      st = ParseXPath(kTable1Queries[(i / 4) % 6], &job.pattern);
      if (!st.ok()) {
        std::fprintf(stderr, "parse: %s\n", st.ToString().c_str());
        return 1;
      }
    } else {
      QueryGenOptions qopts;
      qopts.seed = 1000 + i;
      qopts.max_nodes = 2 + static_cast<int>(i % 5);
      job.pattern = GenerateTwigQuery(doc, qopts);
    }
    jobs.push_back(std::move(job));
  }

  // Serial baseline first; each configuration starts from a cold cache.
  BatchResult serial;
  double serial_qps = 0;
  bool all_identical = true;
  int exit_code = 0;
  double speedup_at_4 = 0;
  std::vector<bench::Json> thread_points;

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    st = store->nok()->buffer_pool()->EvictAll();
    if (!st.ok()) {
      std::fprintf(stderr, "evict: %s\n", st.ToString().c_str());
      return 1;
    }
    QueryDriverOptions dopts;
    dopts.num_threads = threads;
    dopts.semantics = AccessSemantics::kBinding;
    QueryDriver driver(store.get(), dopts);
    BatchResult batch = driver.Run(jobs);

    bool identical = true;
    if (threads == 1) {
      serial = batch;
      serial_qps = batch.stats.QueriesPerSecond(jobs.size());
    } else {
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (batch.outcomes[i].status.ok() != serial.outcomes[i].status.ok() ||
            batch.outcomes[i].result.answers !=
                serial.outcomes[i].result.answers) {
          identical = false;
        }
      }
      all_identical = all_identical && identical;
    }
    double qps = batch.stats.QueriesPerSecond(jobs.size());
    double speedup = serial_qps > 0 ? qps / serial_qps : 1.0;
    if (threads == 4) speedup_at_4 = speedup;
    std::printf(
        "{\"threads\":%zu,\"queries\":%zu,\"failed\":%zu,"
        "\"wall_ms\":%.1f,\"qps\":%.1f,\"speedup_vs_serial\":%.2f,"
        "\"mean_latency_us\":%.0f,\"p95_latency_us\":%lld,"
        "\"page_reads\":%llu,\"cache_hits\":%llu,\"pages_skipped\":%llu,"
        "\"identical_to_serial\":%s}\n",
        threads, jobs.size(), batch.stats.failed,
        batch.stats.wall_micros / 1000.0, qps, speedup,
        batch.stats.mean_latency_micros,
        static_cast<long long>(batch.stats.p95_latency_micros),
        static_cast<unsigned long long>(batch.stats.io.page_reads),
        static_cast<unsigned long long>(batch.stats.io.cache_hits),
        static_cast<unsigned long long>(batch.stats.io.pages_skipped),
        threads == 1 ? "true" : (identical ? "true" : "false"));
    if (batch.stats.failed != 0) exit_code = 1;
    thread_points.push_back(
        bench::Json()
            .Set("threads", static_cast<uint64_t>(threads))
            .Set("wall_ms", batch.stats.wall_micros / 1000.0)
            .Set("qps", qps)
            .Set("speedup_vs_serial", speedup)
            .Set("mean_latency_us", batch.stats.mean_latency_micros)
            .Set("p95_latency_us",
                 static_cast<int64_t>(batch.stats.p95_latency_micros))
            .Set("page_reads", batch.stats.io.page_reads)
            .Set("cache_hits", batch.stats.io.cache_hits)
            .Set("pages_skipped", batch.stats.io.pages_skipped)
            .Set("failed", static_cast<uint64_t>(batch.stats.failed))
            .Set("exec", bench::ExecStatsJson(batch.stats.exec))
            .Set("identical_to_serial", threads == 1 || identical));
  }

  std::printf("\nsummary: speedup at 4 threads = %.2fx, results %s\n",
              speedup_at_4,
              all_identical ? "byte-identical to serial" : "DIVERGED");
  if (!all_identical) exit_code = 1;
  if (speedup_at_4 < 2.0) {
    std::printf("WARNING: speedup below the 2x acceptance threshold\n");
  }

  // Readahead A/B over the ε-STD visibility sweep: HiddenSubtreeIntervals
  // walks pages in document order, so the background prefetcher can hide
  // the simulated device latency of the next pages behind the current
  // page's processing. Window 0 is the synchronous baseline.
  std::printf("\nreadahead A/B: HiddenSubtreeIntervals sweep over %zu "
              "subjects, cold pool, %u us/read\n",
              kNumSubjects, latency_us);
  struct RaConfig {
    size_t window;
    size_t workers;
  };
  const RaConfig ra_configs[] = {{0, 0}, {8, 4}};
  double sweep_ms[2] = {0, 0};
  uint64_t sweep_reads[2] = {0, 0};
  std::vector<bench::Json> ra_points;
  constexpr int kSweepReps = 3;
  for (int ci = 0; ci < 2; ++ci) {
    store->nok()->SetReadahead(ra_configs[ci].window, ra_configs[ci].workers);
    double total = 0;
    for (int r = 0; r < kSweepReps; ++r) {
      store->DropVisibilityCaches();
      st = store->nok()->buffer_pool()->EvictAll();
      if (!st.ok()) {
        std::fprintf(stderr, "evict: %s\n", st.ToString().c_str());
        return 1;
      }
      store->nok()->buffer_pool()->mutable_stats()->Reset();
      Timer timer;
      for (SubjectId s = 0; s < kNumSubjects; ++s) {
        auto got = store->HiddenSubtreeIntervals(s);
        if (!got.ok()) {
          std::fprintf(stderr, "sweep: %s\n", got.status().ToString().c_str());
          return 1;
        }
      }
      total += timer.ElapsedSeconds();
      sweep_reads[ci] = store->io_stats().page_reads;
    }
    sweep_ms[ci] = total / kSweepReps * 1000;
    std::printf("  window=%zu workers=%zu: %.1f ms/sweep, %llu page reads\n",
                ra_configs[ci].window, ra_configs[ci].workers, sweep_ms[ci],
                static_cast<unsigned long long>(sweep_reads[ci]));
    ra_points.push_back(
        bench::Json()
            .Set("window", static_cast<uint64_t>(ra_configs[ci].window))
            .Set("workers", static_cast<uint64_t>(ra_configs[ci].workers))
            .Set("sweep_wall_ms", sweep_ms[ci])
            .Set("page_reads", sweep_reads[ci]));
  }
  store->nok()->SetReadahead(0, 0);
  double ra_speedup = sweep_ms[1] > 0 ? sweep_ms[0] / sweep_ms[1] : 0.0;
  std::printf("  readahead speedup: %.2fx\n", ra_speedup);
  if (ra_speedup <= 1.0) {
    std::printf("WARNING: readahead did not improve the sweep\n");
  }

  bench::WriteBenchJson(
      "concurrent_throughput",
      bench::Json()
          .Set("bench", "concurrent_throughput")
          .Set("nodes", nodes)
          .Set("read_latency_us", latency_us)
          .Set("queries", static_cast<uint64_t>(num_queries))
          .Set("subjects", static_cast<uint64_t>(kNumSubjects))
          .Set("all_identical_to_serial", all_identical)
          .Set("speedup_at_4_threads", speedup_at_4)
          .Set("threads_sweep", thread_points)
          .Set("readahead_sweep", ra_points)
          .Set("readahead_speedup", ra_speedup));
  return exit_code;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
