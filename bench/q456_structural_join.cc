// Reproduces Table 1 Q4-Q6 (Section 4.2 / 5.2): ancestor-descendant twig
// queries evaluated with structural joins — //parlist//parlist (descendants
// close to ancestors), //listitem//keyword (medium), //item//emph (distant)
// — under no access control (STD), the Cho binding semantics (ε-NoK inputs),
// and the Gabillon-Bruno view semantics (ε-STD with subtree-visibility
// pruning, every page loaded at most once for the visibility pass).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr const char* kQueries[] = {
    "//parlist//parlist",   // Q4
    "//listitem//keyword",  // Q5
    "//item//emph",         // Q6
};

int Run(int argc, char** argv) {
  uint32_t nodes = bench::ScaleArg(argc, argv, 200000);
  bench::Banner("Table 1 Q4-Q6: structural joins, STD vs e-STD (" +
                std::to_string(nodes) + "-node XMark)");

  XMarkOptions xopts;
  xopts.target_nodes = nodes;
  Document doc;
  Status st = GenerateXMark(xopts, &doc);
  if (!st.ok()) return 1;

  std::vector<bench::Json> points;
  // Access-only page fetches summed over every secure evaluation below;
  // structurally 0 on the DOL path, recorded as measured.
  uint64_t extra_access_io = 0;
  for (int acc : {50, 70, 90}) {
    SyntheticAclOptions aopts;
    aopts.propagation_ratio = 0.03;
    aopts.accessibility_ratio = acc / 100.0;
    // An inaccessible root hides the whole document under view semantics;
    // pin it accessible so the sweep measures non-degenerate instances.
    aopts.force_root_accessible = true;
    aopts.seed = 777;
    IntervalAccessMap map = GenerateSyntheticAclMap(doc, 8, aopts);
    DolLabeling labeling = DolLabeling::BuildFromEvents(
        map.num_nodes(), map.InitialAcl(), map.CollectEvents());
    MemPagedFile file;
    NokStoreOptions sopts;
    sopts.buffer_pool_pages = 64;
    std::unique_ptr<SecureStore> store;
    st = SecureStore::Build(doc, labeling, &file, sopts, &store);
    if (!st.ok()) return 1;
    QueryEvaluator eval(store.get());

    std::printf("\naccessibility ratio %d%%\n", acc);
    std::printf("%-24s %10s %10s %10s | %12s %12s %12s\n", "query",
                "STD ans", "eNoK ans", "eSTD ans", "STD ms", "eNoK ms",
                "eSTD ms");
    for (const char* q : kQueries) {
      double ms[3];
      size_t answers[3];
      uint64_t reads[3];
      AccessSemantics sems[3] = {AccessSemantics::kNone,
                                 AccessSemantics::kBinding,
                                 AccessSemantics::kView};
      uint64_t reads_first[3];
      ExecStats exec_first[3], exec_cached[3];
      std::vector<bench::Json> estd_operators;
      for (int i = 0; i < 3; ++i) {
        EvalOptions opts;
        opts.semantics = sems[i];
        constexpr int kReps = 5;
        double total = 0;
        size_t count = 0;
        Timer timer;
        for (int r = 0; r < kReps; ++r) {
          (void)store->nok()->buffer_pool()->EvictAll();
          store->nok()->buffer_pool()->mutable_stats()->Reset();
          timer.Reset();
          auto got = eval.EvaluateXPath(q, opts);
          total += timer.ElapsedSeconds();
          if (!got.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         got.status().ToString().c_str());
            return 1;
          }
          count = got->answers.size();
          extra_access_io += got->exec.access_only_fetches;
          // The first repetition pays the one-pass visibility sweep of
          // ε-STD; later ones reuse the cached hidden intervals.
          if (r == 0) {
            reads_first[i] = store->io_stats().page_reads;
            exec_first[i] = got->exec;
            if (sems[i] == AccessSemantics::kView) {
              for (const OperatorStats& op : got->operators) {
                estd_operators.push_back(
                    bench::ExecStatsJson(op.stats).Set("op", op.op));
              }
            }
          }
          exec_cached[i] = got->exec;
        }
        ms[i] = total / kReps * 1000;
        answers[i] = count;
        reads[i] = store->io_stats().page_reads;
      }
      std::printf("%-24s %10zu %10zu %10zu | %12.2f %12.2f %12.2f\n", q,
                  answers[0], answers[1], answers[2], ms[0], ms[1], ms[2]);
      std::printf("%-24s page reads: STD %llu, eNoK %llu, eSTD %llu first / "
                  "%llu cached (pages in store: %zu)\n", "",
                  static_cast<unsigned long long>(reads[0]),
                  static_cast<unsigned long long>(reads[1]),
                  static_cast<unsigned long long>(reads_first[2]),
                  static_cast<unsigned long long>(reads[2]),
                  store->nok()->num_pages());
      points.push_back(
          bench::Json()
              .Set("query", q)
              .Set("accessibility_pct", acc)
              .Set("std_ms", ms[0])
              .Set("enok_ms", ms[1])
              .Set("estd_ms", ms[2])
              .Set("std_answers", static_cast<uint64_t>(answers[0]))
              .Set("enok_answers", static_cast<uint64_t>(answers[1]))
              .Set("estd_answers", static_cast<uint64_t>(answers[2]))
              .Set("std_page_reads", reads[0])
              .Set("enok_page_reads", reads[1])
              .Set("estd_page_reads_first", reads_first[2])
              .Set("estd_page_reads_cached", reads[2])
              .Set("store_pages",
                   static_cast<uint64_t>(store->nok()->num_pages()))
              .Set("enok_exec", bench::ExecStatsJson(exec_cached[1]))
              .Set("estd_exec_first", bench::ExecStatsJson(exec_first[2]))
              .Set("estd_exec_cached", bench::ExecStatsJson(exec_cached[2]))
              .Set("estd_operators_first", estd_operators));
    }
  }
  std::printf("\n(view semantics prunes at least as much as binding "
              "semantics; the visibility pass touches each page at most "
              "once)\n");
  std::printf("extra access I/O across all secure runs: %llu (paper claim: "
              "0)\n", static_cast<unsigned long long>(extra_access_io));

  bench::WriteBenchJson("q456_structural_join",
                        bench::Json()
                            .Set("bench", "q456_structural_join")
                            .Set("nodes", nodes)
                            .Set("extra_access_io", extra_access_io)
                            .Set("points", points));
  return extra_access_io == 0 ? 0 : 1;
}

}  // namespace
}  // namespace secxml

int main(int argc, char** argv) { return secxml::Run(argc, argv); }
