# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for q456_structural_join.
