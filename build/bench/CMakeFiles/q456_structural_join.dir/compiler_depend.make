# Empty compiler generated dependencies file for q456_structural_join.
# This may be replaced when dependencies are built.
