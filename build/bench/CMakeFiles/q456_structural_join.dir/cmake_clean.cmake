file(REMOVE_RECURSE
  "CMakeFiles/q456_structural_join.dir/q456_structural_join.cc.o"
  "CMakeFiles/q456_structural_join.dir/q456_structural_join.cc.o.d"
  "q456_structural_join"
  "q456_structural_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/q456_structural_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
