# Empty compiler generated dependencies file for mode_folding_ablation.
# This may be replaced when dependencies are built.
