file(REMOVE_RECURSE
  "CMakeFiles/mode_folding_ablation.dir/mode_folding_ablation.cc.o"
  "CMakeFiles/mode_folding_ablation.dir/mode_folding_ablation.cc.o.d"
  "mode_folding_ablation"
  "mode_folding_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_folding_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
