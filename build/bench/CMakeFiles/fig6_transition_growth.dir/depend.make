# Empty dependencies file for fig6_transition_growth.
# This may be replaced when dependencies are built.
