file(REMOVE_RECURSE
  "CMakeFiles/fig6_transition_growth.dir/fig6_transition_growth.cc.o"
  "CMakeFiles/fig6_transition_growth.dir/fig6_transition_growth.cc.o.d"
  "fig6_transition_growth"
  "fig6_transition_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_transition_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
