file(REMOVE_RECURSE
  "CMakeFiles/fig5_codebook_growth.dir/fig5_codebook_growth.cc.o"
  "CMakeFiles/fig5_codebook_growth.dir/fig5_codebook_growth.cc.o.d"
  "fig5_codebook_growth"
  "fig5_codebook_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_codebook_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
