# Empty dependencies file for fig5_codebook_growth.
# This may be replaced when dependencies are built.
