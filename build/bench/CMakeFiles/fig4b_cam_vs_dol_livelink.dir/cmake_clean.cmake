file(REMOVE_RECURSE
  "CMakeFiles/fig4b_cam_vs_dol_livelink.dir/fig4b_cam_vs_dol_livelink.cc.o"
  "CMakeFiles/fig4b_cam_vs_dol_livelink.dir/fig4b_cam_vs_dol_livelink.cc.o.d"
  "fig4b_cam_vs_dol_livelink"
  "fig4b_cam_vs_dol_livelink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_cam_vs_dol_livelink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
