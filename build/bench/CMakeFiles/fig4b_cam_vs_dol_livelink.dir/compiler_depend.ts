# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4b_cam_vs_dol_livelink.
