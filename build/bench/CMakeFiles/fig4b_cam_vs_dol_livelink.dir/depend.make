# Empty dependencies file for fig4b_cam_vs_dol_livelink.
# This may be replaced when dependencies are built.
