file(REMOVE_RECURSE
  "CMakeFiles/storage_comparison.dir/storage_comparison.cc.o"
  "CMakeFiles/storage_comparison.dir/storage_comparison.cc.o.d"
  "storage_comparison"
  "storage_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
