# Empty dependencies file for updates_bench.
# This may be replaced when dependencies are built.
