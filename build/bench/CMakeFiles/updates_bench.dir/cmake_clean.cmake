file(REMOVE_RECURSE
  "CMakeFiles/updates_bench.dir/updates_bench.cc.o"
  "CMakeFiles/updates_bench.dir/updates_bench.cc.o.d"
  "updates_bench"
  "updates_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updates_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
