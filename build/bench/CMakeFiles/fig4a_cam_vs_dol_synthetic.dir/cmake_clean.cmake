file(REMOVE_RECURSE
  "CMakeFiles/fig4a_cam_vs_dol_synthetic.dir/fig4a_cam_vs_dol_synthetic.cc.o"
  "CMakeFiles/fig4a_cam_vs_dol_synthetic.dir/fig4a_cam_vs_dol_synthetic.cc.o.d"
  "fig4a_cam_vs_dol_synthetic"
  "fig4a_cam_vs_dol_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_cam_vs_dol_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
