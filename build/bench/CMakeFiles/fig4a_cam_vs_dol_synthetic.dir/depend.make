# Empty dependencies file for fig4a_cam_vs_dol_synthetic.
# This may be replaced when dependencies are built.
