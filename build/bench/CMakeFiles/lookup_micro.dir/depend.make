# Empty dependencies file for lookup_micro.
# This may be replaced when dependencies are built.
