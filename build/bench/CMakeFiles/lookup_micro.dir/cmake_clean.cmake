file(REMOVE_RECURSE
  "CMakeFiles/lookup_micro.dir/lookup_micro.cc.o"
  "CMakeFiles/lookup_micro.dir/lookup_micro.cc.o.d"
  "lookup_micro"
  "lookup_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookup_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
