# Empty dependencies file for fig7_secure_nok.
# This may be replaced when dependencies are built.
