file(REMOVE_RECURSE
  "CMakeFiles/fig7_secure_nok.dir/fig7_secure_nok.cc.o"
  "CMakeFiles/fig7_secure_nok.dir/fig7_secure_nok.cc.o.d"
  "fig7_secure_nok"
  "fig7_secure_nok.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_secure_nok.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
