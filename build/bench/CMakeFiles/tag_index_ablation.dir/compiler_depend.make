# Empty compiler generated dependencies file for tag_index_ablation.
# This may be replaced when dependencies are built.
