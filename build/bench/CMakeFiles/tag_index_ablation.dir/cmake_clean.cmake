file(REMOVE_RECURSE
  "CMakeFiles/tag_index_ablation.dir/tag_index_ablation.cc.o"
  "CMakeFiles/tag_index_ablation.dir/tag_index_ablation.cc.o.d"
  "tag_index_ablation"
  "tag_index_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_index_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
