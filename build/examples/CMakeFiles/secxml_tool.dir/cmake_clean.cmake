file(REMOVE_RECURSE
  "CMakeFiles/secxml_tool.dir/secxml_tool.cpp.o"
  "CMakeFiles/secxml_tool.dir/secxml_tool.cpp.o.d"
  "secxml_tool"
  "secxml_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secxml_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
