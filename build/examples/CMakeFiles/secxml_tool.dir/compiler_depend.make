# Empty compiler generated dependencies file for secxml_tool.
# This may be replaced when dependencies are built.
