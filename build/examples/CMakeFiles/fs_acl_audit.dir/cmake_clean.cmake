file(REMOVE_RECURSE
  "CMakeFiles/fs_acl_audit.dir/fs_acl_audit.cpp.o"
  "CMakeFiles/fs_acl_audit.dir/fs_acl_audit.cpp.o.d"
  "fs_acl_audit"
  "fs_acl_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_acl_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
