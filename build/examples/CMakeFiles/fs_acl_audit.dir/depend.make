# Empty dependencies file for fs_acl_audit.
# This may be replaced when dependencies are built.
