# Empty compiler generated dependencies file for department_portal.
# This may be replaced when dependencies are built.
