file(REMOVE_RECURSE
  "CMakeFiles/department_portal.dir/department_portal.cpp.o"
  "CMakeFiles/department_portal.dir/department_portal.cpp.o.d"
  "department_portal"
  "department_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/department_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
