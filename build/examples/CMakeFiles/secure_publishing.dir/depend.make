# Empty dependencies file for secure_publishing.
# This may be replaced when dependencies are built.
