file(REMOVE_RECURSE
  "CMakeFiles/secure_publishing.dir/secure_publishing.cpp.o"
  "CMakeFiles/secure_publishing.dir/secure_publishing.cpp.o.d"
  "secure_publishing"
  "secure_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
