file(REMOVE_RECURSE
  "CMakeFiles/secxml_common.dir/status.cc.o"
  "CMakeFiles/secxml_common.dir/status.cc.o.d"
  "libsecxml_common.a"
  "libsecxml_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secxml_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
