# Empty compiler generated dependencies file for secxml_common.
# This may be replaced when dependencies are built.
