file(REMOVE_RECURSE
  "libsecxml_common.a"
)
