file(REMOVE_RECURSE
  "CMakeFiles/secxml_query.dir/decomposer.cc.o"
  "CMakeFiles/secxml_query.dir/decomposer.cc.o.d"
  "CMakeFiles/secxml_query.dir/evaluator.cc.o"
  "CMakeFiles/secxml_query.dir/evaluator.cc.o.d"
  "CMakeFiles/secxml_query.dir/matcher.cc.o"
  "CMakeFiles/secxml_query.dir/matcher.cc.o.d"
  "CMakeFiles/secxml_query.dir/pattern_tree.cc.o"
  "CMakeFiles/secxml_query.dir/pattern_tree.cc.o.d"
  "CMakeFiles/secxml_query.dir/structural_join.cc.o"
  "CMakeFiles/secxml_query.dir/structural_join.cc.o.d"
  "CMakeFiles/secxml_query.dir/xpath_parser.cc.o"
  "CMakeFiles/secxml_query.dir/xpath_parser.cc.o.d"
  "libsecxml_query.a"
  "libsecxml_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secxml_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
