
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/decomposer.cc" "src/query/CMakeFiles/secxml_query.dir/decomposer.cc.o" "gcc" "src/query/CMakeFiles/secxml_query.dir/decomposer.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/query/CMakeFiles/secxml_query.dir/evaluator.cc.o" "gcc" "src/query/CMakeFiles/secxml_query.dir/evaluator.cc.o.d"
  "/root/repo/src/query/matcher.cc" "src/query/CMakeFiles/secxml_query.dir/matcher.cc.o" "gcc" "src/query/CMakeFiles/secxml_query.dir/matcher.cc.o.d"
  "/root/repo/src/query/pattern_tree.cc" "src/query/CMakeFiles/secxml_query.dir/pattern_tree.cc.o" "gcc" "src/query/CMakeFiles/secxml_query.dir/pattern_tree.cc.o.d"
  "/root/repo/src/query/structural_join.cc" "src/query/CMakeFiles/secxml_query.dir/structural_join.cc.o" "gcc" "src/query/CMakeFiles/secxml_query.dir/structural_join.cc.o.d"
  "/root/repo/src/query/xpath_parser.cc" "src/query/CMakeFiles/secxml_query.dir/xpath_parser.cc.o" "gcc" "src/query/CMakeFiles/secxml_query.dir/xpath_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/secxml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nok/CMakeFiles/secxml_nok.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/secxml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/secxml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/secxml_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
