# Empty dependencies file for secxml_query.
# This may be replaced when dependencies are built.
