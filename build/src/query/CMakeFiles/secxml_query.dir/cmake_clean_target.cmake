file(REMOVE_RECURSE
  "libsecxml_query.a"
)
