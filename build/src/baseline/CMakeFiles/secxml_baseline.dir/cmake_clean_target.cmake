file(REMOVE_RECURSE
  "libsecxml_baseline.a"
)
