# Empty compiler generated dependencies file for secxml_baseline.
# This may be replaced when dependencies are built.
