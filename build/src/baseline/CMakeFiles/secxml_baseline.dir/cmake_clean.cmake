file(REMOVE_RECURSE
  "CMakeFiles/secxml_baseline.dir/cam.cc.o"
  "CMakeFiles/secxml_baseline.dir/cam.cc.o.d"
  "libsecxml_baseline.a"
  "libsecxml_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secxml_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
