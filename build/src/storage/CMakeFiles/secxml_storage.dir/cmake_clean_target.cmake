file(REMOVE_RECURSE
  "libsecxml_storage.a"
)
