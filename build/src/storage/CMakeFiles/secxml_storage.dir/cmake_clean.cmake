file(REMOVE_RECURSE
  "CMakeFiles/secxml_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/secxml_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/secxml_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/secxml_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/secxml_storage.dir/paged_file.cc.o"
  "CMakeFiles/secxml_storage.dir/paged_file.cc.o.d"
  "libsecxml_storage.a"
  "libsecxml_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secxml_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
