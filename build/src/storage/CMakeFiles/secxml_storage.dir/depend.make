# Empty dependencies file for secxml_storage.
# This may be replaced when dependencies are built.
