# Empty compiler generated dependencies file for secxml_xml.
# This may be replaced when dependencies are built.
