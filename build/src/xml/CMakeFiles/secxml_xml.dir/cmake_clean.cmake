file(REMOVE_RECURSE
  "CMakeFiles/secxml_xml.dir/document.cc.o"
  "CMakeFiles/secxml_xml.dir/document.cc.o.d"
  "CMakeFiles/secxml_xml.dir/xmark_generator.cc.o"
  "CMakeFiles/secxml_xml.dir/xmark_generator.cc.o.d"
  "CMakeFiles/secxml_xml.dir/xml_parser.cc.o"
  "CMakeFiles/secxml_xml.dir/xml_parser.cc.o.d"
  "CMakeFiles/secxml_xml.dir/xml_writer.cc.o"
  "CMakeFiles/secxml_xml.dir/xml_writer.cc.o.d"
  "libsecxml_xml.a"
  "libsecxml_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secxml_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
