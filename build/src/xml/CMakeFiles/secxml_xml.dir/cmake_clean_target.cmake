file(REMOVE_RECURSE
  "libsecxml_xml.a"
)
