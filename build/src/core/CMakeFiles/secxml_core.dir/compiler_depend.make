# Empty compiler generated dependencies file for secxml_core.
# This may be replaced when dependencies are built.
