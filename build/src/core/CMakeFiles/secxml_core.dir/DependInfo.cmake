
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accessibility_map.cc" "src/core/CMakeFiles/secxml_core.dir/accessibility_map.cc.o" "gcc" "src/core/CMakeFiles/secxml_core.dir/accessibility_map.cc.o.d"
  "/root/repo/src/core/codebook.cc" "src/core/CMakeFiles/secxml_core.dir/codebook.cc.o" "gcc" "src/core/CMakeFiles/secxml_core.dir/codebook.cc.o.d"
  "/root/repo/src/core/dol_labeling.cc" "src/core/CMakeFiles/secxml_core.dir/dol_labeling.cc.o" "gcc" "src/core/CMakeFiles/secxml_core.dir/dol_labeling.cc.o.d"
  "/root/repo/src/core/mode_folding.cc" "src/core/CMakeFiles/secxml_core.dir/mode_folding.cc.o" "gcc" "src/core/CMakeFiles/secxml_core.dir/mode_folding.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/secxml_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/secxml_core.dir/policy.cc.o.d"
  "/root/repo/src/core/secure_store.cc" "src/core/CMakeFiles/secxml_core.dir/secure_store.cc.o" "gcc" "src/core/CMakeFiles/secxml_core.dir/secure_store.cc.o.d"
  "/root/repo/src/core/stream_filter.cc" "src/core/CMakeFiles/secxml_core.dir/stream_filter.cc.o" "gcc" "src/core/CMakeFiles/secxml_core.dir/stream_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nok/CMakeFiles/secxml_nok.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/secxml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/secxml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/secxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
