file(REMOVE_RECURSE
  "CMakeFiles/secxml_core.dir/accessibility_map.cc.o"
  "CMakeFiles/secxml_core.dir/accessibility_map.cc.o.d"
  "CMakeFiles/secxml_core.dir/codebook.cc.o"
  "CMakeFiles/secxml_core.dir/codebook.cc.o.d"
  "CMakeFiles/secxml_core.dir/dol_labeling.cc.o"
  "CMakeFiles/secxml_core.dir/dol_labeling.cc.o.d"
  "CMakeFiles/secxml_core.dir/mode_folding.cc.o"
  "CMakeFiles/secxml_core.dir/mode_folding.cc.o.d"
  "CMakeFiles/secxml_core.dir/policy.cc.o"
  "CMakeFiles/secxml_core.dir/policy.cc.o.d"
  "CMakeFiles/secxml_core.dir/secure_store.cc.o"
  "CMakeFiles/secxml_core.dir/secure_store.cc.o.d"
  "CMakeFiles/secxml_core.dir/stream_filter.cc.o"
  "CMakeFiles/secxml_core.dir/stream_filter.cc.o.d"
  "libsecxml_core.a"
  "libsecxml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secxml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
