file(REMOVE_RECURSE
  "libsecxml_core.a"
)
