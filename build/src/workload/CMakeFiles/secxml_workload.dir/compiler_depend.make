# Empty compiler generated dependencies file for secxml_workload.
# This may be replaced when dependencies are built.
