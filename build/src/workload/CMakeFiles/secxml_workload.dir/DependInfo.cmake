
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/livelink_surrogate.cc" "src/workload/CMakeFiles/secxml_workload.dir/livelink_surrogate.cc.o" "gcc" "src/workload/CMakeFiles/secxml_workload.dir/livelink_surrogate.cc.o.d"
  "/root/repo/src/workload/query_generator.cc" "src/workload/CMakeFiles/secxml_workload.dir/query_generator.cc.o" "gcc" "src/workload/CMakeFiles/secxml_workload.dir/query_generator.cc.o.d"
  "/root/repo/src/workload/synthetic_acl.cc" "src/workload/CMakeFiles/secxml_workload.dir/synthetic_acl.cc.o" "gcc" "src/workload/CMakeFiles/secxml_workload.dir/synthetic_acl.cc.o.d"
  "/root/repo/src/workload/unixfs_surrogate.cc" "src/workload/CMakeFiles/secxml_workload.dir/unixfs_surrogate.cc.o" "gcc" "src/workload/CMakeFiles/secxml_workload.dir/unixfs_surrogate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/secxml_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/secxml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/secxml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/secxml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nok/CMakeFiles/secxml_nok.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/secxml_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
