file(REMOVE_RECURSE
  "CMakeFiles/secxml_workload.dir/livelink_surrogate.cc.o"
  "CMakeFiles/secxml_workload.dir/livelink_surrogate.cc.o.d"
  "CMakeFiles/secxml_workload.dir/query_generator.cc.o"
  "CMakeFiles/secxml_workload.dir/query_generator.cc.o.d"
  "CMakeFiles/secxml_workload.dir/synthetic_acl.cc.o"
  "CMakeFiles/secxml_workload.dir/synthetic_acl.cc.o.d"
  "CMakeFiles/secxml_workload.dir/unixfs_surrogate.cc.o"
  "CMakeFiles/secxml_workload.dir/unixfs_surrogate.cc.o.d"
  "libsecxml_workload.a"
  "libsecxml_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secxml_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
