file(REMOVE_RECURSE
  "libsecxml_workload.a"
)
