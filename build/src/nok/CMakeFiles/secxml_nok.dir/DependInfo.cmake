
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nok/nok_store.cc" "src/nok/CMakeFiles/secxml_nok.dir/nok_store.cc.o" "gcc" "src/nok/CMakeFiles/secxml_nok.dir/nok_store.cc.o.d"
  "/root/repo/src/nok/tag_index.cc" "src/nok/CMakeFiles/secxml_nok.dir/tag_index.cc.o" "gcc" "src/nok/CMakeFiles/secxml_nok.dir/tag_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/secxml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/secxml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/secxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
