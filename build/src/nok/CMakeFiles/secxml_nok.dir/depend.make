# Empty dependencies file for secxml_nok.
# This may be replaced when dependencies are built.
