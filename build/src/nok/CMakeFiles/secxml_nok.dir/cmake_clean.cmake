file(REMOVE_RECURSE
  "CMakeFiles/secxml_nok.dir/nok_store.cc.o"
  "CMakeFiles/secxml_nok.dir/nok_store.cc.o.d"
  "CMakeFiles/secxml_nok.dir/tag_index.cc.o"
  "CMakeFiles/secxml_nok.dir/tag_index.cc.o.d"
  "libsecxml_nok.a"
  "libsecxml_nok.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secxml_nok.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
