file(REMOVE_RECURSE
  "libsecxml_nok.a"
)
