file(REMOVE_RECURSE
  "CMakeFiles/synthetic_acl_test.dir/workload/synthetic_acl_test.cc.o"
  "CMakeFiles/synthetic_acl_test.dir/workload/synthetic_acl_test.cc.o.d"
  "synthetic_acl_test"
  "synthetic_acl_test.pdb"
  "synthetic_acl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_acl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
