# Empty dependencies file for synthetic_acl_test.
# This may be replaced when dependencies are built.
