# Empty dependencies file for nok_store_test.
# This may be replaced when dependencies are built.
