file(REMOVE_RECURSE
  "CMakeFiles/nok_store_test.dir/nok/nok_store_test.cc.o"
  "CMakeFiles/nok_store_test.dir/nok/nok_store_test.cc.o.d"
  "nok_store_test"
  "nok_store_test.pdb"
  "nok_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nok_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
