file(REMOVE_RECURSE
  "CMakeFiles/cam_test.dir/baseline/cam_test.cc.o"
  "CMakeFiles/cam_test.dir/baseline/cam_test.cc.o.d"
  "cam_test"
  "cam_test.pdb"
  "cam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
