file(REMOVE_RECURSE
  "CMakeFiles/evaluator_fuzz_test.dir/query/evaluator_fuzz_test.cc.o"
  "CMakeFiles/evaluator_fuzz_test.dir/query/evaluator_fuzz_test.cc.o.d"
  "evaluator_fuzz_test"
  "evaluator_fuzz_test.pdb"
  "evaluator_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
