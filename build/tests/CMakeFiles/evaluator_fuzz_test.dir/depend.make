# Empty dependencies file for evaluator_fuzz_test.
# This may be replaced when dependencies are built.
