
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/query/evaluator_fuzz_test.cc" "tests/CMakeFiles/evaluator_fuzz_test.dir/query/evaluator_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/evaluator_fuzz_test.dir/query/evaluator_fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/secxml_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/secxml_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/secxml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/secxml_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/nok/CMakeFiles/secxml_nok.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/secxml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/secxml_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/secxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
