file(REMOVE_RECURSE
  "CMakeFiles/mode_folding_test.dir/core/mode_folding_test.cc.o"
  "CMakeFiles/mode_folding_test.dir/core/mode_folding_test.cc.o.d"
  "mode_folding_test"
  "mode_folding_test.pdb"
  "mode_folding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_folding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
