file(REMOVE_RECURSE
  "CMakeFiles/codebook_compaction_test.dir/core/codebook_compaction_test.cc.o"
  "CMakeFiles/codebook_compaction_test.dir/core/codebook_compaction_test.cc.o.d"
  "codebook_compaction_test"
  "codebook_compaction_test.pdb"
  "codebook_compaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codebook_compaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
