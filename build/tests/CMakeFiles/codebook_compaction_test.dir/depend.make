# Empty dependencies file for codebook_compaction_test.
# This may be replaced when dependencies are built.
