# Empty dependencies file for structural_update_test.
# This may be replaced when dependencies are built.
