file(REMOVE_RECURSE
  "CMakeFiles/structural_update_test.dir/nok/structural_update_test.cc.o"
  "CMakeFiles/structural_update_test.dir/nok/structural_update_test.cc.o.d"
  "structural_update_test"
  "structural_update_test.pdb"
  "structural_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
