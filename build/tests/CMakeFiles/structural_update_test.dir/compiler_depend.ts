# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for structural_update_test.
