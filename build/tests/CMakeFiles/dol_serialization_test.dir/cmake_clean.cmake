file(REMOVE_RECURSE
  "CMakeFiles/dol_serialization_test.dir/core/dol_serialization_test.cc.o"
  "CMakeFiles/dol_serialization_test.dir/core/dol_serialization_test.cc.o.d"
  "dol_serialization_test"
  "dol_serialization_test.pdb"
  "dol_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dol_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
