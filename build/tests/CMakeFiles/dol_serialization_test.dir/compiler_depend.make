# Empty compiler generated dependencies file for dol_serialization_test.
# This may be replaced when dependencies are built.
