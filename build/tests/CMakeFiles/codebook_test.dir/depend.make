# Empty dependencies file for codebook_test.
# This may be replaced when dependencies are built.
