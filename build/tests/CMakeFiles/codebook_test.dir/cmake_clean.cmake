file(REMOVE_RECURSE
  "CMakeFiles/codebook_test.dir/core/codebook_test.cc.o"
  "CMakeFiles/codebook_test.dir/core/codebook_test.cc.o.d"
  "codebook_test"
  "codebook_test.pdb"
  "codebook_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codebook_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
