file(REMOVE_RECURSE
  "CMakeFiles/ordered_matching_test.dir/query/ordered_matching_test.cc.o"
  "CMakeFiles/ordered_matching_test.dir/query/ordered_matching_test.cc.o.d"
  "ordered_matching_test"
  "ordered_matching_test.pdb"
  "ordered_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
