# Empty dependencies file for ordered_matching_test.
# This may be replaced when dependencies are built.
