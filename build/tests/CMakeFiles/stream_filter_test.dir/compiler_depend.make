# Empty compiler generated dependencies file for stream_filter_test.
# This may be replaced when dependencies are built.
