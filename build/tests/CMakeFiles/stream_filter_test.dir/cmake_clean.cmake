file(REMOVE_RECURSE
  "CMakeFiles/stream_filter_test.dir/core/stream_filter_test.cc.o"
  "CMakeFiles/stream_filter_test.dir/core/stream_filter_test.cc.o.d"
  "stream_filter_test"
  "stream_filter_test.pdb"
  "stream_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
