# Empty dependencies file for accessibility_map_test.
# This may be replaced when dependencies are built.
