file(REMOVE_RECURSE
  "CMakeFiles/accessibility_map_test.dir/core/accessibility_map_test.cc.o"
  "CMakeFiles/accessibility_map_test.dir/core/accessibility_map_test.cc.o.d"
  "accessibility_map_test"
  "accessibility_map_test.pdb"
  "accessibility_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accessibility_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
