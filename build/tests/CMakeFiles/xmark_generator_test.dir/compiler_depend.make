# Empty compiler generated dependencies file for xmark_generator_test.
# This may be replaced when dependencies are built.
