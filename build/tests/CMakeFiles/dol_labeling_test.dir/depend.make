# Empty dependencies file for dol_labeling_test.
# This may be replaced when dependencies are built.
