file(REMOVE_RECURSE
  "CMakeFiles/dol_labeling_test.dir/core/dol_labeling_test.cc.o"
  "CMakeFiles/dol_labeling_test.dir/core/dol_labeling_test.cc.o.d"
  "dol_labeling_test"
  "dol_labeling_test.pdb"
  "dol_labeling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dol_labeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
