# Empty dependencies file for unixfs_surrogate_test.
# This may be replaced when dependencies are built.
