file(REMOVE_RECURSE
  "CMakeFiles/unixfs_surrogate_test.dir/workload/unixfs_surrogate_test.cc.o"
  "CMakeFiles/unixfs_surrogate_test.dir/workload/unixfs_surrogate_test.cc.o.d"
  "unixfs_surrogate_test"
  "unixfs_surrogate_test.pdb"
  "unixfs_surrogate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unixfs_surrogate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
