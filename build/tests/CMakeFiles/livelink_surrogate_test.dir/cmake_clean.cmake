file(REMOVE_RECURSE
  "CMakeFiles/livelink_surrogate_test.dir/workload/livelink_surrogate_test.cc.o"
  "CMakeFiles/livelink_surrogate_test.dir/workload/livelink_surrogate_test.cc.o.d"
  "livelink_surrogate_test"
  "livelink_surrogate_test.pdb"
  "livelink_surrogate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livelink_surrogate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
