# Empty dependencies file for livelink_surrogate_test.
# This may be replaced when dependencies are built.
