add_test([=[EndToEndTest.FullPipelineOnDisk]=]  /root/repo/build/tests/end_to_end_test [==[--gtest_filter=EndToEndTest.FullPipelineOnDisk]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[EndToEndTest.FullPipelineOnDisk]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  end_to_end_test_TESTS EndToEndTest.FullPipelineOnDisk)
