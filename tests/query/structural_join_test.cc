#include "query/structural_join.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

std::vector<JoinItem> ItemsFor(const Document& doc,
                               const std::vector<NodeId>& nodes) {
  std::vector<JoinItem> items;
  for (NodeId n : nodes) items.push_back({n, doc.SubtreeEnd(n)});
  return items;
}

std::vector<NodeId> NodesWithTag(const Document& doc, const std::string& tag) {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    if (doc.TagName(n) == tag) out.push_back(n);
  }
  return out;
}

TEST(StructuralJoinTest, SimplePairs) {
  // Tree intervals: a=[0,6) containing b=[1,3), with descendants at 2 and 4.
  std::vector<JoinItem> anc = {{0, 6}, {1, 3}};
  std::vector<NodeId> desc = {2, 4, 7};
  auto pairs = StackTreeDesc(anc, desc);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], std::make_pair(0u, 2u));
  EXPECT_EQ(pairs[1], std::make_pair(1u, 2u));
  EXPECT_EQ(pairs[2], std::make_pair(0u, 4u));
}

TEST(StructuralJoinTest, AncestorNotBeforeDescendantExcluded) {
  std::vector<JoinItem> anc = {{5, 10}};
  std::vector<NodeId> desc = {5};  // equal: a node is not its own descendant
  EXPECT_TRUE(StackTreeDesc(anc, desc).empty());
}

TEST(StructuralJoinTest, MatchesBruteForceOnXMark) {
  XMarkOptions opts;
  opts.target_nodes = 8000;
  Document doc;
  ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
  for (auto [atag, dtag] :
       {std::make_pair("parlist", "parlist"), std::make_pair("listitem", "keyword"),
        std::make_pair("item", "emph")}) {
    std::vector<NodeId> a_nodes = NodesWithTag(doc, atag);
    std::vector<NodeId> d_nodes = NodesWithTag(doc, dtag);
    auto pairs = StackTreeDesc(ItemsFor(doc, a_nodes), d_nodes);
    // Brute force.
    std::vector<std::pair<NodeId, NodeId>> want;
    for (NodeId d : d_nodes) {
      for (NodeId a : a_nodes) {
        if (doc.IsAncestor(a, d)) want.emplace_back(a, d);
      }
    }
    auto sorted_pairs = pairs;
    std::sort(sorted_pairs.begin(), sorted_pairs.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(sorted_pairs, want) << atag << "//" << dtag;
  }
}

TEST(StructuralJoinTest, SemiJoinDescendants) {
  std::vector<JoinItem> anc = {{0, 4}, {10, 12}};
  std::vector<NodeId> desc = {1, 3, 4, 11, 20};
  auto got = SemiJoinDescendants(anc, desc);
  EXPECT_EQ(got, (std::vector<NodeId>{1, 3, 11}));
}

TEST(StructuralJoinTest, SemiJoinDescendantsHandlesNestedAncestors) {
  // Outer [0,100) plus inner [1,3): descendant 50 is only under the outer,
  // which the max-end sweep must remember after the inner closes.
  std::vector<JoinItem> anc = {{0, 100}, {1, 3}};
  std::vector<NodeId> desc = {2, 50};
  EXPECT_EQ(SemiJoinDescendants(anc, desc), (std::vector<NodeId>{2, 50}));
}

TEST(StructuralJoinTest, SemiJoinAncestors) {
  std::vector<JoinItem> anc = {{0, 4}, {5, 9}, {10, 12}};
  std::vector<NodeId> desc = {2, 11};
  auto got = SemiJoinAncestors(anc, desc);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].node, 0u);
  EXPECT_EQ(got[1].node, 10u);
}

TEST(StructuralJoinTest, FilterVisible) {
  std::vector<NodeInterval> hidden = {{3, 6}, {10, 11}};
  std::vector<NodeId> nodes = {0, 3, 5, 6, 9, 10, 12};
  EXPECT_EQ(FilterVisible(hidden, nodes), (std::vector<NodeId>{0, 6, 9, 12}));
  EXPECT_EQ(FilterVisible({}, nodes), nodes);
  std::vector<JoinItem> items = {{0, 2}, {4, 5}, {12, 20}};
  auto kept = FilterVisibleItems(hidden, items);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].node, 0u);
  EXPECT_EQ(kept[1].node, 12u);
}

TEST(StructuralJoinTest, RandomizedSemiJoinAgainstBruteForce) {
  Rng rng(23);
  for (int round = 0; round < 20; ++round) {
    // Random nested intervals via a random tree walk.
    XMarkOptions opts;
    opts.seed = 100 + static_cast<uint64_t>(round);
    opts.target_nodes = 1000;
    Document doc;
    ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
    std::vector<NodeId> anc_nodes, desc_nodes;
    for (NodeId n = 0; n < doc.NumNodes(); ++n) {
      if (rng.Bernoulli(0.05)) anc_nodes.push_back(n);
      if (rng.Bernoulli(0.05)) desc_nodes.push_back(n);
    }
    auto got = SemiJoinDescendants(ItemsFor(doc, anc_nodes), desc_nodes);
    std::vector<NodeId> want;
    for (NodeId d : desc_nodes) {
      for (NodeId a : anc_nodes) {
        if (doc.IsAncestor(a, d)) {
          want.push_back(d);
          break;
        }
      }
    }
    ASSERT_EQ(got, want) << "round " << round;
  }
}

}  // namespace
}  // namespace secxml
